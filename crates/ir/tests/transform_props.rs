//! Property tests for the scheduling rewrites (paper §5.2): every
//! transformation must preserve the iteration space — schedules "only
//! affect performance, not correctness" (§3.3).

use distal_ir::cin::ConcreteNotation;
use distal_ir::expr::{kernels, IndexVar};
use distal_ir::provenance::VarSolver;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn iv(s: &str) -> IndexVar {
    IndexVar::new(s)
}

proptest! {
    /// `divide` tiles the domain exactly: the per-outer intervals are
    /// disjoint, ordered, and their union is `[0, extent)`.
    #[test]
    fn divide_partitions_domain(extent in 1i64..200, parts in 1i64..12) {
        let mut s = VarSolver::new();
        s.define_leaf(iv("i"), extent);
        s.divide(&iv("i"), iv("io"), iv("ii"), parts).unwrap();
        let mut covered = 0;
        let mut prev_hi = -1;
        for o in 0..s.extent(&iv("io")) {
            let mut env = BTreeMap::new();
            env.insert(iv("io"), o);
            let r = s.interval(&iv("i"), &env);
            if r.is_empty() {
                continue; // trailing empty blocks allowed
            }
            prop_assert_eq!(r.lo, prev_hi + 1);
            prev_hi = r.hi;
            covered += r.len();
        }
        prop_assert_eq!(covered, extent);
        prop_assert_eq!(prev_hi, extent - 1);
    }

    /// `split` is `divide` with the roles of the factor flipped: chunks of
    /// the given size, same exact-cover law.
    #[test]
    fn split_partitions_domain(extent in 1i64..200, chunk in 1i64..40) {
        let mut s = VarSolver::new();
        s.define_leaf(iv("k"), extent);
        s.split(&iv("k"), iv("ko"), iv("ki"), chunk).unwrap();
        let mut covered = 0;
        for o in 0..s.extent(&iv("ko")) {
            let mut env = BTreeMap::new();
            env.insert(iv("ko"), o);
            let r = s.interval(&iv("k"), &env);
            prop_assert!(!r.is_empty());
            prop_assert!(r.len() <= chunk);
            covered += r.len();
        }
        prop_assert_eq!(covered, extent);
    }

    /// `rotate` is a bijection of the rotated domain for every fixed
    /// assignment of the offset variables — no iteration is lost or
    /// duplicated, which is why Cannon's rotation preserves correctness.
    #[test]
    fn rotate_is_a_bijection(extent in 1i64..24, io in 0i64..24, jo in 0i64..24) {
        let mut s = VarSolver::new();
        s.define_leaf(iv("ko"), extent);
        s.define_leaf(iv("io"), 24);
        s.define_leaf(iv("jo"), 24);
        s.rotate(&iv("ko"), vec![iv("io"), iv("jo")], iv("kos")).unwrap();
        let mut seen = vec![false; extent as usize];
        for kos in 0..extent {
            let mut env = BTreeMap::new();
            env.insert(iv("kos"), kos);
            env.insert(iv("io"), io);
            env.insert(iv("jo"), jo);
            let k = s.value(&iv("ko"), &env).expect("concrete env");
            prop_assert!((0..extent).contains(&k));
            prop_assert!(!seen[k as usize], "duplicate {k}");
            seen[k as usize] = true;
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    /// Symmetry breaking (§3.3): with a non-trivial extent, two different
    /// offset sums never map the same rotated iteration to the same
    /// original iteration at every step.
    #[test]
    fn rotate_breaks_symmetry(extent in 2i64..24, a in 0i64..24, b in 0i64..24) {
        prop_assume!((a - b) % extent != 0);
        let mut s = VarSolver::new();
        s.define_leaf(iv("ko"), extent);
        s.define_leaf(iv("io"), 48);
        s.rotate(&iv("ko"), vec![iv("io")], iv("kos")).unwrap();
        for kos in 0..extent {
            let mut env_a = BTreeMap::new();
            env_a.insert(iv("kos"), kos);
            env_a.insert(iv("io"), a);
            let mut env_b = BTreeMap::new();
            env_b.insert(iv("kos"), kos);
            env_b.insert(iv("io"), b);
            prop_assert_ne!(
                s.value(&iv("ko"), &env_a),
                s.value(&iv("ko"), &env_b)
            );
        }
    }

    /// `collapse` then indexing is a bijection between the fused domain and
    /// the (a, b) pairs.
    #[test]
    fn collapse_roundtrip(ea in 1i64..16, eb in 1i64..16) {
        let mut s = VarSolver::new();
        s.define_leaf(iv("a"), ea);
        s.define_leaf(iv("b"), eb);
        s.collapse(&iv("a"), &iv("b"), iv("f")).unwrap();
        let mut seen = vec![false; (ea * eb) as usize];
        for f in 0..ea * eb {
            let mut env = BTreeMap::new();
            env.insert(iv("f"), f);
            let a = s.value(&iv("a"), &env).unwrap();
            let b = s.value(&iv("b"), &env).unwrap();
            prop_assert!((0..ea).contains(&a));
            prop_assert!((0..eb).contains(&b));
            let idx = (a * eb + b) as usize;
            prop_assert!(!seen[idx]);
            seen[idx] = true;
        }
        prop_assert!(seen.iter().all(|&x| x));
    }

    /// Random valid schedule chains on matmul: the loop variables remain a
    /// permutation of the live solver variables, and every loop variable
    /// descends from an original statement variable.
    #[test]
    fn schedule_chains_preserve_structure(
        parts in 1i64..5,
        chunk in 1i64..17,
        do_rotate in any::<bool>(),
        do_collapse in any::<bool>(),
    ) {
        let extents: BTreeMap<IndexVar, i64> =
            [("i", 24), ("j", 24), ("k", 24)].iter().map(|(v, e)| (iv(v), *e)).collect();
        let mut cin = ConcreteNotation::from_assignment(kernels::matmul(), &extents).unwrap();
        cin.divide(&iv("i"), iv("io"), iv("ii"), parts).unwrap();
        cin.divide(&iv("j"), iv("jo"), iv("ji"), parts).unwrap();
        cin.reorder(&[iv("io"), iv("jo"), iv("ii"), iv("ji")]).unwrap();
        cin.distribute(&[iv("io"), iv("jo")]).unwrap();
        cin.split(&iv("k"), iv("ko"), iv("ki"), chunk).unwrap();
        cin.reorder(&[iv("ko"), iv("ii"), iv("ji"), iv("ki")]).unwrap();
        if do_rotate {
            cin.rotate(&iv("ko"), &[iv("io"), iv("jo")], iv("kos")).unwrap();
        }
        if do_collapse {
            cin.collapse(&iv("ii"), &iv("ji"), iv("f")).unwrap();
        }
        // The nest stays consistent with the solver.
        let loop_vars = cin.loop_vars();
        for v in &loop_vars {
            prop_assert!(cin.solver.knows(v), "{v:?}");
            let roots = cin.solver.roots_of(v);
            prop_assert!(!roots.is_empty());
            for r in roots {
                prop_assert!(["i", "j", "k"].contains(&r.0.as_str()));
            }
        }
        // Distributed prefix survives all later transformations.
        prop_assert_eq!(cin.distributed_prefix().map(<[distal_ir::cin::Loop]>::len), Some(2));
        // Total iteration count is invariant: product of loop extents is at
        // least the original domain (ceil-division padding only adds).
        let total: i64 = loop_vars.iter().map(|v| cin.solver.extent(v)).product();
        prop_assert!(total >= 24 * 24 * 24);
    }
}

#[test]
fn reorder_rejects_unknown_and_duplicates() {
    let extents: BTreeMap<IndexVar, i64> = [("i", 4), ("j", 4), ("k", 4)]
        .iter()
        .map(|(v, e)| (iv(v), *e))
        .collect();
    let mut cin = ConcreteNotation::from_assignment(kernels::matmul(), &extents).unwrap();
    assert!(cin.reorder(&[iv("i"), iv("i")]).is_err());
    assert!(cin.reorder(&[iv("nope")]).is_err());
}
