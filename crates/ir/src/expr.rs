//! Tensor index notation (paper §2).
//!
//! Statements are assignments whose left-hand side is an access and whose
//! right-hand side is built from addition and multiplication of accesses.
//! Index variables correspond to nested loops; variables appearing only on
//! the right-hand side are sum reductions over their domain.
//!
//! # Example
//!
//! ```
//! use distal_ir::expr::Assignment;
//! let mm = Assignment::parse("A(i,j) = B(i,k) * C(k,j)").unwrap();
//! assert_eq!(mm.free_vars().len(), 2);
//! assert_eq!(mm.reduction_vars().len(), 1);
//! assert_eq!(mm.to_string(), "A(i, j) = B(i, k) * C(k, j)");
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An index variable (`i`, `j`, `k`, or derived ones like `io`, `ki`).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexVar(pub String);

impl IndexVar {
    /// Creates an index variable from a name.
    pub fn new(name: impl Into<String>) -> Self {
        IndexVar(name.into())
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for IndexVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for IndexVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for IndexVar {
    fn from(s: &str) -> Self {
        IndexVar(s.to_string())
    }
}

/// A named tensor of a given order (dimensionality).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TensorRef {
    /// The tensor's name.
    pub name: String,
    /// Number of dimensions.
    pub order: usize,
}

/// An access `T(i, j, ...)`.
#[derive(Clone, PartialEq, Eq)]
pub struct Access {
    /// Tensor name.
    pub tensor: String,
    /// One index variable per tensor dimension.
    pub indices: Vec<IndexVar>,
}

impl Access {
    /// Creates an access.
    pub fn new(tensor: impl Into<String>, indices: Vec<IndexVar>) -> Self {
        Access {
            tensor: tensor.into(),
            indices,
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.tensor)?;
        for (i, v) in self.indices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A right-hand-side expression.
#[derive(Clone, PartialEq)]
pub enum Expr {
    /// A tensor access.
    Access(Access),
    /// A scalar literal.
    Literal(f64),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// All accesses in the expression, left to right.
    pub fn accesses(&self) -> Vec<&Access> {
        let mut out = Vec::new();
        self.collect_accesses(&mut out);
        out
    }

    fn collect_accesses<'a>(&'a self, out: &mut Vec<&'a Access>) {
        match self {
            Expr::Access(a) => out.push(a),
            Expr::Literal(_) => {}
            Expr::Add(l, r) | Expr::Mul(l, r) => {
                l.collect_accesses(out);
                r.collect_accesses(out);
            }
        }
    }

    /// Variables in order of first appearance.
    pub fn vars(&self) -> Vec<IndexVar> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for a in self.accesses() {
            for v in &a.indices {
                if seen.insert(v.clone()) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// Evaluates the expression given per-access scalar values, in access
    /// order (used by the generic leaf interpreter).
    pub fn eval(&self, values: &mut impl Iterator<Item = f64>) -> f64 {
        match self {
            Expr::Access(_) => values.next().expect("missing access value"),
            Expr::Literal(c) => *c,
            Expr::Add(l, r) => l.eval(values) + r.eval(values),
            Expr::Mul(l, r) => l.eval(values) * r.eval(values),
        }
    }

    /// Number of arithmetic operations per iteration-space point.
    pub fn flops_per_point(&self) -> f64 {
        match self {
            Expr::Access(_) | Expr::Literal(_) => 0.0,
            Expr::Add(l, r) | Expr::Mul(l, r) => 1.0 + l.flops_per_point() + r.flops_per_point(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Access(a) => write!(f, "{a}"),
            Expr::Literal(c) => write!(f, "{c}"),
            Expr::Add(l, r) => write!(f, "{l} + {r}"),
            Expr::Mul(l, r) => write!(f, "{l} * {r}"),
        }
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Errors from building or validating tensor index notation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExprError {
    /// A tensor appeared with two different arities.
    InconsistentArity {
        /// Tensor name.
        tensor: String,
        /// First arity seen.
        first: usize,
        /// Conflicting arity.
        second: usize,
    },
    /// The left-hand side repeats an index variable.
    DuplicateLhsVar(String),
    /// Parse failure.
    Parse(String),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::InconsistentArity {
                tensor,
                first,
                second,
            } => write!(
                f,
                "tensor '{tensor}' used with both {first} and {second} indices"
            ),
            ExprError::DuplicateLhsVar(v) => {
                write!(f, "left-hand side repeats index variable '{v}'")
            }
            ExprError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for ExprError {}

/// A tensor index notation statement `lhs = rhs` (or `lhs += rhs`).
#[derive(Clone, PartialEq)]
pub struct Assignment {
    /// The destination access.
    pub lhs: Access,
    /// The right-hand side.
    pub rhs: Expr,
    /// True when the statement accumulates (`+=`).
    pub increment: bool,
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = if self.increment { "+=" } else { "=" };
        write!(f, "{} {} {}", self.lhs, op, self.rhs)
    }
}

impl fmt::Debug for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl Assignment {
    /// Creates and validates an assignment.
    ///
    /// # Errors
    ///
    /// Rejects inconsistent tensor arities and duplicate variables on the
    /// left-hand side.
    pub fn new(lhs: Access, rhs: Expr, increment: bool) -> Result<Self, ExprError> {
        let a = Assignment {
            lhs,
            rhs,
            increment,
        };
        a.validate()?;
        Ok(a)
    }

    fn validate(&self) -> Result<(), ExprError> {
        let mut arity: BTreeMap<&str, usize> = BTreeMap::new();
        for acc in self.accesses() {
            match arity.get(acc.tensor.as_str()) {
                Some(&n) if n != acc.indices.len() => {
                    return Err(ExprError::InconsistentArity {
                        tensor: acc.tensor.clone(),
                        first: n,
                        second: acc.indices.len(),
                    })
                }
                _ => {
                    arity.insert(&acc.tensor, acc.indices.len());
                }
            }
        }
        let mut seen = BTreeSet::new();
        for v in &self.lhs.indices {
            if !seen.insert(v) {
                return Err(ExprError::DuplicateLhsVar(v.0.clone()));
            }
        }
        Ok(())
    }

    /// All accesses: the destination followed by right-hand-side accesses.
    pub fn accesses(&self) -> Vec<&Access> {
        let mut out = vec![&self.lhs];
        out.extend(self.rhs.accesses());
        out
    }

    /// Right-hand-side accesses only.
    pub fn input_accesses(&self) -> Vec<&Access> {
        self.rhs.accesses()
    }

    /// Free variables: the left-hand side's, in order.
    pub fn free_vars(&self) -> Vec<IndexVar> {
        self.lhs.indices.clone()
    }

    /// Reduction variables: right-hand-side variables not on the left, in
    /// order of first appearance.
    pub fn reduction_vars(&self) -> Vec<IndexVar> {
        let free: BTreeSet<_> = self.lhs.indices.iter().cloned().collect();
        self.rhs
            .vars()
            .into_iter()
            .filter(|v| !free.contains(v))
            .collect()
    }

    /// Free then reduction variables — the default loop order (§5.1:
    /// "constructing a loop nest based on a left-to-right traversal").
    pub fn all_vars(&self) -> Vec<IndexVar> {
        let mut out = self.free_vars();
        out.extend(self.reduction_vars());
        out
    }

    /// True when the statement reduces (has reduction variables or is an
    /// explicit increment).
    pub fn is_reduction(&self) -> bool {
        self.increment || !self.reduction_vars().is_empty()
    }

    /// Arithmetic operations per iteration point, counting the accumulation
    /// into the output when reducing (e.g. matmul = 2 flops/point).
    pub fn flops_per_point(&self) -> f64 {
        let rhs = self.rhs.flops_per_point();
        if self.is_reduction() {
            rhs + 1.0
        } else {
            rhs
        }
    }

    /// The extents each variable must have, inferred from per-tensor
    /// dimension sizes. Returns `None` if a tensor is missing from `dims` or
    /// two accesses imply conflicting extents.
    pub fn infer_extents(
        &self,
        dims: &BTreeMap<String, Vec<i64>>,
    ) -> Option<BTreeMap<IndexVar, i64>> {
        let mut extents: BTreeMap<IndexVar, i64> = BTreeMap::new();
        for acc in self.accesses() {
            let d = dims.get(&acc.tensor)?;
            if d.len() != acc.indices.len() {
                return None;
            }
            for (v, &e) in acc.indices.iter().zip(d.iter()) {
                match extents.get(v) {
                    Some(&prev) if prev != e => return None,
                    _ => {
                        extents.insert(v.clone(), e);
                    }
                }
            }
        }
        Some(extents)
    }

    /// Parses a statement like `A(i,j) = B(i,k) * C(k,j)` or `a += b(i)`.
    ///
    /// Scalars are written as zero-argument accesses: `a = B(i,j) * C(i,j)`
    /// means a full contraction into the scalar `a` (the paper's inner
    /// product, §7.2).
    ///
    /// # Errors
    ///
    /// Returns [`ExprError::Parse`] on malformed input, plus the validation
    /// errors of [`Assignment::new`].
    pub fn parse(input: &str) -> Result<Self, ExprError> {
        Parser::new(input).parse_assignment()
    }
}

/// Hand-rolled recursive-descent parser for tensor index notation.
struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ExprError> {
        self.skip_ws();
        let start = self.pos;
        for (i, c) in self.rest().char_indices() {
            if c.is_alphanumeric() || c == '_' {
                continue;
            }
            self.pos = start + i;
            break;
        }
        if self.pos == start {
            if self.rest().chars().all(|c| c.is_alphanumeric() || c == '_')
                && !self.rest().is_empty()
            {
                self.pos = self.src.len();
            } else {
                return Err(ExprError::Parse(format!(
                    "expected identifier at '{}'",
                    self.rest()
                )));
            }
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn access(&mut self) -> Result<Access, ExprError> {
        let name = self.ident()?;
        let mut indices = Vec::new();
        if self.eat("(") && !self.eat(")") {
            loop {
                indices.push(IndexVar::new(self.ident()?));
                if self.eat(")") {
                    break;
                }
                if !self.eat(",") {
                    return Err(ExprError::Parse(format!(
                        "expected ',' or ')' at '{}'",
                        self.rest()
                    )));
                }
            }
        }
        Ok(Access::new(name, indices))
    }

    fn factor(&mut self) -> Result<Expr, ExprError> {
        self.skip_ws();
        if self
            .rest()
            .starts_with(|c: char| c.is_ascii_digit() || c == '.')
        {
            let start = self.pos;
            while self
                .rest()
                .starts_with(|c: char| c.is_ascii_digit() || c == '.')
            {
                self.pos += 1;
            }
            let lit: f64 = self.src[start..self.pos]
                .parse()
                .map_err(|e| ExprError::Parse(format!("bad literal: {e}")))?;
            return Ok(Expr::Literal(lit));
        }
        Ok(Expr::Access(self.access()?))
    }

    fn term(&mut self) -> Result<Expr, ExprError> {
        let mut e = self.factor()?;
        while self.eat("*") {
            let r = self.factor()?;
            e = Expr::Mul(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn expr(&mut self) -> Result<Expr, ExprError> {
        let mut e = self.term()?;
        while self.eat("+") {
            let r = self.term()?;
            e = Expr::Add(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn parse_assignment(&mut self) -> Result<Assignment, ExprError> {
        let lhs = self.access()?;
        let increment = if self.eat("+=") {
            true
        } else if self.eat("=") {
            false
        } else {
            return Err(ExprError::Parse(format!(
                "expected '=' or '+=' at '{}'",
                self.rest()
            )));
        };
        let rhs = self.expr()?;
        self.skip_ws();
        if !self.rest().is_empty() {
            return Err(ExprError::Parse(format!(
                "trailing input: '{}'",
                self.rest()
            )));
        }
        Assignment::new(lhs, rhs, increment)
    }
}

/// The expressions evaluated in §7 of the paper, as parse helpers.
pub mod kernels {
    use super::Assignment;

    /// Matrix multiply: `A(i,j) = B(i,k) * C(k,j)`.
    pub fn matmul() -> Assignment {
        Assignment::parse("A(i,j) = B(i,k) * C(k,j)").unwrap()
    }

    /// Tensor-times-vector: `A(i,j) = B(i,j,k) * c(k)`.
    pub fn ttv() -> Assignment {
        Assignment::parse("A(i,j) = B(i,j,k) * c(k)").unwrap()
    }

    /// Tensor-times-matrix: `A(i,j,l) = B(i,j,k) * C(k,l)`.
    pub fn ttm() -> Assignment {
        Assignment::parse("A(i,j,l) = B(i,j,k) * C(k,l)").unwrap()
    }

    /// Inner product: `a = B(i,j,k) * C(i,j,k)`.
    pub fn innerprod() -> Assignment {
        Assignment::parse("a = B(i,j,k) * C(i,j,k)").unwrap()
    }

    /// Matricized tensor times Khatri-Rao product:
    /// `A(i,l) = B(i,j,k) * C(j,l) * D(k,l)`.
    pub fn mttkrp() -> Assignment {
        Assignment::parse("A(i,l) = B(i,j,k) * C(j,l) * D(k,l)").unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_matmul() {
        let a = Assignment::parse("A(i,j) = B(i,k) * C(k,j)").unwrap();
        assert_eq!(a.free_vars(), vec![IndexVar::new("i"), IndexVar::new("j")]);
        assert_eq!(a.reduction_vars(), vec![IndexVar::new("k")]);
        assert!(a.is_reduction());
        assert_eq!(a.flops_per_point(), 2.0);
        assert_eq!(a.to_string(), "A(i, j) = B(i, k) * C(k, j)");
    }

    #[test]
    fn parse_scalar_and_increment() {
        let a = Assignment::parse("a = B(i,j,k) * C(i,j,k)").unwrap();
        assert!(a.free_vars().is_empty());
        assert_eq!(a.reduction_vars().len(), 3);
        let b = Assignment::parse("A(i) += B(i)").unwrap();
        assert!(b.increment);
        assert!(b.is_reduction());
    }

    #[test]
    fn parse_mttkrp_three_operands() {
        let a = super::kernels::mttkrp();
        assert_eq!(a.input_accesses().len(), 3);
        assert_eq!(
            a.all_vars(),
            vec![
                IndexVar::new("i"),
                IndexVar::new("l"),
                IndexVar::new("j"),
                IndexVar::new("k")
            ]
        );
        // i,l free; j,k reduced. 3 muls... B*C*D = 2 muls + 1 add = 3 flops.
        assert_eq!(a.flops_per_point(), 3.0);
    }

    #[test]
    fn parse_addition_rhs() {
        let a = Assignment::parse("A(i) = B(i) + C(i)").unwrap();
        assert_eq!(a.flops_per_point(), 1.0);
        assert!(!a.is_reduction());
    }

    #[test]
    fn parse_literal() {
        let a = Assignment::parse("A(i) = B(i) * 2.5").unwrap();
        assert_eq!(a.to_string(), "A(i) = B(i) * 2.5");
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            Assignment::parse("A(i,i) = B(i)"),
            Err(ExprError::DuplicateLhsVar(_))
        ));
        assert!(matches!(
            Assignment::parse("A(i) = B(i) * B(i,j)"),
            Err(ExprError::InconsistentArity { .. })
        ));
        assert!(matches!(
            Assignment::parse("A(i) ~ B(i)"),
            Err(ExprError::Parse(_))
        ));
        assert!(matches!(
            Assignment::parse("A(i) = B(i) trailing"),
            Err(ExprError::Parse(_))
        ));
    }

    #[test]
    fn eval_in_access_order() {
        let a = Assignment::parse("A(i) = B(i) * C(i) + D(i)").unwrap();
        // Values supplied in RHS access order: B, C, D.
        let mut vals = [2.0, 3.0, 4.0].into_iter();
        assert_eq!(a.rhs.eval(&mut vals), 10.0);
    }

    #[test]
    fn infer_extents_consistency() {
        let a = super::kernels::matmul();
        let mut dims = BTreeMap::new();
        dims.insert("A".to_string(), vec![4, 6]);
        dims.insert("B".to_string(), vec![4, 5]);
        dims.insert("C".to_string(), vec![5, 6]);
        let e = a.infer_extents(&dims).unwrap();
        assert_eq!(e[&IndexVar::new("i")], 4);
        assert_eq!(e[&IndexVar::new("k")], 5);
        assert_eq!(e[&IndexVar::new("j")], 6);
        // Conflicting extents are rejected.
        dims.insert("C".to_string(), vec![9, 6]);
        assert!(a.infer_extents(&dims).is_none());
    }
}
