//! Intermediate representations for DISTAL.
//!
//! Pipeline layers 1–2 (statement + scheduling rewrites) —
//! `ARCHITECTURE.md` at the workspace root maps all six layers.
//!
//! This crate implements the compiler-side languages of the paper:
//!
//! * [`expr`] — *tensor index notation* (§2): `A(i,j) = B(i,k) * C(k,j)`,
//!   with validation and a small parser for the examples;
//! * [`cin`] — *concrete index notation* (§5.1): an ordered ∀-loop nest over
//!   index variables with scheduling relations tracked in `s.t.` clauses;
//! * [`provenance`] — how derived index variables (from `split`, `divide`,
//!   `rotate`) relate to the original iteration space, and the interval
//!   arithmetic used by bounds analysis (§6.2);
//! * [`transform`] — the scheduling rewrites (§5.2): `split`, `divide`,
//!   `reorder`, `distribute`, `communicate`, `rotate`;
//! * [`precompute`] — the `precompute` transformation (§2): hoist a
//!   subexpression into a workspace tensor, factoring one statement into
//!   two;
//! * [`execspace`] — the execution-space model of §3.3 (Figures 6–8), used
//!   to test `distribute` and `rotate` semantics against the paper exactly.

pub mod cin;
pub mod execspace;
pub mod expr;
pub mod precompute;
pub mod provenance;
pub mod transform;

pub use cin::{ConcreteNotation, Loop};
pub use expr::{Access, Assignment, Expr, IndexVar, TensorRef};
pub use precompute::{precompute_product, PrecomputeError};
pub use provenance::{Interval, VarDef, VarSolver};
pub use transform::ScheduleError;
