//! Variable provenance and bounds analysis.
//!
//! Scheduling transformations derive new index variables from old ones:
//! `divide(i, io, ii, p)` and `split(k, ko, ki, c)` introduce an
//! outer/inner pair with `orig = outer * extent(inner) + inner`, and
//! `rotate(t, I, r)` replaces `t` by a result variable `r` with
//! `t = (r + Σ I) mod extent(t)` (paper §5.2).
//!
//! The [`VarSolver`] records these definitions and evaluates the *interval*
//! an original variable spans given concrete values for some loop variables.
//! This is the "standard bounds analysis procedure using the extents of
//! index variables" the compiler uses to derive partition bounding boxes
//! (§6.2).

use crate::expr::IndexVar;
use std::collections::BTreeMap;
use std::fmt;

/// An inclusive integer interval.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl Interval {
    /// A single-point interval.
    pub fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The interval `[lo, hi]`.
    pub fn new(lo: i64, hi: i64) -> Self {
        Interval { lo, hi }
    }

    /// True when the interval contains exactly one value.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Number of values in the interval.
    pub fn len(&self) -> i64 {
        (self.hi - self.lo + 1).max(0)
    }

    /// True for an empty interval.
    pub fn is_empty(&self) -> bool {
        self.hi < self.lo
    }

    /// Clamps the interval into `[0, extent - 1]`.
    pub fn clamp_extent(&self, extent: i64) -> Interval {
        Interval {
            lo: self.lo.max(0),
            hi: self.hi.min(extent - 1),
        }
    }
}

/// How a variable is defined in terms of others.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VarDef {
    /// An original iteration-space variable with a known extent.
    Leaf {
        /// Domain size.
        extent: i64,
    },
    /// `self = outer * extent(inner) + inner`, clamped to `extent`.
    Divided {
        /// The outer derived variable.
        outer: IndexVar,
        /// The inner derived variable.
        inner: IndexVar,
        /// The original variable's extent (for clamping the tail block).
        extent: i64,
    },
    /// `self = (result + Σ over) mod extent` — the rotation relation.
    Rotated {
        /// The rotated loop variable that replaces `self` in the nest.
        result: IndexVar,
        /// Variables whose sum offsets the rotation.
        over: Vec<IndexVar>,
        /// The variable's extent (modulus).
        extent: i64,
    },
    /// `self = fused / extent(other)` (outer half of a `collapse`d pair)
    /// or `self = fused mod extent(self)` (inner half).
    Collapsed {
        /// The fused loop variable.
        fused: IndexVar,
        /// Extent of the inner variable of the collapsed pair.
        inner_extent: i64,
        /// True when `self` was the inner variable.
        is_inner: bool,
        /// This variable's extent.
        extent: i64,
    },
}

/// Records variable definitions and extents, and answers bounds queries.
///
/// # Example
///
/// ```
/// use distal_ir::expr::IndexVar;
/// use distal_ir::provenance::VarSolver;
/// use std::collections::BTreeMap;
///
/// let mut s = VarSolver::new();
/// let (i, io, ii) = (IndexVar::new("i"), IndexVar::new("io"), IndexVar::new("ii"));
/// s.define_leaf(i.clone(), 100);
/// s.divide(&i, io.clone(), ii.clone(), 4).unwrap();
/// let mut env = BTreeMap::new();
/// env.insert(io, 2);
/// let r = s.interval(&i, &env);
/// assert_eq!((r.lo, r.hi), (50, 74));
/// ```
#[derive(Clone, Debug, Default)]
pub struct VarSolver {
    defs: BTreeMap<IndexVar, VarDef>,
    extents: BTreeMap<IndexVar, i64>,
}

/// Errors from defining variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolverError {
    /// The variable being transformed is unknown.
    UnknownVar(String),
    /// A derived variable name is already in use.
    Redefinition(String),
    /// A split/divide factor must be positive.
    NonPositiveFactor(i64),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::UnknownVar(v) => write!(f, "unknown index variable '{v}'"),
            SolverError::Redefinition(v) => write!(f, "index variable '{v}' already defined"),
            SolverError::NonPositiveFactor(n) => write!(f, "factor must be positive, got {n}"),
        }
    }
}

impl std::error::Error for SolverError {}

impl VarSolver {
    /// An empty solver.
    pub fn new() -> Self {
        VarSolver::default()
    }

    /// Declares an original variable with its domain size.
    pub fn define_leaf(&mut self, v: IndexVar, extent: i64) {
        self.extents.insert(v.clone(), extent);
        self.defs.insert(v, VarDef::Leaf { extent });
    }

    /// The extent of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable is unknown.
    pub fn extent(&self, v: &IndexVar) -> i64 {
        self.extents[v]
    }

    /// True when the solver knows `v`.
    pub fn knows(&self, v: &IndexVar) -> bool {
        self.extents.contains_key(v)
    }

    /// `divide(v, outer, inner, parts)`: `outer` ranges over `parts` blocks,
    /// `inner` over `ceil(extent / parts)` elements.
    ///
    /// # Errors
    ///
    /// Rejects unknown `v`, reused names, and non-positive `parts`.
    pub fn divide(
        &mut self,
        v: &IndexVar,
        outer: IndexVar,
        inner: IndexVar,
        parts: i64,
    ) -> Result<(), SolverError> {
        if parts <= 0 {
            return Err(SolverError::NonPositiveFactor(parts));
        }
        let extent = *self
            .extents
            .get(v)
            .ok_or_else(|| SolverError::UnknownVar(v.0.clone()))?;
        let inner_extent = (extent + parts - 1) / parts;
        self.derive_pair(v, outer, inner, parts, inner_extent, extent)
    }

    /// `split(v, outer, inner, chunk)`: `inner` ranges over `chunk` elements,
    /// `outer` over `ceil(extent / chunk)` chunks.
    ///
    /// # Errors
    ///
    /// Rejects unknown `v`, reused names, and non-positive `chunk`.
    pub fn split(
        &mut self,
        v: &IndexVar,
        outer: IndexVar,
        inner: IndexVar,
        chunk: i64,
    ) -> Result<(), SolverError> {
        if chunk <= 0 {
            return Err(SolverError::NonPositiveFactor(chunk));
        }
        let extent = *self
            .extents
            .get(v)
            .ok_or_else(|| SolverError::UnknownVar(v.0.clone()))?;
        let outer_extent = (extent + chunk - 1) / chunk;
        self.derive_pair(v, outer, inner, outer_extent, chunk, extent)
    }

    fn derive_pair(
        &mut self,
        v: &IndexVar,
        outer: IndexVar,
        inner: IndexVar,
        outer_extent: i64,
        inner_extent: i64,
        extent: i64,
    ) -> Result<(), SolverError> {
        for name in [&outer, &inner] {
            if self.extents.contains_key(name) {
                return Err(SolverError::Redefinition(name.0.clone()));
            }
        }
        self.extents.insert(outer.clone(), outer_extent);
        self.extents.insert(inner.clone(), inner_extent);
        self.defs.insert(
            outer.clone(),
            VarDef::Leaf {
                extent: outer_extent,
            },
        );
        self.defs.insert(
            inner.clone(),
            VarDef::Leaf {
                extent: inner_extent,
            },
        );
        self.defs.insert(
            v.clone(),
            VarDef::Divided {
                outer,
                inner,
                extent,
            },
        );
        Ok(())
    }

    /// `collapse(a, b, fused)`: fuses the nested loops `a` (outer) and `b`
    /// (inner) into a single loop `fused` of extent `extent(a)·extent(b)`,
    /// with `a = fused / extent(b)` and `b = fused mod extent(b)`.
    ///
    /// # Errors
    ///
    /// Rejects unknown variables and reused fused names.
    pub fn collapse(
        &mut self,
        a: &IndexVar,
        b: &IndexVar,
        fused: IndexVar,
    ) -> Result<(), SolverError> {
        let ea = *self
            .extents
            .get(a)
            .ok_or_else(|| SolverError::UnknownVar(a.0.clone()))?;
        let eb = *self
            .extents
            .get(b)
            .ok_or_else(|| SolverError::UnknownVar(b.0.clone()))?;
        if self.extents.contains_key(&fused) {
            return Err(SolverError::Redefinition(fused.0.clone()));
        }
        self.extents.insert(fused.clone(), ea * eb);
        self.defs
            .insert(fused.clone(), VarDef::Leaf { extent: ea * eb });
        self.defs.insert(
            a.clone(),
            VarDef::Collapsed {
                fused: fused.clone(),
                inner_extent: eb,
                is_inner: false,
                extent: ea,
            },
        );
        self.defs.insert(
            b.clone(),
            VarDef::Collapsed {
                fused,
                inner_extent: eb,
                is_inner: true,
                extent: eb,
            },
        );
        Ok(())
    }

    /// `rotate(t, over, result)`: `result` replaces `t` in the loop nest and
    /// `t = (result + Σ over) mod extent(t)` (paper §5.2).
    ///
    /// # Errors
    ///
    /// Rejects unknown variables and reused result names.
    pub fn rotate(
        &mut self,
        t: &IndexVar,
        over: Vec<IndexVar>,
        result: IndexVar,
    ) -> Result<(), SolverError> {
        let extent = *self
            .extents
            .get(t)
            .ok_or_else(|| SolverError::UnknownVar(t.0.clone()))?;
        for v in &over {
            if !self.extents.contains_key(v) {
                return Err(SolverError::UnknownVar(v.0.clone()));
            }
        }
        if self.extents.contains_key(&result) {
            return Err(SolverError::Redefinition(result.0.clone()));
        }
        self.extents.insert(result.clone(), extent);
        self.defs.insert(result.clone(), VarDef::Leaf { extent });
        self.defs.insert(
            t.clone(),
            VarDef::Rotated {
                result,
                over,
                extent,
            },
        );
        Ok(())
    }

    /// The interval `v` spans, given concrete values for some loop
    /// variables. Unassigned loop variables span their full extent.
    pub fn interval(&self, v: &IndexVar, env: &BTreeMap<IndexVar, i64>) -> Interval {
        if let Some(&x) = env.get(v) {
            return Interval::point(x);
        }
        match self.defs.get(v) {
            None | Some(VarDef::Leaf { .. }) => {
                Interval::new(0, self.extents.get(v).copied().unwrap_or(1) - 1)
            }
            Some(VarDef::Divided {
                outer,
                inner,
                extent,
            }) => {
                let o = self.interval(outer, env);
                let i = self.interval(inner, env);
                let e_inner = self.extent(inner);
                Interval::new(o.lo * e_inner + i.lo, o.hi * e_inner + i.hi).clamp_extent(*extent)
            }
            Some(VarDef::Rotated {
                result,
                over,
                extent,
            }) => {
                let r = self.interval(result, env);
                let mut offset = 0;
                let mut concrete = r.is_point();
                for o in over {
                    let oi = self.interval(o, env);
                    concrete &= oi.is_point();
                    offset += oi.lo;
                }
                if concrete {
                    Interval::point((r.lo + offset).rem_euclid(*extent))
                } else {
                    Interval::new(0, extent - 1)
                }
            }
            Some(VarDef::Collapsed {
                fused,
                inner_extent,
                is_inner,
                extent,
            }) => {
                let f = self.interval(fused, env);
                if f.is_point() {
                    let v = if *is_inner {
                        f.lo % inner_extent
                    } else {
                        f.lo / inner_extent
                    };
                    Interval::point(v)
                } else if !*is_inner && f.lo % inner_extent == 0 && (f.hi + 1) % inner_extent == 0 {
                    // The fused range covers whole inner blocks: the outer
                    // variable spans an exact interval.
                    Interval::new(f.lo / inner_extent, f.hi / inner_extent)
                } else {
                    Interval::new(0, extent - 1)
                }
            }
        }
    }

    /// The concrete value of `v` under a full assignment; `None` when the
    /// environment leaves it underdetermined.
    pub fn value(&self, v: &IndexVar, env: &BTreeMap<IndexVar, i64>) -> Option<i64> {
        let i = self.interval(v, env);
        i.is_point().then_some(i.lo)
    }

    /// All loop variables that currently stand for themselves (not expanded
    /// into others) — i.e. candidates for appearing in a loop nest.
    pub fn live_vars(&self) -> Vec<IndexVar> {
        self.defs
            .iter()
            .filter(|&(_v, d)| matches!(d, VarDef::Leaf { .. }))
            .map(|(v, _d)| v.clone())
            .collect()
    }

    /// The original iteration-space variables a (possibly derived) variable
    /// descends from: `roots_of(ko)` for Cannon's schedule is `[k]` even
    /// through the `divide` + `rotate` chain; a `collapse`d variable has the
    /// roots of both fused loops.
    pub fn roots_of(&self, v: &IndexVar) -> Vec<IndexVar> {
        let mut parents = Vec::new();
        for (parent, def) in &self.defs {
            let hit = match def {
                VarDef::Divided { outer, inner, .. } => outer == v || inner == v,
                VarDef::Rotated { result, .. } => result == v,
                VarDef::Collapsed { fused, .. } => fused == v,
                VarDef::Leaf { .. } => false,
            };
            if hit {
                parents.push(parent.clone());
            }
        }
        if parents.is_empty() {
            return vec![v.clone()];
        }
        let mut out = Vec::new();
        for p in parents {
            for r in self.roots_of(&p) {
                if !out.contains(&r) {
                    out.push(r);
                }
            }
        }
        out
    }

    /// The first root of a variable (see [`VarSolver::roots_of`]).
    pub fn root_of(&self, v: &IndexVar) -> IndexVar {
        self.roots_of(v).remove(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: &str) -> IndexVar {
        IndexVar::new(s)
    }

    #[test]
    fn divide_intervals() {
        let mut s = VarSolver::new();
        s.define_leaf(iv("i"), 100);
        s.divide(&iv("i"), iv("io"), iv("ii"), 4).unwrap();
        assert_eq!(s.extent(&iv("io")), 4);
        assert_eq!(s.extent(&iv("ii")), 25);
        let mut env = BTreeMap::new();
        env.insert(iv("io"), 3);
        assert_eq!(s.interval(&iv("i"), &env), Interval::new(75, 99));
        // Fully unknown: whole domain.
        assert_eq!(s.interval(&iv("i"), &BTreeMap::new()), Interval::new(0, 99));
    }

    #[test]
    fn divide_uneven_tail_clamped() {
        let mut s = VarSolver::new();
        s.define_leaf(iv("i"), 10);
        s.divide(&iv("i"), iv("io"), iv("ii"), 3).unwrap();
        // ceil(10/3) = 4; last block is [8, 9].
        let mut env = BTreeMap::new();
        env.insert(iv("io"), 2);
        assert_eq!(s.interval(&iv("i"), &env), Interval::new(8, 9));
    }

    #[test]
    fn split_chunk_semantics() {
        let mut s = VarSolver::new();
        s.define_leaf(iv("k"), 100);
        s.split(&iv("k"), iv("ko"), iv("ki"), 32).unwrap();
        assert_eq!(s.extent(&iv("ko")), 4);
        assert_eq!(s.extent(&iv("ki")), 32);
        let mut env = BTreeMap::new();
        env.insert(iv("ko"), 3);
        assert_eq!(s.interval(&iv("k"), &env), Interval::new(96, 99));
    }

    #[test]
    fn nested_divide_then_split() {
        let mut s = VarSolver::new();
        s.define_leaf(iv("k"), 64);
        s.divide(&iv("k"), iv("ko"), iv("ki"), 4).unwrap();
        s.split(&iv("ki"), iv("kio"), iv("kii"), 4).unwrap();
        let mut env = BTreeMap::new();
        env.insert(iv("ko"), 1);
        env.insert(iv("kio"), 2);
        // k = ko*16 + (kio*4 + kii) = 16 + 8..11 = [24, 27].
        assert_eq!(s.interval(&iv("k"), &env), Interval::new(24, 27));
    }

    #[test]
    fn rotate_concrete_and_unknown() {
        let mut s = VarSolver::new();
        s.define_leaf(iv("ko"), 3);
        s.define_leaf(iv("io"), 3);
        s.define_leaf(iv("jo"), 3);
        s.rotate(&iv("ko"), vec![iv("io"), iv("jo")], iv("kos"))
            .unwrap();
        let mut env = BTreeMap::new();
        env.insert(iv("kos"), 1);
        env.insert(iv("io"), 2);
        env.insert(iv("jo"), 2);
        // ko = (1 + 2 + 2) mod 3 = 2.
        assert_eq!(s.value(&iv("ko"), &env), Some(2));
        env.remove(&iv("jo"));
        assert_eq!(s.interval(&iv("ko"), &env), Interval::new(0, 2));
    }

    #[test]
    fn rotate_of_divided_var_composes() {
        // Cannon's schedule: divide k, then rotate ko.
        let mut s = VarSolver::new();
        s.define_leaf(iv("k"), 9);
        s.define_leaf(iv("io"), 3);
        s.define_leaf(iv("jo"), 3);
        s.divide(&iv("k"), iv("ko"), iv("ki"), 3).unwrap();
        s.rotate(&iv("ko"), vec![iv("io"), iv("jo")], iv("kos"))
            .unwrap();
        let mut env = BTreeMap::new();
        env.insert(iv("kos"), 0);
        env.insert(iv("io"), 1);
        env.insert(iv("jo"), 2);
        // ko = (0+1+2) mod 3 = 0 -> k in [0, 2].
        assert_eq!(s.interval(&iv("k"), &env), Interval::new(0, 2));
        env.insert(iv("kos"), 2);
        // ko = (2+1+2) mod 3 = 2 -> k in [6, 8].
        assert_eq!(s.interval(&iv("k"), &env), Interval::new(6, 8));
    }

    #[test]
    fn errors() {
        let mut s = VarSolver::new();
        s.define_leaf(iv("i"), 10);
        assert_eq!(
            s.divide(&iv("z"), iv("a"), iv("b"), 2),
            Err(SolverError::UnknownVar("z".into()))
        );
        assert_eq!(
            s.divide(&iv("i"), iv("i"), iv("b"), 2),
            Err(SolverError::Redefinition("i".into()))
        );
        assert_eq!(
            s.split(&iv("i"), iv("a"), iv("b"), 0),
            Err(SolverError::NonPositiveFactor(0))
        );
        assert_eq!(
            s.rotate(&iv("i"), vec![iv("q")], iv("r")),
            Err(SolverError::UnknownVar("q".into()))
        );
    }

    #[test]
    fn collapse_semantics() {
        let mut s = VarSolver::new();
        s.define_leaf(iv("i"), 4);
        s.define_leaf(iv("j"), 5);
        s.collapse(&iv("i"), &iv("j"), iv("f")).unwrap();
        assert_eq!(s.extent(&iv("f")), 20);
        let mut env = BTreeMap::new();
        env.insert(iv("f"), 13);
        assert_eq!(s.value(&iv("i"), &env), Some(2));
        assert_eq!(s.value(&iv("j"), &env), Some(3));
        // Whole-block fused ranges give exact outer intervals.
        let empty = BTreeMap::new();
        assert_eq!(s.interval(&iv("i"), &empty), Interval::new(0, 3));
        assert_eq!(s.roots_of(&iv("f")), vec![iv("i"), iv("j")]);
        assert_eq!(
            s.collapse(&iv("i"), &iv("zz"), iv("g")),
            Err(SolverError::UnknownVar("zz".into()))
        );
    }

    #[test]
    fn root_tracking_through_chains() {
        let mut s = VarSolver::new();
        s.define_leaf(iv("k"), 9);
        s.define_leaf(iv("io"), 3);
        s.divide(&iv("k"), iv("ko"), iv("ki"), 3).unwrap();
        s.rotate(&iv("ko"), vec![iv("io")], iv("kos")).unwrap();
        assert_eq!(s.root_of(&iv("kos")), iv("k"));
        assert_eq!(s.root_of(&iv("ki")), iv("k"));
        assert_eq!(s.root_of(&iv("io")), iv("io"));
        assert_eq!(s.root_of(&iv("k")), iv("k"));
    }

    #[test]
    fn interval_helpers() {
        let i = Interval::new(3, 7);
        assert_eq!(i.len(), 5);
        assert!(!i.is_point());
        assert!(!i.is_empty());
        assert!(Interval::new(4, 2).is_empty());
        assert_eq!(
            Interval::new(-5, 100).clamp_extent(50),
            Interval::new(0, 49)
        );
        assert_eq!(format!("{:?}", Interval::point(2)), "[2, 2]");
    }
}
