//! The `precompute` scheduling transformation (paper §2): hoist the
//! computation of a subexpression into a workspace tensor.
//!
//! `precompute` factors one tensor index notation statement into two: a
//! *workspace* statement computing a chosen product of right-hand-side
//! factors, and a *remainder* statement consuming the workspace in place
//! of those factors. For chain products the rewrite changes asymptotic
//! work — the matrix triple product `A(i,l) = B(i,j)·C(j,k)·D(k,l)` costs
//! `O(n⁴)` fused but `O(n³)` through a workspace `T(i,k) = B(i,j)·C(j,k)`
//! — and in distributed schedules it lets each stage pick its own
//! distribution (the workspace-based MTTKRP formulations of Kjolstad et
//! al.'s workspace paper).
//!
//! # Example
//!
//! ```
//! use distal_ir::expr::Assignment;
//! use distal_ir::precompute::precompute_product;
//!
//! let a = Assignment::parse("A(i,l) = B(i,j) * C(j,k) * D(k,l)").unwrap();
//! let (ws, rest) = precompute_product(&a, &["B", "C"], "T", &["i", "k"]).unwrap();
//! assert_eq!(format!("{ws}"), "T(i, k) = B(i, j) * C(j, k)");
//! assert_eq!(format!("{rest}"), "A(i, l) = T(i, k) * D(k, l)");
//! ```

use crate::expr::{Access, Assignment, Expr, IndexVar};
use std::collections::BTreeSet;
use std::fmt;

/// Errors from the precompute rewrite.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PrecomputeError {
    /// The right-hand side is not a pure product of accesses.
    NotAProduct,
    /// A named factor does not occur on the right-hand side.
    UnknownFactor(String),
    /// No factors were selected, or all of them were.
    TrivialSplit,
    /// A workspace variable does not index any selected factor.
    BadWorkspaceVar(String),
    /// A variable reduced away by the workspace stage still occurs in the
    /// remainder (the split would change the result).
    EscapedReduction(String),
    /// The workspace name is already a tensor of the statement.
    NameInUse(String),
    /// Rebuilding a statement failed (duplicate workspace variables).
    Rebuild(String),
}

impl fmt::Display for PrecomputeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrecomputeError::NotAProduct => {
                write!(f, "precompute requires a pure product right-hand side")
            }
            PrecomputeError::UnknownFactor(t) => {
                write!(f, "factor '{t}' does not occur in the statement")
            }
            PrecomputeError::TrivialSplit => {
                write!(
                    f,
                    "precompute must hoist a proper, non-empty subset of the factors"
                )
            }
            PrecomputeError::BadWorkspaceVar(v) => {
                write!(
                    f,
                    "workspace variable '{v}' does not index any hoisted factor"
                )
            }
            PrecomputeError::EscapedReduction(v) => write!(
                f,
                "variable '{v}' is reduced by the workspace but still used outside it; \
                 add it to the workspace variables"
            ),
            PrecomputeError::NameInUse(t) => {
                write!(
                    f,
                    "workspace name '{t}' is already a tensor of the statement"
                )
            }
            PrecomputeError::Rebuild(m) => write!(f, "rebuild error: {m}"),
        }
    }
}

impl std::error::Error for PrecomputeError {}

/// Flattens a pure product into its access factors; `None` when the
/// expression contains additions or literals.
pub fn product_factors(e: &Expr) -> Option<Vec<Access>> {
    match e {
        Expr::Access(a) => Some(vec![a.clone()]),
        Expr::Mul(l, r) => {
            let mut out = product_factors(l)?;
            out.extend(product_factors(r)?);
            Some(out)
        }
        Expr::Add(..) | Expr::Literal(_) => None,
    }
}

fn product_of(accesses: &[Access]) -> Expr {
    let mut it = accesses.iter();
    let first = Expr::Access(it.next().expect("nonempty product").clone());
    it.fold(first, |acc, a| {
        Expr::Mul(Box::new(acc), Box::new(Expr::Access(a.clone())))
    })
}

/// Hoists the product of the factors named in `factors` into a workspace
/// tensor `workspace(ws_vars)`, returning `(workspace statement, remainder
/// statement)` to be executed in order.
///
/// The workspace stage sum-reduces every hoisted variable not listed in
/// `ws_vars`; such variables must not occur elsewhere in the statement.
///
/// # Errors
///
/// See [`PrecomputeError`] — notably [`PrecomputeError::EscapedReduction`]
/// when the chosen workspace variables would change the statement's value.
pub fn precompute_product(
    assignment: &Assignment,
    factors: &[&str],
    workspace: &str,
    ws_vars: &[&str],
) -> Result<(Assignment, Assignment), PrecomputeError> {
    let all = product_factors(&assignment.rhs).ok_or(PrecomputeError::NotAProduct)?;
    for f in factors {
        if !all.iter().any(|a| a.tensor == *f) {
            return Err(PrecomputeError::UnknownFactor(f.to_string()));
        }
    }
    if all.iter().any(|a| a.tensor == workspace) || assignment.lhs.tensor == workspace {
        return Err(PrecomputeError::NameInUse(workspace.to_string()));
    }
    let (hoisted, rest): (Vec<Access>, Vec<Access>) = all
        .iter()
        .cloned()
        .partition(|a| factors.contains(&a.tensor.as_str()));
    if hoisted.is_empty() || rest.is_empty() {
        return Err(PrecomputeError::TrivialSplit);
    }

    let ws_vars: Vec<IndexVar> = ws_vars.iter().map(|v| IndexVar::new(*v)).collect();
    let hoisted_vars: BTreeSet<IndexVar> = hoisted
        .iter()
        .flat_map(|a| a.indices.iter().cloned())
        .collect();
    for v in &ws_vars {
        if !hoisted_vars.contains(v) {
            return Err(PrecomputeError::BadWorkspaceVar(v.0.clone()));
        }
    }
    // Variables the workspace reduces away must not escape.
    let outside: BTreeSet<IndexVar> = rest
        .iter()
        .flat_map(|a| a.indices.iter().cloned())
        .chain(assignment.lhs.indices.iter().cloned())
        .collect();
    for v in &hoisted_vars {
        if !ws_vars.contains(v) && outside.contains(v) {
            return Err(PrecomputeError::EscapedReduction(v.0.clone()));
        }
    }

    let ws_stmt = Assignment::new(
        Access::new(workspace, ws_vars.clone()),
        product_of(&hoisted),
        false,
    )
    .map_err(|e| PrecomputeError::Rebuild(e.to_string()))?;

    // The remainder consumes the workspace where the first hoisted factor
    // stood, preserving the original factor order otherwise.
    let first_hoisted = all
        .iter()
        .position(|a| factors.contains(&a.tensor.as_str()))
        .expect("hoisted is nonempty");
    let mut remainder_factors: Vec<Access> = Vec::with_capacity(rest.len() + 1);
    let mut rest_iter = rest.into_iter();
    for (i, a) in all.iter().enumerate() {
        if i == first_hoisted {
            remainder_factors.push(Access::new(workspace, ws_vars.clone()));
        }
        if !factors.contains(&a.tensor.as_str()) {
            remainder_factors.push(rest_iter.next().expect("partition sizes agree"));
        }
    }
    let rest_stmt = Assignment::new(
        assignment.lhs.clone(),
        product_of(&remainder_factors),
        assignment.increment,
    )
    .map_err(|e| PrecomputeError::Rebuild(e.to_string()))?;
    Ok((ws_stmt, rest_stmt))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_product_splits() {
        let a = Assignment::parse("A(i,l) = B(i,j) * C(j,k) * D(k,l)").unwrap();
        let (ws, rest) = precompute_product(&a, &["B", "C"], "T", &["i", "k"]).unwrap();
        assert_eq!(format!("{ws}"), "T(i, k) = B(i, j) * C(j, k)");
        assert_eq!(format!("{rest}"), "A(i, l) = T(i, k) * D(k, l)");
        // The fused statement does O(n^4) work; the staged pair O(n^3).
        assert_eq!(a.all_vars().len(), 4);
        assert_eq!(ws.all_vars().len(), 3);
        assert_eq!(rest.all_vars().len(), 3);
    }

    #[test]
    fn mttkrp_workspace_formulation() {
        let a = Assignment::parse("A(i,l) = B(i,j,k) * C(j,l) * D(k,l)").unwrap();
        let (ws, rest) = precompute_product(&a, &["B", "D"], "T", &["i", "j", "l"]).unwrap();
        assert_eq!(format!("{ws}"), "T(i, j, l) = B(i, j, k) * D(k, l)");
        assert_eq!(format!("{rest}"), "A(i, l) = T(i, j, l) * C(j, l)");
    }

    #[test]
    fn factor_order_is_preserved() {
        let a = Assignment::parse("A(i,l) = B(i,j) * C(j,k) * D(k,l)").unwrap();
        let (_, rest) = precompute_product(&a, &["C", "D"], "W", &["j", "l"]).unwrap();
        assert_eq!(format!("{rest}"), "A(i, l) = B(i, j) * W(j, l)");
    }

    #[test]
    fn escaped_reduction_rejected() {
        let a = Assignment::parse("A(i,l) = B(i,j,k) * C(j,l) * D(k,l)").unwrap();
        // Hoisting B and D but dropping j from the workspace would reduce
        // j too early (C still uses it).
        assert_eq!(
            precompute_product(&a, &["B", "D"], "T", &["i", "l"]).unwrap_err(),
            PrecomputeError::EscapedReduction("j".into())
        );
    }

    #[test]
    fn validation_errors() {
        let a = Assignment::parse("A(i,l) = B(i,j) * C(j,k) * D(k,l)").unwrap();
        assert_eq!(
            precompute_product(&a, &["Z"], "T", &["i"]).unwrap_err(),
            PrecomputeError::UnknownFactor("Z".into())
        );
        assert_eq!(
            precompute_product(&a, &["B", "C", "D"], "T", &["i", "l"]).unwrap_err(),
            PrecomputeError::TrivialSplit
        );
        assert_eq!(
            precompute_product(&a, &["B", "C"], "D", &["i", "k"]).unwrap_err(),
            PrecomputeError::NameInUse("D".into())
        );
        assert_eq!(
            precompute_product(&a, &["B"], "T", &["k"]).unwrap_err(),
            PrecomputeError::BadWorkspaceVar("k".into())
        );
        let sum = Assignment::parse("A(i,j) = B(i,j) + C(i,j)").unwrap();
        assert_eq!(
            precompute_product(&sum, &["B"], "T", &["i"]).unwrap_err(),
            PrecomputeError::NotAProduct
        );
    }

    #[test]
    fn product_flattening() {
        let a = Assignment::parse("A(i,l) = B(i,j) * C(j,k) * D(k,l)").unwrap();
        let factors = product_factors(&a.rhs).unwrap();
        let names: Vec<&str> = factors.iter().map(|a| a.tensor.as_str()).collect();
        assert_eq!(names, vec!["B", "C", "D"]);
        let sum = Assignment::parse("A(i) = B(i) + c(i)").unwrap();
        assert!(product_factors(&sum.rhs).is_none());
    }
}
