//! Execution spaces (paper §3.3, Figures 6–8).
//!
//! An execution space has a *processor* dimension and a *time* dimension; a
//! mapping of iteration-space points onto it describes an execution
//! strategy. `distribute` moves iterations of the distributed loops onto
//! different processors at the same time; `rotate` re-times iterations so
//! that systolic (neighbour-shift) patterns emerge.
//!
//! This module enumerates the execution-space mapping of a (small) scheduled
//! statement, primarily so tests can assert the paper's figures exactly.

use crate::cin::ConcreteNotation;
use crate::expr::IndexVar;
use std::collections::BTreeMap;

/// One executed iteration-space point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecPoint {
    /// Coordinates of the processor (values of the distributed loop vars).
    pub proc: Vec<i64>,
    /// Relative time (lexicographic index of the sequential loop values).
    pub time: i64,
    /// Values of the *original* iteration-space variables at this point.
    pub iter: BTreeMap<IndexVar, i64>,
}

/// Enumerates the execution-space mapping of a scheduled statement.
///
/// Distributed loops (which must be the outermost prefix) become the
/// processor dimension; remaining loops are linearized into time. Original
/// variable values are recovered through the statement's solver, so `rotate`
/// and `divide`/`split` compositions are reflected faithfully.
///
/// # Panics
///
/// Panics if a distributed loop appears below a sequential one.
pub fn execution_space(cin: &ConcreteNotation) -> Vec<ExecPoint> {
    let n_dist = match cin.distributed_prefix() {
        Some(p) => p.len(),
        None => {
            assert!(
                cin.loops.iter().all(|l| !l.distributed),
                "distributed loops must be an outermost prefix"
            );
            0
        }
    };
    let dist_vars: Vec<IndexVar> = cin.loops[..n_dist].iter().map(|l| l.var.clone()).collect();
    let seq_vars: Vec<IndexVar> = cin.loops[n_dist..].iter().map(|l| l.var.clone()).collect();
    let dist_extents: Vec<i64> = dist_vars.iter().map(|v| cin.solver.extent(v)).collect();
    let seq_extents: Vec<i64> = seq_vars.iter().map(|v| cin.solver.extent(v)).collect();

    // Original variables referenced by the body.
    let originals: Vec<IndexVar> = cin
        .body
        .accesses()
        .iter()
        .flat_map(|a| a.indices.clone())
        .collect();
    let mut out = Vec::new();
    for_each_point(&dist_extents, &mut |proc| {
        for_each_point(&seq_extents, &mut |seq| {
            let mut env: BTreeMap<IndexVar, i64> = BTreeMap::new();
            for (v, &x) in dist_vars.iter().zip(proc.iter()) {
                env.insert(v.clone(), x);
            }
            for (v, &x) in seq_vars.iter().zip(seq.iter()) {
                env.insert(v.clone(), x);
            }
            let mut iter = BTreeMap::new();
            for v in &originals {
                if let Some(x) = cin.solver.value(v, &env) {
                    iter.insert(v.clone(), x);
                }
            }
            let time = linearize(seq, &seq_extents);
            out.push(ExecPoint {
                proc: proc.to_vec(),
                time,
                iter,
            });
        });
    });
    out
}

fn linearize(coords: &[i64], extents: &[i64]) -> i64 {
    let mut idx = 0;
    for (c, e) in coords.iter().zip(extents.iter()) {
        idx = idx * e + c;
    }
    idx
}

fn for_each_point(extents: &[i64], f: &mut impl FnMut(&[i64])) {
    let mut coords = vec![0i64; extents.len()];
    loop {
        f(&coords);
        let mut d = extents.len();
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            coords[d] += 1;
            if coords[d] < extents[d] {
                break;
            }
            coords[d] = 0;
            if d == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cin::ConcreteNotation;
    use crate::expr::Assignment;

    fn iv(s: &str) -> IndexVar {
        IndexVar::new(s)
    }

    /// The running example of §3.3: ∀i ∀j a(i) += b(j), |a|=|b|=|M|=3.
    fn running_example() -> ConcreteNotation {
        let a = Assignment::parse("a(i) = b(j)").unwrap();
        let extents: BTreeMap<IndexVar, i64> = [(iv("i"), 3), (iv("j"), 3)].into_iter().collect();
        ConcreteNotation::from_assignment(a, &extents).unwrap()
    }

    #[test]
    fn figure6_distribute_i() {
        // distribute(i): all i iterations on different processors at the
        // same time; each processor walks j in time order.
        let mut cin = running_example();
        cin.distribute(&[iv("i")]).unwrap();
        let es = execution_space(&cin);
        assert_eq!(es.len(), 9);
        for p in &es {
            // Processor == i coordinate; time == j (Figure 6).
            assert_eq!(p.proc, vec![p.iter[&iv("i")]]);
            assert_eq!(p.time, p.iter[&iv("j")]);
        }
        // At time 0 every processor executes column j=0 simultaneously.
        let t0: Vec<_> = es.iter().filter(|p| p.time == 0).collect();
        assert_eq!(t0.len(), 3);
        assert!(t0.iter().all(|p| p.iter[&iv("j")] == 0));
    }

    #[test]
    fn figure8b_rotation_breaks_symmetry() {
        // rotate(j, {i}, js): processor i executes j = (t + i) mod 3 at
        // time t — no two processors touch the same j at the same time.
        let mut cin = running_example();
        cin.distribute(&[iv("i")]).unwrap();
        cin.rotate(&iv("j"), &[iv("i")], iv("js")).unwrap();
        let es = execution_space(&cin);
        assert_eq!(es.len(), 9);
        for p in &es {
            let i = p.proc[0];
            let expected_j = (p.time + i).rem_euclid(3);
            assert_eq!(p.iter[&iv("j")], expected_j, "proc {i} time {}", p.time);
        }
        // Paper Figure 8b rows: P0: 0,1,2; P1: 1,2,0; P2: 2,0,1.
        let row = |i: i64| -> Vec<i64> {
            let mut xs: Vec<_> = es
                .iter()
                .filter(|p| p.proc[0] == i)
                .map(|p| (p.time, p.iter[&iv("j")]))
                .collect();
            xs.sort();
            xs.into_iter().map(|(_, j)| j).collect()
        };
        assert_eq!(row(0), vec![0, 1, 2]);
        assert_eq!(row(1), vec![1, 2, 0]);
        assert_eq!(row(2), vec![2, 0, 1]);
        // Symmetry broken: at each time, all processors use distinct j.
        for t in 0..3 {
            let mut js: Vec<i64> = es
                .iter()
                .filter(|p| p.time == t)
                .map(|p| p.iter[&iv("j")])
                .collect();
            js.sort_unstable();
            assert_eq!(js, vec![0, 1, 2]);
        }
    }

    #[test]
    fn default_mapping_is_sequential() {
        // With no distribution, everything runs on one (implicit) processor
        // in lexicographic time order (§3.3 "default execution space").
        let cin = running_example();
        let es = execution_space(&cin);
        assert_eq!(es.len(), 9);
        for (idx, p) in es.iter().enumerate() {
            assert!(p.proc.is_empty());
            assert_eq!(p.time, idx as i64);
        }
    }
}
