//! Concrete index notation (paper §5.1).
//!
//! Concrete index notation (CIN) is a lower-level IR than tensor index
//! notation: it fixes the ordering of ∀ loops and tracks applied scheduling
//! transformations through `s.t.` clauses. Tensor index notation statements
//! lower into CIN by constructing a loop nest from a left-to-right traversal
//! of the statement's variables.
//!
//! Dense single-statement kernels — everything in the paper's evaluation —
//! lower to a single ∀-chain around one assignment, so we represent CIN as a
//! vector of [`Loop`]s (outermost first) plus the body and the
//! [`VarSolver`] that relates derived variables to original ones.
//!
//! # Example
//!
//! ```
//! use distal_ir::cin::ConcreteNotation;
//! use distal_ir::expr::Assignment;
//! use std::collections::BTreeMap;
//!
//! let mm = Assignment::parse("A(i,j) = B(i,k) * C(k,j)").unwrap();
//! let mut extents = BTreeMap::new();
//! for (v, e) in [("i", 8), ("j", 8), ("k", 8)] {
//!     extents.insert(v.into(), e);
//! }
//! let cin = ConcreteNotation::from_assignment(mm, &extents).unwrap();
//! assert_eq!(format!("{cin}"), "∀i ∀j ∀k A(i, j) += B(i, k) * C(k, j)");
//! ```

use crate::expr::{Assignment, IndexVar};
use crate::provenance::VarSolver;
use std::collections::BTreeMap;
use std::fmt;

/// One ∀ loop of a concrete index notation statement.
#[derive(Clone, Debug, PartialEq)]
pub struct Loop {
    /// The loop's index variable.
    pub var: IndexVar,
    /// Marked by `distribute`: iterations run on different processors at the
    /// same time (Figure 6).
    pub distributed: bool,
    /// Tensors whose communication is aggregated at this loop
    /// (`communicate(T, var)`, §3.3).
    pub communicate: Vec<String>,
    /// Marked by `parallelize`: leaf-level parallel loop (vectorize/thread).
    pub parallelized: bool,
}

impl Loop {
    /// A plain sequential loop.
    pub fn new(var: IndexVar) -> Self {
        Loop {
            var,
            distributed: false,
            communicate: Vec::new(),
            parallelized: false,
        }
    }
}

/// Errors from constructing concrete index notation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CinError {
    /// A variable's extent was not supplied.
    MissingExtent(String),
}

impl fmt::Display for CinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CinError::MissingExtent(v) => write!(f, "missing extent for index variable '{v}'"),
        }
    }
}

impl std::error::Error for CinError {}

/// A scheduled concrete index notation statement: the ∀-chain, the body,
/// the variable solver, and the `s.t.` relation trail.
#[derive(Clone, Debug)]
pub struct ConcreteNotation {
    /// Loops, outermost first.
    pub loops: Vec<Loop>,
    /// The body assignment (accesses use *original* variables; the solver
    /// relates them to loop variables).
    pub body: Assignment,
    /// Variable definitions and extents.
    pub solver: VarSolver,
    /// Human-readable trail of applied scheduling relations.
    pub relations: Vec<String>,
}

impl ConcreteNotation {
    /// Lowers tensor index notation into CIN: a ∀ loop per variable, free
    /// variables first (left-to-right), then reduction variables. Reductions
    /// become `+=` bodies.
    ///
    /// # Errors
    ///
    /// Every variable must have an extent in `extents`.
    pub fn from_assignment(
        assignment: Assignment,
        extents: &BTreeMap<IndexVar, i64>,
    ) -> Result<Self, CinError> {
        let mut solver = VarSolver::new();
        let vars = assignment.all_vars();
        for v in &vars {
            let e = extents
                .get(v)
                .ok_or_else(|| CinError::MissingExtent(v.0.clone()))?;
            solver.define_leaf(v.clone(), *e);
        }
        let mut body = assignment;
        if body.is_reduction() {
            body.increment = true;
        }
        Ok(ConcreteNotation {
            loops: vars.into_iter().map(Loop::new).collect(),
            body,
            solver,
            relations: Vec::new(),
        })
    }

    /// The loop variables, outermost first.
    pub fn loop_vars(&self) -> Vec<IndexVar> {
        self.loops.iter().map(|l| l.var.clone()).collect()
    }

    /// Position of a loop variable in the nest.
    pub fn position(&self, v: &IndexVar) -> Option<usize> {
        self.loops.iter().position(|l| &l.var == v)
    }

    /// The contiguous run of distributed loops starting at the outermost
    /// level; `None` when nothing is distributed.
    ///
    /// Code generation requires distributed loops to be outermost and
    /// consecutive (directly nested distributed loops are flattened into one
    /// multi-dimensional index launch, §6.2).
    pub fn distributed_prefix(&self) -> Option<&[Loop]> {
        let n = self.loops.iter().take_while(|l| l.distributed).count();
        if n == 0 {
            return None;
        }
        // No distributed loop may appear after the prefix.
        if self.loops[n..].iter().any(|l| l.distributed) {
            return None;
        }
        Some(&self.loops[..n])
    }

    /// Records an applied relation in the `s.t.` trail.
    pub fn note(&mut self, relation: impl Into<String>) {
        self.relations.push(relation.into());
    }
}

impl fmt::Display for ConcreteNotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.loops {
            write!(f, "∀{} ", l.var)?;
        }
        write!(f, "{}", self.body)?;
        if !self.relations.is_empty() {
            write!(f, " s.t. {}", self.relations.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::kernels;

    fn extents(pairs: &[(&str, i64)]) -> BTreeMap<IndexVar, i64> {
        pairs.iter().map(|(v, e)| (IndexVar::new(*v), *e)).collect()
    }

    #[test]
    fn lowering_builds_free_then_reduction_loops() {
        let cin = ConcreteNotation::from_assignment(
            kernels::matmul(),
            &extents(&[("i", 4), ("j", 4), ("k", 4)]),
        )
        .unwrap();
        assert_eq!(
            cin.loop_vars(),
            vec![IndexVar::new("i"), IndexVar::new("j"), IndexVar::new("k")]
        );
        // Reductions lower to +=.
        assert!(cin.body.increment);
        assert_eq!(cin.solver.extent(&IndexVar::new("k")), 4);
    }

    #[test]
    fn missing_extent_is_error() {
        let err = ConcreteNotation::from_assignment(kernels::matmul(), &extents(&[("i", 4)]))
            .unwrap_err();
        assert_eq!(err, CinError::MissingExtent("j".into()));
    }

    #[test]
    fn display_matches_paper_syntax() {
        let cin = ConcreteNotation::from_assignment(
            kernels::ttv(),
            &extents(&[("i", 2), ("j", 2), ("k", 2)]),
        )
        .unwrap();
        assert_eq!(format!("{cin}"), "∀i ∀j ∀k A(i, j) += B(i, j, k) * c(k)");
    }

    #[test]
    fn distributed_prefix_detection() {
        let mut cin = ConcreteNotation::from_assignment(
            kernels::matmul(),
            &extents(&[("i", 4), ("j", 4), ("k", 4)]),
        )
        .unwrap();
        assert!(cin.distributed_prefix().is_none());
        cin.loops[0].distributed = true;
        cin.loops[1].distributed = true;
        assert_eq!(cin.distributed_prefix().unwrap().len(), 2);
        // A gap makes the prefix invalid.
        cin.loops[1].distributed = false;
        cin.loops[2].distributed = true;
        assert!(cin.distributed_prefix().is_none());
    }
}
