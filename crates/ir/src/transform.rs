//! Scheduling transformations as rewrites on concrete index notation
//! (paper §5.2).
//!
//! Each command rewrites the loop nest and records its relation both in the
//! [`crate::provenance::VarSolver`] (for bounds analysis) and the
//! human-readable `s.t.` trail:
//!
//! ```text
//! ... ∀i S  --divide(i,io,ii,c)-->  ... ∀io ∀ii S s.t. divide(i,io,ii,c)
//! ... ∀i S  --distribute(i)----->   ... ∀i S s.t. distribute(i)
//! ... ∀I ∀t S --rotate(t,I,r)--->   ... ∀I ∀r S s.t. rotate(t,I,r)
//! ... ∀i S  --communicate(T,i)-->   ... ∀i S s.t. communicate(T,i)
//! ```

use crate::cin::{ConcreteNotation, Loop};
use crate::expr::IndexVar;
use crate::provenance::SolverError;
use std::collections::BTreeSet;
use std::fmt;

/// Errors raised by scheduling commands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// The named variable is not a loop of the statement.
    UnknownLoopVar(String),
    /// `reorder` was given duplicate or unknown variables.
    BadReorder(String),
    /// A `communicate` referenced a tensor not present in the statement.
    UnknownTensor(String),
    /// An underlying provenance error (redefinition, bad factor, ...).
    Solver(SolverError),
    /// `distribute` would leave distributed loops non-contiguous or not
    /// outermost, which code generation cannot lower.
    NonContiguousDistribution,
    /// A compound command's argument lists have mismatched lengths (e.g.
    /// `distribute_onto` with 2 targets but 3 grid dimensions).
    ArityMismatch(String),
    /// A failing command located in its schedule: the zero-based command
    /// index, the command's stable `Display`, and the underlying error.
    /// Produced by `Schedule::apply` so late errors read like compiler
    /// diagnostics instead of bare variable names.
    AtCommand {
        /// Zero-based position of the failing command in the schedule.
        index: usize,
        /// The command's stable textual form.
        command: String,
        /// The underlying failure.
        inner: Box<ScheduleError>,
    },
}

impl ScheduleError {
    /// Wraps `inner` with its schedule location. Already-located errors
    /// pass through unchanged (no double wrapping).
    #[must_use]
    pub fn at_command(index: usize, command: String, inner: ScheduleError) -> Self {
        match inner {
            located @ ScheduleError::AtCommand { .. } => located,
            inner => ScheduleError::AtCommand {
                index,
                command,
                inner: Box::new(inner),
            },
        }
    }

    /// The underlying error, unwrapping any [`ScheduleError::AtCommand`]
    /// location.
    pub fn root(&self) -> &ScheduleError {
        match self {
            ScheduleError::AtCommand { inner, .. } => inner.root(),
            other => other,
        }
    }
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::UnknownLoopVar(v) => write!(f, "'{v}' is not a loop variable"),
            ScheduleError::BadReorder(msg) => write!(f, "invalid reorder: {msg}"),
            ScheduleError::UnknownTensor(t) => write!(f, "unknown tensor '{t}'"),
            ScheduleError::Solver(e) => write!(f, "{e}"),
            ScheduleError::NonContiguousDistribution => {
                write!(f, "distributed loops must be outermost and contiguous")
            }
            ScheduleError::ArityMismatch(msg) => write!(f, "arity mismatch: {msg}"),
            ScheduleError::AtCommand {
                index,
                command,
                inner,
            } => write!(f, "command {index} `{command}`: {inner}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<SolverError> for ScheduleError {
    fn from(e: SolverError) -> Self {
        ScheduleError::Solver(e)
    }
}

impl ConcreteNotation {
    /// `split(i, io, ii, chunk)`: breaks loop `i` into an outer loop over
    /// chunks of size `chunk` and an inner loop within the chunk.
    ///
    /// # Errors
    ///
    /// Fails when `i` is not a loop or the derived names collide.
    pub fn split(
        &mut self,
        i: &IndexVar,
        io: IndexVar,
        ii: IndexVar,
        chunk: i64,
    ) -> Result<&mut Self, ScheduleError> {
        let pos = self
            .position(i)
            .ok_or_else(|| ScheduleError::UnknownLoopVar(i.0.clone()))?;
        self.solver.split(i, io.clone(), ii.clone(), chunk)?;
        self.note(format!("split({i}, {io}, {ii}, {chunk})"));
        self.replace_loop(pos, vec![io, ii]);
        Ok(self)
    }

    /// `divide(i, io, ii, parts)`: breaks loop `i` into `parts` equal
    /// pieces; `io` ranges over pieces, `ii` within a piece.
    ///
    /// # Errors
    ///
    /// Fails when `i` is not a loop or the derived names collide.
    pub fn divide(
        &mut self,
        i: &IndexVar,
        io: IndexVar,
        ii: IndexVar,
        parts: i64,
    ) -> Result<&mut Self, ScheduleError> {
        let pos = self
            .position(i)
            .ok_or_else(|| ScheduleError::UnknownLoopVar(i.0.clone()))?;
        self.solver.divide(i, io.clone(), ii.clone(), parts)?;
        self.note(format!("divide({i}, {io}, {ii}, {parts})"));
        self.replace_loop(pos, vec![io, ii]);
        Ok(self)
    }

    fn replace_loop(&mut self, pos: usize, vars: Vec<IndexVar>) {
        let old = self.loops.remove(pos);
        for (off, v) in vars.into_iter().enumerate() {
            let mut l = Loop::new(v);
            // Tags stay on the loop position they were attached to; the
            // outer derived loop inherits them.
            if off == 0 {
                l.distributed = old.distributed;
                l.communicate = old.communicate.clone();
                l.parallelized = old.parallelized;
            }
            self.loops.insert(pos + off, l);
        }
    }

    /// `collapse(a, b, fused)`: fuses the directly nested loops `a` (outer)
    /// and `b` (inner) into a single loop `fused` (paper §2's loop-fusion
    /// transformation).
    ///
    /// # Errors
    ///
    /// `a` and `b` must be directly nested loops (in that order) and the
    /// fused name must be fresh.
    pub fn collapse(
        &mut self,
        a: &IndexVar,
        b: &IndexVar,
        fused: IndexVar,
    ) -> Result<&mut Self, ScheduleError> {
        let pa = self
            .position(a)
            .ok_or_else(|| ScheduleError::UnknownLoopVar(a.0.clone()))?;
        let pb = self
            .position(b)
            .ok_or_else(|| ScheduleError::UnknownLoopVar(b.0.clone()))?;
        if pb != pa + 1 {
            return Err(ScheduleError::BadReorder(format!(
                "collapse requires '{a}' directly above '{b}'"
            )));
        }
        self.solver.collapse(a, b, fused.clone())?;
        self.note(format!("collapse({a}, {b}, {fused})"));
        let outer = self.loops.remove(pa);
        let inner = self.loops.remove(pa);
        let mut l = Loop::new(fused);
        l.distributed = outer.distributed || inner.distributed;
        l.parallelized = outer.parallelized || inner.parallelized;
        l.communicate = outer.communicate;
        l.communicate.extend(inner.communicate);
        self.loops.insert(pa, l);
        Ok(self)
    }

    /// `reorder(order)`: sets the relative order of the listed loops,
    /// leaving unlisted loops at their positions.
    ///
    /// # Errors
    ///
    /// The listed variables must be distinct loop variables.
    pub fn reorder(&mut self, order: &[IndexVar]) -> Result<&mut Self, ScheduleError> {
        let set: BTreeSet<_> = order.iter().cloned().collect();
        if set.len() != order.len() {
            return Err(ScheduleError::BadReorder("duplicate variables".into()));
        }
        for v in order {
            if self.position(v).is_none() {
                return Err(ScheduleError::UnknownLoopVar(v.0.clone()));
            }
        }
        let slots: Vec<usize> = self
            .loops
            .iter()
            .enumerate()
            .filter_map(|(p, l)| set.contains(&l.var).then_some(p))
            .collect();
        let mut listed: Vec<Loop> = Vec::with_capacity(order.len());
        for v in order {
            let p = self.position(v).unwrap();
            listed.push(self.loops[p].clone());
        }
        for (slot, l) in slots.into_iter().zip(listed) {
            self.loops[slot] = l;
        }
        self.note(format!(
            "reorder({})",
            order
                .iter()
                .map(|v| v.0.clone())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        Ok(self)
    }

    /// `distribute(vars)`: marks the loops as distributed — all iterations
    /// run on different processors at the same time (Figure 6).
    ///
    /// # Errors
    ///
    /// The loops must exist, and after marking, distributed loops must form
    /// an outermost contiguous run.
    pub fn distribute(&mut self, vars: &[IndexVar]) -> Result<&mut Self, ScheduleError> {
        for v in vars {
            let pos = self
                .position(v)
                .ok_or_else(|| ScheduleError::UnknownLoopVar(v.0.clone()))?;
            self.loops[pos].distributed = true;
        }
        if self.distributed_prefix().is_none() {
            return Err(ScheduleError::NonContiguousDistribution);
        }
        self.note(format!(
            "distribute({})",
            vars.iter()
                .map(|v| v.0.clone())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        Ok(self)
    }

    /// `communicate(tensors, i)`: aggregates communication of the tensors at
    /// each iteration of loop `i` (§3.3). Purely a performance directive.
    ///
    /// # Errors
    ///
    /// The loop and the tensors must exist in the statement.
    pub fn communicate(
        &mut self,
        tensors: &[&str],
        i: &IndexVar,
    ) -> Result<&mut Self, ScheduleError> {
        let pos = self
            .position(i)
            .ok_or_else(|| ScheduleError::UnknownLoopVar(i.0.clone()))?;
        let known: BTreeSet<&str> = self
            .body
            .accesses()
            .iter()
            .map(|a| a.tensor.as_str())
            .collect();
        for t in tensors {
            if !known.contains(t) {
                return Err(ScheduleError::UnknownTensor(t.to_string()));
            }
            self.loops[pos].communicate.push(t.to_string());
        }
        self.note(format!("communicate({{{}}}, {i})", tensors.join(", ")));
        Ok(self)
    }

    /// `rotate(t, over, result)`: replaces loop `t` by `result`, with
    /// `t = (result + Σ over) mod extent(t)` — the symmetry-breaking
    /// transformation enabling systolic schedules (§3.3, Figure 8).
    ///
    /// # Errors
    ///
    /// `t` and all of `over` must be loop variables; `result` must be fresh.
    pub fn rotate(
        &mut self,
        t: &IndexVar,
        over: &[IndexVar],
        result: IndexVar,
    ) -> Result<&mut Self, ScheduleError> {
        let pos = self
            .position(t)
            .ok_or_else(|| ScheduleError::UnknownLoopVar(t.0.clone()))?;
        for v in over {
            if self.position(v).is_none() {
                return Err(ScheduleError::UnknownLoopVar(v.0.clone()));
            }
        }
        self.solver.rotate(t, over.to_vec(), result.clone())?;
        self.note(format!(
            "rotate({t}, {{{}}}, {result})",
            over.iter()
                .map(|v| v.0.clone())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        let old = std::mem::replace(&mut self.loops[pos], Loop::new(result));
        self.loops[pos].distributed = old.distributed;
        self.loops[pos].communicate = old.communicate;
        self.loops[pos].parallelized = old.parallelized;
        Ok(self)
    }

    /// `parallelize(i)`: marks a leaf loop for intra-processor parallelism
    /// (threads / vector lanes). A performance annotation only.
    ///
    /// # Errors
    ///
    /// Fails when `i` is not a loop variable.
    pub fn parallelize(&mut self, i: &IndexVar) -> Result<&mut Self, ScheduleError> {
        let pos = self
            .position(i)
            .ok_or_else(|| ScheduleError::UnknownLoopVar(i.0.clone()))?;
        self.loops[pos].parallelized = true;
        self.note(format!("parallelize({i})"));
        Ok(self)
    }

    /// The compound `distribute(targets, dist, local, grid)` command of
    /// §3.3: divides each target by the corresponding machine dimension,
    /// reorders the divided variables outermost, and distributes them.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::ArityMismatch`] when the argument lists have
    /// different lengths; otherwise propagates errors from the underlying
    /// `divide`/`reorder`/`distribute`.
    pub fn distribute_onto(
        &mut self,
        targets: &[IndexVar],
        dist: &[IndexVar],
        local: &[IndexVar],
        grid_dims: &[i64],
    ) -> Result<&mut Self, ScheduleError> {
        if targets.len() != dist.len()
            || targets.len() != local.len()
            || targets.len() != grid_dims.len()
        {
            return Err(ScheduleError::ArityMismatch(format!(
                "distribute_onto needs equal-length lists, got {} targets, {} dist, \
                 {} local, {} grid dims",
                targets.len(),
                dist.len(),
                local.len(),
                grid_dims.len()
            )));
        }
        for i in 0..targets.len() {
            self.divide(&targets[i], dist[i].clone(), local[i].clone(), grid_dims[i])?;
        }
        let mut order: Vec<IndexVar> = dist.to_vec();
        order.extend(local.iter().cloned());
        self.reorder(&order)?;
        self.distribute(dist)?;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cin::ConcreteNotation;
    use crate::expr::{kernels, Assignment};
    use std::collections::BTreeMap;

    fn iv(s: &str) -> IndexVar {
        IndexVar::new(s)
    }

    fn matmul_cin(n: i64) -> ConcreteNotation {
        let extents: BTreeMap<IndexVar, i64> = [("i", n), ("j", n), ("k", n)]
            .iter()
            .map(|(v, e)| (iv(v), *e))
            .collect();
        ConcreteNotation::from_assignment(kernels::matmul(), &extents).unwrap()
    }

    #[test]
    fn figure2_summa_schedule_rewrites() {
        // The Figure 2 schedule: divide i and j, reorder, distribute,
        // split k, reorder again, communicate.
        let mut cin = matmul_cin(64);
        cin.divide(&iv("i"), iv("io"), iv("ii"), 2).unwrap();
        cin.divide(&iv("j"), iv("jo"), iv("ji"), 2).unwrap();
        cin.reorder(&[iv("io"), iv("jo"), iv("ii"), iv("ji")])
            .unwrap();
        cin.distribute(&[iv("io"), iv("jo")]).unwrap();
        cin.split(&iv("k"), iv("ko"), iv("ki"), 16).unwrap();
        cin.reorder(&[iv("io"), iv("jo"), iv("ko"), iv("ii"), iv("ji"), iv("ki")])
            .unwrap();
        cin.communicate(&["A"], &iv("jo")).unwrap();
        cin.communicate(&["B", "C"], &iv("ko")).unwrap();
        assert_eq!(
            cin.loop_vars(),
            vec![iv("io"), iv("jo"), iv("ko"), iv("ii"), iv("ji"), iv("ki")]
        );
        assert_eq!(cin.distributed_prefix().unwrap().len(), 2);
        let shown = format!("{cin}");
        assert!(shown.starts_with("∀io ∀jo ∀ko ∀ii ∀ji ∀ki A(i, j) += B(i, k) * C(k, j)"));
        assert!(shown.contains("communicate({B, C}, ko)"));
        // Bounds: at (io, jo, ko) = (1, 0, 2), i spans the second half and
        // k spans the third chunk.
        let mut env = BTreeMap::new();
        env.insert(iv("io"), 1);
        env.insert(iv("ko"), 2);
        assert_eq!(cin.solver.interval(&iv("i"), &env).lo, 32);
        assert_eq!(cin.solver.interval(&iv("k"), &env).lo, 32);
        assert_eq!(cin.solver.interval(&iv("k"), &env).hi, 47);
    }

    #[test]
    fn cannon_rotate_replaces_loop() {
        let mut cin = matmul_cin(9);
        cin.distribute_onto(
            &[iv("i"), iv("j")],
            &[iv("io"), iv("jo")],
            &[iv("ii"), iv("ji")],
            &[3, 3],
        )
        .unwrap();
        cin.divide(&iv("k"), iv("ko"), iv("ki"), 3).unwrap();
        cin.reorder(&[iv("ko"), iv("ii"), iv("ji"), iv("ki")])
            .unwrap();
        cin.rotate(&iv("ko"), &[iv("io"), iv("jo")], iv("kos"))
            .unwrap();
        assert_eq!(
            cin.loop_vars(),
            vec![iv("io"), iv("jo"), iv("kos"), iv("ii"), iv("ji"), iv("ki")]
        );
        // ko is now derived: at (io,jo,kos)=(1,2,0), ko=(0+1+2)%3=0.
        let mut env = BTreeMap::new();
        env.insert(iv("io"), 1);
        env.insert(iv("jo"), 2);
        env.insert(iv("kos"), 0);
        assert_eq!(cin.solver.value(&iv("ko"), &env), Some(0));
    }

    #[test]
    fn collapse_fuses_adjacent_loops() {
        let mut cin = matmul_cin(6);
        cin.collapse(&iv("i"), &iv("j"), iv("f")).unwrap();
        assert_eq!(cin.loop_vars(), vec![iv("f"), iv("k")]);
        assert_eq!(cin.solver.extent(&iv("f")), 36);
        // Values recover through the fused variable.
        let mut env = BTreeMap::new();
        env.insert(iv("f"), 13);
        assert_eq!(cin.solver.value(&iv("i"), &env), Some(2));
        assert_eq!(cin.solver.value(&iv("j"), &env), Some(1));
        // Non-adjacent loops are rejected.
        let mut cin = matmul_cin(6);
        assert!(matches!(
            cin.collapse(&iv("i"), &iv("k"), iv("g")),
            Err(ScheduleError::BadReorder(_))
        ));
    }

    #[test]
    fn reorder_validation() {
        let mut cin = matmul_cin(4);
        assert_eq!(
            cin.reorder(&[iv("i"), iv("i")]).err(),
            Some(ScheduleError::BadReorder("duplicate variables".into()))
        );
        assert_eq!(
            cin.reorder(&[iv("zz")]).err(),
            Some(ScheduleError::UnknownLoopVar("zz".into()))
        );
        // Partial reorder keeps unlisted loops in place.
        cin.reorder(&[iv("k"), iv("i")]).unwrap();
        assert_eq!(cin.loop_vars(), vec![iv("k"), iv("j"), iv("i")]);
    }

    #[test]
    fn distribute_must_be_outermost() {
        let mut cin = matmul_cin(4);
        assert_eq!(
            cin.distribute(&[iv("j")]).err(),
            Some(ScheduleError::NonContiguousDistribution)
        );
        let mut cin = matmul_cin(4);
        cin.distribute(&[iv("i"), iv("j")]).unwrap();
        assert_eq!(cin.distributed_prefix().unwrap().len(), 2);
    }

    #[test]
    fn communicate_validates_tensor_names() {
        let mut cin = matmul_cin(4);
        assert_eq!(
            cin.communicate(&["Z"], &iv("i")).err(),
            Some(ScheduleError::UnknownTensor("Z".into()))
        );
        cin.communicate(&["B", "C"], &iv("k")).unwrap();
        assert_eq!(cin.loops[2].communicate, vec!["B", "C"]);
    }

    #[test]
    fn split_tags_stay_on_outer() {
        let mut cin = matmul_cin(8);
        cin.distribute(&[iv("i")]).unwrap();
        cin.communicate(&["B"], &iv("i")).unwrap();
        cin.divide(&iv("i"), iv("io"), iv("ii"), 2).unwrap();
        assert!(cin.loops[0].distributed);
        assert_eq!(cin.loops[0].communicate, vec!["B"]);
        assert!(!cin.loops[1].distributed);
    }

    #[test]
    fn parallelize_marks_loop() {
        let mut cin = matmul_cin(4);
        cin.parallelize(&iv("j")).unwrap();
        assert!(cin.loops[1].parallelized);
        assert!(format!("{cin}").contains("parallelize(j)"));
    }

    #[test]
    fn distribute_onto_arity_is_an_error_not_a_panic() {
        let mut cin = matmul_cin(4);
        let err = cin
            .distribute_onto(&[iv("i"), iv("j")], &[iv("io")], &[iv("ii")], &[2, 2])
            .unwrap_err();
        assert!(matches!(err, ScheduleError::ArityMismatch(_)));
        assert!(err.to_string().contains("2 targets"), "{err}");
    }

    #[test]
    fn at_command_locates_and_unwraps() {
        let inner = ScheduleError::UnknownLoopVar("zz".into());
        let located = ScheduleError::at_command(3, "divide(zz -> a,b into 2)".into(), inner);
        assert_eq!(
            located.to_string(),
            "command 3 `divide(zz -> a,b into 2)`: 'zz' is not a loop variable"
        );
        assert_eq!(located.root(), &ScheduleError::UnknownLoopVar("zz".into()));
        // Re-wrapping keeps the original location.
        let again = ScheduleError::at_command(9, "other".into(), located.clone());
        assert_eq!(again, located);
    }

    #[test]
    fn increment_assignment_lowering() {
        let a = Assignment::parse("A(i) += B(i)").unwrap();
        let extents: BTreeMap<IndexVar, i64> = [(iv("i"), 4)].into_iter().collect();
        let cin = ConcreteNotation::from_assignment(a, &extents).unwrap();
        assert!(cin.body.increment);
    }
}
