//! Engine-level gates: single-flight under stampede, batched-vs-unbatched
//! bit-parity on dense SUMMA + sparse SpMV across both executable
//! backends, bounded eviction under concurrent inserts, backpressure, and
//! drain-on-shutdown.

use distal_core::{
    Backend, BackendError, Bindings, DistalMachine, Problem, RuntimeBackend, Schedule, TensorSpec,
};
use distal_format::Format;
use distal_machine::grid::Grid;
use distal_machine::spec::{MachineSpec, MemKind, ProcKind};
use distal_serve::{ServeConfig, ServeRequest, ServingEngine, Ticket};
use distal_spmd::SpmdBackend;
use std::sync::{Arc, Barrier};

/// Dense SUMMA matmul on a 2×2 grid.
fn summa_problem(n: i64) -> (Arc<Problem>, Schedule) {
    let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
    let mut p = Problem::new(MachineSpec::small(2), machine);
    p.statement("A(i,j) = B(i,k) * C(k,j)").unwrap();
    let f = Format::parse("xy->xy", MemKind::Sys).unwrap();
    for t in ["A", "B", "C"] {
        p.tensor(TensorSpec::new(t, vec![n, n], f.clone())).unwrap();
    }
    (Arc::new(p), Schedule::summa(2, 2, (n / 2).max(1)))
}

fn summa_bindings(seed: u64) -> Bindings {
    let mut b = Bindings::new();
    b.fill_random("B", 2 * seed + 1)
        .fill_random("C", 2 * seed + 2);
    b
}

/// Sparse SpMV (`a(i) = B(i,j) * c(j)`, B CSR-compressed) on a 2-rank
/// line, row-distributed.
fn spmv_problem(n: i64) -> (Arc<Problem>, Schedule) {
    let machine = DistalMachine::flat(Grid::line(2), ProcKind::Cpu);
    let mut p = Problem::new(MachineSpec::small(2), machine);
    p.statement("a(i) = B(i,j) * c(j)").unwrap();
    p.tensor(TensorSpec::new(
        "a",
        vec![n],
        Format::parse("x->x", MemKind::Sys).unwrap(),
    ))
    .unwrap();
    p.tensor(TensorSpec::new(
        "B",
        vec![n, n],
        Format::parse_levels("xy->x", "ds", MemKind::Sys).unwrap(),
    ))
    .unwrap();
    p.tensor(TensorSpec::new(
        "c",
        vec![n],
        Format::undistributed_in(MemKind::Global),
    ))
    .unwrap();
    let schedule = Schedule::new()
        .divide("i", "io", "ii", 2)
        .reorder(&["io", "ii"])
        .distribute(&["io"]);
    (Arc::new(p), schedule)
}

fn spmv_bindings(seed: u64) -> Bindings {
    let mut b = Bindings::new();
    b.fill_random_sparse("B", seed + 0xB, 0.3)
        .fill_random("c", seed + 0xC);
    b
}

/// Single-threaded reference: plan directly, bind, run, read.
fn reference_outputs(
    backend: &dyn Backend,
    problem: &Problem,
    schedule: &Schedule,
    bindings: &[Bindings],
    output: &str,
) -> Vec<Vec<f64>> {
    let plan: Arc<dyn distal_core::Plan> = Arc::from(backend.plan(problem, schedule).unwrap());
    bindings
        .iter()
        .map(|b| {
            let mut inst = plan.bind(b).unwrap();
            inst.run().unwrap();
            inst.read(output).unwrap()
        })
        .collect()
}

#[test]
fn stampede_cold_engine_plans_one_key_once() {
    const CLIENTS: usize = 16;
    let (problem, schedule) = summa_problem(8);
    let engine = ServingEngine::new(
        RuntimeBackend::functional(),
        ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        },
    );
    let expected = reference_outputs(
        &RuntimeBackend::functional(),
        &problem,
        &schedule,
        &[summa_bindings(0)],
        "A",
    );
    let barrier = Barrier::new(CLIENTS);
    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            let engine = &engine;
            let problem = &problem;
            let schedule = &schedule;
            let barrier = &barrier;
            let expected = &expected;
            s.spawn(move || {
                barrier.wait();
                let response = engine
                    .submit(ServeRequest {
                        problem: Arc::clone(problem),
                        schedule: schedule.clone(),
                        bindings: summa_bindings(0),
                        read: vec!["A".to_string()],
                    })
                    .wait()
                    .unwrap();
                assert_eq!(response.outputs["A"], expected[0]);
            });
        }
    });
    let stats = engine.shutdown();
    assert_eq!(stats.submitted, CLIENTS as u64);
    assert_eq!(stats.completed, CLIENTS as u64);
    assert_eq!(stats.failed, 0);
    assert_eq!(
        stats.cache.misses, 1,
        "cold stampede on one key must plan exactly once: {stats:?}"
    );
    assert_eq!(
        stats.cache.hits + stats.cache.misses,
        stats.cache.requests()
    );
    assert_eq!(
        stats.bind_lowerings, 0,
        "the bind path must never lower: {stats:?}"
    );
    assert!(stats.batches >= 1 && stats.peak_batch >= 1);
}

/// One backend+problem combination, served batched and unbatched, checked
/// bit-for-bit against the single-threaded reference.
fn parity_case(
    backend: impl Backend + Send + Sync + Clone + 'static,
    problem: Arc<Problem>,
    schedule: Schedule,
    bindings: Vec<Bindings>,
    output: &str,
) {
    let expected = reference_outputs(&backend.clone(), &problem, &schedule, &bindings, output);
    for max_batch in [8, 1] {
        let engine = ServingEngine::new(
            backend.clone(),
            ServeConfig {
                workers: 2,
                max_batch,
                bind_work_counter: Some(Arc::new(|| {
                    distal_core::lower::compile_count() + distal_spmd::lower_count()
                })),
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<Ticket> = bindings
            .iter()
            .map(|b| {
                engine.submit(ServeRequest {
                    problem: Arc::clone(&problem),
                    schedule: schedule.clone(),
                    bindings: b.clone(),
                    read: vec![output.to_string()],
                })
            })
            .collect();
        for (ticket, want) in tickets.into_iter().zip(&expected) {
            let got = ticket.wait().unwrap();
            assert_eq!(
                &got.outputs[output], want,
                "serving outputs must be bit-identical (max_batch={max_batch})"
            );
            let report = got.report.cache.expect("report carries cache stats");
            assert_eq!(report.hits + report.misses, report.requests());
        }
        let stats = engine.shutdown();
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.bind_lowerings, 0);
    }
}

#[test]
fn batched_matches_unbatched_summa_runtime() {
    let (problem, schedule) = summa_problem(8);
    let bindings: Vec<Bindings> = (0..6).map(summa_bindings).collect();
    parity_case(
        RuntimeBackend::functional(),
        problem,
        schedule,
        bindings,
        "A",
    );
}

#[test]
fn batched_matches_unbatched_summa_spmd() {
    let (problem, schedule) = summa_problem(8);
    let bindings: Vec<Bindings> = (0..6).map(summa_bindings).collect();
    parity_case(SpmdBackend::new(), problem, schedule, bindings, "A");
}

#[test]
fn batched_matches_unbatched_spmv_runtime() {
    let (problem, schedule) = spmv_problem(16);
    let bindings: Vec<Bindings> = (0..6).map(spmv_bindings).collect();
    parity_case(
        RuntimeBackend::functional(),
        problem,
        schedule,
        bindings,
        "a",
    );
}

#[test]
fn batched_matches_unbatched_spmv_spmd() {
    let (problem, schedule) = spmv_problem(16);
    let bindings: Vec<Bindings> = (0..6).map(spmv_bindings).collect();
    parity_case(SpmdBackend::new(), problem, schedule, bindings, "a");
}

#[test]
fn eviction_stays_bounded_under_concurrent_distinct_keys() {
    let (problem, _) = summa_problem(16);
    let engine = ServingEngine::new(
        RuntimeBackend::model(),
        ServeConfig {
            workers: 4,
            cache_capacity: 4,
            cache_shards: 2,
            ..ServeConfig::default()
        },
    );
    // 12 distinct keys (chunk sizes), four interleaved rounds each, all
    // racing through a cache that holds only 4 plans.
    let tickets: Vec<Ticket> = (0..48)
        .map(|i| {
            let mut bindings = Bindings::new();
            bindings.fill("B", 1.0).fill("C", 2.0);
            engine.submit(ServeRequest {
                problem: Arc::clone(&problem),
                schedule: Schedule::summa(2, 2, (i % 12) + 1),
                bindings,
                read: Vec::new(),
            })
        })
        .collect();
    for ticket in tickets {
        ticket.wait().unwrap();
    }
    let stats = engine.shutdown();
    assert_eq!(stats.completed, 48);
    assert!(
        stats.cache.len <= stats.cache.capacity,
        "eviction must keep the cache bounded: {stats:?}"
    );
    assert_eq!(
        stats.cache.hits + stats.cache.misses,
        stats.cache.requests()
    );
    // Every planned key is still cached or was evicted — none leaked.
    assert_eq!(
        stats.cache.misses,
        stats.cache.evictions + stats.cache.len as u64
    );
}

#[test]
fn backpressure_bounds_the_queue_and_loses_nothing() {
    let (problem, schedule) = summa_problem(8);
    let engine = ServingEngine::new(
        RuntimeBackend::functional(),
        ServeConfig {
            workers: 1,
            queue_capacity: 2,
            max_batch: 1,
            ..ServeConfig::default()
        },
    );
    std::thread::scope(|s| {
        for client in 0..3 {
            let engine = &engine;
            let problem = &problem;
            let schedule = &schedule;
            s.spawn(move || {
                for r in 0..4 {
                    let response = engine
                        .submit(ServeRequest {
                            problem: Arc::clone(problem),
                            schedule: schedule.clone(),
                            bindings: summa_bindings(client * 4 + r),
                            read: vec!["A".to_string()],
                        })
                        .wait()
                        .unwrap();
                    assert_eq!(response.outputs["A"].len(), 64);
                }
            });
        }
    });
    let stats = engine.shutdown();
    assert_eq!(
        (stats.submitted, stats.completed, stats.failed),
        (12, 12, 0)
    );
    assert_eq!(stats.cache.misses, 1);
}

#[test]
fn failed_plans_fail_every_waiter_and_poison_nothing() {
    // No statement → planning fails; every stampeding client gets the
    // error, nothing is cached, and the engine keeps serving afterwards.
    let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
    let broken = Arc::new(Problem::new(MachineSpec::small(2), machine));
    let engine = ServingEngine::new(RuntimeBackend::functional(), ServeConfig::default());
    let tickets: Vec<Ticket> = (0..4)
        .map(|_| {
            engine.submit(ServeRequest {
                problem: Arc::clone(&broken),
                schedule: Schedule::summa(2, 2, 4),
                bindings: Bindings::new(),
                read: Vec::new(),
            })
        })
        .collect();
    for ticket in tickets {
        assert!(matches!(
            ticket.wait(),
            Err(BackendError::Compile(_) | BackendError::Backend(_))
        ));
    }
    let (problem, schedule) = summa_problem(8);
    let response = engine
        .submit(ServeRequest {
            problem,
            schedule,
            bindings: summa_bindings(1),
            read: vec!["A".to_string()],
        })
        .wait()
        .unwrap();
    assert_eq!(response.outputs["A"].len(), 64);
    let stats = engine.shutdown();
    assert_eq!(stats.failed, 4);
    assert_eq!((stats.cache.hits, stats.cache.misses), (0, 1));
}

#[test]
fn shutdown_drains_queued_requests() {
    let (problem, schedule) = summa_problem(8);
    let engine = ServingEngine::new(
        RuntimeBackend::functional(),
        ServeConfig {
            workers: 1,
            max_batch: 1,
            ..ServeConfig::default()
        },
    );
    let tickets: Vec<Ticket> = (0..6)
        .map(|r| {
            engine.submit(ServeRequest {
                problem: Arc::clone(&problem),
                schedule: schedule.clone(),
                bindings: summa_bindings(r),
                read: vec!["A".to_string()],
            })
        })
        .collect();
    let stats = engine.shutdown();
    assert_eq!(stats.completed + stats.failed, 6, "no request may hang");
    for ticket in tickets {
        // Already-queued work is served before the workers exit.
        assert_eq!(ticket.wait().unwrap().outputs["A"].len(), 64);
    }
}
