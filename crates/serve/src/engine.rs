//! [`ServingEngine`]: worker threads draining a bounded queue through a
//! sharded plan cache, batching same-key requests onto one `Arc<dyn Plan>`.

use crate::queue::{JobQueue, Keyed};
use distal_core::{
    Backend, BackendError, Bindings, CacheStats, Plan, PlanKey, Problem, Report, Schedule,
    ShardedPlanCache,
};
use distal_runtime::executor::{host_worker_count, with_thread_budget};
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// A per-request work counter sampled around the bind/execute path of
/// every batch (thread-local counters work here because the whole batch
/// runs on one worker thread). The engine's default counts the core
/// compile/schedule/kernel-specialization counters; callers serving
/// backends with extra lowering counters (the SPMD rank lowering) extend
/// it via [`ServeConfig::bind_work_counter`].
pub type WorkCounter = Arc<dyn Fn() -> u64 + Send + Sync>;

fn default_bind_work() -> WorkCounter {
    Arc::new(|| {
        distal_core::lower::compile_count()
            + distal_core::schedule::apply_count()
            + distal_core::kernelgen::specialize_count()
    })
}

/// Configuration for a [`ServingEngine`].
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker threads draining the queue (0 = size to the host via
    /// `host_worker_count`, i.e. `DISTAL_THREADS` or one per core).
    pub workers: usize,
    /// Bound on queued-but-unclaimed requests; full queues block
    /// [`ServingEngine::submit`] (backpressure, not unbounded backlog).
    pub queue_capacity: usize,
    /// Most requests one worker claims per same-key batch (1 disables
    /// micro-batching).
    pub max_batch: usize,
    /// Total plans the sharded cache retains.
    pub cache_capacity: usize,
    /// Shard count of the plan cache.
    pub cache_shards: usize,
    /// Override for the bind-path work counter (see [`WorkCounter`]).
    pub bind_work_counter: Option<WorkCounter>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_capacity: 64,
            max_batch: 8,
            cache_capacity: 64,
            cache_shards: 8,
            bind_work_counter: None,
        }
    }
}

impl fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeConfig")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("max_batch", &self.max_batch)
            .field("cache_capacity", &self.cache_capacity)
            .field("cache_shards", &self.cache_shards)
            .field("bind_work_counter", &self.bind_work_counter.is_some())
            .finish()
    }
}

/// One serving request: which compilation to use (problem + schedule —
/// the [`PlanKey`] is derived at submission), the per-request data, and
/// which tensors to read back after execution.
#[derive(Clone, Debug)]
pub struct ServeRequest {
    /// The compile-relevant bundle (statement, tensors, machine). Shared
    /// behind `Arc` because every request for one key carries the same
    /// problem.
    pub problem: Arc<Problem>,
    /// The schedule to compile under.
    pub schedule: Schedule,
    /// Per-request operand values.
    pub bindings: Bindings,
    /// Tensors to read back (row-major) into [`ServeResponse::outputs`].
    pub read: Vec<String>,
}

/// What a request resolves to: the execution [`Report`] (with a coherent
/// cache snapshot attached) plus the requested tensor contents.
#[derive(Clone, Debug)]
pub struct ServeResponse {
    /// The merged place/execute report of this request's instance.
    pub report: Report,
    /// Requested tensors, row-major, in request order by name.
    pub outputs: BTreeMap<String, Vec<f64>>,
}

/// The receipt for a submitted request; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<ServeResponse, BackendError>>,
}

impl Ticket {
    /// Blocks until the request completes.
    ///
    /// # Errors
    ///
    /// Whatever the serving path produced — plan, bind, or execution
    /// errors — or a synthesized [`BackendError::Backend`] when the
    /// engine shut down (or a worker died) before replying.
    pub fn wait(self) -> Result<ServeResponse, BackendError> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(BackendError::Backend(
                "request dropped: serving worker exited before replying".to_string(),
            ))
        })
    }
}

/// Monotonic engine counters plus a coherent plan-cache snapshot.
#[derive(Clone, Debug)]
pub struct EngineStats {
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Requests accepted by [`ServingEngine::submit`].
    pub submitted: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that failed (plan/bind/execute errors, panics, shutdown
    /// rejections).
    pub failed: u64,
    /// Batches claimed from the queue (`submitted / batches` ≥ 1 is the
    /// realized batching factor).
    pub batches: u64,
    /// Largest single batch served.
    pub peak_batch: u64,
    /// Bind-path work units (lowerings/schedule applications/kernel
    /// specializations) observed while serving — stays 0 when every
    /// request rides a cached plan, which is the compile-once invariant
    /// the bench gates on.
    pub bind_lowerings: u64,
    /// Plan-cache counters (`hits + misses == requests()`).
    pub cache: CacheStats,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    peak_batch: AtomicU64,
    bind_lowerings: AtomicU64,
}

struct Job {
    problem: Arc<Problem>,
    schedule: Schedule,
    bindings: Bindings,
    read: Vec<String>,
    reply: mpsc::Sender<Result<ServeResponse, BackendError>>,
}

impl fmt::Debug for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Job").field("read", &self.read).finish()
    }
}

struct WorkerCtx {
    backend: Arc<dyn Backend + Send + Sync>,
    cache: Arc<ShardedPlanCache>,
    queue: Arc<JobQueue<Job>>,
    counters: Arc<Counters>,
    bind_work: WorkCounter,
    max_batch: usize,
    /// Host-worker budget each serving worker passes down to the pools
    /// its plans create (parallel executor, threaded rank transport).
    budget: usize,
}

/// A concurrent serving front for any [`Backend`]: compile once *per
/// key*, execute many *per second*.
///
/// ```text
///  submit() ──► bounded queue ──► worker threads (W = host_worker_count)
///                 (backpressure)     │  pop_batch: same-PlanKey sweep
///                                    ▼
///                          ShardedPlanCache::get_or_plan_keyed
///                             (single-flight per shard)
///                                    │ one Arc<dyn Plan>
///                                    ▼
///                          bind(bindings) per request   ──► Ticket
///                          (under with_thread_budget)
/// ```
///
/// Each worker claims the oldest request plus every queued request with
/// the same [`PlanKey`] (micro-batching), resolves the plan once through
/// the sharded single-flight cache, then binds and runs each request's
/// [`Bindings`] against that shared plan. Nested pools the bound
/// instances spawn are capped by a per-worker thread budget so W serving
/// workers never oversubscribe the host.
pub struct ServingEngine {
    backend: Arc<dyn Backend + Send + Sync>,
    cache: Arc<ShardedPlanCache>,
    queue: Arc<JobQueue<Job>>,
    counters: Arc<Counters>,
    workers: Vec<JoinHandle<()>>,
    worker_count: usize,
}

impl ServingEngine {
    /// Starts the engine: spawns the workers and sizes the per-worker
    /// thread budget so `workers × budget` ≈ the host's worker count.
    pub fn new(backend: impl Backend + Send + Sync + 'static, cfg: ServeConfig) -> Self {
        Self::with_arc(Arc::new(backend), cfg)
    }

    /// [`ServingEngine::new`] for an already-shared backend.
    pub fn with_arc(backend: Arc<dyn Backend + Send + Sync>, cfg: ServeConfig) -> Self {
        let workers = host_worker_count(cfg.workers);
        let host = host_worker_count(0);
        let budget = (host / workers).max(1);
        let cache = Arc::new(ShardedPlanCache::new(cfg.cache_capacity, cfg.cache_shards));
        let queue = Arc::new(JobQueue::new(cfg.queue_capacity));
        let counters = Arc::new(Counters::default());
        let bind_work = cfg.bind_work_counter.unwrap_or_else(default_bind_work);
        let handles = (0..workers)
            .map(|w| {
                let ctx = WorkerCtx {
                    backend: Arc::clone(&backend),
                    cache: Arc::clone(&cache),
                    queue: Arc::clone(&queue),
                    counters: Arc::clone(&counters),
                    bind_work: Arc::clone(&bind_work),
                    max_batch: cfg.max_batch,
                    budget,
                };
                std::thread::Builder::new()
                    .name(format!("distal-serve-{w}"))
                    .spawn(move || worker_loop(&ctx))
                    .expect("spawning serving worker")
            })
            .collect();
        ServingEngine {
            backend,
            cache,
            queue,
            counters,
            workers: handles,
            worker_count: workers,
        }
    }

    /// Submits a request, returning a [`Ticket`] immediately. Blocks only
    /// when the queue is at capacity (backpressure). Submitting to a
    /// shut-down engine yields a ticket that fails on
    /// [`Ticket::wait`].
    pub fn submit(&self, request: ServeRequest) -> Ticket {
        let key = PlanKey::new(self.backend.as_ref(), &request.problem, &request.schedule);
        self.submit_keyed(key, request)
    }

    /// [`ServingEngine::submit`] with a caller-computed key — for clients
    /// that submit many requests against one compilation and want to
    /// amortize key canonicalization too.
    pub fn submit_keyed(&self, key: PlanKey, request: ServeRequest) -> Ticket {
        let (reply, rx) = mpsc::channel();
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let entry = Keyed {
            key,
            job: Job {
                problem: request.problem,
                schedule: request.schedule,
                bindings: request.bindings,
                read: request.read,
                reply,
            },
        };
        if let Err(rejected) = self.queue.push(entry) {
            self.counters.failed.fetch_add(1, Ordering::Relaxed);
            let _ = rejected.job.reply.send(Err(BackendError::Backend(
                "serving engine is shut down".to_string(),
            )));
        }
        Ticket { rx }
    }

    /// The engine's counters plus a coherent cache snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            workers: self.worker_count,
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            peak_batch: self.counters.peak_batch.load(Ordering::Relaxed),
            bind_lowerings: self.counters.bind_lowerings.load(Ordering::Relaxed),
            cache: self.cache.stats(),
        }
    }

    /// A coherent snapshot of just the plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Requests queued but not yet claimed (diagnostics).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Drains and stops the engine: already-queued requests are served,
    /// new submissions are rejected, workers are joined. Returns the
    /// final stats.
    pub fn shutdown(mut self) -> EngineStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            // A worker that panicked already failed its in-flight batch
            // tickets; surfacing the panic here would torpedo shutdown.
            let _ = handle.join();
        }
    }
}

impl Drop for ServingEngine {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

impl fmt::Debug for ServingEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServingEngine")
            .field("backend", &self.backend.name())
            .field("stats", &self.stats())
            .finish()
    }
}

fn worker_loop(ctx: &WorkerCtx) {
    while let Some(batch) = ctx.queue.pop_batch(ctx.max_batch) {
        ctx.counters.batches.fetch_add(1, Ordering::Relaxed);
        ctx.counters
            .peak_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        // Everything a request does on this thread — planning on a cache
        // miss, binding, nested executor/transport pools — lives under
        // the worker's share of the host.
        with_thread_budget(ctx.budget, || serve_batch(ctx, batch));
    }
}

fn serve_batch(ctx: &WorkerCtx, batch: Vec<Keyed<Job>>) {
    let head = &batch[0];
    let planned = ctx.cache.get_or_plan_keyed(&head.key, || {
        ctx.backend
            .plan(&head.job.problem, &head.job.schedule)
            .map(Arc::from)
    });
    let plan = match planned {
        Ok(plan) => plan,
        Err(err) => {
            // The whole batch shares the key, so it shares the failure.
            for entry in batch {
                ctx.counters.failed.fetch_add(1, Ordering::Relaxed);
                let _ = entry.job.reply.send(Err(err.clone()));
            }
            return;
        }
    };
    let before = (ctx.bind_work)();
    for entry in batch {
        let result = catch_unwind(AssertUnwindSafe(|| {
            serve_one(ctx, plan.as_ref(), &entry.job)
        }))
        .unwrap_or_else(|_| {
            Err(BackendError::Backend(
                "serving request panicked mid-execution".to_string(),
            ))
        });
        let counter = if result.is_ok() {
            &ctx.counters.completed
        } else {
            &ctx.counters.failed
        };
        counter.fetch_add(1, Ordering::Relaxed);
        let _ = entry.job.reply.send(result);
    }
    ctx.counters
        .bind_lowerings
        .fetch_add((ctx.bind_work)() - before, Ordering::Relaxed);
}

fn serve_one(ctx: &WorkerCtx, plan: &dyn Plan, job: &Job) -> Result<ServeResponse, BackendError> {
    let mut instance = plan.bind(&job.bindings)?;
    let mut report = instance.run()?;
    ctx.cache.annotate(&mut report);
    let mut outputs = BTreeMap::new();
    for name in &job.read {
        outputs.insert(name.clone(), instance.read(name)?);
    }
    Ok(ServeResponse { report, outputs })
}
