//! The admission queue: bounded, blocking, and same-key batch-aware.
//!
//! `std::sync::mpsc` is single-consumer and strictly FIFO, which rules
//! out the two things serving admission needs: several workers draining
//! one queue, and a worker pulling *all* queued requests for one
//! [`PlanKey`] in a single swoop. So the queue here is the classic
//! condvar-bounded deque, plus one serving-specific operation:
//! [`JobQueue::pop_batch`] removes the oldest job and then sweeps every
//! other queued job with the same key (up to a batch cap), preserving
//! per-key submission order. One plan lookup then serves the whole
//! batch.

use distal_core::PlanKey;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A queue entry: a keyed unit of work handed from [`push`] to
/// [`pop_batch`] intact.
///
/// [`push`]: JobQueue::push
/// [`pop_batch`]: JobQueue::pop_batch
#[derive(Debug)]
pub(crate) struct Keyed<T> {
    pub(crate) key: PlanKey,
    pub(crate) job: T,
}

#[derive(Debug)]
struct State<T> {
    jobs: VecDeque<Keyed<T>>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue of keyed jobs.
///
/// * **Backpressure**: [`JobQueue::push`] blocks while the queue is at
///   capacity, so producers slow to the rate workers actually sustain
///   instead of growing an unbounded backlog.
/// * **Micro-batching**: [`JobQueue::pop_batch`] drains same-key runs
///   (see module docs).
/// * **Shutdown**: [`JobQueue::close`] wakes everyone; blocked pushes
///   fail, and pops drain the remainder before reporting exhaustion.
#[derive(Debug)]
pub(crate) struct JobQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a job, blocking while the queue is full. Returns the job
    /// back to the caller if the queue is (or gets) closed.
    pub(crate) fn push(&self, entry: Keyed<T>) -> Result<(), Keyed<T>> {
        let mut s = self.state.lock().expect("poisoned job queue");
        loop {
            if s.closed {
                return Err(entry);
            }
            if s.jobs.len() < self.capacity {
                s.jobs.push_back(entry);
                drop(s);
                self.not_empty.notify_one();
                return Ok(());
            }
            s = self.not_full.wait(s).expect("poisoned job queue");
        }
    }

    /// Dequeues the oldest job plus every other queued job sharing its
    /// key, at most `max_batch` in total and in submission order. Blocks
    /// while the queue is empty; returns `None` once it is closed *and*
    /// drained.
    pub(crate) fn pop_batch(&self, max_batch: usize) -> Option<Vec<Keyed<T>>> {
        let max_batch = max_batch.max(1);
        let mut s = self.state.lock().expect("poisoned job queue");
        loop {
            if let Some(head) = s.jobs.pop_front() {
                let mut batch = Vec::with_capacity(max_batch.min(8));
                let key = head.key.clone();
                batch.push(head);
                let mut i = 0;
                while i < s.jobs.len() && batch.len() < max_batch {
                    if s.jobs[i].key == key {
                        batch.push(s.jobs.remove(i).expect("indexed job vanished"));
                    } else {
                        i += 1;
                    }
                }
                drop(s);
                // Every dequeued job frees a capacity slot; waking all
                // blocked producers keeps them racing for the slots
                // instead of parking behind a single notify.
                self.not_full.notify_all();
                return Some(batch);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).expect("poisoned job queue");
        }
    }

    /// Closes the queue: blocked pushes fail, and pops drain what is
    /// left.
    pub(crate) fn close(&self) {
        let mut s = self.state.lock().expect("poisoned job queue");
        s.closed = true;
        drop(s);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Jobs currently queued (diagnostics only — stale by the time the
    /// caller looks at it).
    pub(crate) fn len(&self) -> usize {
        self.state.lock().expect("poisoned job queue").jobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distal_core::{DistalMachine, Problem, RuntimeBackend, Schedule, TensorSpec};
    use distal_format::Format;
    use distal_machine::grid::Grid;
    use distal_machine::spec::{MachineSpec, MemKind, ProcKind};

    fn key(chunk: i64) -> PlanKey {
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        let mut p = Problem::new(MachineSpec::small(2), machine);
        p.statement("A(i,j) = B(i,k) * C(k,j)").unwrap();
        let f = Format::parse("xy->xy", MemKind::Sys).unwrap();
        for t in ["A", "B", "C"] {
            p.tensor(TensorSpec::new(t, vec![8, 8], f.clone())).unwrap();
        }
        PlanKey::new(
            &RuntimeBackend::functional(),
            &p,
            &Schedule::summa(2, 2, chunk),
        )
    }

    #[test]
    fn pop_batch_sweeps_same_key_in_submission_order() {
        let q: JobQueue<u32> = JobQueue::new(16);
        let (k1, k2, k3) = (key(1), key(2), key(3));
        for (k, job) in [(&k1, 0), (&k2, 1), (&k1, 2), (&k1, 3), (&k3, 4)] {
            q.push(Keyed {
                key: k.clone(),
                job,
            })
            .unwrap();
        }
        // Oldest job's key sweeps its whole run, preserving FIFO per key
        // and leaving other keys in place.
        let batch = q.pop_batch(8).unwrap();
        assert_eq!(batch.iter().map(|e| e.job).collect::<Vec<_>>(), [0, 2, 3]);
        assert!(batch.iter().all(|e| e.key == k1));
        assert_eq!(q.pop_batch(8).unwrap()[0].job, 1);
        assert_eq!(q.pop_batch(8).unwrap()[0].job, 4);
        // The cap is respected: 3 same-key jobs, max_batch 2.
        for job in [5, 6, 7] {
            q.push(Keyed {
                key: k1.clone(),
                job,
            })
            .unwrap();
        }
        assert_eq!(
            q.pop_batch(2)
                .unwrap()
                .iter()
                .map(|e| e.job)
                .collect::<Vec<_>>(),
            [5, 6]
        );
        // Close: the remainder drains, then pops report exhaustion.
        q.close();
        assert_eq!(q.pop_batch(2).unwrap()[0].job, 7);
        assert!(q.pop_batch(2).is_none());
        assert!(q.push(Keyed { key: k1, job: 9 }).is_err());
    }

    #[test]
    fn backpressure_blocks_until_a_slot_frees() {
        let q: JobQueue<u32> = JobQueue::new(2);
        let k = key(1);
        q.push(Keyed {
            key: k.clone(),
            job: 0,
        })
        .unwrap();
        q.push(Keyed {
            key: k.clone(),
            job: 1,
        })
        .unwrap();
        std::thread::scope(|s| {
            let producer = s.spawn(|| {
                // Blocks: the queue is full until the consumer pops.
                q.push(Keyed {
                    key: key(1),
                    job: 2,
                })
                .unwrap();
            });
            let batch = q.pop_batch(8).unwrap();
            assert!(!batch.is_empty());
            producer.join().unwrap();
        });
        assert!(q.len() >= 1);
    }
}
