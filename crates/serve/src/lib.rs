//! A concurrent serving engine for DISTAL plans.
//!
//! The serving layer above the six compile/execute layers —
//! `ARCHITECTURE.md` at the workspace root maps the full pipeline, and
//! README's "Serving" section shows the engine end to end.
//!
//! DISTAL's compile-once/execute-many split (paper §3–§6;
//! [`Plan`](distal_core::Plan) / [`Bindings`](distal_core::Bindings) /
//! `Instance` in `distal-core`) makes compilation
//! data-independent, but until here everything bound plans from one
//! thread. This crate is the production-shaped front:
//!
//! 1. [`ServingEngine::submit`] computes the request's
//!    [`PlanKey`](distal_core::PlanKey) and enqueues it on a **bounded
//!    queue** — a full queue blocks submitters (backpressure) instead of
//!    growing an unbounded backlog.
//! 2. Worker threads (sized by
//!    [`host_worker_count`](distal_runtime::executor::host_worker_count))
//!    drain the queue, claiming the oldest request **plus every queued
//!    request with the same key** (micro-batching, capped by
//!    [`ServeConfig::max_batch`]).
//! 3. The batch's plan resolves through a
//!    [`ShardedPlanCache`](distal_core::ShardedPlanCache): per-shard
//!    locks keep distinct keys contention-free, and single-flight
//!    guarantees a cold-key stampede runs
//!    [`Backend::plan`](distal_core::Backend::plan) exactly once.
//! 4. Each request [`bind`](distal_core::Plan::bind)s its own
//!    [`Bindings`](distal_core::Bindings) against the shared
//!    `Arc<dyn Plan>` and executes under
//!    a per-worker thread budget
//!    ([`with_thread_budget`](distal_runtime::executor::with_thread_budget)),
//!    so nested executor/rank pools divide the host instead of
//!    multiplying against it.
//!
//! Results come back through [`Ticket::wait`] as [`ServeResponse`]s —
//! per-request [`Report`](distal_core::Report)s (with coherent cache
//! snapshots) plus any tensors the request asked to read, bit-identical
//! to single-threaded execution of the same bindings.
//!
//! ```
//! use distal_core::{Bindings, DistalMachine, Problem, RuntimeBackend, TensorSpec, Schedule};
//! use distal_format::Format;
//! use distal_machine::{Grid, spec::{MachineSpec, MemKind, ProcKind}};
//! use distal_serve::{ServeConfig, ServeRequest, ServingEngine};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
//! let mut problem = Problem::new(MachineSpec::small(2), machine);
//! problem.statement("A(i,j) = B(i,k) * C(k,j)")?;
//! let tiles = Format::parse("xy->xy", MemKind::Sys)?;
//! for t in ["A", "B", "C"] {
//!     problem.tensor(TensorSpec::new(t, vec![8, 8], tiles.clone()))?;
//! }
//! let problem = Arc::new(problem);
//!
//! let engine = ServingEngine::new(RuntimeBackend::functional(), ServeConfig::default());
//! let tickets: Vec<_> = (0..4u64)
//!     .map(|seed| {
//!         let mut bindings = Bindings::new();
//!         bindings.fill_random("B", seed + 1).fill_random("C", seed + 100);
//!         engine.submit(ServeRequest {
//!             problem: Arc::clone(&problem),
//!             schedule: Schedule::summa(2, 2, 4),
//!             bindings,
//!             read: vec!["A".to_string()],
//!         })
//!     })
//!     .collect();
//! for ticket in tickets {
//!     assert_eq!(ticket.wait()?.outputs["A"].len(), 64);
//! }
//! let stats = engine.shutdown();
//! // One key → one compilation, no matter how many requests or workers.
//! assert_eq!(stats.cache.misses, 1);
//! assert_eq!(stats.cache.hits + stats.cache.misses, stats.cache.requests());
//! assert_eq!(stats.bind_lowerings, 0);
//! # Ok(())
//! # }
//! ```

mod engine;
mod queue;

pub use engine::{
    EngineStats, ServeConfig, ServeRequest, ServeResponse, ServingEngine, Ticket, WorkCounter,
};
