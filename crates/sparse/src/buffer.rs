//! CSR-style compressed buffers with lossless dense↔sparse conversion.
//!
//! A [`SparseBuffer`] compresses the *innermost* dimension of a row-major
//! tensor: all outer dimensions are linearized into "rows", and per row
//! only the nonzero entries are stored — `pos[r]..pos[r+1]` indexes the
//! `crd` (innermost coordinate) and `vals` (value) arrays. A matrix with
//! levels `ds` (dense rows, compressed columns) is exactly CSR; a vector
//! with level `s` is a sparse vector (one row); higher-order tensors
//! compress their last dimension under dense-linearized prefixes.
//!
//! Conversion is lossless in both directions: *every* value whose bit
//! pattern differs from `+0.0` is stored (including `-0.0` and NaN
//! payloads), so `to_dense(from_dense(x)) == x` bit-for-bit at any
//! density.

use crate::{CRD_BYTES, POS_BYTES};
use distal_machine::ELEM_BYTES;

/// A compressed rectangular buffer: dense-linearized outer dimensions
/// ("rows") over a compressed innermost dimension.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseBuffer {
    dims: Vec<i64>,
    /// Row offsets into `crd`/`vals` (`rows + 1` entries).
    pub pos: Vec<u64>,
    /// Innermost coordinate of each stored entry.
    pub crd: Vec<i64>,
    /// Stored values.
    pub vals: Vec<f64>,
}

impl SparseBuffer {
    /// Compresses row-major dense data of the given dimensions. Entries
    /// whose bit pattern is exactly `+0.0` are dropped; everything else
    /// (including `-0.0`) is stored, which is what makes the round-trip
    /// lossless.
    ///
    /// # Panics
    ///
    /// Panics when `data` does not have `dims.iter().product()` elements.
    pub fn from_dense(dims: &[i64], data: &[f64]) -> Self {
        let inner = dims.last().copied().unwrap_or(1).max(1);
        let volume: i64 = dims.iter().product::<i64>().max(1);
        assert_eq!(
            data.len() as i64,
            volume,
            "dense data does not match dims {dims:?}"
        );
        let rows = (volume / inner) as usize;
        let mut pos = Vec::with_capacity(rows + 1);
        let mut crd = Vec::new();
        let mut vals = Vec::new();
        pos.push(0u64);
        for r in 0..rows {
            let base = r * inner as usize;
            for j in 0..inner as usize {
                let v = data[base + j];
                if v.to_bits() != 0 {
                    crd.push(j as i64);
                    vals.push(v);
                }
            }
            pos.push(crd.len() as u64);
        }
        SparseBuffer {
            dims: dims.to_vec(),
            pos,
            crd,
            vals,
        }
    }

    /// Decompresses back to row-major dense data (bit-identical to the
    /// input of [`SparseBuffer::from_dense`]).
    pub fn to_dense(&self) -> Vec<f64> {
        let inner = self.inner_extent() as usize;
        let mut out = vec![0.0f64; self.volume() as usize];
        for r in 0..self.rows() {
            let (lo, hi) = self.row_range(r);
            for e in lo..hi {
                out[r * inner + self.crd[e] as usize] = self.vals[e];
            }
        }
        out
    }

    /// The logical dimension sizes.
    pub fn dims(&self) -> &[i64] {
        &self.dims
    }

    /// Number of dense-linearized rows (`1` for vectors and scalars).
    pub fn rows(&self) -> usize {
        self.pos.len() - 1
    }

    /// Extent of the compressed innermost dimension.
    pub fn inner_extent(&self) -> i64 {
        self.dims.last().copied().unwrap_or(1).max(1)
    }

    /// The `crd`/`vals` index range of row `r`.
    pub fn row_range(&self, r: usize) -> (usize, usize) {
        (self.pos[r] as usize, self.pos[r + 1] as usize)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> u64 {
        self.vals.len() as u64
    }

    /// Dense element count.
    pub fn volume(&self) -> i64 {
        self.dims.iter().product::<i64>().max(1)
    }

    /// Fraction of stored entries (`1.0` for an empty-volume buffer).
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / self.volume() as f64
    }

    /// Exact wire/storage size of the compressed representation:
    /// `pos` + `crd` + `vals`.
    pub fn payload_bytes(&self) -> u64 {
        csr_payload_bytes(self.rows() as u64, self.nnz())
    }

    /// Size of the equivalent flat dense buffer.
    pub fn dense_bytes(&self) -> u64 {
        self.volume() as u64 * ELEM_BYTES
    }
}

/// Exact CSR payload size for `rows` dense-linearized rows holding `nnz`
/// stored entries: `(rows + 1)` pos entries plus `(crd, val)` per entry.
pub fn csr_payload_bytes(rows: u64, nnz: u64) -> u64 {
    (rows + 1) * POS_BYTES + nnz * (CRD_BYTES + ELEM_BYTES)
}

/// Estimated CSR payload size of a `volume`-element tile with `rows`
/// dense-linearized rows at a given global density (nnz rounded up). Used
/// where per-tile nnz is not known statically (cost models, copy
/// accounting of the dynamic runtime).
pub fn estimated_payload_bytes(volume: u64, rows: u64, density: f64) -> u64 {
    let nnz = (volume as f64 * density.clamp(0.0, 1.0)).ceil() as u64;
    csr_payload_bytes(rows, nnz.min(volume))
}

/// Wire-payload bytes per dense byte of a `dims`-shaped tensor holding
/// `nnz` stored entries under innermost-CSR compression — the
/// `payload_scale` every layer (problem registry, session regions, copy
/// accounting) derives from one place so the formula cannot drift.
pub fn csr_payload_scale(dims: &[i64], nnz: u64) -> f64 {
    let volume = dims.iter().product::<i64>().max(1) as u64;
    let inner = dims.last().copied().unwrap_or(1).max(1) as u64;
    let payload = csr_payload_bytes(volume / inner, nnz.min(volume));
    payload as f64 / (volume * ELEM_BYTES) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_matrix_round_trip() {
        // 3x4, nnz pattern with an empty middle row.
        let dims = [3, 4];
        #[rustfmt::skip]
        let data = vec![
            1.0, 0.0, 0.0, 2.0,
            0.0, 0.0, 0.0, 0.0,
            0.0, 3.5, -4.0, 0.0,
        ];
        let s = SparseBuffer::from_dense(&dims, &data);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.pos, vec![0, 2, 2, 4]);
        assert_eq!(s.crd, vec![0, 3, 1, 2]);
        assert_eq!(s.vals, vec![1.0, 2.0, 3.5, -4.0]);
        assert_eq!(s.to_dense(), data);
        assert!((s.density() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn negative_zero_and_vectors_are_lossless() {
        let data = vec![0.0, -0.0, 5.0, 0.0];
        let s = SparseBuffer::from_dense(&[4], &data);
        // -0.0 has a nonzero bit pattern and must be stored.
        assert_eq!(s.nnz(), 2);
        let back = s.to_dense();
        for (a, b) in data.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn scalar_and_empty() {
        let s = SparseBuffer::from_dense(&[], &[7.0]);
        assert_eq!(s.rows(), 1);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.to_dense(), vec![7.0]);
        let z = SparseBuffer::from_dense(&[2, 2], &[0.0; 4]);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.to_dense(), vec![0.0; 4]);
    }

    #[test]
    fn payload_accounting() {
        let s = SparseBuffer::from_dense(&[2, 4], &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0]);
        // pos: 3 entries, 2 stored (crd + val).
        assert_eq!(s.payload_bytes(), 3 * POS_BYTES + 2 * (CRD_BYTES + 8));
        assert_eq!(s.dense_bytes(), 8 * 8);
        assert_eq!(estimated_payload_bytes(8, 2, 0.25), csr_payload_bytes(2, 2));
        // Density estimates never exceed the dense volume.
        assert_eq!(estimated_payload_bytes(8, 2, 5.0), csr_payload_bytes(2, 8));
    }

    #[test]
    fn higher_order_compresses_last_dim() {
        // 2x2x2: rows = 4 (dense-linearized i,j), inner = k.
        let mut data = vec![0.0; 8];
        data[1] = 1.0; // (0,0,1)
        data[6] = 2.0; // (1,1,0)
        let s = SparseBuffer::from_dense(&[2, 2, 2], &data);
        assert_eq!(s.rows(), 4);
        assert_eq!(s.pos, vec![0, 1, 1, 1, 2]);
        assert_eq!(s.crd, vec![1, 0]);
        assert_eq!(s.to_dense(), data);
    }
}
