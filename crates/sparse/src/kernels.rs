//! Sparse leaf kernels: SpMV, SpMM, and SDDMM over [`SparseBuffer`]s.
//!
//! Three surfaces:
//!
//! * pure functions ([`spmv`], [`spmm`], [`sddmm`]) over whole buffers —
//!   the reference kernels used by tests and benches;
//! * [`distal_runtime::kernel::Kernel`] implementations ([`SpmvLeaf`],
//!   [`SpmmLeaf`], [`SddmmLeaf`]) that build a CSR view of the compressed
//!   operand's *tile* (the task's bounds box) per execute and then iterate
//!   only the stored coordinates;
//! * **generated** leaves ([`SpmvGenLeaf`], [`SpmmGenLeaf`],
//!   [`SddmmGenLeaf`]) — the kernel-generation replacements the compiler's
//!   `KernelGen` emits at plan time. They visit the same stored entries in
//!   the same order as the CSR-building leaves (a dense tile row scanned
//!   left-to-right, skipping zero bit patterns, is exactly the stored-entry
//!   sequence `SparseBuffer::from_dense` would produce), but with **no
//!   per-execute allocation**: row base offsets are hoisted out of the
//!   inner loop and the inner loop runs over contiguous row slices.
//!
//! # Bit-parity with the dense leaves
//!
//! All three kernels preserve the dense kernels' loop order and product
//! association exactly, and differ only in *skipping* iteration points
//! where the compressed operand holds an exact `+0.0`. For finite data
//! whose nonzero products do not underflow to zero, the skipped terms
//! contribute only `±0.0` additions, which never change an accumulator
//! that starts at `+0.0` and otherwise receives nonzero terms — so sparse
//! and dense executions of the same data are bit-identical. This is
//! asserted across backends in the workspace's `backend_parity` suite.

use crate::buffer::SparseBuffer;
use distal_runtime::kernel::{Kernel, KernelArg, KernelCtx};

/// `y(i) += Σ_j B(i,j) · x(j)` iterating only B's stored entries.
pub fn spmv(y: &mut [f64], b: &SparseBuffer, x: &[f64]) {
    for (r, y_r) in y.iter_mut().enumerate().take(b.rows()) {
        let (lo, hi) = b.row_range(r);
        for e in lo..hi {
            *y_r += b.vals[e] * x[b.crd[e] as usize];
        }
    }
}

/// `A(i,j) += Σ_k B(i,k) · C(k,j)` (row-major `C` with `n_cols` columns),
/// iterating only B's stored entries. Loop order `(i, stored k, j)`
/// mirrors the dense blocked GEMM leaf.
pub fn spmm(a: &mut [f64], b: &SparseBuffer, c: &[f64], n_cols: usize) {
    for i in 0..b.rows() {
        let (lo, hi) = b.row_range(i);
        for e in lo..hi {
            let bv = b.vals[e];
            let k = b.crd[e] as usize;
            let a_row = i * n_cols;
            let c_row = k * n_cols;
            for j in 0..n_cols {
                a[a_row + j] += bv * c[c_row + j];
            }
        }
    }
}

/// `A(i,j) += Σ_k (B(i,j) · C(i,k)) · D(k,j)` iterating only B's stored
/// `(i,j)` entries (`C` is `rows × k_extent`, `D` is `k_extent × n_cols`
/// where `n_cols` is B's inner extent). The product associates left, like
/// the dense interpreter's parse tree.
pub fn sddmm(a: &mut [f64], b: &SparseBuffer, c: &[f64], d: &[f64], k_extent: usize) {
    let n_cols = b.inner_extent() as usize;
    for i in 0..b.rows() {
        let (lo, hi) = b.row_range(i);
        for e in lo..hi {
            let bv = b.vals[e];
            let j = b.crd[e] as usize;
            for k in 0..k_extent {
                a[i * n_cols + j] += (bv * c[i * k_extent + k]) * d[k * n_cols + j];
            }
        }
    }
}

/// Builds a CSR view of a 2-D kernel argument's tile
/// `[ilo..=ihi] × [jlo..=jhi]` (coordinates relative to the tile origin).
fn tile2(arg: &KernelArg, ilo: i64, ihi: i64, jlo: i64, jhi: i64) -> SparseBuffer {
    let (ni, nj) = (ihi - ilo + 1, jhi - jlo + 1);
    let mut data = Vec::with_capacity((ni * nj) as usize);
    for i in ilo..=ihi {
        for j in jlo..=jhi {
            data.push(arg.at(&[i, j]));
        }
    }
    SparseBuffer::from_dense(&[ni, nj], &data)
}

/// Sparse SpMV leaf for `a(i) = B(i,j) * c(j)` with B compressed.
///
/// Task scalars carry `[ilo, ihi, jlo, jhi]` (`all_vars` order `[i, j]`);
/// args are `[a, B, c]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpmvLeaf;

impl Kernel for SpmvLeaf {
    fn name(&self) -> &str {
        "spmv"
    }

    fn execute(&self, ctx: &mut KernelCtx) {
        let s = &ctx.scalars;
        assert_eq!(s.len(), 4, "spmv bounds mismatch");
        let (ilo, ihi, jlo, jhi) = (s[0], s[1], s[2], s[3]);
        if ihi < ilo || jhi < jlo {
            return;
        }
        let b = tile2(&ctx.args[1], ilo, ihi, jlo, jhi);
        for r in 0..b.rows() {
            let i = ilo + r as i64;
            let (lo, hi) = b.row_range(r);
            for e in lo..hi {
                let j = jlo + b.crd[e];
                let v = b.vals[e] * ctx.args[2].at(&[j]);
                ctx.args[0].add(&[i], v);
            }
        }
    }
}

/// Sparse SpMM leaf for matmul-shaped statements
/// `A(i,j) = B(i,k) * C(k,j)` with B compressed.
///
/// Task scalars carry `[ilo, ihi, jlo, jhi, klo, khi]` (`all_vars` order
/// `[i, j, k]`, same as the dense GEMM leaf); args are `[A, B, C]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpmmLeaf;

impl Kernel for SpmmLeaf {
    fn name(&self) -> &str {
        "spmm"
    }

    fn execute(&self, ctx: &mut KernelCtx) {
        let s = &ctx.scalars;
        assert_eq!(s.len(), 6, "spmm bounds mismatch");
        let (ilo, ihi, jlo, jhi, klo, khi) = (s[0], s[1], s[2], s[3], s[4], s[5]);
        if ihi < ilo || jhi < jlo || khi < klo {
            return;
        }
        let b = tile2(&ctx.args[1], ilo, ihi, klo, khi);
        for r in 0..b.rows() {
            let i = ilo + r as i64;
            let (lo, hi) = b.row_range(r);
            for e in lo..hi {
                let bv = b.vals[e];
                let k = klo + b.crd[e];
                for j in jlo..=jhi {
                    let cv = ctx.args[2].at(&[k, j]);
                    ctx.args[0].add(&[i, j], bv * cv);
                }
            }
        }
    }
}

/// Sparse SDDMM leaf for `A(i,j) = B(i,j) * C(i,k) * D(k,j)` with B
/// compressed (the sampled dense-dense matrix multiply).
///
/// Task scalars carry `[ilo, ihi, jlo, jhi, klo, khi]` (`all_vars` order
/// `[i, j, k]`); args are `[A, B, C, D]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SddmmLeaf;

impl Kernel for SddmmLeaf {
    fn name(&self) -> &str {
        "sddmm"
    }

    fn execute(&self, ctx: &mut KernelCtx) {
        let s = &ctx.scalars;
        assert_eq!(s.len(), 6, "sddmm bounds mismatch");
        let (ilo, ihi, jlo, jhi, klo, khi) = (s[0], s[1], s[2], s[3], s[4], s[5]);
        if ihi < ilo || jhi < jlo || khi < klo {
            return;
        }
        let b = tile2(&ctx.args[1], ilo, ihi, jlo, jhi);
        for r in 0..b.rows() {
            let i = ilo + r as i64;
            let (lo, hi) = b.row_range(r);
            for e in lo..hi {
                let bv = b.vals[e];
                let j = jlo + b.crd[e];
                for k in klo..=khi {
                    let v = (bv * ctx.args[2].at(&[i, k])) * ctx.args[3].at(&[k, j]);
                    ctx.args[0].add(&[i, j], v);
                }
            }
        }
    }
}

/// Generated SpMV leaf for `a(i) = B(i,j) * c(j)` with B compressed:
/// the plan-time specialization of [`SpmvLeaf`]. Scans B's tile rows
/// directly (no CSR build), skipping entries with a zero bit pattern —
/// the exact stored-entry sequence of the CSR leaf — with the row base
/// and the output element hoisted out of the inner loop.
///
/// Task scalars carry `[ilo, ihi, jlo, jhi]`; args are `[a, B, c]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpmvGenLeaf;

impl Kernel for SpmvGenLeaf {
    fn name(&self) -> &str {
        "spmv.gen"
    }

    fn execute(&self, ctx: &mut KernelCtx) {
        let s = &ctx.scalars;
        assert_eq!(s.len(), 4, "spmv bounds mismatch");
        let (ilo, ihi, jlo, jhi) = (s[0], s[1], s[2], s[3]);
        if ihi < ilo || jhi < jlo {
            return;
        }
        let nj = (jhi - jlo + 1) as usize;
        let (y_arg, rest) = ctx.args.split_at_mut(1);
        let (y, b, x) = (&mut y_arg[0], &rest[0], &rest[1]);
        let b_cols = b.alloc.extent(1) as usize;
        let b_base = b.offset(&[ilo, jlo]);
        let x_base = x.offset(&[jlo]);
        let y_base = y.offset(&[ilo]);
        for r in 0..=(ihi - ilo) as usize {
            let row = &b.data[b_base + r * b_cols..b_base + r * b_cols + nj];
            let acc = &mut y.data[y_base + r];
            for (e, &bv) in row.iter().enumerate() {
                if bv.to_bits() == 0 {
                    continue;
                }
                *acc += bv * x.data[x_base + e];
            }
        }
    }
}

/// Generated SpMM leaf for `A(i,j) = B(i,k) * C(k,j)` with B compressed:
/// the plan-time specialization of [`SpmmLeaf`]. Loop order
/// `(i, stored k, j)` with contiguous row slices and no CSR build.
///
/// Task scalars carry `[ilo, ihi, jlo, jhi, klo, khi]`; args `[A, B, C]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpmmGenLeaf;

impl Kernel for SpmmGenLeaf {
    fn name(&self) -> &str {
        "spmm.gen"
    }

    fn execute(&self, ctx: &mut KernelCtx) {
        let s = &ctx.scalars;
        assert_eq!(s.len(), 6, "spmm bounds mismatch");
        let (ilo, ihi, jlo, jhi, klo, khi) = (s[0], s[1], s[2], s[3], s[4], s[5]);
        if ihi < ilo || jhi < jlo || khi < klo {
            return;
        }
        let (nj, nk) = ((jhi - jlo + 1) as usize, (khi - klo + 1) as usize);
        let (a_arg, rest) = ctx.args.split_at_mut(1);
        let (a, b, c) = (&mut a_arg[0], &rest[0], &rest[1]);
        let a_cols = a.alloc.extent(1) as usize;
        let b_cols = b.alloc.extent(1) as usize;
        let c_cols = c.alloc.extent(1) as usize;
        let a_base = a.offset(&[ilo, jlo]);
        let b_base = b.offset(&[ilo, klo]);
        let c_base = c.offset(&[klo, jlo]);
        for i in 0..=(ihi - ilo) as usize {
            let b_row = &b.data[b_base + i * b_cols..b_base + i * b_cols + nk];
            let a_row = &mut a.data[a_base + i * a_cols..a_base + i * a_cols + nj];
            for (e, &bv) in b_row.iter().enumerate() {
                if bv.to_bits() == 0 {
                    continue;
                }
                let c_row = &c.data[c_base + e * c_cols..c_base + e * c_cols + nj];
                for (av, &cv) in a_row.iter_mut().zip(c_row) {
                    *av += bv * cv;
                }
            }
        }
    }
}

/// Generated SDDMM leaf for `A(i,j) = B(i,j) * C(i,k) * D(k,j)` with B
/// compressed: the plan-time specialization of [`SddmmLeaf`]. Iterates
/// B's stored `(i,j)` entries with left-associated products, hoisting the
/// output element and C's row out of the `k` loop.
///
/// Task scalars carry `[ilo, ihi, jlo, jhi, klo, khi]`; args
/// `[A, B, C, D]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SddmmGenLeaf;

impl Kernel for SddmmGenLeaf {
    fn name(&self) -> &str {
        "sddmm.gen"
    }

    fn execute(&self, ctx: &mut KernelCtx) {
        let s = &ctx.scalars;
        assert_eq!(s.len(), 6, "sddmm bounds mismatch");
        let (ilo, ihi, jlo, jhi, klo, khi) = (s[0], s[1], s[2], s[3], s[4], s[5]);
        if ihi < ilo || jhi < jlo || khi < klo {
            return;
        }
        let (nj, nk) = ((jhi - jlo + 1) as usize, (khi - klo + 1) as usize);
        let (a_arg, rest) = ctx.args.split_at_mut(1);
        let (a, b, c, d) = (&mut a_arg[0], &rest[0], &rest[1], &rest[2]);
        let a_cols = a.alloc.extent(1) as usize;
        let b_cols = b.alloc.extent(1) as usize;
        let c_cols = c.alloc.extent(1) as usize;
        let d_cols = d.alloc.extent(1) as usize;
        let a_base = a.offset(&[ilo, jlo]);
        let b_base = b.offset(&[ilo, jlo]);
        let c_base = c.offset(&[ilo, klo]);
        let d_base = d.offset(&[klo, jlo]);
        for i in 0..=(ihi - ilo) as usize {
            let b_row = &b.data[b_base + i * b_cols..b_base + i * b_cols + nj];
            let c_row = &c.data[c_base + i * c_cols..c_base + i * c_cols + nk];
            for (e, &bv) in b_row.iter().enumerate() {
                if bv.to_bits() == 0 {
                    continue;
                }
                let a_off = a_base + i * a_cols + e;
                let mut acc = a.data[a_off];
                for (k, &cv) in c_row.iter().enumerate() {
                    acc += (bv * cv) * d.data[d_base + k * d_cols + e];
                }
                a.data[a_off] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distal_machine::geom::{Point, Rect};
    use distal_runtime::program::Privilege;

    fn arg(rect: Rect, data: Vec<f64>) -> KernelArg {
        KernelArg {
            privilege: Privilege::ReadWrite,
            rect: rect.clone(),
            alloc: rect,
            data,
        }
    }

    /// Deterministic data with explicit zeros at the given density.
    fn sparse_data(n: usize, seed: u64, density: f64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let keep = next() < density;
                let v = next() * 2.0 - 1.0;
                if keep {
                    v
                } else {
                    0.0
                }
            })
            .collect()
    }

    #[test]
    fn spmv_matches_dense() {
        let (m, n) = (7, 9);
        let b_dense = sparse_data(m * n, 3, 0.3);
        let x = sparse_data(n, 5, 1.0);
        let b = SparseBuffer::from_dense(&[m as i64, n as i64], &b_dense);
        let mut y = vec![0.0; m];
        spmv(&mut y, &b, &x);
        for i in 0..m {
            let mut want = 0.0;
            for j in 0..n {
                let v = b_dense[i * n + j];
                if v != 0.0 {
                    want += v * x[j];
                }
            }
            assert_eq!(y[i].to_bits(), want.to_bits());
        }
    }

    #[test]
    fn spmm_matches_dense_gemm_order() {
        let n = 6;
        let b_dense = sparse_data(n * n, 7, 0.4);
        let c = sparse_data(n * n, 11, 1.0);
        let b = SparseBuffer::from_dense(&[n as i64, n as i64], &b_dense);
        let mut a = vec![0.0; n * n];
        spmm(&mut a, &b, &c, n);
        // Dense GEMM in (i, k, j) order, skipping nothing.
        let mut want = vec![0.0; n * n];
        for i in 0..n {
            for k in 0..n {
                let bv = b_dense[i * n + k];
                for j in 0..n {
                    want[i * n + j] += bv * c[k * n + j];
                }
            }
        }
        for (g, w) in a.iter().zip(want.iter()) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn sddmm_matches_dense_interpreter_order() {
        let (m, n, kk) = (4, 5, 3);
        let b_dense = sparse_data(m * n, 13, 0.5);
        let c = sparse_data(m * kk, 17, 1.0);
        let d = sparse_data(kk * n, 19, 1.0);
        let b = SparseBuffer::from_dense(&[m as i64, n as i64], &b_dense);
        let mut a = vec![0.0; m * n];
        sddmm(&mut a, &b, &c, &d, kk);
        let mut want = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for k in 0..kk {
                    want[i * n + j] += (b_dense[i * n + j] * c[i * kk + k]) * d[k * n + j];
                }
            }
        }
        for (g, w) in a.iter().zip(want.iter()) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn spmm_leaf_partial_bounds() {
        // Only the [1,2]x[1,2]x[0,2] sub-block, like the dense leaf test.
        let sq = Rect::sized(&[4, 4]);
        let mut b_data = vec![1.0; 16];
        b_data[5] = 0.0; // (1,1) pruned from the sparse iteration
        let mut ctx = KernelCtx {
            args: vec![
                arg(sq.clone(), vec![0.0; 16]),
                arg(sq.clone(), b_data),
                arg(sq, vec![1.0; 16]),
            ],
            point: Point::zeros(2),
            scalars: vec![1, 2, 1, 2, 0, 2],
        };
        SpmmLeaf.execute(&mut ctx);
        let a = &ctx.args[0].data;
        assert_eq!(a[5], 2.0); // (1,1): k=0..2 minus the pruned (1,1) entry
        assert_eq!(a[10], 3.0); // (2,2): all three k
        assert_eq!(a[0], 0.0); // outside bounds untouched
    }

    #[test]
    fn spmv_leaf_accumulates_rows() {
        let mat = Rect::sized(&[3, 4]);
        let vec4 = Rect::sized(&[4]);
        let vec3 = Rect::sized(&[3]);
        #[rustfmt::skip]
        let b = vec![
            1.0, 0.0, 0.0, 2.0,
            0.0, 0.0, 0.0, 0.0,
            0.0, 3.0, 0.0, 0.0,
        ];
        let mut ctx = KernelCtx {
            args: vec![
                arg(vec3, vec![0.0; 3]),
                arg(mat, b),
                arg(vec4, vec![1.0, 10.0, 100.0, 1000.0]),
            ],
            point: Point::zeros(1),
            scalars: vec![0, 2, 0, 3],
        };
        SpmvLeaf.execute(&mut ctx);
        assert_eq!(ctx.args[0].data, vec![2001.0, 0.0, 30.0]);
    }

    /// A tile-shaped ctx over dense data for a statement with `n_args`
    /// square 2-D operands plus vectors where noted by `shapes`.
    fn ctx_from(shapes: &[&[i64]], seeds: &[u64], density: f64, scalars: Vec<i64>) -> KernelCtx {
        let args = shapes
            .iter()
            .zip(seeds)
            .map(|(dims, &seed)| {
                let rect = Rect::sized(dims);
                let vol = rect.volume() as usize;
                let data = if seed == 0 {
                    vec![0.0; vol]
                } else {
                    sparse_data(vol, seed, density)
                };
                arg(rect, data)
            })
            .collect();
        KernelCtx {
            args,
            point: Point::zeros(1),
            scalars,
        }
    }

    #[test]
    fn generated_leaves_match_csr_leaves_bitwise() {
        for density in [0.05, 0.5, 1.0] {
            // SpMV over a partial tile.
            let shapes: &[&[i64]] = &[&[6], &[6, 8], &[8]];
            let mut old = ctx_from(shapes, &[0, 21, 22], density, vec![1, 4, 2, 7]);
            let mut gen = ctx_from(shapes, &[0, 21, 22], density, vec![1, 4, 2, 7]);
            SpmvLeaf.execute(&mut old);
            SpmvGenLeaf.execute(&mut gen);
            assert_eq!(old.args[0].data, gen.args[0].data);
            // SpMM over a partial tile.
            let shapes: &[&[i64]] = &[&[5, 6], &[5, 7], &[7, 6]];
            let mut old = ctx_from(shapes, &[0, 31, 32], density, vec![1, 3, 0, 5, 2, 6]);
            let mut gen = ctx_from(shapes, &[0, 31, 32], density, vec![1, 3, 0, 5, 2, 6]);
            SpmmLeaf.execute(&mut old);
            SpmmGenLeaf.execute(&mut gen);
            for (o, g) in old.args[0].data.iter().zip(gen.args[0].data.iter()) {
                assert_eq!(o.to_bits(), g.to_bits());
            }
            // SDDMM over a partial tile.
            let shapes: &[&[i64]] = &[&[5, 6], &[5, 6], &[5, 4], &[4, 6]];
            let mut old = ctx_from(shapes, &[0, 41, 42, 43], density, vec![0, 4, 1, 5, 0, 3]);
            let mut gen = ctx_from(shapes, &[0, 41, 42, 43], density, vec![0, 4, 1, 5, 0, 3]);
            SddmmLeaf.execute(&mut old);
            SddmmGenLeaf.execute(&mut gen);
            for (o, g) in old.args[0].data.iter().zip(gen.args[0].data.iter()) {
                assert_eq!(o.to_bits(), g.to_bits());
            }
        }
    }

    #[test]
    fn generated_leaves_ignore_empty_bounds() {
        let sq = Rect::sized(&[2, 2]);
        let mut ctx = KernelCtx {
            args: vec![
                arg(sq.clone(), vec![0.0; 4]),
                arg(sq.clone(), vec![1.0; 4]),
                arg(sq, vec![1.0; 4]),
            ],
            point: Point::zeros(2),
            scalars: vec![0, 1, 0, 1, 1, 0],
        };
        SpmmGenLeaf.execute(&mut ctx);
        assert_eq!(ctx.args[0].data, vec![0.0; 4]);
    }

    #[test]
    fn empty_bounds_are_noops() {
        let sq = Rect::sized(&[2, 2]);
        let mut ctx = KernelCtx {
            args: vec![
                arg(sq.clone(), vec![0.0; 4]),
                arg(sq.clone(), vec![1.0; 4]),
                arg(sq, vec![1.0; 4]),
            ],
            point: Point::zeros(2),
            scalars: vec![0, 1, 0, 1, 1, 0],
        };
        SpmmLeaf.execute(&mut ctx);
        assert_eq!(ctx.args[0].data, vec![0.0; 4]);
    }
}
