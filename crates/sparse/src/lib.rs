//! Compressed tensor storage and sparse leaf kernels (the SpDISTAL layer).
//!
//! Pipeline layers 1 and 5 (storage formats, sparse leaves) —
//! `ARCHITECTURE.md` at the workspace root maps all six layers.
//!
//! DISTAL's sequel, *SpDISTAL: Compiling Distributed Sparse Tensor
//! Computations* (Yadav et al.), distributes sparse tensors through the
//! same scheduling and distribution language as the dense compiler; the
//! per-dimension level-format interface follows *Format Abstraction for
//! Sparse Tensor Algebra Compilers* (Chou et al.). This crate supplies the
//! storage half of that design for the rest of the workspace:
//!
//! * [`SparseBuffer`] — a CSR-style compressed buffer (`pos`/`crd`/`vals`
//!   arrays over the innermost dimension) with lossless dense↔sparse
//!   conversion and exact payload-byte accounting;
//! * [`kernels`] — sparse leaf kernels for SpMV, SpMM, and SDDMM, both as
//!   pure functions over [`SparseBuffer`]s and as
//!   [`distal_runtime::kernel::Kernel`] implementations the compiler
//!   substitutes at leaves whose operands are compressed. The kernels
//!   iterate only stored coordinates and are bit-identical to the dense
//!   leaves on the same data (skipped entries are exact zeros, whose
//!   products contribute `±0.0` that never changes an accumulator that is
//!   itself never `-0.0`);
//! * payload-size helpers ([`csr_payload_bytes`],
//!   [`estimated_payload_bytes`]) shared by the runtime's copy accounting
//!   and the SPMD backend's nnz-sized messages.

pub mod buffer;
pub mod kernels;

pub use buffer::{csr_payload_bytes, csr_payload_scale, estimated_payload_bytes, SparseBuffer};
pub use kernels::{SddmmGenLeaf, SddmmLeaf, SpmmGenLeaf, SpmmLeaf, SpmvGenLeaf, SpmvLeaf};

/// Bytes of one `pos` array entry (row offsets, `u64`-sized on the wire).
pub const POS_BYTES: u64 = 8;

/// Bytes of one `crd` array entry (stored coordinates, `i64`-sized).
pub const CRD_BYTES: u64 = 8;
