//! Property tests for the sparse storage layer: compression must be
//! lossless at every density, and the sparse kernels must agree bit for
//! bit with their dense zero-skipping references.

use distal_sparse::{csr_payload_bytes, SparseBuffer};
use proptest::prelude::*;

/// Deterministic data with explicit `+0.0` entries at roughly the given
/// per-mille density (mirrors the core crate's `sparse_random_data`
/// shape without depending on it).
fn thinned_data(n: usize, seed: u64, density_millis: u32) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    (0..n)
        .map(|_| {
            let keep = (next() % 1000) < density_millis as u64;
            let v = (next() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
            if keep {
                v
            } else {
                0.0
            }
        })
        .collect()
}

proptest! {
    /// dense -> compressed -> dense is bit-identical for every density in
    /// [0, 1], for vectors, matrices, and order-3 tensors.
    #[test]
    fn round_trip_is_lossless(
        rows in 1i64..10,
        cols in 1i64..14,
        depth in 1i64..4,
        order in 1usize..4,
        seed in 0u64..1_000_000,
        density_millis in 0u32..=1000,
    ) {
        let dims: Vec<i64> = match order {
            1 => vec![cols],
            2 => vec![rows, cols],
            _ => vec![rows, depth, cols],
        };
        let n = dims.iter().product::<i64>() as usize;
        let data = thinned_data(n, seed, density_millis);
        let s = SparseBuffer::from_dense(&dims, &data);
        let back = s.to_dense();
        prop_assert_eq!(back.len(), data.len());
        for (a, b) in data.iter().zip(back.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        // nnz agrees with a direct count and bounds the payload.
        let nnz = data.iter().filter(|v| v.to_bits() != 0).count() as u64;
        prop_assert_eq!(s.nnz(), nnz);
        let rows_lin = (n as i64 / dims.last().unwrap()) as u64;
        prop_assert_eq!(s.payload_bytes(), csr_payload_bytes(rows_lin, nnz));
    }

    /// The sparse SpMV kernel is bit-identical to a dense accumulation of
    /// the same data at any density.
    #[test]
    fn spmv_bit_identical_to_dense(
        m in 1usize..12,
        n in 1usize..12,
        seed in 0u64..1_000_000,
        density_millis in 0u32..=1000,
    ) {
        let b_dense = thinned_data(m * n, seed, density_millis);
        let x = thinned_data(n, seed ^ 0xABCD, 1000);
        let b = SparseBuffer::from_dense(&[m as i64, n as i64], &b_dense);
        let mut y = vec![0.0; m];
        distal_sparse::kernels::spmv(&mut y, &b, &x);
        let mut want = vec![0.0; m];
        for i in 0..m {
            for j in 0..n {
                let v = b_dense[i * n + j];
                if v.to_bits() != 0 {
                    want[i] += v * x[j];
                }
            }
        }
        for (g, w) in y.iter().zip(want.iter()) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    /// Compression saves bytes exactly when nnz is small: payload bytes
    /// are monotone in nnz and beat dense storage below the break-even
    /// density.
    #[test]
    fn payload_scales_with_nnz(
        rows in 1u64..32,
        cols in 1u64..32,
        nnz_a in 0u64..512,
        nnz_b in 0u64..512,
    ) {
        let volume = rows * cols;
        let (lo, hi) = (nnz_a.min(nnz_b).min(volume), nnz_a.max(nnz_b).min(volume));
        prop_assert!(csr_payload_bytes(rows, lo) <= csr_payload_bytes(rows, hi));
        // Below ~44% density (8 pos-amortized + 16 per entry vs 8 dense),
        // compression wins for reasonably long rows.
        if cols >= 8 && hi * 3 < volume {
            prop_assert!(csr_payload_bytes(rows, hi) < volume * 8);
        }
    }
}
