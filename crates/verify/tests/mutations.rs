//! Mutation testing of the static verifier against *real* lowered
//! programs: every Figure 9 algorithm (and a compressed SpMV/SpMM) must
//! verify clean under all three collective lowerings, and six classes of
//! deliberate corruption — dropped send, duplicated send, swapped tag,
//! out-of-bounds rectangle, aliased output write, cyclic wait — must each
//! be rejected with a diagnostic naming the offending rank/tensor/tag.
//!
//! The dropped-send case is the one the 60-second runtime watchdog
//! existed for; these tests prove it is now caught at plan time, before
//! anything runs.

use distal_algs::matmul::MatmulAlgorithm;
use distal_algs::setup::matmul_problem_on;
use distal_core::{verified_clean, DiagnosticKind, DistalMachine, Problem, Schedule, TensorSpec};
use distal_format::Format;
use distal_machine::grid::Grid;
use distal_machine::spec::{MachineSpec, MemKind, ProcKind};
use distal_spmd::{lower_problem, verify_program, CollectiveConfig, SpmdOp, SpmdProgram};

/// One Figure 9 matmul, lowered with the given collective configuration.
fn figure9(alg: MatmulAlgorithm, p: i64, n: i64, cfg: &CollectiveConfig) -> SpmdProgram {
    let (mut problem, schedule) = matmul_problem_on(
        alg,
        MachineSpec::small(p as usize),
        ProcKind::Cpu,
        MemKind::Sys,
        p,
        n,
        (n / 2).max(1),
    )
    .unwrap();
    problem.fill_random("B", 0xB).unwrap();
    problem.fill_random("C", 0xC).unwrap();
    lower_problem(&problem, &schedule, cfg).unwrap()
}

/// Compressed SpMV `a(i) = B(i,j) * c(j)` on a `p`-rank line: B ships
/// CSR payloads, exercising the nnz-sized byte accounting.
fn spmv(p: i64, n: i64, cfg: &CollectiveConfig) -> SpmdProgram {
    let machine = DistalMachine::flat(Grid::line(p), ProcKind::Cpu);
    let mut problem = Problem::new(MachineSpec::small(p.max(1) as usize), machine);
    problem.statement("a(i) = B(i,j) * c(j)").unwrap();
    problem
        .tensor(TensorSpec::new(
            "a",
            vec![n],
            Format::parse("x->x", MemKind::Sys).unwrap(),
        ))
        .unwrap();
    let mut b_home = Format::undistributed_in(MemKind::Global);
    b_home.levels = Format::parse_levels("xy->x", "ds", MemKind::Sys)
        .unwrap()
        .levels;
    problem
        .tensor(TensorSpec::new("B", vec![n, n], b_home))
        .unwrap();
    problem
        .tensor(TensorSpec::new(
            "c",
            vec![n],
            Format::undistributed_in(MemKind::Global),
        ))
        .unwrap();
    problem.fill_random_sparse("B", 0xB, 0.25).unwrap();
    problem.fill_random("c", 0xC).unwrap();
    let schedule = Schedule::new()
        .divide("i", "io", "ii", p)
        .reorder(&["io", "ii"])
        .distribute(&["io"]);
    lower_problem(&problem, &schedule, cfg).unwrap()
}

/// Compressed SUMMA SpMM on a `g × g` grid.
fn spmm(g: i64, n: i64, cfg: &CollectiveConfig) -> SpmdProgram {
    let machine = DistalMachine::flat(Grid::grid2(g, g), ProcKind::Cpu);
    let mut problem = Problem::new(MachineSpec::small((g * g) as usize), machine);
    problem.statement("A(i,j) = B(i,k) * C(k,j)").unwrap();
    let tiles = Format::parse("xy->xy", MemKind::Sys).unwrap();
    problem
        .tensor(TensorSpec::new("A", vec![n, n], tiles.clone()))
        .unwrap();
    problem
        .tensor(TensorSpec::new(
            "B",
            vec![n, n],
            Format::parse_levels("xy->xy", "ds", MemKind::Sys).unwrap(),
        ))
        .unwrap();
    problem
        .tensor(TensorSpec::new("C", vec![n, n], tiles))
        .unwrap();
    problem.fill_random_sparse("B", 0xB, 0.25).unwrap();
    problem.fill_random("C", 0xC).unwrap();
    lower_problem(&problem, &Schedule::summa(g, g, (n / g).max(1)), cfg).unwrap()
}

/// The three collective lowerings every program must stay clean under.
fn lowerings() -> [(&'static str, CollectiveConfig); 3] {
    [
        ("point-to-point", CollectiveConfig::point_to_point()),
        ("trees", CollectiveConfig::trees()),
        ("rings", CollectiveConfig::rings()),
    ]
}

#[test]
fn figure9_programs_verify_clean_under_all_lowerings() {
    for (name, cfg) in lowerings() {
        for alg in MatmulAlgorithm::all(4) {
            let program = figure9(alg, 4, 8, &cfg);
            let diags = verify_program(&program);
            assert!(
                verified_clean(&diags) && diags.is_empty(),
                "{alg:?} under {name}: {diags:?}"
            );
        }
        // Johnson's 3D reduction cube needs a cubic rank count.
        let program = figure9(MatmulAlgorithm::Johnson, 8, 8, &cfg);
        let diags = verify_program(&program);
        assert!(diags.is_empty(), "Johnson under {name}: {diags:?}");
    }
}

#[test]
fn sparse_programs_verify_clean_under_all_lowerings() {
    for (name, cfg) in lowerings() {
        let diags = verify_program(&spmv(4, 16, &cfg));
        assert!(diags.is_empty(), "SpMV under {name}: {diags:?}");
        let diags = verify_program(&spmm(2, 8, &cfg));
        assert!(diags.is_empty(), "SpMM under {name}: {diags:?}");
    }
}

/// Mutation 1 — drop one send. Previously only the threaded transport's
/// 60 s watchdog caught this (as a runtime `Timeout`); the verifier must
/// reject it statically, naming the receiver left blocked.
#[test]
fn mutation_dropped_send_is_a_lost_message() {
    let mut program = figure9(MatmulAlgorithm::Summa, 4, 8, &CollectiveConfig::trees());
    let lost = program.messages().first().map(|m| (**m).clone()).unwrap();
    let drop_it = |op: &SpmdOp| op.is_send() && op.message().is_some_and(|m| m.tag == lost.tag);
    for ops in &mut program.programs {
        ops.retain(|op| !drop_it(op));
    }
    program.global.retain(|(_, op)| !drop_it(op));

    let diags = verify_program(&program);
    assert!(!verified_clean(&diags));
    let d = diags
        .iter()
        .find(|d| d.kind == DiagnosticKind::LostMessage)
        .unwrap_or_else(|| panic!("expected a lost-message diagnostic: {diags:?}"));
    assert_eq!(d.rank, Some(lost.to), "must name the blocked receiver");
    assert_eq!(d.tag, Some(lost.tag));
    assert_eq!(d.tensor.as_deref(), Some(lost.tensor.as_str()));
}

/// Mutation 2 — duplicate a send: tag-keyed matching silently overwrites
/// one payload at execution time, so the verifier must reject the tag
/// collision.
#[test]
fn mutation_duplicated_send_is_a_duplicate_message() {
    let mut program = figure9(MatmulAlgorithm::Summa, 4, 8, &CollectiveConfig::trees());
    let dup_tag = program.messages().first().map(|m| m.tag).unwrap();
    for rank in 0..program.programs.len() {
        if let Some(op) = program.programs[rank]
            .iter()
            .find(|op| op.is_send() && op.message().is_some_and(|m| m.tag == dup_tag))
            .cloned()
        {
            program.programs[rank].push(op.clone());
            program.global.push((rank, op));
            break;
        }
    }
    let diags = verify_program(&program);
    assert!(diags
        .iter()
        .any(|d| d.kind == DiagnosticKind::DuplicateMessage && d.tag == Some(dup_tag)));
}

/// Mutation 3 — swap the tags of two sends with different rectangles:
/// both tags still match 1:1, but each pair now disagrees on identity.
#[test]
fn mutation_swapped_tags_are_a_mismatch() {
    let mut program = figure9(MatmulAlgorithm::Summa, 4, 8, &CollectiveConfig::trees());
    let (tag_a, tag_b) = {
        let msgs = program.messages();
        let first = msgs[0].clone();
        let other = msgs
            .iter()
            .find(|m| m.rect != first.rect)
            .expect("SUMMA moves differently shaped tiles")
            .tag;
        (first.tag, other)
    };
    let mut swapped = 0;
    for ops in program.programs.iter_mut() {
        for op in ops.iter_mut() {
            if let SpmdOp::Send(m) | SpmdOp::ReduceSend(m) = op {
                if m.tag == tag_a {
                    m.tag = tag_b;
                    swapped += 1;
                } else if m.tag == tag_b {
                    m.tag = tag_a;
                    swapped += 1;
                }
            }
        }
    }
    assert_eq!(swapped, 2, "both sends re-tagged");
    let diags = verify_program(&program);
    assert!(
        diags
            .iter()
            .any(|d| d.kind == DiagnosticKind::MessageMismatch
                && (d.tag == Some(tag_a) || d.tag == Some(tag_b))
                && d.rank.is_some()),
        "{diags:?}"
    );
}

/// Translates a rectangle by `d` along every dimension.
fn shift(r: &distal_machine::geom::Rect, d: i64) -> distal_machine::geom::Rect {
    use distal_machine::geom::{Point, Rect};
    Rect::new(
        Point::new(r.lo().coords().iter().map(|c| c + d).collect()),
        Point::new(r.hi().coords().iter().map(|c| c + d).collect()),
    )
}

/// Mutation 4 — skew one transfer's rectangle past the tensor's extent on
/// *both* endpoints (so matching stays agreeable): bounds must trip.
#[test]
fn mutation_out_of_bounds_rect_rejected() {
    let mut program = figure9(MatmulAlgorithm::Summa, 4, 8, &CollectiveConfig::trees());
    let bad_tag = program.messages().first().map(|m| m.tag).unwrap();
    let mut skewed = None;
    for ops in program.programs.iter_mut() {
        for op in ops.iter_mut() {
            if let SpmdOp::Send(m)
            | SpmdOp::Recv(m)
            | SpmdOp::ReduceSend(m)
            | SpmdOp::ReduceRecv(m) = op
            {
                if m.tag == bad_tag {
                    m.rect = shift(&m.rect, 1000);
                    skewed = Some((m.tensor.clone(), m.tag));
                }
            }
        }
    }
    let (tensor, tag) = skewed.expect("found the transfer to skew");
    let diags = verify_program(&program);
    let d = diags
        .iter()
        .find(|d| d.kind == DiagnosticKind::OutOfBounds)
        .unwrap_or_else(|| panic!("expected out-of-bounds: {diags:?}"));
    assert_eq!(d.tensor.as_deref(), Some(tensor.as_str()));
    assert_eq!(d.tag, Some(tag));
    assert!(d.rank.is_some());
}

/// Mutation 5 — alias an output: copy one rank's leaf onto another rank,
/// so two ranks write the same output rectangle of a non-reducing
/// program. The fold at gather time would silently double-count.
#[test]
fn mutation_aliased_output_write_is_a_hazard() {
    let mut program = figure9(MatmulAlgorithm::Summa, 4, 8, &CollectiveConfig::trees());
    assert!(!program.dist_reduces, "SUMMA reduces locally");
    let stolen = program.programs[0]
        .iter()
        .find(|op| matches!(op, SpmdOp::Compute { .. }))
        .cloned()
        .expect("rank 0 computes");
    program.programs[1].push(stolen.clone());
    program.global.push((1, stolen));
    let diags = verify_program(&program);
    let out = program.assignment.lhs.tensor.clone();
    assert!(
        diags.iter().any(|d| d.kind == DiagnosticKind::WriteHazard
            && d.tensor.as_deref() == Some(out.as_str())
            && d.rank.is_some()),
        "{diags:?}"
    );
}

/// Mutation 6 — build a cyclic wait: pick two 1:1-matched transfers in
/// opposite directions between a pair of ranks and hoist each receive
/// ahead of the opposing send. Matching stays clean; only the
/// happens-before cycle betrays the deadlock.
#[test]
fn mutation_cyclic_wait_is_a_deadlock() {
    let mut program = figure9(
        MatmulAlgorithm::Cannon,
        4,
        8,
        &CollectiveConfig::point_to_point(),
    );
    // Find ranks a, b with messages flowing both ways.
    let msgs: Vec<_> = program.messages().into_iter().cloned().collect();
    let (m1, m2) = msgs
        .iter()
        .find_map(|m1| {
            msgs.iter()
                .find(|m2| m1.from != m1.to && m2.from == m1.to && m2.to == m1.from)
                .map(|m2| (m1.clone(), m2.clone()))
        })
        .expect("Cannon shifts in both directions");
    // On each endpoint rank, move the receive of the opposing message to
    // the very front of its program — before its own send.
    for (rank, recv_tag) in [(m1.from, m2.tag), (m2.from, m1.tag)] {
        let ops = &mut program.programs[rank];
        let pos = ops
            .iter()
            .position(|op| !op.is_send() && op.message().is_some_and(|m| m.tag == recv_tag))
            .expect("the receive exists on this rank");
        let recv = ops.remove(pos);
        ops.insert(0, recv);
    }
    let diags = verify_program(&program);
    let d = diags
        .iter()
        .find(|d| d.kind == DiagnosticKind::Deadlock)
        .unwrap_or_else(|| panic!("expected a deadlock diagnostic: {diags:?}"));
    assert!(d.rank.is_some() && d.tag.is_some(), "{d}");
}
