//! Pass 1 — communication matching.
//!
//! Every transfer in a well-formed program is a 1:1 tag-matched pair: one
//! send and one receive agreeing on endpoints, tensor, rectangle, byte
//! count, and fold semantics. Both transports rely on this literally —
//! the sequential VM's pending map and the threaded transport's per-rank
//! stash are keyed by tag alone, and an `insert` on an existing key
//! silently overwrites. So a duplicate tag is not a style issue: it is a
//! payload that vanishes. A receive without a send is the *lost message*
//! the 60-second runtime watchdog exists for; this pass catches it before
//! anything runs.

use crate::{Event, Msg, VerifyProgram};
use distal_core::{Diagnostic, DiagnosticKind};

/// One communication endpoint: where in the program a message is sent or
/// received.
struct Endpoint<'p> {
    rank: usize,
    msg: &'p Msg,
}

/// Checks that every tag names exactly one send and one receive, and
/// that the pair agrees on every field of the transfer's identity.
///
/// Runs as a merge walk over two tag-sorted endpoint vectors rather than
/// per-tag maps: this pass sits on the plan path of every `Backend::plan`
/// call, so it stays allocation-light.
pub fn check(program: &VerifyProgram) -> Vec<Diagnostic> {
    let mut sends: Vec<Endpoint<'_>> = Vec::new();
    let mut recvs: Vec<Endpoint<'_>> = Vec::new();
    for (rank, events) in program.ranks.iter().enumerate() {
        for ev in events {
            match ev {
                Event::Send(m) => sends.push(Endpoint { rank, msg: m }),
                Event::Recv(m) => recvs.push(Endpoint { rank, msg: m }),
                _ => {}
            }
        }
    }
    sends.sort_by_key(|e| e.msg.tag);
    recvs.sort_by_key(|e| e.msg.tag);

    // Advances past the group of endpoints sharing the front tag.
    fn take_group<'a, 'p>(v: &'a [Endpoint<'p>], tag: u64) -> (&'a [Endpoint<'p>], usize) {
        let len = v.iter().take_while(|e| e.msg.tag == tag).count();
        (&v[..len], len)
    }

    let mut diags = Vec::new();
    let (mut si, mut ri) = (0usize, 0usize);
    while si < sends.len() || ri < recvs.len() {
        let tag = match (sends.get(si), recvs.get(ri)) {
            (Some(s), Some(r)) => s.msg.tag.min(r.msg.tag),
            (Some(s), None) => s.msg.tag,
            (None, Some(r)) => r.msg.tag,
            (None, None) => break,
        };
        let (s, sn) = if sends.get(si).is_some_and(|e| e.msg.tag == tag) {
            take_group(&sends[si..], tag)
        } else {
            (&[][..], 0)
        };
        let (r, rn) = if recvs.get(ri).is_some_and(|e| e.msg.tag == tag) {
            take_group(&recvs[ri..], tag)
        } else {
            (&[][..], 0)
        };
        si += sn;
        ri += rn;
        match (s.len(), r.len()) {
            (0, _) => {
                // The watchdog case, caught statically: the receiver
                // blocks forever on a payload nobody injects.
                let e = &r[0];
                diags.push(
                    Diagnostic::error(
                        DiagnosticKind::LostMessage,
                        format!(
                            "receive of {}[{}] on rank {} (from rank {}) has no matching send; \
                             the receiver blocks forever",
                            e.msg.tensor, e.msg.rect, e.rank, e.msg.peer
                        ),
                    )
                    .with_rank(e.rank)
                    .with_tensor(&e.msg.tensor)
                    .with_tag(tag),
                );
            }
            (_, 0) => {
                let e = &s[0];
                diags.push(
                    Diagnostic::error(
                        DiagnosticKind::OrphanMessage,
                        format!(
                            "send of {}[{}] from rank {} (to rank {}) has no matching receive; \
                             the payload leaks",
                            e.msg.tensor, e.msg.rect, e.rank, e.msg.peer
                        ),
                    )
                    .with_rank(e.rank)
                    .with_tensor(&e.msg.tensor)
                    .with_tag(tag),
                );
            }
            (ns, nr) if ns > 1 || nr > 1 => {
                // Tag-keyed stashes insert-overwrite: one of these
                // payloads silently disappears at execution time.
                let first = if ns > 1 { &s[0] } else { &r[0] };
                let ranks: Vec<usize> = if ns > 1 {
                    s.iter().map(|e| e.rank).collect()
                } else {
                    r.iter().map(|e| e.rank).collect()
                };
                diags.push(
                    Diagnostic::error(
                        DiagnosticKind::DuplicateMessage,
                        format!(
                            "{} {}s share tag {tag} on tensor '{}' (ranks {ranks:?}); tag-keyed \
                             matching silently drops all but one payload",
                            ranks.len(),
                            if ns > 1 { "send" } else { "receive" },
                            first.msg.tensor,
                        ),
                    )
                    .with_rank(first.rank)
                    .with_tensor(&first.msg.tensor)
                    .with_tag(tag),
                );
            }
            _ => {
                let (se, re) = (&s[0], &r[0]);
                if let Some(why) = pair_mismatch(se, re) {
                    diags.push(
                        Diagnostic::error(
                            DiagnosticKind::MessageMismatch,
                            format!(
                                "send on rank {} and receive on rank {} share tag {tag} but \
                                 disagree on {why}",
                                se.rank, re.rank
                            ),
                        )
                        .with_rank(re.rank)
                        .with_tensor(&se.msg.tensor)
                        .with_tag(tag),
                    );
                }
            }
        }
    }
    diags
}

/// Why a matched send/receive pair disagrees, if it does.
fn pair_mismatch(s: &Endpoint<'_>, r: &Endpoint<'_>) -> Option<String> {
    if s.msg.peer != r.rank || r.msg.peer != s.rank {
        return Some(format!(
            "endpoints: send targets rank {} but the receive sits on rank {} expecting rank {}",
            s.msg.peer, r.rank, r.msg.peer
        ));
    }
    if s.msg.tensor != r.msg.tensor {
        return Some(format!(
            "the tensor: '{}' sent, '{}' expected",
            s.msg.tensor, r.msg.tensor
        ));
    }
    if s.msg.rect != r.msg.rect {
        return Some(format!(
            "the rectangle: [{}] sent, [{}] expected",
            s.msg.rect, r.msg.rect
        ));
    }
    if s.msg.bytes != r.msg.bytes {
        return Some(format!(
            "the byte count: {} sent, {} expected",
            s.msg.bytes, r.msg.bytes
        ));
    }
    if s.msg.fold != r.msg.fold {
        return Some("fold semantics: one side reduces, the other lands".into());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{clean_pair, msg, rect2};

    #[test]
    fn clean_pair_matches() {
        assert!(check(&clean_pair()).is_empty());
    }

    #[test]
    fn dropped_send_is_a_lost_message() {
        let mut p = clean_pair();
        p.ranks[0].retain(|e| !matches!(e, Event::Send(_)));
        let diags = check(&p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].kind, DiagnosticKind::LostMessage);
        assert_eq!(diags[0].rank, Some(1));
        assert_eq!(diags[0].tag, Some(1));
        assert_eq!(diags[0].tensor.as_deref(), Some("B"));
    }

    #[test]
    fn dropped_recv_is_an_orphan() {
        let mut p = clean_pair();
        p.ranks[1].retain(|e| !matches!(e, Event::Recv(_)));
        let diags = check(&p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, DiagnosticKind::OrphanMessage);
        assert_eq!(diags[0].rank, Some(0));
    }

    #[test]
    fn duplicate_tag_flagged() {
        let mut p = clean_pair();
        let dup = Event::Send(msg(1, 1, "B", rect2((0, 0), (1, 3))));
        p.ranks[0].insert(0, dup);
        let diags = check(&p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, DiagnosticKind::DuplicateMessage);
        assert_eq!(diags[0].tag, Some(1));
    }

    #[test]
    fn skewed_rect_is_a_mismatch() {
        let mut p = clean_pair();
        for e in &mut p.ranks[0] {
            if let Event::Send(m) = e {
                m.rect = rect2((0, 0), (0, 3));
                m.bytes = m.rect.volume() as u64 * 8;
            }
        }
        let diags = check(&p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, DiagnosticKind::MessageMismatch);
        assert!(diags[0].message.contains("rectangle"), "{}", diags[0]);
    }

    #[test]
    fn crossed_endpoints_are_a_mismatch() {
        let mut p = clean_pair();
        for e in &mut p.ranks[0] {
            if let Event::Send(m) = e {
                m.peer = 0; // claims to target itself; the recv sits on rank 1
            }
        }
        let diags = check(&p);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, DiagnosticKind::MessageMismatch);
        assert!(diags[0].message.contains("endpoints"), "{}", diags[0]);
    }
}
