//! Pass 0 — shape and bounds legality.
//!
//! The cheapest errors to catch are the geometric ones: a message or task
//! rectangle escaping its tensor's extents, a peer outside the launch
//! domain, a tensor nobody declared. This pass also proves *byte
//! conservation*: for every tensor, the bytes injected by sends equal the
//! bytes consumed by receives. Collective re-lowerings (tree/ring) are
//! allowed to add relay hops, but each hop is itself a matched pair, so
//! conservation holds per tensor across all three lowerings — an
//! imbalance means a re-lowering forged or swallowed a payload.

use crate::{Event, Msg, VerifyProgram};
use distal_core::{Diagnostic, DiagnosticKind};
use std::collections::BTreeMap;

/// Checks peers against the launch domain, rectangles against tensor
/// extents, and per-tensor byte conservation.
pub fn check(program: &VerifyProgram) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // sent/received bytes per tensor.
    let mut flow: BTreeMap<&str, (u64, u64)> = BTreeMap::new();

    for (rank, events) in program.ranks.iter().enumerate() {
        for ev in events {
            match ev {
                Event::Send(m) | Event::Recv(m) => {
                    let dir = if matches!(ev, Event::Send(_)) {
                        "send"
                    } else {
                        "receive"
                    };
                    if m.peer >= program.rank_count() {
                        diags.push(
                            Diagnostic::error(
                                DiagnosticKind::OutOfBounds,
                                format!(
                                    "{dir} on rank {rank} names peer rank {} but the launch \
                                     domain has {} ranks",
                                    m.peer,
                                    program.rank_count()
                                ),
                            )
                            .with_rank(rank)
                            .with_tensor(&m.tensor)
                            .with_tag(m.tag),
                        );
                    }
                    diags.extend(check_rect(program, rank, &m.tensor, &m.rect, dir, Some(m)));
                    let f = flow.entry(m.tensor.as_str()).or_default();
                    match ev {
                        Event::Send(_) => f.0 += m.bytes,
                        _ => f.1 += m.bytes,
                    }
                }
                Event::Task { accesses } => {
                    for a in accesses {
                        if a.rect.is_empty() {
                            continue; // clamped-away leaf: legal, touches nothing
                        }
                        let what = if a.write { "task write" } else { "task read" };
                        diags.extend(check_rect(program, rank, &a.tensor, &a.rect, what, None));
                    }
                }
                Event::Fence => {}
            }
        }
    }

    for (tensor, (sent, recvd)) in flow {
        if sent != recvd {
            diags.push(
                Diagnostic::error(
                    DiagnosticKind::ByteImbalance,
                    format!(
                        "tensor '{tensor}' sends {sent} bytes but receives {recvd}; \
                         a re-lowering forged or swallowed a payload"
                    ),
                )
                .with_tensor(tensor),
            );
        }
    }
    diags
}

/// One rectangle against its tensor's declared extents.
fn check_rect(
    program: &VerifyProgram,
    rank: usize,
    tensor: &str,
    rect: &distal_machine::geom::Rect,
    what: &str,
    msg: Option<&Msg>,
) -> Vec<Diagnostic> {
    let tag = msg.map(|m| m.tag);
    let attach = |d: Diagnostic| {
        let d = d.with_rank(rank).with_tensor(tensor);
        match tag {
            Some(t) => d.with_tag(t),
            None => d,
        }
    };
    let Some(extent) = program.tensors.get(tensor) else {
        return vec![attach(Diagnostic::error(
            DiagnosticKind::Malformed,
            format!("{what} on rank {rank} touches undeclared tensor '{tensor}'"),
        ))];
    };
    if rect.dim() != extent.dim() {
        return vec![attach(Diagnostic::error(
            DiagnosticKind::Malformed,
            format!(
                "{what} on rank {rank} uses a {}-d rectangle on {}-d tensor '{tensor}'",
                rect.dim(),
                extent.dim()
            ),
        ))];
    }
    if !extent.contains_rect(rect) {
        return vec![attach(Diagnostic::error(
            DiagnosticKind::OutOfBounds,
            format!(
                "{what} on rank {rank} touches {tensor}[{rect}] outside the tensor's \
                 extent [{extent}]"
            ),
        ))];
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{clean_pair, msg, rect2};

    #[test]
    fn clean_pair_is_in_bounds() {
        assert!(check(&clean_pair()).is_empty());
    }

    #[test]
    fn rect_past_the_extent_is_out_of_bounds() {
        let mut p = clean_pair();
        // Skew both endpoints so matching stays clean; bounds still trips.
        for events in &mut p.ranks {
            for ev in events {
                if let Event::Send(m) | Event::Recv(m) = ev {
                    m.rect = rect2((3, 0), (4, 3));
                }
            }
        }
        let diags = check(&p);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.kind == DiagnosticKind::OutOfBounds));
        assert_eq!(diags[0].tensor.as_deref(), Some("B"));
        assert_eq!(diags[0].tag, Some(1));
    }

    #[test]
    fn peer_outside_the_launch_domain_flagged() {
        let mut p = clean_pair();
        if let Event::Send(m) = &mut p.ranks[0][0] {
            m.peer = 7;
        }
        let diags = check(&p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].kind, DiagnosticKind::OutOfBounds);
        assert!(diags[0].message.contains("launch domain"), "{}", diags[0]);
    }

    #[test]
    fn undeclared_tensor_is_malformed() {
        let mut p = clean_pair();
        p.ranks[0].push(Event::Send(msg(9, 1, "Z", rect2((0, 0), (0, 0)))));
        p.ranks[1].push(Event::Recv(msg(9, 0, "Z", rect2((0, 0), (0, 0)))));
        let diags = check(&p);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.kind == DiagnosticKind::Malformed));
    }

    #[test]
    fn unbalanced_bytes_flagged() {
        let mut p = clean_pair();
        if let Event::Send(m) = &mut p.ranks[0][0] {
            m.bytes += 8; // lies about the payload size on one side only
        }
        let diags = check(&p);
        assert!(diags
            .iter()
            .any(|d| d.kind == DiagnosticKind::ByteImbalance && d.tensor.as_deref() == Some("B")));
    }
}
