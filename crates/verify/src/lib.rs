//! Plan-time static verification of message-passing programs.
//!
//! DISTAL's SPMD backend lowers every schedule to a *static* program:
//! per-rank lists of tagged sends/receives, leaf tasks, and scratch
//! fences. The paper argues such programs cannot deadlock because the
//! lowering emits a global linearization — but until this crate, that
//! invariant was only enforced dynamically, by the threaded transport's
//! watchdog turning a lost message into an `SpmdError::Timeout` after 60
//! seconds. This crate makes the invariant (and three more) *checkable at
//! plan time*, once per `PlanCache` entry, free per bind:
//!
//! 1. **Communication matching** ([`comm`]) — every tagged receive has
//!    exactly one matching send with identical (tensor, rect, endpoints,
//!    bytes, fold semantics); no orphan sends, no duplicate tags.
//! 2. **Deadlock freedom** ([`order`]) — the cross-rank happens-before
//!    graph (per-rank program order plus send→receive edges) is acyclic.
//! 3. **Buffer hazards** ([`hazard`]) — no write-write overlaps on
//!    intersecting rectangles of the same tensor across ranks (unless
//!    the program reduces), and no unordered landings within a scratch
//!    generation.
//! 4. **Shape/bounds legality** ([`bounds`]) — message rectangles and
//!    task accesses fit their tensors' extents, peers fit the launch
//!    domain, and per-tensor bytes are conserved (sent == received).
//!
//! The verifier is deliberately independent of `distal-spmd` (which
//! calls it from `SpmdBackend::plan`): it analyzes a generic event IR
//! ([`VerifyProgram`]) that any message-passing lowering can adapt to.
//! Findings surface as structured [`Diagnostic`]s naming the offending
//! rank/tensor/tag.

pub mod bounds;
pub mod comm;
pub mod hazard;
pub mod order;

use distal_core::Diagnostic;
use distal_machine::geom::Rect;
use std::collections::BTreeMap;

pub use distal_core::{verified_clean, DiagnosticKind, Severity};

/// The identity of one tagged transfer, as seen from one endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Msg {
    /// The matching key: globally unique per transfer in a well-formed
    /// program.
    pub tag: u64,
    /// The other endpoint: destination rank for sends, source rank for
    /// receives.
    pub peer: usize,
    /// The tensor whose cells travel.
    pub tensor: String,
    /// The rectangle of the tensor being moved.
    pub rect: Rect,
    /// Wire bytes of the payload.
    pub bytes: u64,
    /// True when the payload *folds* (`+=`) into the destination —
    /// reduction relays and output gathers — rather than landing as a
    /// fresh copy. Folds may legally overlap; landings may not.
    pub fold: bool,
}

/// One tensor access of a leaf task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Access {
    /// The tensor accessed.
    pub tensor: String,
    /// The rectangle touched.
    pub rect: Rect,
    /// True for writes (the task's output), false for reads.
    pub write: bool,
}

/// One event in a rank's program, in execution order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// Inject a tagged payload toward `msg.peer` (never blocks).
    Send(Msg),
    /// Block until the payload tagged `msg.tag` arrives from `msg.peer`.
    Recv(Msg),
    /// Run a leaf task over the listed accesses.
    Task {
        /// Every tensor rectangle the task touches.
        accesses: Vec<Access>,
    },
    /// A scratch-generation boundary (the SPMD `RetireScratch`): landings
    /// before the fence are retired, so overlap checks reset here.
    Fence,
}

impl Event {
    /// The message carried by communication events.
    pub fn msg(&self) -> Option<&Msg> {
        match self {
            Event::Send(m) | Event::Recv(m) => Some(m),
            _ => None,
        }
    }
}

/// A whole program in the verifier's event IR: per-rank event lists plus
/// the tensor extents they operate over.
#[derive(Clone, Debug)]
pub struct VerifyProgram {
    /// Full extent rectangle of every tensor (`Rect::sized(dims)`).
    pub tensors: BTreeMap<String, Rect>,
    /// One event list per rank, in program order. The launch domain is
    /// `0..ranks.len()`.
    pub ranks: Vec<Vec<Event>>,
    /// True when distributed loops reduce: different ranks then legally
    /// write overlapping output rectangles (contributions fold).
    pub reduces: bool,
}

impl VerifyProgram {
    /// Number of ranks (the launch domain).
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }
}

/// Runs all four verification passes over `program`, returning every
/// finding (error and warning severity), most fundamental first: shape
/// legality, communication matching, deadlock freedom, buffer hazards.
///
/// An empty result proves the program well-formed under this crate's
/// model; any error-severity finding means executing it would hang,
/// corrupt data, or touch memory out of bounds.
pub fn verify(program: &VerifyProgram) -> Vec<Diagnostic> {
    let mut diags = bounds::check(program);
    diags.extend(comm::check(program));
    diags.extend(order::check(program));
    diags.extend(hazard::check(program));
    diags
}

#[cfg(test)]
pub(crate) mod fixtures {
    use super::*;
    use distal_machine::geom::{Point, Rect};

    pub fn rect2(lo: (i64, i64), hi: (i64, i64)) -> Rect {
        Rect::new(Point::new(vec![lo.0, lo.1]), Point::new(vec![hi.0, hi.1]))
    }

    pub fn msg(tag: u64, peer: usize, tensor: &str, rect: Rect) -> Msg {
        let bytes = rect.volume().max(0) as u64 * 8;
        Msg {
            tag,
            peer,
            tensor: tensor.into(),
            rect,
            bytes,
            fold: false,
        }
    }

    /// A minimal clean two-rank program over one 4×4 tensor `B` and an
    /// output `A`: rank 0 sends its half of `B` to rank 1, both compute
    /// disjoint halves of `A`.
    pub fn clean_pair() -> VerifyProgram {
        let b_full = rect2((0, 0), (3, 3));
        let a_full = rect2((0, 0), (3, 3));
        let b_lo = rect2((0, 0), (1, 3));
        let a_lo = rect2((0, 0), (1, 3));
        let a_hi = rect2((2, 0), (3, 3));
        let mut tensors = BTreeMap::new();
        tensors.insert("B".to_string(), b_full);
        tensors.insert("A".to_string(), a_full);
        let r0 = vec![
            Event::Send(msg(1, 1, "B", b_lo.clone())),
            Event::Task {
                accesses: vec![
                    Access {
                        tensor: "A".into(),
                        rect: a_lo,
                        write: true,
                    },
                    Access {
                        tensor: "B".into(),
                        rect: b_lo.clone(),
                        write: false,
                    },
                ],
            },
            Event::Fence,
        ];
        let r1 = vec![
            Event::Recv(msg(1, 0, "B", b_lo.clone())),
            Event::Task {
                accesses: vec![
                    Access {
                        tensor: "A".into(),
                        rect: a_hi,
                        write: true,
                    },
                    Access {
                        tensor: "B".into(),
                        rect: b_lo,
                        write: false,
                    },
                ],
            },
            Event::Fence,
        ];
        VerifyProgram {
            tensors,
            ranks: vec![r0, r1],
            reduces: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures::clean_pair;
    use super::*;

    #[test]
    fn clean_program_verifies_clean() {
        let diags = verify(&clean_pair());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn empty_program_is_fine() {
        let p = VerifyProgram {
            tensors: BTreeMap::new(),
            ranks: vec![Vec::new(); 4],
            reduces: false,
        };
        assert!(verify(&p).is_empty());
    }
}
