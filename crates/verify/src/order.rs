//! Pass 2 — deadlock freedom.
//!
//! Sends never block (channels are unbounded), so a rank can only wait on
//! a receive. Execution therefore deadlocks exactly when the cross-rank
//! *happens-before* graph — per-rank program order plus one edge from
//! every send to its matching receive — contains a cycle: each rank in
//! the cycle sits on a receive whose sender sits behind a receive of its
//! own. A well-formed lowering emits a global linearization of this
//! graph, so its existence proves acyclicity; this pass re-proves it from
//! the per-rank programs alone (a Kahn topological sort), without
//! trusting the lowering.

use crate::{Event, VerifyProgram};
use distal_core::{Diagnostic, DiagnosticKind};

/// Checks the happens-before graph for cycles. On a cycle, reports one
/// [`DiagnosticKind::Deadlock`] per blocked rank, naming the tag its
/// earliest stuck receive waits on.
///
/// Tags that failed 1:1 matching contribute no cross edge — their
/// diagnostics come from [`crate::comm`]; this pass still orders the
/// events around them.
pub fn check(program: &VerifyProgram) -> Vec<Diagnostic> {
    // Node ids: events of rank r start at base[r].
    let mut base = Vec::with_capacity(program.ranks.len());
    let mut total = 0usize;
    for events in &program.ranks {
        base.push(total);
        total += events.len();
    }
    if total == 0 {
        return Vec::new();
    }

    // The graph is almost a disjoint union of chains: within a rank the
    // successor of node `n` is `n + 1` (implicit — no adjacency list
    // needed), and a cleanly 1:1-matched tag adds exactly one cross edge
    // from its send node to its recv node. Both fit flat arrays, keeping
    // this pass allocation-light on the plan path.
    let mut last_in_rank = vec![false; total];
    for (rank, events) in program.ranks.iter().enumerate() {
        if !events.is_empty() {
            last_in_rank[base[rank] + events.len() - 1] = true;
        }
    }

    // tag -> (multiplicity, node) per side; sorted merge finds the 1:1
    // matches (only those add the cross edge).
    let mut send_node: Vec<(u64, usize)> = Vec::new();
    let mut recv_node: Vec<(u64, usize)> = Vec::new();
    for (rank, events) in program.ranks.iter().enumerate() {
        for (i, ev) in events.iter().enumerate() {
            let node = base[rank] + i;
            match ev {
                Event::Send(m) => send_node.push((m.tag, node)),
                Event::Recv(m) => recv_node.push((m.tag, node)),
                _ => {}
            }
        }
    }
    send_node.sort_unstable();
    recv_node.sort_unstable();

    let mut cross = vec![usize::MAX; total]; // send node -> matched recv node
    let mut indeg: Vec<usize> = vec![0; total];
    for (rank, events) in program.ranks.iter().enumerate() {
        for i in 1..events.len() {
            indeg[base[rank] + i] = 1;
        }
    }
    let (mut si, mut ri) = (0usize, 0usize);
    while si < send_node.len() && ri < recv_node.len() {
        let (stag, rtag) = (send_node[si].0, recv_node[ri].0);
        if stag < rtag {
            si += 1;
            continue;
        }
        if rtag < stag {
            ri += 1;
            continue;
        }
        let sn = send_node[si..]
            .iter()
            .take_while(|(t, _)| *t == stag)
            .count();
        let rn = recv_node[ri..]
            .iter()
            .take_while(|(t, _)| *t == rtag)
            .count();
        if sn == 1 && rn == 1 {
            cross[send_node[si].1] = recv_node[ri].1;
            indeg[recv_node[ri].1] += 1;
        }
        si += sn;
        ri += rn;
    }

    // Kahn's algorithm: if every node retires, the graph is acyclic.
    let mut queue: Vec<usize> = (0..total).filter(|&n| indeg[n] == 0).collect();
    let mut retired = 0usize;
    while let Some(n) = queue.pop() {
        retired += 1;
        if !last_in_rank[n] {
            let s = n + 1;
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push(s);
            }
        }
        if cross[n] != usize::MAX {
            let s = cross[n];
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push(s);
            }
        }
    }
    if retired == total {
        return Vec::new();
    }

    // A cycle. Name each blocked rank's earliest unretired receive: that
    // is the op the rank would visibly hang on.
    let mut diags = Vec::new();
    for (rank, events) in program.ranks.iter().enumerate() {
        let stuck = events
            .iter()
            .enumerate()
            .find(|(i, ev)| indeg[base[rank] + i] > 0 && matches!(ev, Event::Recv(_)));
        if let Some((i, Event::Recv(m))) = stuck {
            diags.push(
                Diagnostic::error(
                    DiagnosticKind::Deadlock,
                    format!(
                        "cyclic wait: rank {rank} blocks at op {i} on tag {} from rank {}, \
                         which transitively waits on rank {rank}",
                        m.tag, m.peer
                    ),
                )
                .with_rank(rank)
                .with_tensor(&m.tensor)
                .with_tag(m.tag),
            );
        }
    }
    if diags.is_empty() {
        // Unreachable in practice (a cycle must pass through a cross
        // edge, whose head is a receive), but never report nothing when
        // the sort failed.
        diags.push(Diagnostic::error(
            DiagnosticKind::Deadlock,
            format!(
                "happens-before graph has a cycle ({} events unordered)",
                total - retired
            ),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{clean_pair, msg, rect2};

    #[test]
    fn clean_pair_is_acyclic() {
        assert!(check(&clean_pair()).is_empty());
    }

    #[test]
    fn crossed_waits_deadlock() {
        // rank 0: recv(t2 from 1); send(t1 to 1)
        // rank 1: recv(t1 from 0); send(t2 to 0)  -> classic 2-cycle.
        let mut p = clean_pair();
        let r = rect2((0, 0), (1, 3));
        p.ranks[0] = vec![
            Event::Recv(msg(2, 1, "B", r.clone())),
            Event::Send(msg(1, 1, "B", r.clone())),
        ];
        p.ranks[1] = vec![
            Event::Recv(msg(1, 0, "B", r.clone())),
            Event::Send(msg(2, 0, "B", r)),
        ];
        let diags = check(&p);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.kind == DiagnosticKind::Deadlock));
        assert_eq!(diags[0].rank, Some(0));
        assert_eq!(diags[0].tag, Some(2));
        assert_eq!(diags[1].rank, Some(1));
        assert_eq!(diags[1].tag, Some(1));
    }

    #[test]
    fn recv_before_its_own_send_on_one_rank_deadlocks() {
        // A self-inflicted cycle through program order: the rank waits
        // for a tag it would itself send two ops later.
        let mut p = clean_pair();
        let r = rect2((0, 0), (1, 3));
        p.ranks[0] = vec![
            Event::Recv(msg(9, 1, "B", r.clone())),
            Event::Send(msg(1, 1, "B", r.clone())),
        ];
        p.ranks[1] = vec![
            Event::Recv(msg(1, 0, "B", r.clone())),
            Event::Send(msg(9, 0, "B", r)),
        ];
        // This *is* the crossed wait again seen from the tag's side;
        // sanity-check that matching alone would pass it.
        assert!(crate::comm::check(&p).is_empty());
        assert!(!check(&p).is_empty());
    }
}
