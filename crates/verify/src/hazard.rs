//! Pass 3 — buffer-hazard detection.
//!
//! Ranks share no memory, so the hazards here are *semantic* races over
//! the logical tensor state, the exact conditions under which the
//! threaded transport's "any interleaving is bit-identical" argument
//! breaks down:
//!
//! * **Cross-rank write-write** — two ranks' leaf tasks write overlapping
//!   rectangles of the same tensor in a program without reduction
//!   semantics. The final gather *folds* contributions, so overlapping
//!   writes double-count: silent numeric corruption, no crash.
//! * **Unordered landings** — two non-fold receives land overlapping
//!   rectangles of one tensor within the same scratch generation (between
//!   fences). Lookups then depend on stash/arrival order, which the
//!   threaded transport does not fix.
//! * **Landing shadowing a read** (warning) — a payload lands over a
//!   rectangle a task already read in the same generation; legal under
//!   per-rank program order, but a refactoring hazard worth surfacing.

use crate::{Event, VerifyProgram};
use distal_core::{Diagnostic, DiagnosticKind};
use distal_machine::geom::Rect;
use std::collections::{BTreeMap, BTreeSet};

/// Checks for write-write and unordered read-write overlaps. See the
/// module docs for the three conditions.
pub fn check(program: &VerifyProgram) -> Vec<Diagnostic> {
    let mut diags = cross_rank_writes(program);
    diags.extend(landings(program));
    diags
}

/// All task-write rectangles, grouped by tensor as `(rank, rect)` pairs.
/// A rank re-writing the identical rectangle across steps (the common
/// steady-state shape — SUMMA accumulates into one output tile every
/// step) is recorded once.
fn write_sets(program: &VerifyProgram) -> BTreeMap<&str, Vec<(usize, &Rect)>> {
    let mut by_tensor: BTreeMap<&str, Vec<(usize, &Rect)>> = BTreeMap::new();
    for (rank, events) in program.ranks.iter().enumerate() {
        for ev in events {
            if let Event::Task { accesses } = ev {
                for a in accesses.iter().filter(|a| a.write) {
                    if a.rect.volume() > 0 {
                        let rects = by_tensor.entry(a.tensor.as_str()).or_default();
                        let dup = rects
                            .iter()
                            .rev()
                            .take_while(|(r, _)| *r == rank)
                            .any(|(_, rect)| *rect == &a.rect);
                        if !dup {
                            rects.push((rank, &a.rect));
                        }
                    }
                }
            }
        }
    }
    by_tensor
}

/// Write-write: overlapping task writes on different ranks without
/// reduction semantics. One diagnostic per (rank pair, tensor), on the
/// first overlap found.
///
/// Runs as a plane sweep along dimension 0 per tensor: rectangles are
/// sorted by their low coordinate and each is compared only against
/// later ones whose dim-0 interval still reaches it. A clean tiling
/// (the overwhelmingly common case on the plan path) costs
/// `O(R log R + neighbours)` per tensor instead of the naive
/// `O(p² · R²)` pairwise scan.
fn cross_rank_writes(program: &VerifyProgram) -> Vec<Diagnostic> {
    if program.reduces {
        // Distributed reductions fold every contribution; overlapping
        // output writes are the algorithm, not a hazard.
        return Vec::new();
    }
    let mut diags = Vec::new();
    let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (tensor, mut rects) in write_sets(program) {
        reported.clear();
        rects.sort_by_key(|(_, r)| r.lo()[0]);
        for i in 0..rects.len() {
            let (rank_a, ra) = rects[i];
            for &(rank_b, rb) in &rects[i + 1..] {
                if rb.lo()[0] > ra.hi()[0] {
                    break;
                }
                if rank_a == rank_b || !ra.overlaps(rb) {
                    continue;
                }
                let (a, b) = (rank_a.min(rank_b), rank_a.max(rank_b));
                if !reported.insert((a, b)) {
                    continue;
                }
                diags.push(
                    Diagnostic::error(
                        DiagnosticKind::WriteHazard,
                        format!(
                            "ranks {a} and {b} both write {tensor}[{}] (rank {rank_a} writes \
                             [{ra}], rank {rank_b} writes [{rb}]) without reduction semantics; \
                             the fold double-counts",
                            ra.intersection(rb)
                        ),
                    )
                    .with_rank(a)
                    .with_tensor(tensor),
                );
            }
        }
    }
    diags
}

/// Unordered landings and landing-over-read shadows, per rank, per
/// scratch generation.
fn landings(program: &VerifyProgram) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (rank, events) in program.ranks.iter().enumerate() {
        // Landings and task reads of the current generation, by tensor.
        let mut landed: BTreeMap<&str, Vec<(u64, &Rect)>> = BTreeMap::new();
        let mut read: BTreeMap<&str, Vec<&Rect>> = BTreeMap::new();
        for ev in events {
            match ev {
                Event::Fence => {
                    landed.clear();
                    read.clear();
                }
                Event::Recv(m) if !m.fold => {
                    if let Some(prev) = landed
                        .get(m.tensor.as_str())
                        .and_then(|v| v.iter().find(|(_, r)| r.overlaps(&m.rect)))
                    {
                        diags.push(
                            Diagnostic::error(
                                DiagnosticKind::WriteHazard,
                                format!(
                                    "rank {rank} receives {}[{}] (tag {}) overlapping the \
                                     [{}] landed by tag {} in the same scratch generation; \
                                     lookups become arrival-order dependent",
                                    m.tensor, m.rect, m.tag, prev.1, prev.0
                                ),
                            )
                            .with_rank(rank)
                            .with_tensor(&m.tensor)
                            .with_tag(m.tag),
                        );
                    }
                    if let Some(shadowed) = read
                        .get(m.tensor.as_str())
                        .and_then(|v| v.iter().find(|r| r.overlaps(&m.rect)))
                    {
                        diags.push(
                            Diagnostic::warning(
                                DiagnosticKind::ReadHazard,
                                format!(
                                    "rank {rank} receives {}[{}] (tag {}) over the [{shadowed}] \
                                     a task already read this generation; later reads see \
                                     different data",
                                    m.tensor, m.rect, m.tag
                                ),
                            )
                            .with_rank(rank)
                            .with_tensor(&m.tensor)
                            .with_tag(m.tag),
                        );
                    }
                    landed
                        .entry(m.tensor.as_str())
                        .or_default()
                        .push((m.tag, &m.rect));
                }
                Event::Task { accesses } => {
                    for a in accesses.iter().filter(|a| !a.write) {
                        if a.rect.volume() > 0 {
                            read.entry(a.tensor.as_str()).or_default().push(&a.rect);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{clean_pair, msg, rect2};
    use crate::Access;

    #[test]
    fn clean_pair_has_no_hazards() {
        assert!(check(&clean_pair()).is_empty());
    }

    #[test]
    fn aliased_output_is_a_write_hazard() {
        let mut p = clean_pair();
        // Make rank 1 write rank 0's output rectangle too.
        for ev in &mut p.ranks[1] {
            if let Event::Task { accesses } = ev {
                for a in accesses.iter_mut().filter(|a| a.write) {
                    a.rect = rect2((0, 0), (3, 3));
                }
            }
        }
        let diags = check(&p);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].kind, DiagnosticKind::WriteHazard);
        assert_eq!(diags[0].tensor.as_deref(), Some("A"));

        // The same overlap under reduction semantics is the algorithm.
        p.reduces = true;
        assert!(check(&p).is_empty());
    }

    #[test]
    fn overlapping_landings_in_one_generation_flagged() {
        let mut p = clean_pair();
        let extra = Event::Recv(msg(7, 0, "B", rect2((1, 0), (2, 3))));
        p.ranks[1].insert(1, extra);
        let diags = check(&p);
        assert!(
            diags
                .iter()
                .any(|d| d.kind == DiagnosticKind::WriteHazard && d.rank == Some(1)),
            "{diags:?}"
        );
        // A fence between the two landings retires the first: no hazard.
        let mut fenced = clean_pair();
        fenced.ranks[1].insert(1, Event::Recv(msg(7, 0, "B", rect2((1, 0), (2, 3)))));
        fenced.ranks[1].insert(1, Event::Fence);
        assert!(check(&fenced)
            .iter()
            .all(|d| d.kind != DiagnosticKind::WriteHazard));
    }

    #[test]
    fn landing_over_a_prior_read_warns() {
        let mut p = clean_pair();
        // Rank 1: task reads B, then a payload lands over the same rect.
        p.ranks[1] = vec![
            Event::Recv(msg(1, 0, "B", rect2((0, 0), (1, 3)))),
            Event::Task {
                accesses: vec![Access {
                    tensor: "B".into(),
                    rect: rect2((0, 0), (1, 3)),
                    write: false,
                }],
            },
            Event::Recv(msg(8, 0, "B", rect2((0, 0), (1, 3)))),
            Event::Fence,
        ];
        let diags = check(&p);
        // Tag 8 overlaps both the earlier landing (error) and the read
        // (warning).
        assert!(diags
            .iter()
            .any(|d| d.kind == DiagnosticKind::ReadHazard && !d.is_error() && d.tag == Some(8)));
    }

    #[test]
    fn fold_receives_may_overlap() {
        let mut p = clean_pair();
        let mut m1 = msg(7, 0, "A", rect2((0, 0), (1, 3)));
        let mut m2 = msg(8, 0, "A", rect2((0, 0), (1, 3)));
        m1.fold = true;
        m2.fold = true;
        p.ranks[1].push(Event::Recv(m1));
        p.ranks[1].push(Event::Recv(m2));
        assert!(check(&p).is_empty());
    }
}
