//! Event-driven timing simulation of the execution DAG.
//!
//! Processors and per-memory in/out ports are serial resources. A node may
//! start once all of its predecessors have finished and its resources are
//! free; communication and computation overlap exactly as the dependence
//! graph allows, mirroring Legion's deferred-execution model (§6).
//!
//! This pass is *pure*: it walks the DAG deterministically, computes every
//! statistic in [`RunStats`], and records the order in which nodes were
//! scheduled — but touches no instance data. Side effects (copies, fills,
//! leaf kernels) are applied separately by an
//! [`Executor`](crate::executor::Executor), either serially in the recorded
//! order or concurrently along the DAG; both yield identical numerics
//! because the DAG serializes every conflicting access. Keeping the timing
//! pass shared between executors is what makes their statistics
//! bit-identical by construction.

use crate::graph::{GNodeKind, Graph, ResourceMap};
use crate::stats::{ChannelClass, CopyKind, CopyLogEntry, RunStats, TaskLogEntry};
use crate::topology::PhysicalMachine;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Heap key ordered by (time, sequence) with total float ordering.
#[derive(PartialEq)]
struct Key {
    t: f64,
    seq: u32,
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.t
            .total_cmp(&other.t)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// The outcome of the timing pass.
pub(crate) struct SimSchedule {
    /// Node indices in the deterministic order they were scheduled
    /// (a topological order of the DAG).
    pub order: Vec<u32>,
    /// Full run statistics (except peak memory, added by the runtime).
    pub stats: RunStats,
}

/// Runs the timing simulation over the DAG and returns per-run statistics
/// plus the scheduling order.
pub(crate) fn schedule_graph(
    machine: &PhysicalMachine,
    graph: &Graph,
    record_copies: bool,
) -> SimSchedule {
    let rmap = ResourceMap::new(machine);
    let n = graph.nodes.len();
    let mut indeg: Vec<u32> = graph.nodes.iter().map(|g| g.deps).collect();
    let mut ready: Vec<f64> = vec![0.0; n];
    let mut free: Vec<f64> = vec![0.0; rmap.len()];
    let mut heap: BinaryHeap<Reverse<Key>> = BinaryHeap::new();
    let mut stats = RunStats {
        proc_busy_s: vec![0.0; machine.procs().len()],
        ..RunStats::default()
    };
    let mut copy_log = if record_copies {
        Some(Vec::new())
    } else {
        None
    };
    let mut task_log = if record_copies {
        Some(Vec::new())
    } else {
        None
    };
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut makespan: f64 = 0.0;

    for (i, g) in graph.nodes.iter().enumerate() {
        if g.deps == 0 {
            heap.push(Reverse(Key {
                t: 0.0,
                seq: i as u32,
            }));
        }
    }

    while let Some(Reverse(Key { t, seq })) = heap.pop() {
        let node = &graph.nodes[seq as usize];
        // Recompute the earliest feasible start; requeue if it moved.
        let mut est = ready[seq as usize];
        for r in node.resources.iter().flatten() {
            est = est.max(free[r.0 as usize]);
        }
        if est > t + 1e-15 {
            heap.push(Reverse(Key { t: est, seq }));
            continue;
        }
        let start = est;
        let end = start + node.duration;
        for r in node.resources.iter().flatten() {
            free[r.0 as usize] = end;
        }
        makespan = makespan.max(end);
        order.push(seq);

        match &node.kind {
            GNodeKind::Barrier | GNodeKind::Fill { .. } => {}
            GNodeKind::Copy(c) => {
                if c.class != ChannelClass::Staging {
                    stats.copies += 1;
                }
                *stats.bytes_by_class.entry(c.class).or_insert(0) += c.bytes;
                if c.reduce {
                    stats.reductions_applied += 1;
                }
                if let Some(log) = &mut copy_log {
                    log.push(CopyLogEntry {
                        region: c.region,
                        src_mem: c.src_mem,
                        dst_mem: c.dst_mem,
                        src_node: machine.mem(c.src_mem).node,
                        dst_node: machine.mem(c.dst_mem).node,
                        bytes: c.bytes,
                        start_s: start,
                        end_s: end,
                        kind: if c.reduce {
                            CopyKind::ReduceApply
                        } else {
                            CopyKind::Data
                        },
                    });
                }
            }
            GNodeKind::Task(task) => {
                stats.tasks += 1;
                stats.total_flops += task.flops;
                stats.proc_busy_s[task.proc.0 as usize] += node.duration;
                let class = stats
                    .task_classes
                    .entry(task.kernel_name.as_ref().to_string())
                    .or_default();
                class.tasks += 1;
                class.flops += task.flops;
                class.busy_s += node.duration;
                if let Some(log) = &mut task_log {
                    log.push(TaskLogEntry {
                        kernel: task.kernel_name.as_ref().to_string(),
                        proc: task.proc.0,
                        flops: task.flops,
                        start_s: start,
                        end_s: end,
                    });
                }
            }
        }

        for &succ in &node.succs {
            let s = succ as usize;
            ready[s] = ready[s].max(end);
            indeg[s] -= 1;
            if indeg[s] == 0 {
                let mut est = ready[s];
                for r in graph.nodes[s].resources.iter().flatten() {
                    est = est.max(free[r.0 as usize]);
                }
                heap.push(Reverse(Key { t: est, seq: succ }));
            }
        }
    }

    stats.makespan_s = makespan;
    stats.copy_log = copy_log;
    stats.task_log = task_log;
    SimSchedule { order, stats }
}
