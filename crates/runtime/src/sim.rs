//! Event-driven simulation of the execution DAG.
//!
//! Processors and per-memory in/out ports are serial resources. A node may
//! start once all of its predecessors have finished and its resources are
//! free; communication and computation overlap exactly as the dependence
//! graph allows, mirroring Legion's deferred-execution model (§6).
//!
//! In functional mode, a node's side effect (copy, fill, or kernel) runs at
//! the moment it is scheduled; because scheduling order respects the DAG,
//! numerics are deterministic and independent of the simulated timing.

use crate::exec::Store;
use crate::graph::{GNodeKind, Graph, ResourceMap};
use crate::kernel::{Kernel, KernelArg, KernelCtx};
use crate::program::Privilege;
use crate::region::{copy_rect, InstanceId};
use crate::stats::{ChannelClass, CopyKind, CopyLogEntry, RunStats};
use crate::topology::PhysicalMachine;
use distal_machine::geom::Rect;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Heap key ordered by (time, sequence) with total float ordering.
#[derive(PartialEq)]
struct Key {
    t: f64,
    seq: u32,
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.t
            .total_cmp(&other.t)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Runs the DAG to completion and returns statistics.
pub(crate) fn simulate(
    machine: &PhysicalMachine,
    store: &mut Store,
    graph: &Graph,
    kernels: &[Arc<dyn Kernel>],
    functional: bool,
    record_copies: bool,
) -> RunStats {
    let rmap = ResourceMap::new(machine);
    let n = graph.nodes.len();
    let mut indeg: Vec<u32> = graph.nodes.iter().map(|g| g.deps).collect();
    let mut ready: Vec<f64> = vec![0.0; n];
    let mut free: Vec<f64> = vec![0.0; rmap.len()];
    let mut heap: BinaryHeap<Reverse<Key>> = BinaryHeap::new();
    let mut stats = RunStats {
        proc_busy_s: vec![0.0; machine.procs().len()],
        ..RunStats::default()
    };
    let mut copy_log = if record_copies { Some(Vec::new()) } else { None };
    let mut makespan: f64 = 0.0;

    for (i, g) in graph.nodes.iter().enumerate() {
        if g.deps == 0 {
            let _ = g;
            heap.push(Reverse(Key { t: 0.0, seq: i as u32 }));
        }
    }

    while let Some(Reverse(Key { t, seq })) = heap.pop() {
        let node = &graph.nodes[seq as usize];
        // Recompute the earliest feasible start; requeue if it moved.
        let mut est = ready[seq as usize];
        for r in node.resources.iter().flatten() {
            est = est.max(free[r.0 as usize]);
        }
        if est > t + 1e-15 {
            heap.push(Reverse(Key { t: est, seq }));
            continue;
        }
        let start = est;
        let end = start + node.duration;
        for r in node.resources.iter().flatten() {
            free[r.0 as usize] = end;
        }
        makespan = makespan.max(end);

        match &node.kind {
            GNodeKind::Barrier => {}
            GNodeKind::Fill { inst, value } => {
                if functional {
                    if let Some(data) = &mut store.instances[inst.0 as usize].data {
                        data.fill(*value);
                    } else {
                        let vol = store.instances[inst.0 as usize].rect.volume() as usize;
                        store.instances[inst.0 as usize].data = Some(vec![*value; vol]);
                    }
                }
            }
            GNodeKind::Copy(c) => {
                if c.class != ChannelClass::Staging {
                    stats.copies += 1;
                }
                *stats.bytes_by_class.entry(c.class).or_insert(0) += c.bytes;
                if c.reduce {
                    stats.reductions_applied += 1;
                }
                if functional {
                    execute_copy(store, c.src, c.dst, &c.rect, c.reduce);
                }
                if let Some(log) = &mut copy_log {
                    log.push(CopyLogEntry {
                        region: c.region,
                        src_mem: c.src_mem,
                        dst_mem: c.dst_mem,
                        src_node: machine.mem(c.src_mem).node,
                        dst_node: machine.mem(c.dst_mem).node,
                        bytes: c.bytes,
                        start_s: start,
                        end_s: end,
                        kind: if c.reduce { CopyKind::ReduceApply } else { CopyKind::Data },
                    });
                }
            }
            GNodeKind::Task(task) => {
                stats.tasks += 1;
                stats.total_flops += task.flops;
                stats.proc_busy_s[task.proc.0 as usize] += node.duration;
                if functional {
                    execute_task(store, kernels, task);
                }
            }
        }

        for &succ in &node.succs {
            let s = succ as usize;
            ready[s] = ready[s].max(end);
            indeg[s] -= 1;
            if indeg[s] == 0 {
                let mut est = ready[s];
                for r in graph.nodes[s].resources.iter().flatten() {
                    est = est.max(free[r.0 as usize]);
                }
                heap.push(Reverse(Key { t: est, seq: succ }));
            }
        }
    }

    stats.makespan_s = makespan;
    stats.copy_log = copy_log;
    stats
}

/// Borrows two distinct instances mutably.
fn two_insts(
    store: &mut Store,
    a: InstanceId,
    b: InstanceId,
) -> (&mut crate::region::Instance, &mut crate::region::Instance) {
    let (ai, bi) = (a.0 as usize, b.0 as usize);
    assert_ne!(ai, bi, "copy source and destination must differ");
    if ai < bi {
        let (lo, hi) = store.instances.split_at_mut(bi);
        (&mut lo[ai], &mut hi[0])
    } else {
        let (lo, hi) = store.instances.split_at_mut(ai);
        (&mut hi[0], &mut lo[bi])
    }
}

fn execute_copy(store: &mut Store, src: InstanceId, dst: InstanceId, rect: &Rect, reduce: bool) {
    let (s, d) = two_insts(store, src, dst);
    copy_rect(s, d, rect, reduce);
    if reduce {
        // Zero the folded part of the reduction buffer so that partial folds
        // (and the final gather) never double-count contributions.
        if let Some(data) = &mut s.data {
            let alloc = s.rect.clone();
            for p in rect.points() {
                data[alloc.linearize(&p)] = 0.0;
            }
        }
    }
}

fn execute_task(store: &mut Store, kernels: &[Arc<dyn Kernel>], task: &crate::graph::TaskNode) {
    // Move instance buffers out, build kernel args, run, and restore.
    // Duplicate (aliased) read-only instances get a cloned view.
    let mut first_use: Vec<Option<usize>> = Vec::with_capacity(task.args.len());
    let mut args: Vec<KernelArg> = Vec::with_capacity(task.args.len());
    for (idx, (inst, privilege, rect)) in task.args.iter().enumerate() {
        if inst.0 == u32::MAX {
            // Empty requirement from an over-decomposed launch point.
            first_use.push(None);
            args.push(KernelArg {
                privilege: *privilege,
                rect: rect.clone(),
                alloc: Rect::empty(rect.dim()),
                data: Vec::new(),
            });
            continue;
        }
        let prior = task.args[..idx]
            .iter()
            .position(|(other, _, _)| other == inst);
        match prior {
            Some(p) => {
                assert!(
                    matches!(privilege, Privilege::Read),
                    "aliased writable requirements are not supported"
                );
                first_use.push(None);
                let data = args[p].data.clone();
                args.push(KernelArg {
                    privilege: *privilege,
                    rect: rect.clone(),
                    alloc: args[p].alloc.clone(),
                    data,
                });
            }
            None => {
                let i = &mut store.instances[inst.0 as usize];
                let data = i.data.take().unwrap_or_default();
                first_use.push(Some(inst.0 as usize));
                args.push(KernelArg {
                    privilege: *privilege,
                    rect: rect.clone(),
                    alloc: i.rect.clone(),
                    data,
                });
            }
        }
    }
    let mut ctx = KernelCtx {
        args,
        point: task.point.clone(),
        scalars: task.scalars.clone(),
    };
    kernels[task.kernel.0 as usize].execute(&mut ctx);
    for (arg, slot) in ctx.args.into_iter().zip(first_use) {
        if let Some(i) = slot {
            store.instances[i].data = Some(arg.data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Mode, Runtime};
    use crate::kernel::NoopKernel;
    use crate::program::{IndexLaunch, Op, Program, RegionReq, TaskDesc};
    use crate::topology::PhysicalMachine;
    use distal_machine::geom::Point;
    use distal_machine::spec::MachineSpec;

    /// A kernel that scales its first argument in place.
    struct ScaleKernel(f64);
    impl Kernel for ScaleKernel {
        fn name(&self) -> &str {
            "scale"
        }
        fn execute(&self, ctx: &mut KernelCtx) {
            let arg = &mut ctx.args[0];
            let rect = arg.rect.clone();
            for p in rect.points() {
                let v = arg.at(p.coords());
                arg.set(p.coords(), v * self.0);
            }
        }
    }

    #[test]
    fn functional_kernel_mutates_data() {
        let m = PhysicalMachine::new(MachineSpec::small(1));
        let mut rt = Runtime::new(m, Mode::Functional);
        let r = rt.create_region("A", Rect::sized(&[4]));
        rt.set_region_data(r, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut p = Program::new();
        let k = p.register_kernel(Arc::new(ScaleKernel(2.0)));
        let proc = rt.machine().cpu_proc(0, 0);
        let mem = rt.machine().proc(proc).local_mem;
        p.push(Op::SingleTask(TaskDesc::new(
            k,
            proc,
            Point::zeros(1),
            vec![RegionReq::new(r, Rect::sized(&[4]), Privilege::ReadWrite, mem)],
        )));
        rt.run(&p).unwrap();
        assert_eq!(rt.read_region(r).unwrap(), vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn parallel_tasks_overlap_in_time() {
        let m = PhysicalMachine::new(MachineSpec::lassen(2));
        let mut rt = Runtime::new(m, Mode::Model);
        let r = rt.create_region("A", Rect::sized(&[1024]));
        rt.fill_region(r, 0.0).unwrap();
        let mut p = Program::new();
        let k = p.register_kernel(Arc::new(NoopKernel));
        let flops = 1e9;
        let mk = |rt: &Runtime, node: usize, lo: i64, hi: i64| {
            let proc = rt.machine().cpu_proc(node, 0);
            let mem = rt.machine().proc(proc).local_mem;
            let mut t = TaskDesc::new(
                k,
                proc,
                Point::new(vec![node as i64]),
                vec![RegionReq::new(r, Rect::new(Point::new(vec![lo]), Point::new(vec![hi])), Privilege::Read, mem)],
            );
            t.flops = flops;
            t
        };
        let t0 = mk(&rt, 0, 0, 511);
        let t1 = mk(&rt, 1, 512, 1023);
        p.push(Op::IndexLaunch(IndexLaunch { name: "l".into(), tasks: vec![t0.clone(), t1.clone()] }));
        let both = rt.run(&p).unwrap();

        // Same two tasks serialized on one processor take ~2x as long.
        let m2 = PhysicalMachine::new(MachineSpec::lassen(2));
        let mut rt2 = Runtime::new(m2, Mode::Model);
        let r2 = rt2.create_region("A", Rect::sized(&[1024]));
        rt2.fill_region(r2, 0.0).unwrap();
        let mut p2 = Program::new();
        let k2 = p2.register_kernel(Arc::new(NoopKernel));
        let proc = rt2.machine().cpu_proc(0, 0);
        let mem = rt2.machine().proc(proc).local_mem;
        for (lo, hi) in [(0, 511), (512, 1023)] {
            let mut t = TaskDesc::new(
                k2,
                proc,
                Point::zeros(1),
                vec![RegionReq::new(r2, Rect::new(Point::new(vec![lo]), Point::new(vec![hi])), Privilege::Read, mem)],
            );
            t.flops = flops;
            p2.push(Op::SingleTask(t));
        }
        let serial = rt2.run(&p2).unwrap();
        assert!(
            serial.makespan_s > 1.8 * both.makespan_s,
            "serial {} vs parallel {}",
            serial.makespan_s,
            both.makespan_s
        );
    }

    #[test]
    fn barrier_serializes_phases() {
        let m = PhysicalMachine::new(MachineSpec::lassen(2));
        let mut rt = Runtime::new(m, Mode::Model);
        let r = rt.create_region("A", Rect::sized(&[2, 1024]));
        rt.fill_region(r, 0.0).unwrap();
        let build = |with_barrier: bool, rt: &Runtime| {
            let mut p = Program::new();
            let k = p.register_kernel(Arc::new(NoopKernel));
            for step in 0..2 {
                let proc = rt.machine().cpu_proc(step, 0);
                let mem = rt.machine().proc(proc).local_mem;
                let mut t = TaskDesc::new(
                    k,
                    proc,
                    Point::new(vec![step as i64]),
                    vec![RegionReq::new(r, Rect::sized(&[2, 1024]).restrict(0, step as i64, step as i64), Privilege::Read, mem)],
                );
                t.flops = 1e9;
                p.push(Op::SingleTask(t));
                if with_barrier {
                    p.push(Op::Barrier);
                }
            }
            p
        };
        let free = rt.run(&build(false, &rt)).unwrap();
        // Re-seed to reset coherence for a fair second run.
        rt.fill_region(r, 0.0).unwrap();
        let barriered = rt.run(&build(true, &rt)).unwrap();
        assert!(
            barriered.makespan_s > 1.8 * free.makespan_s,
            "barrier {} vs free {}",
            barriered.makespan_s,
            free.makespan_s
        );
    }

    #[test]
    fn copy_log_records_transfers() {
        let m = PhysicalMachine::new(MachineSpec::small(2));
        let mut rt = Runtime::new(m, Mode::Model);
        rt.record_copies(true);
        let r = rt.create_region("A", Rect::sized(&[16]));
        rt.fill_region(r, 0.0).unwrap();
        let mut p = Program::new();
        let k = p.register_kernel(Arc::new(NoopKernel));
        let p1 = rt.machine().cpu_proc(1, 0);
        let m1 = rt.machine().proc(p1).local_mem;
        p.push(Op::SingleTask(TaskDesc::new(
            k,
            p1,
            Point::zeros(1),
            vec![RegionReq::new(r, Rect::sized(&[16]), Privilege::Read, m1)],
        )));
        let stats = rt.run(&p).unwrap();
        let log = stats.copy_log.as_ref().unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].bytes, 128);
    }
}
