//! `KernelGen`: plan-time specialization of leaf statements into
//! monomorphized [`Kernel`]s.
//!
//! DISTAL's leaves are vendor-grade kernels — Figure 2 of the paper
//! substitutes `CuBLAS::GeMM` for the inner loop nest — while a generic
//! interpreter walks the expression tree point by point. This trait is the
//! seam between the two: the compiler (in `distal-core`) implements it,
//! and calls it at **plan time** (`Backend::plan`), so the cost of
//! specialization is paid once per plan and every `bind` of that plan
//! reuses the same generated kernel.
//!
//! Where this sits in the `Problem -> Plan -> Instance` pipeline:
//!
//! ```text
//! Problem + Schedule ──► Backend::plan ──► Plan (cacheable, data-free)
//!                          │                 │
//!                          │ KernelGen::specialize(LeafRequest)
//!                          ▼                 ▼
//!                     Arc<dyn Kernel>   Plan::bind(Bindings) ──► Instance
//!                     (tape / gemm /      (shares the Arc; never
//!                      spmv / ...)         re-specializes)
//! ```
//!
//! A [`LeafRequest`] carries everything that decides the generated code:
//! the statement, which inputs are stored compressed, and the accumulation
//! discipline of the executing backend. Generators return a kernel that is
//! **bit-identical** to the interpreter over the same request — fast paths
//! may reorder *independent* output elements but never the floating-point
//! accumulation order within one output element.
//!
//! Adding a new kernel class means adding a shape test + emitter inside
//! the implementation of this trait; callers (the runtime lowering, the
//! SPMD rank VM) are oblivious — they just execute whatever `specialize`
//! returned, and the kernel's [`Kernel::name`] surfaces the chosen variant
//! in run statistics and traces.

use crate::kernel::Kernel;
use distal_ir::expr::Assignment;
use std::sync::Arc;

/// One leaf statement to specialize: the inputs to kernel generation that
/// change what code should run.
#[derive(Clone, Debug)]
pub struct LeafRequest {
    /// The statement the leaf executes.
    pub assignment: Assignment,
    /// Per right-hand-side access (in access order): is that operand
    /// stored in a compressed level format? Drives sparse fast paths and
    /// zero-skipping.
    pub compressed: Vec<bool>,
    /// `true` when the kernel must *add* into the output (reductions, and
    /// the SPMD rank VM which always accumulates into a zeroed buffer);
    /// `false` when it overwrites.
    pub accumulate: bool,
    /// `true` when points where any compressed operand's gathered value
    /// has a zero bit pattern must be skipped entirely (the SPMD VM's
    /// pruning discipline for pure-product statements over dense tiles of
    /// compressed tensors). Dense-path requests leave this `false`.
    pub skip_zero: bool,
}

impl LeafRequest {
    /// A dense, non-skipping request for `assignment`.
    pub fn dense(assignment: Assignment, accumulate: bool) -> Self {
        let n = assignment.input_accesses().len();
        LeafRequest {
            assignment,
            compressed: vec![false; n],
            accumulate,
            skip_zero: false,
        }
    }

    /// True when any input operand is compressed.
    pub fn any_compressed(&self) -> bool {
        self.compressed.iter().any(|&c| c)
    }

    /// A stable textual identity of the request: everything that changes
    /// the generated kernel. Used as the specialization-cache key.
    pub fn fingerprint(&self) -> String {
        format!(
            "{};compressed={:?};accumulate={};skip_zero={}",
            self.assignment, self.compressed, self.accumulate, self.skip_zero
        )
    }
}

/// A leaf-kernel generator: compiles a [`LeafRequest`] into a specialized
/// [`Kernel`] at plan time. See the [module docs](self).
pub trait KernelGen: Send + Sync {
    /// Generator name (diagnostics).
    fn name(&self) -> &str;

    /// Specializes the request into an executable kernel. Total: requests
    /// with no matching fast path still get at least a tape-compiled
    /// kernel, so callers never fall back themselves.
    fn specialize(&self, req: &LeafRequest) -> Arc<dyn Kernel>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_request_shape() {
        let a = Assignment::parse("A(i,j) = B(i,k) * C(k,j)").unwrap();
        let req = LeafRequest::dense(a, true);
        assert_eq!(req.compressed, vec![false, false]);
        assert!(!req.any_compressed());
        assert!(req.fingerprint().contains("accumulate=true"));
    }

    #[test]
    fn fingerprints_split_on_flags() {
        let a = Assignment::parse("A(i,j) = B(i,k) * C(k,j)").unwrap();
        let d = LeafRequest::dense(a.clone(), true);
        let mut s = LeafRequest::dense(a, true);
        s.compressed[0] = true;
        s.skip_zero = true;
        assert!(s.any_compressed());
        assert_ne!(d.fingerprint(), s.fingerprint());
    }
}
