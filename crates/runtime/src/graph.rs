//! Dynamic dependence analysis: lowering a program to a task/copy DAG.
//!
//! This module is the analogue of Legion's dynamic analysis (paper §6):
//! walking the program in issue order, it tracks which physical instances
//! hold valid data for which sub-rectangles of each region, inserts copy
//! nodes exactly where a task's requirement is not already resident in its
//! target memory, maintains read/write hazards (RAW, WAR, WAW), and manages
//! reduction instances that are folded into data instances on the next read.
//!
//! Copy *source selection* prefers, in order: an instance in the destination
//! memory, an instance on the destination node, and otherwise the valid
//! instance whose memory has the least outbound traffic planned. The last
//! rule makes broadcasts form trees automatically (receivers pull from other
//! receivers), and makes systolic schedules pull from their neighbours'
//! forwarding buffers rather than hammering the owner.

use crate::exec::{RuntimeError, Store};
use crate::program::{IndexLaunch, Op, Privilege, Program, TaskDesc};
use crate::region::{InstanceId, InstanceRole, RegionId, ELEM_BYTES};
use crate::stats::ChannelClass;
use crate::topology::{MemId, PhysicalMachine, ProcId};
use distal_machine::geom::{Point, Rect};

/// A node of the execution DAG.
#[derive(Debug)]
pub struct GNode {
    /// What the node does.
    pub kind: GNodeKind,
    /// Duration in simulated seconds.
    pub duration: f64,
    /// Up to two resources the node occupies for its duration
    /// (processor for tasks; source/destination memory ports for copies).
    pub resources: [Option<ResourceId>; 2],
    /// Predecessor count (filled by the builder).
    pub deps: u32,
    /// Successor edges.
    pub succs: Vec<u32>,
}

/// What a DAG node does.
#[derive(Debug)]
pub enum GNodeKind {
    /// Run a kernel on a processor.
    Task(TaskNode),
    /// Move (or fold) a rectangle between instances.
    Copy(CopyNode),
    /// Initialize an instance to a constant.
    Fill { inst: InstanceId, value: f64 },
    /// A barrier (no work).
    Barrier,
}

/// Payload of a task node.
#[derive(Debug)]
pub struct TaskNode {
    /// Kernel to run.
    pub kernel: crate::program::KernelId,
    /// Resolved kernel variant name (`tape`, `gemm.gen`, `interpreter`, …)
    /// for per-variant statistics.
    pub kernel_name: std::sync::Arc<str>,
    /// Processor.
    pub proc: ProcId,
    /// Launch point.
    pub point: Point,
    /// Scalars forwarded to the kernel.
    pub scalars: Vec<i64>,
    /// `(instance, privilege, rect)` per requirement, in requirement order.
    pub args: Vec<(InstanceId, Privilege, Rect)>,
    /// Flop count (stats).
    pub flops: f64,
}

/// Payload of a copy node.
#[derive(Debug)]
pub struct CopyNode {
    /// Region being moved.
    pub region: RegionId,
    /// Source instance.
    pub src: InstanceId,
    /// Destination instance.
    pub dst: InstanceId,
    /// Rectangle moved.
    pub rect: Rect,
    /// Bytes moved.
    pub bytes: u64,
    /// True when folding a reduction buffer (`+=`) instead of copying.
    pub reduce: bool,
    /// Channel classification for statistics.
    pub class: ChannelClass,
    /// Source memory.
    pub src_mem: MemId,
    /// Destination memory.
    pub dst_mem: MemId,
}

/// A schedulable resource: processors and per-memory in/out ports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResourceId(pub u32);

/// Resource-id layout helper.
#[derive(Debug)]
pub struct ResourceMap {
    procs: u32,
    mems: u32,
    nodes: u32,
}

impl ResourceMap {
    /// Builds the layout for a machine.
    pub fn new(machine: &PhysicalMachine) -> Self {
        ResourceMap {
            procs: machine.procs().len() as u32,
            mems: machine.mems().len() as u32,
            nodes: machine.nodes() as u32,
        }
    }

    /// Total number of resources.
    pub fn len(&self) -> usize {
        (self.procs + 2 * self.mems + 2 * self.nodes) as usize
    }

    /// True when there are no resources (never in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The resource of a processor.
    pub fn proc(&self, p: ProcId) -> ResourceId {
        ResourceId(p.0)
    }

    /// The inbound port of a memory.
    pub fn mem_in(&self, m: MemId) -> ResourceId {
        ResourceId(self.procs + m.0)
    }

    /// The outbound port of a memory.
    pub fn mem_out(&self, m: MemId) -> ResourceId {
        ResourceId(self.procs + self.mems + m.0)
    }

    /// The inbound NIC port of a node: all inter-node traffic into a node
    /// shares it, so a node's processors contend for network bandwidth.
    pub fn node_in(&self, node: usize) -> ResourceId {
        ResourceId(self.procs + 2 * self.mems + node as u32)
    }

    /// The outbound NIC port of a node.
    pub fn node_out(&self, node: usize) -> ResourceId {
        ResourceId(self.procs + 2 * self.mems + self.nodes + node as u32)
    }
}

/// The built DAG.
#[derive(Debug, Default)]
pub struct Graph {
    /// Nodes in creation (program) order.
    pub nodes: Vec<GNode>,
}

/// Per-instance bookkeeping for hazard tracking (reset every run).
#[derive(Debug, Default, Clone)]
struct InstMeta {
    /// `(rect, node)` pairs: which node produced each valid piece this run.
    producers: Vec<(Rect, u32)>,
    /// Readers since the last write, with the rects they read.
    readers: Vec<(Rect, u32)>,
    /// For reduction instances: the chain of reducer tasks.
    last_reducer: Option<u32>,
    /// Copies already planned with this instance as their source.
    served: u32,
}

fn clip(entries: &mut Vec<(Rect, u32)>, rect: &Rect) {
    let mut out = Vec::with_capacity(entries.len());
    for (r, n) in entries.drain(..) {
        for piece in r.difference(rect) {
            out.push((piece, n));
        }
    }
    *entries = out;
}

/// Builds the execution DAG for a program.
pub(crate) struct GraphBuilder<'a> {
    machine: &'a PhysicalMachine,
    store: &'a mut Store,
    functional: bool,
    nodes: Vec<GNode>,
    meta: Vec<InstMeta>,
    /// Nodes created since the last barrier.
    epoch: Vec<u32>,
    /// The active barrier, if any.
    barrier: Option<u32>,
    /// Planned outbound bytes per memory (source-selection heuristic).
    planned_out: Vec<u64>,
    /// Variant name per kernel id (for task-class statistics).
    kernel_names: Vec<std::sync::Arc<str>>,
    rmap: ResourceMap,
}

impl<'a> GraphBuilder<'a> {
    /// Runs the dependence analysis for `program`, mutating `store`'s
    /// coherence state, and returns the DAG.
    pub fn build(
        machine: &'a PhysicalMachine,
        store: &'a mut Store,
        program: &Program,
        functional: bool,
    ) -> Result<Graph, RuntimeError> {
        let mut b = GraphBuilder {
            rmap: ResourceMap::new(machine),
            meta: vec![InstMeta::default(); store.instances.len()],
            planned_out: vec![0; machine.mems().len()],
            kernel_names: program
                .kernels
                .iter()
                .map(|k| std::sync::Arc::from(k.name()))
                .collect(),
            machine,
            store,
            functional,
            nodes: Vec::new(),
            epoch: Vec::new(),
            barrier: None,
        };
        for op in &program.ops {
            match op {
                Op::Fill { region, value } => b.process_fill(*region, *value)?,
                Op::SingleTask(t) => {
                    b.process_task(t)?;
                }
                Op::IndexLaunch(IndexLaunch { tasks, .. }) => {
                    for t in tasks {
                        b.process_task(t)?;
                    }
                }
                Op::Barrier => b.process_barrier(),
                Op::DiscardScratch {
                    region,
                    keep_recent,
                } => b.process_discard(*region, *keep_recent),
            }
        }
        Ok(Graph { nodes: b.nodes })
    }

    fn meta(&mut self, id: InstanceId) -> &mut InstMeta {
        let idx = id.0 as usize;
        if idx >= self.meta.len() {
            self.meta.resize(idx + 1, InstMeta::default());
        }
        &mut self.meta[idx]
    }

    fn meta_ref(&self, id: InstanceId) -> Option<&InstMeta> {
        self.meta.get(id.0 as usize)
    }

    fn add_node(
        &mut self,
        kind: GNodeKind,
        duration: f64,
        resources: [Option<ResourceId>; 2],
        deps: Vec<u32>,
    ) -> u32 {
        let id = self.nodes.len() as u32;
        let mut deps = deps;
        if let Some(b) = self.barrier {
            deps.push(b);
        }
        deps.sort_unstable();
        deps.dedup();
        let count = deps.len() as u32;
        for d in &deps {
            self.nodes[*d as usize].succs.push(id);
        }
        self.nodes.push(GNode {
            kind,
            duration,
            resources,
            deps: count,
            succs: Vec::new(),
        });
        self.epoch.push(id);
        id
    }

    fn process_barrier(&mut self) {
        // Depend on everything since (and including, via `self.barrier`) the
        // previous barrier; `add_node` adds the old barrier edge itself.
        let deps = std::mem::take(&mut self.epoch);
        let id = self.add_node(GNodeKind::Barrier, 0.0, [None, None], deps);
        self.barrier = Some(id);
        self.epoch.clear();
    }

    fn process_discard(&mut self, region: RegionId, keep_recent: u64) {
        let ridx = region.0 as usize;
        self.store.scratch_gen[ridx] += 1;
        let current = self.store.scratch_gen[ridx];
        let ids: Vec<InstanceId> = self.store.by_region[ridx].clone();
        for id in ids {
            let inst = self.store.instance(id);
            if inst.role == InstanceRole::Scratch && inst.gen + keep_recent < current {
                self.store.retire_instance(id);
            }
        }
    }

    fn process_fill(&mut self, region: RegionId, value: f64) -> Result<(), RuntimeError> {
        let rect = self.store.region(region).rect.clone();
        // Order after everything touching the region so far.
        let mut deps = Vec::new();
        let insts: Vec<InstanceId> = self.store.by_region[region.0 as usize]
            .iter()
            .chain(self.store.reductions_by_region[region.0 as usize].iter())
            .copied()
            .collect();
        for id in &insts {
            let m = self.meta(*id);
            deps.extend(m.producers.iter().map(|(_, n)| *n));
            deps.extend(m.readers.iter().map(|(_, n)| *n));
            deps.extend(m.last_reducer.iter().copied());
        }
        // Invalidate all data instances; drop pending reductions.
        for id in &insts {
            let inst = self.store.instance(*id);
            if inst.role == InstanceRole::Reduction {
                self.store.retire_instance(*id);
            } else {
                self.store.instance_mut(*id).valid = distal_machine::geom::RectSet::new();
                let m = self.meta(*id);
                m.producers.clear();
                m.readers.clear();
            }
        }
        // Fresh staging instance holds the fill value.
        let global = self.machine.global_mem();
        let id = self.store.create_instance(
            self.machine,
            region,
            global,
            rect.clone(),
            InstanceRole::Home,
            self.functional,
        )?;
        let node = self.add_node(GNodeKind::Fill { inst: id, value }, 0.0, [None, None], deps);
        self.store.instance_mut(id).valid = distal_machine::geom::RectSet::from_rect(rect.clone());
        self.meta(id).producers = vec![(rect, node)];
        Ok(())
    }

    fn process_task(&mut self, t: &TaskDesc) -> Result<(), RuntimeError> {
        let mut deps: Vec<u32> = Vec::new();
        let mut args: Vec<(InstanceId, Privilege, Rect)> = Vec::new();
        // Post-processing actions to apply once the task node id exists.
        enum Post {
            Read {
                inst: InstanceId,
                rect: Rect,
            },
            Write {
                inst: InstanceId,
                rect: Rect,
                region: RegionId,
            },
            Reduce {
                inst: InstanceId,
            },
        }
        let mut posts: Vec<Post> = Vec::new();

        for req in &t.reqs {
            let region_rect = self.store.region(req.region).rect.clone();
            if !region_rect.contains_rect(&req.rect) {
                return Err(RuntimeError::InvalidRequirement {
                    region: self.store.region(req.region).name.clone(),
                    rect: req.rect.clone(),
                });
            }
            if req.rect.is_empty() {
                // Over-decomposed launch point: nothing to touch.
                args.push((InstanceId(u32::MAX), req.privilege, req.rect.clone()));
                continue;
            }
            match req.privilege {
                Privilege::Read => {
                    let role = if req.pin {
                        InstanceRole::Home
                    } else {
                        InstanceRole::Scratch
                    };
                    let inst = self.materialize(req.region, &req.rect, req.mem, &mut deps, role)?;
                    args.push((inst, req.privilege, req.rect.clone()));
                    posts.push(Post::Read {
                        inst,
                        rect: req.rect.clone(),
                    });
                }
                Privilege::Write | Privilege::ReadWrite => {
                    let inst = if req.privilege == Privilege::ReadWrite {
                        self.materialize(
                            req.region,
                            &req.rect,
                            req.mem,
                            &mut deps,
                            InstanceRole::Home,
                        )?
                    } else {
                        self.dest_instance(req.region, &req.rect, req.mem, InstanceRole::Home)?
                    };
                    // WAW/WAR against every instance of the region. Reader
                    // hazards are tracked per physical instance and persist
                    // across invalidation, so buffer reuse stays safe.
                    let others: Vec<InstanceId> =
                        self.store.by_region[req.region.0 as usize].clone();
                    for other in others {
                        let m = self.meta(other);
                        for (r, n) in &m.producers {
                            if r.overlaps(&req.rect) {
                                deps.push(*n);
                            }
                        }
                        for (r, n) in &m.readers {
                            if r.overlaps(&req.rect) {
                                deps.push(*n);
                            }
                        }
                    }
                    // Reductions pending on the rect must complete first.
                    let red: Vec<InstanceId> =
                        self.store.reductions_by_region[req.region.0 as usize].clone();
                    for rid in red {
                        if self.store.instance(rid).rect.overlaps(&req.rect) {
                            let m = self.meta(rid);
                            deps.extend(m.last_reducer.iter().copied());
                        }
                    }
                    args.push((inst, req.privilege, req.rect.clone()));
                    posts.push(Post::Write {
                        inst,
                        rect: req.rect.clone(),
                        region: req.region,
                    });
                }
                Privilege::Reduce => {
                    let inst = self.reduction_instance(req.region, &req.rect, req.mem)?;
                    let m = self.meta(inst);
                    deps.extend(m.last_reducer.iter().copied());
                    args.push((inst, req.privilege, req.rect.clone()));
                    posts.push(Post::Reduce { inst });
                }
            }
        }

        let duration = self
            .machine
            .task_time_s(t.proc, t.flops, t.bytes, t.efficiency.max(1e-6));
        let node = self.add_node(
            GNodeKind::Task(TaskNode {
                kernel: t.kernel,
                kernel_name: self.kernel_names[t.kernel.0 as usize].clone(),
                proc: t.proc,
                point: t.point.clone(),
                scalars: t.scalars.clone(),
                args,
                flops: t.flops,
            }),
            duration,
            [Some(self.rmap.proc(t.proc)), None],
            deps,
        );

        for post in posts {
            match post {
                Post::Read { inst, rect } => {
                    self.meta(inst).readers.push((rect, node));
                }
                Post::Write { inst, rect, region } => {
                    // Invalidate all other instances over the rect. Producers
                    // are clipped with validity; readers persist (physical
                    // WAR hazards) until the instance itself is rewritten.
                    let others: Vec<InstanceId> = self.store.by_region[region.0 as usize].clone();
                    for other in others {
                        if other == inst {
                            continue;
                        }
                        self.store.instance_mut(other).valid.subtract(&rect);
                        clip(&mut self.meta(other).producers, &rect);
                    }
                    let i = self.store.instance_mut(inst);
                    i.valid.add(rect.clone());
                    i.depth = 0; // produced here
                                 // Output data must never be retired by scratch discards.
                    if i.role == InstanceRole::Scratch {
                        i.role = InstanceRole::Home;
                    }
                    let m = self.meta(inst);
                    clip(&mut m.producers, &rect);
                    clip(&mut m.readers, &rect);
                    m.producers.push((rect, node));
                }
                Post::Reduce { inst } => {
                    self.meta(inst).last_reducer = Some(node);
                }
            }
        }
        Ok(())
    }

    /// Finds or creates the instance a requirement will use in `mem`.
    fn dest_instance(
        &mut self,
        region: RegionId,
        rect: &Rect,
        mem: MemId,
        role: InstanceRole,
    ) -> Result<InstanceId, RuntimeError> {
        let mut best: Option<InstanceId> = None;
        for id in &self.store.by_region[region.0 as usize] {
            let inst = self.store.instance(*id);
            if inst.mem == mem && inst.rect.contains_rect(rect) {
                let better = match best {
                    None => true,
                    Some(b) => inst.rect.volume() < self.store.instance(b).rect.volume(),
                };
                if better {
                    best = Some(*id);
                }
            }
        }
        match best {
            Some(id) => Ok(id),
            None => self.store.create_instance(
                self.machine,
                region,
                mem,
                rect.clone(),
                role,
                self.functional,
            ),
        }
    }

    /// Ensures `rect` of `region` is valid in `mem`, inserting copies and
    /// reduction folds as needed; returns the instance and pushes the
    /// producer nodes the caller must depend on into `deps`.
    fn materialize(
        &mut self,
        region: RegionId,
        rect: &Rect,
        mem: MemId,
        deps: &mut Vec<u32>,
        role: InstanceRole,
    ) -> Result<InstanceId, RuntimeError> {
        let dest = self.dest_instance(region, rect, mem, role)?;
        // Copy in the missing pieces.
        let mut missing = vec![rect.clone()];
        {
            let valid = self.store.instance(dest).valid.clone();
            let mut next = Vec::new();
            for piece in missing {
                let mut rem = vec![piece];
                for v in valid.rects() {
                    let mut n2 = Vec::new();
                    for r in rem {
                        n2.extend(r.difference(v));
                    }
                    rem = n2;
                }
                next.extend(rem);
            }
            missing = next;
        }
        // Pieces may span several source instances (e.g. a gather crossing
        // tile boundaries): carve each piece until every fragment has a
        // single covering source. The staging memory is a last resort —
        // whenever real (placed) instances overlap a piece, the piece is
        // carved along them so that the gather pays real network traffic,
        // even though the staging instance trivially covers everything.
        let mut work: Vec<Rect> = missing;
        let mut resolved: Vec<Rect> = Vec::new();
        while let Some(piece) = work.pop() {
            if piece.is_empty() {
                continue;
            }
            let real_cover = self.select_source(region, &piece, dest).ok().map(|src| {
                self.machine.mem(self.store.instance(src).mem).kind
                    != distal_machine::spec::MemKind::Global
            });
            // Split off the part covered by some real instance.
            let mut carved = None;
            if real_cover != Some(true) {
                'outer: for id in &self.store.by_region[region.0 as usize] {
                    if *id == dest {
                        continue;
                    }
                    let inst = self.store.instance(*id);
                    if self.machine.mem(inst.mem).kind == distal_machine::spec::MemKind::Global {
                        continue;
                    }
                    for vr in inst.valid.rects() {
                        let inter = vr.intersection(&piece);
                        if !inter.is_empty() {
                            carved = Some(inter);
                            break 'outer;
                        }
                    }
                }
            }
            match (real_cover, carved) {
                // A real instance covers the whole piece.
                (Some(true), _) => resolved.push(piece),
                // Real data covers part of it: carve and recurse.
                (_, Some(inter)) => {
                    work.extend(piece.difference(&inter));
                    work.push(inter);
                }
                // Only staging covers it (input seeding).
                (Some(false), None) => resolved.push(piece),
                (None, None) => {
                    return Err(RuntimeError::UninitializedData {
                        region: self.store.region(region).name.clone(),
                        rect: piece,
                    })
                }
            }
        }
        for piece in resolved {
            let src = self.select_source(region, &piece, dest)?;
            let bytes = self.store.region(region).payload_bytes(piece.volume());
            let (src_mem, dst_mem) = (self.store.instance(src).mem, mem);
            let class = self.machine.channel_class(src_mem, dst_mem);
            let duration = self.machine.copy_time_s(src_mem, dst_mem, bytes);
            let mut cdeps: Vec<u32> = Vec::new();
            {
                let m = self.meta(src);
                for (r, n) in &m.producers {
                    if r.overlaps(&piece) {
                        cdeps.push(*n);
                    }
                }
            }
            {
                // WAW/WAR on the destination piece.
                let m = self.meta(dest);
                for (r, n) in &m.producers {
                    if r.overlaps(&piece) {
                        cdeps.push(*n);
                    }
                }
                for (r, n) in &m.readers {
                    if r.overlaps(&piece) {
                        cdeps.push(*n);
                    }
                }
            }
            let staging = class == ChannelClass::Staging;
            let resources = if staging {
                [None, None]
            } else if class == ChannelClass::InterNode {
                // Inter-node copies contend for the node NIC ports, not the
                // endpoint memories: a node's processors share its network
                // bandwidth.
                [
                    Some(self.rmap.node_out(self.machine.mem(src_mem).node)),
                    Some(self.rmap.node_in(self.machine.mem(dst_mem).node)),
                ]
            } else {
                [
                    Some(self.rmap.mem_out(src_mem)),
                    Some(self.rmap.mem_in(dst_mem)),
                ]
            };
            let node = self.add_node(
                GNodeKind::Copy(CopyNode {
                    region,
                    src,
                    dst: dest,
                    rect: piece.clone(),
                    bytes,
                    reduce: false,
                    class,
                    src_mem,
                    dst_mem,
                }),
                duration,
                resources,
                cdeps,
            );
            if !staging {
                self.planned_out[src_mem.0 as usize] += bytes;
            }
            self.meta(src).served += 1;
            let src_depth = self.store.instance(src).depth;
            {
                let d = self.store.instance_mut(dest);
                d.depth = d.depth.max(src_depth + 1);
            }
            self.store.instance_mut(dest).valid.add(piece.clone());
            let m = self.meta(dest);
            clip(&mut m.producers, &piece);
            m.producers.push((piece, node));
            deps.push(node);
        }
        // The task also depends on whoever produced the already-valid pieces.
        {
            let m = self.meta(dest);
            for (r, n) in &m.producers {
                if r.overlaps(rect) {
                    deps.push(*n);
                }
            }
        }
        // Fold any pending reductions overlapping the rect.
        self.flush_reductions(region, rect, dest, deps)?;
        Ok(dest)
    }

    /// Applies pending reduction instances overlapping `rect` into `dest`.
    fn flush_reductions(
        &mut self,
        region: RegionId,
        rect: &Rect,
        dest: InstanceId,
        deps: &mut Vec<u32>,
    ) -> Result<(), RuntimeError> {
        let pending: Vec<InstanceId> = self.store.reductions_by_region[region.0 as usize].clone();
        for rid in pending {
            let rrect = self.store.instance(rid).rect.clone();
            let inter = rrect.intersection(rect);
            if inter.is_empty() {
                continue;
            }
            // Reduction payloads are partial sums — generally dense even
            // when the tensor's at-rest format is compressed — so they
            // keep flat dense accounting.
            let bytes = inter.volume() as u64 * ELEM_BYTES;
            let src_mem = self.store.instance(rid).mem;
            let dst_mem = self.store.instance(dest).mem;
            let class = self.machine.channel_class(src_mem, dst_mem);
            let duration = self.machine.copy_time_s(src_mem, dst_mem, bytes)
                + self.machine.spec.reduction_fold_overhead_s;
            let mut cdeps: Vec<u32> = Vec::new();
            cdeps.extend(self.meta(rid).last_reducer.iter().copied());
            {
                let m = self.meta(dest);
                for (r, n) in &m.producers {
                    if r.overlaps(&inter) {
                        cdeps.push(*n);
                    }
                }
                for (r, n) in &m.readers {
                    if r.overlaps(&inter) {
                        cdeps.push(*n);
                    }
                }
            }
            let resources = if class == ChannelClass::InterNode {
                [
                    Some(self.rmap.node_out(self.machine.mem(src_mem).node)),
                    Some(self.rmap.node_in(self.machine.mem(dst_mem).node)),
                ]
            } else {
                [
                    Some(self.rmap.mem_out(src_mem)),
                    Some(self.rmap.mem_in(dst_mem)),
                ]
            };
            let node = self.add_node(
                GNodeKind::Copy(CopyNode {
                    region,
                    src: rid,
                    dst: dest,
                    rect: inter.clone(),
                    bytes,
                    reduce: true,
                    class,
                    src_mem,
                    dst_mem,
                }),
                duration,
                resources,
                cdeps,
            );
            // Other data instances holding the folded rect are now stale.
            let others: Vec<InstanceId> = self.store.by_region[region.0 as usize].clone();
            for other in others {
                if other == dest {
                    continue;
                }
                self.store.instance_mut(other).valid.subtract(&inter);
                clip(&mut self.meta(other).producers, &inter);
            }
            {
                let m = self.meta(dest);
                clip(&mut m.producers, &inter);
                m.producers.push((inter.clone(), node));
            }
            deps.push(node);
            // Whole folds retire the buffer; partial folds keep the
            // remainder pending (the simulator zeroes the folded part so it
            // cannot be double-counted).
            if rrect == inter {
                self.store.retire_instance(rid);
            }
        }
        Ok(())
    }

    /// Picks the cheapest valid source instance for a copy.
    fn select_source(
        &mut self,
        region: RegionId,
        piece: &Rect,
        dest: InstanceId,
    ) -> Result<InstanceId, RuntimeError> {
        let dest_mem = self.store.instance(dest).mem;
        let dest_node = self.machine.mem(dest_mem).node;
        type Score = (u64, u64, u64, u64, u64);
        let mut best: Option<(Score, InstanceId)> = None;
        for id in &self.store.by_region[region.0 as usize] {
            if *id == dest {
                continue;
            }
            let inst = self.store.instance(*id);
            if !inst.valid.covers(piece) {
                continue;
            }
            let mem = self.machine.mem(inst.mem);
            // Distance class: same node beats remote beats staging.
            let dist: u64 = if mem.kind == distal_machine::spec::MemKind::Global {
                2
            } else if mem.node == dest_node {
                0
            } else {
                1
            };
            // Lexicographic score: distance class; then *freshness* — a
            // scratch instance from a newer discard generation is data in
            // flight, and pulling from it yields the systolic
            // neighbour-forwarding of `rotate`d schedules (Figure 12);
            // then forwarding depth plus copies already served, which
            // shapes one-to-many transfers within a generation into
            // binomial trees (each holder serves O(log) peers) rather than
            // linear chains; then planned outbound memory load; then the
            // newest instance.
            let freshness = u64::MAX - inst.gen;
            let served = self.meta_ref(*id).map(|m| m.served).unwrap_or(0) as u64;
            let tree = inst.depth as u64 + served;
            let load = self.planned_out[inst.mem.0 as usize];
            let recency = (u32::MAX - id.0) as u64;
            let score = (dist, freshness, tree, load, recency);
            let better = match best {
                None => true,
                Some((s, _)) => score < s,
            };
            if better {
                best = Some((score, *id));
            }
        }
        match best {
            Some((_, id)) => Ok(id),
            None => Err(RuntimeError::UninitializedData {
                region: self.store.region(region).name.clone(),
                rect: piece.clone(),
            }),
        }
    }

    /// Finds or creates a reduction buffer for exactly `rect` in `mem`.
    fn reduction_instance(
        &mut self,
        region: RegionId,
        rect: &Rect,
        mem: MemId,
    ) -> Result<InstanceId, RuntimeError> {
        for id in &self.store.reductions_by_region[region.0 as usize] {
            let inst = self.store.instance(*id);
            if inst.mem == mem && inst.rect == *rect {
                return Ok(*id);
            }
        }
        self.store.create_instance(
            self.machine,
            region,
            mem,
            rect.clone(),
            InstanceRole::Reduction,
            self.functional,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Mode, Runtime};
    use crate::program::{Op, Program, RegionReq, TaskDesc};
    use crate::topology::PhysicalMachine;
    use distal_machine::spec::MachineSpec;
    use std::sync::Arc;

    fn machine() -> PhysicalMachine {
        PhysicalMachine::new(MachineSpec::small(2))
    }

    #[test]
    fn read_req_inserts_one_copy_then_reuses() {
        let m = machine();
        let mut rt = Runtime::new(m, Mode::Functional);
        let r = rt.create_region("A", Rect::sized(&[8]));
        rt.set_region_data(r, vec![1.0; 8]).unwrap();

        let mut p = Program::new();
        let k = p.register_kernel(Arc::new(crate::kernel::NoopKernel));
        let proc = rt.machine().cpu_proc(0, 0);
        let mem = rt.machine().proc(proc).local_mem;
        let req = RegionReq::new(r, Rect::sized(&[8]), Privilege::Read, mem);
        // Two identical tasks: the second must not copy again.
        p.push(Op::SingleTask(TaskDesc::new(
            k,
            proc,
            Point::zeros(1),
            vec![req.clone()],
        )));
        p.push(Op::SingleTask(TaskDesc::new(
            k,
            proc,
            Point::zeros(1),
            vec![req],
        )));
        let stats = rt.run(&p).unwrap();
        assert_eq!(stats.tasks, 2);
        // One staging copy; staging copies are not counted in `copies`.
        assert_eq!(stats.copies, 0);
        assert_eq!(stats.inter_node_bytes(), 0);
    }

    #[test]
    fn write_invalidates_other_copies() {
        let m = machine();
        let mut rt = Runtime::new(m, Mode::Functional);
        let r = rt.create_region("A", Rect::sized(&[4]));
        rt.set_region_data(r, vec![1.0; 4]).unwrap();

        let mut p = Program::new();
        let k = p.register_kernel(Arc::new(crate::kernel::NoopKernel));
        let p0 = rt.machine().cpu_proc(0, 0);
        let p1 = rt.machine().cpu_proc(1, 0);
        let m0 = rt.machine().proc(p0).local_mem;
        let m1 = rt.machine().proc(p1).local_mem;
        // Reader on node 0 pulls a copy; writer on node 1 invalidates it;
        // a second reader on node 0 must re-fetch across the network.
        let rect = Rect::sized(&[4]);
        p.push(Op::SingleTask(TaskDesc::new(
            k,
            p0,
            Point::zeros(1),
            vec![RegionReq::new(r, rect.clone(), Privilege::Read, m0)],
        )));
        p.push(Op::SingleTask(TaskDesc::new(
            k,
            p1,
            Point::zeros(1),
            vec![RegionReq::new(r, rect.clone(), Privilege::ReadWrite, m1)],
        )));
        p.push(Op::SingleTask(TaskDesc::new(
            k,
            p0,
            Point::zeros(1),
            vec![RegionReq::new(r, rect, Privilege::Read, m0)],
        )));
        let stats = rt.run(&p).unwrap();
        // Two inter-node transfers: the writer pulls the reader's copy
        // (nearer than staging), and the second reader re-fetches after the
        // invalidating write. 2 x 4 elements x 8 bytes.
        assert_eq!(stats.inter_node_bytes(), 64);
    }

    #[test]
    fn out_of_range_requirement_rejected() {
        let m = machine();
        let mut rt = Runtime::new(m, Mode::Functional);
        let r = rt.create_region("A", Rect::sized(&[4]));
        rt.set_region_data(r, vec![0.0; 4]).unwrap();
        let mut p = Program::new();
        let k = p.register_kernel(Arc::new(crate::kernel::NoopKernel));
        let proc = rt.machine().cpu_proc(0, 0);
        let mem = rt.machine().proc(proc).local_mem;
        p.push(Op::SingleTask(TaskDesc::new(
            k,
            proc,
            Point::zeros(1),
            vec![RegionReq::new(r, Rect::sized(&[5]), Privilege::Read, mem)],
        )));
        assert!(matches!(
            rt.run(&p),
            Err(RuntimeError::InvalidRequirement { .. })
        ));
    }

    #[test]
    fn uninitialized_read_is_error() {
        let m = machine();
        let mut rt = Runtime::new(m, Mode::Functional);
        let r = rt.create_region("A", Rect::sized(&[4]));
        let mut p = Program::new();
        let k = p.register_kernel(Arc::new(crate::kernel::NoopKernel));
        let proc = rt.machine().cpu_proc(0, 0);
        let mem = rt.machine().proc(proc).local_mem;
        p.push(Op::SingleTask(TaskDesc::new(
            k,
            proc,
            Point::zeros(1),
            vec![RegionReq::new(r, Rect::sized(&[4]), Privilege::Read, mem)],
        )));
        assert!(matches!(
            rt.run(&p),
            Err(RuntimeError::UninitializedData { .. })
        ));
    }

    #[test]
    fn oom_detected() {
        let mut spec = MachineSpec::small(1);
        spec.node.fb_bytes = 1024; // tiny framebuffer
        let m = PhysicalMachine::new(spec);
        let mut rt = Runtime::new(m, Mode::Model);
        let r = rt.create_region("A", Rect::sized(&[1024]));
        rt.fill_region(r, 0.0).unwrap();
        let mut p = Program::new();
        let k = p.register_kernel(Arc::new(crate::kernel::NoopKernel));
        let proc = rt.machine().gpu_proc(0, 0);
        let mem = rt.machine().proc(proc).local_mem;
        p.push(Op::SingleTask(TaskDesc::new(
            k,
            proc,
            Point::zeros(1),
            vec![RegionReq::new(
                r,
                Rect::sized(&[1024]),
                Privilege::Read,
                mem,
            )],
        )));
        assert!(matches!(rt.run(&p), Err(RuntimeError::OutOfMemory { .. })));
    }

    #[test]
    fn discard_scratch_frees_memory() {
        let m = machine();
        let mut rt = Runtime::new(m, Mode::Model);
        let r = rt.create_region("A", Rect::sized(&[64]));
        rt.fill_region(r, 0.0).unwrap();
        let mut p = Program::new();
        let k = p.register_kernel(Arc::new(crate::kernel::NoopKernel));
        let proc = rt.machine().cpu_proc(0, 0);
        let mem = rt.machine().proc(proc).local_mem;
        p.push(Op::SingleTask(TaskDesc::new(
            k,
            proc,
            Point::zeros(1),
            vec![RegionReq::new(r, Rect::sized(&[64]), Privilege::Read, mem)],
        )));
        p.push(Op::DiscardScratch {
            region: r,
            keep_recent: 0,
        });
        rt.run(&p).unwrap();
        assert_eq!(rt.used_bytes(mem), 0);
        assert_eq!(rt.peak_bytes(mem), 64 * 8);
    }
}
