//! Pluggable DAG executors: how the nodes of a built execution graph are
//! actually run.
//!
//! `graph::GraphBuilder` produces the dependence DAG;
//! `sim::schedule_graph` computes timing and statistics from it
//! deterministically. What remains — applying each node's *side effect*
//! (copying bytes, filling buffers, running leaf kernels in functional
//! mode) — is the job of an [`Executor`]:
//!
//! * [`SerialExecutor`] applies effects one at a time, in the exact order
//!   the timing pass scheduled them — the original behaviour.
//! * [`ParallelExecutor`] applies effects concurrently with a small
//!   work-stealing thread pool, running every DAG-ready node at once. This
//!   mirrors what the simulated machine is modelled to do (overlap of
//!   communication and computation, §6) on the *host*: a functional-mode
//!   SUMMA run executes its leaf GEMMs on all host cores.
//!
//! Both executors share the timing pass and the effect implementations, so
//! their [`RunStats`] are identical by construction, and their numerics are
//! identical because the DAG already serializes every pair of conflicting
//! accesses (the hazard edges inserted by the dependence analysis). The
//! per-instance buffer locks in [`Store`] turn that argument into something
//! the runtime actually enforces: workers only touch buffers under a
//! read/write lock, acquired in instance-id order to stay deadlock-free.
//!
//! Lock granularity is *per instance*, not per rectangle: two tasks writing
//! disjoint rects of the same physical instance are DAG-independent but
//! will serialize on its write lock. In practice placements materialize one
//! instance per tile/memory, so this costs little; per-rect range locks
//! (true buffer partitioning) are the known upgrade path if a workload
//! fans out over one shared allocation.

use crate::exec::Store;
use crate::graph::{CopyNode, GNode, GNodeKind, Graph, TaskNode};
use crate::kernel::{Kernel, KernelArg, KernelCtx};
use crate::program::Privilege;
use crate::region::{copy_rect, InstanceId};
use crate::sim::schedule_graph;
use crate::stats::RunStats;
use crate::topology::PhysicalMachine;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// Which executor [`crate::Runtime::run`] should use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Parallel in functional mode (real work to overlap), serial in model
    /// mode (nothing to run; the timing pass is inherently sequential).
    #[default]
    Auto,
    /// Always the serial executor.
    Serial,
    /// Always the work-stealing parallel executor.
    Parallel,
}

impl ExecutorKind {
    /// Resolves `Auto` against an execution mode.
    pub fn resolve(self, mode: crate::exec::Mode) -> ExecutorKind {
        match self {
            ExecutorKind::Auto => {
                if mode == crate::exec::Mode::Functional {
                    ExecutorKind::Parallel
                } else {
                    ExecutorKind::Serial
                }
            }
            other => other,
        }
    }
}

/// Everything an executor needs for one program run.
///
/// Constructed by [`crate::Runtime::run_with`]; the fields are
/// crate-private, so custom executors compose the built-ins rather than
/// reimplementing effect application.
pub struct ExecCtx<'a> {
    pub(crate) machine: &'a PhysicalMachine,
    pub(crate) store: &'a mut Store,
    pub(crate) graph: &'a Graph,
    pub(crate) kernels: &'a [Arc<dyn Kernel>],
    pub(crate) functional: bool,
    pub(crate) record_copies: bool,
}

impl std::fmt::Debug for ExecCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecCtx")
            .field("functional", &self.functional)
            .field("record_copies", &self.record_copies)
            .field("kernels", &self.kernels.len())
            .finish_non_exhaustive()
    }
}

/// Runs a built execution DAG to completion.
pub trait Executor: Send + Sync {
    /// Executor name (appears in benchmark output).
    fn name(&self) -> &'static str;

    /// Executes the DAG and returns run statistics.
    fn execute(&self, ctx: &mut ExecCtx<'_>) -> RunStats;
}

/// Applies node effects one at a time, in scheduled order.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn execute(&self, ctx: &mut ExecCtx<'_>) -> RunStats {
        let sched = schedule_graph(ctx.machine, ctx.graph, ctx.record_copies);
        if ctx.functional {
            for &i in &sched.order {
                apply_effect(ctx.store, ctx.kernels, &ctx.graph.nodes[i as usize], true);
            }
        }
        sched.stats
    }
}

/// Applies node effects concurrently with a work-stealing thread pool:
/// every node whose predecessors have completed is eligible to run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelExecutor {
    threads: usize,
}

impl ParallelExecutor {
    /// Creates an executor with an explicit worker count (0 = one worker
    /// per host core, overridable via the `DISTAL_THREADS` environment
    /// variable).
    pub fn new(threads: usize) -> Self {
        ParallelExecutor { threads }
    }

    /// The worker count this executor will use.
    pub fn worker_count(&self) -> usize {
        host_worker_count(self.threads)
    }
}

std::thread_local! {
    /// Per-thread cap on pool sizes resolved by [`host_worker_count`]
    /// (0 = uncapped). Scoped via [`with_thread_budget`].
    static THREAD_BUDGET: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// The calling thread's worker budget (0 = uncapped). See
/// [`with_thread_budget`].
pub fn thread_budget() -> usize {
    THREAD_BUDGET.with(|b| b.get())
}

/// Runs `f` with every pool sized on this thread capped at `budget`
/// workers (minimum 1), restoring the previous budget afterwards — even
/// on panic.
///
/// This is the oversubscription fix for nested parallelism: a serving
/// engine running W worker threads gives each a budget of
/// `host cores / W`, so the [`ParallelExecutor`] and threaded SPMD rank
/// pools those workers spin up while binding plans share the host
/// instead of multiplying against it (8 serving threads × p = 16 ranks
/// would otherwise mean 128 OS threads). The budget caps *every*
/// resolution on the thread, including explicit requests and
/// `DISTAL_THREADS`, because it is set by the layer that actually knows
/// how much of the host this thread owns.
pub fn with_thread_budget<R>(budget: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_BUDGET.with(|b| b.set(self.0));
        }
    }
    let _restore = Restore(THREAD_BUDGET.with(|b| b.replace(budget.max(1))));
    f()
}

/// Resolves a requested thread count against the host: an explicit
/// `requested > 0` wins, then a positive `DISTAL_THREADS` environment
/// variable, then one worker per available core — all clamped to the
/// calling thread's [`with_thread_budget`] scope, when one is active.
/// Shared by the work-stealing [`ParallelExecutor`] and the SPMD
/// backend's threaded rank transport, so `DISTAL_THREADS` and serving
/// budgets cap both kinds of pools.
pub fn host_worker_count(requested: usize) -> usize {
    let budget = thread_budget();
    let cap = |n: usize| if budget > 0 { n.min(budget) } else { n };
    if requested > 0 {
        return cap(requested);
    }
    if let Some(n) = std::env::var("DISTAL_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return cap(n);
        }
    }
    cap(std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1))
}

impl Executor for ParallelExecutor {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn execute(&self, ctx: &mut ExecCtx<'_>) -> RunStats {
        let sched = schedule_graph(ctx.machine, ctx.graph, ctx.record_copies);
        if ctx.functional {
            let workers = self.worker_count().min(ctx.graph.nodes.len().max(1));
            if workers <= 1 {
                for &i in &sched.order {
                    apply_effect(ctx.store, ctx.kernels, &ctx.graph.nodes[i as usize], true);
                }
            } else {
                parallel_apply(ctx.store, ctx.kernels, ctx.graph, &sched.order, workers);
            }
        }
        sched.stats
    }
}

/// Runs all node effects on `workers` threads, honouring DAG edges.
fn parallel_apply(
    store: &Store,
    kernels: &[Arc<dyn Kernel>],
    graph: &Graph,
    order: &[u32],
    workers: usize,
) {
    let indeg: Vec<AtomicU32> = graph.nodes.iter().map(|g| AtomicU32::new(g.deps)).collect();
    let remaining = AtomicUsize::new(graph.nodes.len());
    let failed = AtomicBool::new(false);
    let queues: Vec<Mutex<VecDeque<u32>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let park = (Mutex::new(()), Condvar::new());
    let failure: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    // Seed initially-ready nodes round-robin, in scheduled order so early
    // workers start on the critical path.
    let mut qi = 0usize;
    for &i in order {
        if graph.nodes[i as usize].deps == 0 {
            queues[qi % workers].lock().unwrap().push_back(i);
            qi += 1;
        }
    }

    std::thread::scope(|s| {
        for wid in 0..workers {
            let (indeg, remaining, failed, queues, park, failure) =
                (&indeg, &remaining, &failed, &queues, &park, &failure);
            let done = || remaining.load(Ordering::Acquire) == 0 || failed.load(Ordering::Acquire);
            s.spawn(move || loop {
                if done() {
                    park.1.notify_all();
                    return;
                }
                let Some(i) = pop_node(queues, wid) else {
                    let guard = park.0.lock().unwrap();
                    if done() {
                        drop(guard);
                        park.1.notify_all();
                        return;
                    }
                    // The timeout bounds any lost-wakeup window; workers
                    // re-check the queues and the exit condition on expiry.
                    let _ = park
                        .1
                        .wait_timeout(guard, Duration::from_micros(100))
                        .unwrap();
                    continue;
                };
                let node = &graph.nodes[i as usize];
                if let Err(panic) = catch_unwind(AssertUnwindSafe(|| {
                    apply_effect(store, kernels, node, false)
                })) {
                    let mut f = failure.lock().unwrap();
                    if f.is_none() {
                        *f = Some(panic);
                    }
                    drop(f);
                    // A dedicated flag (not remaining = 0) stops the pool:
                    // workers still mid-node will decrement `remaining`
                    // afterwards, which must not wrap past zero.
                    failed.store(true, Ordering::Release);
                    park.1.notify_all();
                    return;
                }
                let mut woke = false;
                for &succ in &node.succs {
                    if indeg[succ as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                        queues[wid].lock().unwrap().push_back(succ);
                        woke = true;
                    }
                }
                if woke {
                    park.1.notify_all();
                }
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    park.1.notify_all();
                    return;
                }
            });
        }
    });

    if let Some(panic) = failure.into_inner().unwrap() {
        resume_unwind(panic);
    }
}

/// Pops from the worker's own queue (LIFO, for cache locality), stealing
/// from a sibling's queue front (FIFO) when empty.
fn pop_node(queues: &[Mutex<VecDeque<u32>>], wid: usize) -> Option<u32> {
    if let Some(i) = queues[wid].lock().unwrap().pop_back() {
        return Some(i);
    }
    let w = queues.len();
    for k in 1..w {
        if let Some(i) = queues[(wid + k) % w].lock().unwrap().pop_front() {
            return Some(i);
        }
    }
    None
}

/// Applies one node's side effect (functional mode only).
///
/// `exclusive` marks single-threaded use: every instance lock is taken as a
/// write lock, which lets tasks *move* read buffers out and back instead of
/// cloning them (the locks are uncontended, so this restores the zero-copy
/// behaviour of the pre-executor runtime). Concurrent callers pass `false`
/// so that read requirements take shared locks.
fn apply_effect(store: &Store, kernels: &[Arc<dyn Kernel>], node: &GNode, exclusive: bool) {
    match &node.kind {
        GNodeKind::Barrier => {}
        GNodeKind::Fill { inst, value } => apply_fill(store, *inst, *value),
        GNodeKind::Copy(c) => apply_copy(store, c),
        GNodeKind::Task(t) => apply_task(store, kernels, t, exclusive),
    }
}

fn apply_fill(store: &Store, inst: InstanceId, value: f64) {
    let mut cell = store.buffer(inst).write().expect("poisoned buffer lock");
    match cell.as_mut() {
        Some(data) => data.fill(value),
        None => {
            let vol = store.instance(inst).rect.volume() as usize;
            *cell = Some(vec![value; vol]);
        }
    }
}

/// A held per-instance buffer lock.
enum BufGuard<'a> {
    Read(RwLockReadGuard<'a, Option<Vec<f64>>>),
    Write(RwLockWriteGuard<'a, Option<Vec<f64>>>),
}

fn apply_copy(store: &Store, c: &CopyNode) {
    assert_ne!(c.src, c.dst, "copy source and destination must differ");
    let src_alloc = &store.instance(c.src).rect;
    let dst_alloc = &store.instance(c.dst).rect;
    // Lock in instance-id order (deadlock avoidance). The source needs a
    // write lock only when folding, which zeroes the folded part of the
    // reduction buffer so partial folds never double-count contributions.
    let (mut src_guard, mut dst_guard) = if c.src < c.dst {
        let s = lock_buffer(store, c.src, c.reduce);
        let d = lock_buffer(store, c.dst, true);
        (s, d)
    } else {
        let d = lock_buffer(store, c.dst, true);
        let s = lock_buffer(store, c.src, c.reduce);
        (s, d)
    };
    if let (Some(src_data), Some(dst_data)) = (src_guard.data(), dst_guard.data_mut()) {
        copy_rect(src_alloc, src_data, dst_alloc, dst_data, &c.rect, c.reduce);
    }
    if c.reduce {
        if let Some(src_data) = src_guard.data_mut() {
            for p in c.rect.points() {
                src_data[src_alloc.linearize(&p)] = 0.0;
            }
        }
    }
}

impl BufGuard<'_> {
    /// The buffer behind the guard.
    fn data(&self) -> Option<&Vec<f64>> {
        match self {
            BufGuard::Read(g) => g.as_ref(),
            BufGuard::Write(g) => g.as_ref(),
        }
    }

    /// Mutable access; panics on a read guard.
    fn data_mut(&mut self) -> Option<&mut Vec<f64>> {
        match self {
            BufGuard::Read(_) => panic!("mutable access through a read lock"),
            BufGuard::Write(g) => g.as_mut(),
        }
    }

    /// Moves the buffer out (write guards only).
    fn take(&mut self) -> Option<Vec<f64>> {
        match self {
            BufGuard::Read(_) => panic!("cannot take a buffer through a read lock"),
            BufGuard::Write(g) => g.take(),
        }
    }

    /// Puts a buffer back (write guards only).
    fn restore(&mut self, data: Vec<f64>) {
        match self {
            BufGuard::Read(_) => panic!("cannot restore a buffer through a read lock"),
            BufGuard::Write(g) => **g = Some(data),
        }
    }
}

fn lock_buffer(store: &Store, id: InstanceId, write: bool) -> BufGuard<'_> {
    let cell = store.buffer(id);
    if write {
        BufGuard::Write(cell.write().expect("poisoned buffer lock"))
    } else {
        BufGuard::Read(cell.read().expect("poisoned buffer lock"))
    }
}

fn apply_task(store: &Store, kernels: &[Arc<dyn Kernel>], task: &TaskNode, exclusive: bool) {
    // Lock plan: one guard per distinct instance, write iff any requirement
    // on it writes (or the caller is single-threaded and prefers moves over
    // clones), acquired in ascending instance-id order.
    let mut plan: Vec<(InstanceId, bool)> = Vec::with_capacity(task.args.len());
    for (inst, privilege, _) in &task.args {
        if inst.0 == u32::MAX {
            continue;
        }
        let write = exclusive || !matches!(privilege, Privilege::Read);
        match plan.iter_mut().find(|(i, _)| i == inst) {
            Some((_, w)) => *w |= write,
            None => plan.push((*inst, write)),
        }
    }
    plan.sort_unstable_by_key(|(i, _)| *i);
    let mut guards: Vec<(InstanceId, BufGuard<'_>)> = plan
        .iter()
        .map(|(i, w)| (*i, lock_buffer(store, *i, *w)))
        .collect();

    // Build kernel args: write-locked instances move their buffer out of
    // the (held) guard zero-copy; read-locked instances clone only the
    // requirement's rectangle, re-based to a tight allocation — broadcast
    // instances read by many concurrent tasks cost one tile copy each, not
    // a full-instance copy. Duplicate (aliased) read-only requirements on a
    // moved buffer clone the earlier argument's view.
    let mut first_use: Vec<Option<usize>> = Vec::with_capacity(task.args.len());
    let mut args: Vec<KernelArg> = Vec::with_capacity(task.args.len());
    for (idx, (inst, privilege, rect)) in task.args.iter().enumerate() {
        if inst.0 == u32::MAX {
            // Empty requirement from an over-decomposed launch point.
            first_use.push(None);
            args.push(KernelArg {
                privilege: *privilege,
                rect: rect.clone(),
                alloc: distal_machine::geom::Rect::empty(rect.dim()),
                data: Vec::new(),
            });
            continue;
        }
        let slot = guards
            .binary_search_by_key(inst, |(i, _)| *i)
            .expect("instance missing from lock plan");
        if matches!(guards[slot].1, BufGuard::Read(_)) {
            // Shared read: tight snapshot of just the requirement rect
            // (duplicates of the same instance each take their own view).
            let alloc = store.instance(*inst).rect.clone();
            let data = match guards[slot].1.data() {
                Some(src) => {
                    let mut out = vec![0.0; rect.volume() as usize];
                    copy_rect(&alloc, src, rect, &mut out, rect, false);
                    out
                }
                None => Vec::new(),
            };
            first_use.push(None);
            args.push(KernelArg {
                privilege: *privilege,
                rect: rect.clone(),
                alloc: rect.clone(),
                data,
            });
            continue;
        }
        let prior = task.args[..idx]
            .iter()
            .position(|(other, _, _)| other == inst);
        if let Some(p) = prior {
            assert!(
                matches!(privilege, Privilege::Read),
                "aliased writable requirements are not supported"
            );
            first_use.push(None);
            let data = args[p].data.clone();
            args.push(KernelArg {
                privilege: *privilege,
                rect: rect.clone(),
                alloc: args[p].alloc.clone(),
                data,
            });
            continue;
        }
        let guard = &mut guards[slot].1;
        first_use.push(Some(slot));
        args.push(KernelArg {
            privilege: *privilege,
            rect: rect.clone(),
            alloc: store.instance(*inst).rect.clone(),
            data: guard.take().unwrap_or_default(),
        });
    }

    let mut ctx = KernelCtx {
        args,
        point: task.point.clone(),
        scalars: task.scalars.clone(),
    };
    kernels[task.kernel.0 as usize].execute(&mut ctx);

    for (arg, slot) in ctx.args.into_iter().zip(first_use) {
        if let Some(s) = slot {
            guards[s].1.restore(arg.data);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Mode, Runtime};
    use crate::kernel::NoopKernel;
    use crate::program::{IndexLaunch, Op, Privilege, Program, RegionReq, TaskDesc};
    use crate::topology::PhysicalMachine;
    use distal_machine::geom::{Point, Rect};
    use distal_machine::spec::MachineSpec;

    /// A kernel that scales its first argument in place.
    struct ScaleKernel(f64);
    impl Kernel for ScaleKernel {
        fn name(&self) -> &str {
            "scale"
        }
        fn execute(&self, ctx: &mut KernelCtx) {
            let arg = &mut ctx.args[0];
            let rect = arg.rect.clone();
            for p in rect.points() {
                let v = arg.at(p.coords());
                arg.set(p.coords(), v * self.0);
            }
        }
    }

    fn scale_program(rt: &Runtime, r: crate::region::RegionId, n: i64) -> Program {
        let mut p = Program::new();
        let k = p.register_kernel(Arc::new(ScaleKernel(2.0)));
        let proc = rt.machine().cpu_proc(0, 0);
        let mem = rt.machine().proc(proc).local_mem;
        p.push(Op::SingleTask(TaskDesc::new(
            k,
            proc,
            Point::zeros(1),
            vec![RegionReq::new(
                r,
                Rect::sized(&[n]),
                Privilege::ReadWrite,
                mem,
            )],
        )));
        p
    }

    #[test]
    fn functional_kernel_mutates_data() {
        let m = PhysicalMachine::new(MachineSpec::small(1));
        let mut rt = Runtime::new(m, Mode::Functional);
        let r = rt.create_region("A", Rect::sized(&[4]));
        rt.set_region_data(r, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let p = scale_program(&rt, r, 4);
        rt.run(&p).unwrap();
        assert_eq!(rt.read_region(r).unwrap(), vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn explicit_executors_agree_on_a_fanout_program() {
        // One writer task, then an index launch of readers across nodes,
        // then a reducer — exercises fills, copies, tasks, and folds under
        // both executors (the parallel one forced to multiple workers).
        let run = |executor: &dyn Executor| -> (Vec<f64>, RunStats) {
            let m = PhysicalMachine::new(MachineSpec::small(2));
            let mut rt = Runtime::new(m, Mode::Functional);
            let r = rt.create_region("A", Rect::sized(&[16]));
            let acc = rt.create_region("S", Rect::sized(&[16]));
            rt.set_region_data(r, (0..16).map(|x| x as f64).collect())
                .unwrap();
            rt.set_region_data(acc, vec![0.0; 16]).unwrap();
            let mut p = Program::new();
            let scale = p.register_kernel(Arc::new(ScaleKernel(3.0)));
            let mut tasks = Vec::new();
            for node in 0..2 {
                for sock in 0..2 {
                    let proc = rt.machine().cpu_proc(node, sock);
                    let mem = rt.machine().proc(proc).local_mem;
                    let lo = (node * 2 + sock) as i64 * 4;
                    let rect = Rect::new(Point::new(vec![lo]), Point::new(vec![lo + 3]));
                    tasks.push(TaskDesc::new(
                        scale,
                        proc,
                        Point::new(vec![lo / 4]),
                        vec![
                            RegionReq::new(acc, rect.clone(), Privilege::ReadWrite, mem),
                            RegionReq::new(r, rect, Privilege::Read, mem),
                        ],
                    ));
                }
            }
            p.push(Op::IndexLaunch(IndexLaunch {
                name: "scale".into(),
                tasks,
            }));
            let stats = rt.run_with(&p, executor).unwrap();
            (rt.read_region(acc).unwrap(), stats)
        };
        let (serial_out, serial_stats) = run(&SerialExecutor);
        let (parallel_out, parallel_stats) = run(&ParallelExecutor::new(4));
        assert_eq!(serial_out, parallel_out);
        assert_eq!(serial_stats.tasks, parallel_stats.tasks);
        assert_eq!(serial_stats.copies, parallel_stats.copies);
        assert_eq!(serial_stats.makespan_s, parallel_stats.makespan_s);
        assert_eq!(serial_stats.bytes_by_class, parallel_stats.bytes_by_class);
    }

    #[test]
    fn thread_budget_caps_every_resolution() {
        // No budget: explicit requests resolve as asked.
        assert_eq!(host_worker_count(8), 8);
        with_thread_budget(2, || {
            // Explicit requests, env fallbacks, and host-core defaults are
            // all clamped inside the scope...
            assert_eq!(host_worker_count(8), 2);
            assert!(host_worker_count(0) <= 2);
            assert_eq!(ParallelExecutor::new(16).worker_count(), 2);
            assert_eq!(thread_budget(), 2);
            // ...and nested scopes narrow but never widen past their own.
            with_thread_budget(1, || assert_eq!(host_worker_count(8), 1));
            assert_eq!(host_worker_count(8), 2);
        });
        // The budget is scoped: gone after the closure returns.
        assert_eq!(thread_budget(), 0);
        assert_eq!(host_worker_count(8), 8);
        // A budget on this thread does not leak to others.
        with_thread_budget(1, || {
            std::thread::scope(|s| {
                s.spawn(|| assert_eq!(host_worker_count(4), 4));
            });
        });
    }

    #[test]
    fn auto_resolution_picks_by_mode() {
        assert_eq!(
            ExecutorKind::Auto.resolve(Mode::Functional),
            ExecutorKind::Parallel
        );
        assert_eq!(
            ExecutorKind::Auto.resolve(Mode::Model),
            ExecutorKind::Serial
        );
        assert_eq!(
            ExecutorKind::Serial.resolve(Mode::Functional),
            ExecutorKind::Serial
        );
    }

    #[test]
    fn parallel_executor_propagates_kernel_panics() {
        struct PanicKernel;
        impl Kernel for PanicKernel {
            fn name(&self) -> &str {
                "panic"
            }
            fn execute(&self, _ctx: &mut KernelCtx) {
                panic!("kernel exploded");
            }
        }
        let m = PhysicalMachine::new(MachineSpec::small(1));
        let mut rt = Runtime::new(m, Mode::Functional);
        let r = rt.create_region("A", Rect::sized(&[4]));
        rt.set_region_data(r, vec![0.0; 4]).unwrap();
        let mut p = Program::new();
        let k = p.register_kernel(Arc::new(PanicKernel));
        let proc = rt.machine().cpu_proc(0, 0);
        let mem = rt.machine().proc(proc).local_mem;
        p.push(Op::SingleTask(TaskDesc::new(
            k,
            proc,
            Point::zeros(1),
            vec![RegionReq::new(
                r,
                Rect::sized(&[4]),
                Privilege::ReadWrite,
                mem,
            )],
        )));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            rt.run_with(&p, &ParallelExecutor::new(2))
        }));
        assert!(result.is_err());
    }

    #[test]
    fn panic_with_concurrent_inflight_worker_does_not_hang() {
        // Regression: a worker panic must stop the pool even while another
        // worker is mid-node; that worker's remaining-counter decrement
        // must not wrap past zero and strand the exit condition.
        struct PanicKernel;
        impl Kernel for PanicKernel {
            fn name(&self) -> &str {
                "panic"
            }
            fn execute(&self, _ctx: &mut KernelCtx) {
                panic!("kernel exploded");
            }
        }
        struct SlowKernel;
        impl Kernel for SlowKernel {
            fn name(&self) -> &str {
                "slow"
            }
            fn execute(&self, _ctx: &mut KernelCtx) {
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        let m = PhysicalMachine::new(MachineSpec::small(2));
        let mut rt = Runtime::new(m, Mode::Functional);
        let r0 = rt.create_region("A", Rect::sized(&[4]));
        let r1 = rt.create_region("B", Rect::sized(&[4]));
        rt.set_region_data(r0, vec![0.0; 4]).unwrap();
        rt.set_region_data(r1, vec![0.0; 4]).unwrap();
        let mut p = Program::new();
        let kp = p.register_kernel(Arc::new(PanicKernel));
        let ks = p.register_kernel(Arc::new(SlowKernel));
        // Two independent tasks on different processors: both are ready at
        // once, so one worker is inside SlowKernel when the other panics.
        for (region, kernel, node) in [(r0, kp, 0), (r1, ks, 1)] {
            let proc = rt.machine().cpu_proc(node, 0);
            let mem = rt.machine().proc(proc).local_mem;
            p.push(Op::SingleTask(TaskDesc::new(
                kernel,
                proc,
                Point::zeros(1),
                vec![RegionReq::new(
                    region,
                    Rect::sized(&[4]),
                    Privilege::ReadWrite,
                    mem,
                )],
            )));
        }
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            rt.run_with(&p, &ParallelExecutor::new(2))
        }));
        assert!(result.is_err(), "panic must propagate, not hang");
    }

    #[test]
    fn parallel_tasks_overlap_in_time() {
        let m = PhysicalMachine::new(MachineSpec::lassen(2));
        let mut rt = Runtime::new(m, Mode::Model);
        let r = rt.create_region("A", Rect::sized(&[1024]));
        rt.fill_region(r, 0.0).unwrap();
        let mut p = Program::new();
        let k = p.register_kernel(Arc::new(NoopKernel));
        let flops = 1e9;
        let mk = |rt: &Runtime, node: usize, lo: i64, hi: i64| {
            let proc = rt.machine().cpu_proc(node, 0);
            let mem = rt.machine().proc(proc).local_mem;
            let mut t = TaskDesc::new(
                k,
                proc,
                Point::new(vec![node as i64]),
                vec![RegionReq::new(
                    r,
                    Rect::new(Point::new(vec![lo]), Point::new(vec![hi])),
                    Privilege::Read,
                    mem,
                )],
            );
            t.flops = flops;
            t
        };
        let t0 = mk(&rt, 0, 0, 511);
        let t1 = mk(&rt, 1, 512, 1023);
        p.push(Op::IndexLaunch(IndexLaunch {
            name: "l".into(),
            tasks: vec![t0.clone(), t1.clone()],
        }));
        let both = rt.run(&p).unwrap();

        // Same two tasks serialized on one processor take ~2x as long.
        let m2 = PhysicalMachine::new(MachineSpec::lassen(2));
        let mut rt2 = Runtime::new(m2, Mode::Model);
        let r2 = rt2.create_region("A", Rect::sized(&[1024]));
        rt2.fill_region(r2, 0.0).unwrap();
        let mut p2 = Program::new();
        let k2 = p2.register_kernel(Arc::new(NoopKernel));
        let proc = rt2.machine().cpu_proc(0, 0);
        let mem = rt2.machine().proc(proc).local_mem;
        for (lo, hi) in [(0, 511), (512, 1023)] {
            let mut t = TaskDesc::new(
                k2,
                proc,
                Point::zeros(1),
                vec![RegionReq::new(
                    r2,
                    Rect::new(Point::new(vec![lo]), Point::new(vec![hi])),
                    Privilege::Read,
                    mem,
                )],
            );
            t.flops = flops;
            p2.push(Op::SingleTask(t));
        }
        let serial = rt2.run(&p2).unwrap();
        assert!(
            serial.makespan_s > 1.8 * both.makespan_s,
            "serial {} vs parallel {}",
            serial.makespan_s,
            both.makespan_s
        );
    }

    #[test]
    fn barrier_serializes_phases() {
        let m = PhysicalMachine::new(MachineSpec::lassen(2));
        let mut rt = Runtime::new(m, Mode::Model);
        let r = rt.create_region("A", Rect::sized(&[2, 1024]));
        rt.fill_region(r, 0.0).unwrap();
        let build = |with_barrier: bool, rt: &Runtime| {
            let mut p = Program::new();
            let k = p.register_kernel(Arc::new(NoopKernel));
            for step in 0..2 {
                let proc = rt.machine().cpu_proc(step, 0);
                let mem = rt.machine().proc(proc).local_mem;
                let mut t = TaskDesc::new(
                    k,
                    proc,
                    Point::new(vec![step as i64]),
                    vec![RegionReq::new(
                        r,
                        Rect::sized(&[2, 1024]).restrict(0, step as i64, step as i64),
                        Privilege::Read,
                        mem,
                    )],
                );
                t.flops = 1e9;
                p.push(Op::SingleTask(t));
                if with_barrier {
                    p.push(Op::Barrier);
                }
            }
            p
        };
        let free = rt.run(&build(false, &rt)).unwrap();
        // Re-seed to reset coherence for a fair second run.
        rt.fill_region(r, 0.0).unwrap();
        let barriered = rt.run(&build(true, &rt)).unwrap();
        assert!(
            barriered.makespan_s > 1.8 * free.makespan_s,
            "barrier {} vs free {}",
            barriered.makespan_s,
            free.makespan_s
        );
    }

    #[test]
    fn copy_log_records_transfers() {
        let m = PhysicalMachine::new(MachineSpec::small(2));
        let mut rt = Runtime::new(m, Mode::Model);
        rt.record_copies(true);
        let r = rt.create_region("A", Rect::sized(&[16]));
        rt.fill_region(r, 0.0).unwrap();
        let mut p = Program::new();
        let k = p.register_kernel(Arc::new(NoopKernel));
        let p1 = rt.machine().cpu_proc(1, 0);
        let m1 = rt.machine().proc(p1).local_mem;
        p.push(Op::SingleTask(TaskDesc::new(
            k,
            p1,
            Point::zeros(1),
            vec![RegionReq::new(r, Rect::sized(&[16]), Privilege::Read, m1)],
        )));
        let stats = rt.run(&p).unwrap();
        let log = stats.copy_log.as_ref().unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].bytes, 128);
    }
}
