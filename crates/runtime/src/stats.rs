//! Execution statistics reported by the runtime.

use crate::region::RegionId;
use crate::topology::MemId;
use std::collections::BTreeMap;
use std::fmt;

/// Classification of a data transfer by the channel it uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ChannelClass {
    /// GPU↔GPU over NVLink within a node.
    IntraNodeNvlink,
    /// Socket↔socket DRAM traffic within a node.
    IntraNodeSys,
    /// Host↔device transfers within a node.
    HostDevice,
    /// NIC traffic between nodes.
    InterNode,
    /// Copies from the unbounded staging memory (functional-mode input
    /// seeding; free and excluded from bandwidth accounting).
    Staging,
}

/// What a logged copy was doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CopyKind {
    /// A plain data movement satisfying a read requirement.
    Data,
    /// Folding a reduction instance into a destination instance.
    ReduceApply,
}

/// Per-kernel-variant execution totals: how much work ran under each
/// generated-leaf class (`interpreter`, `tape`, `gemm.gen`, `spmv.gen`,
/// …). Accumulated in the shared timing pass, so the totals are identical
/// across executors by construction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KernelClassStats {
    /// Tasks executed under this variant.
    pub tasks: u64,
    /// Floating-point work attributed to this variant.
    pub flops: f64,
    /// Processor-busy seconds attributed to this variant.
    pub busy_s: f64,
}

impl KernelClassStats {
    /// Modeled GFLOP/s of this variant (0 when no busy time).
    pub fn gflops(&self) -> f64 {
        if self.busy_s <= 0.0 {
            return 0.0;
        }
        self.flops / self.busy_s / 1e9
    }
}

/// One logged task execution (recorded when `record_copies` is enabled,
/// which turns on the full event log).
#[derive(Clone, Debug, PartialEq)]
pub struct TaskLogEntry {
    /// Kernel variant name.
    pub kernel: String,
    /// Processor the task ran on (`ProcId.0`).
    pub proc: u32,
    /// Floating-point work of the task.
    pub flops: f64,
    /// Simulated start time, seconds.
    pub start_s: f64,
    /// Simulated end time, seconds.
    pub end_s: f64,
}

/// One logged copy (recorded when `record_copies` is enabled).
#[derive(Clone, Debug, PartialEq)]
pub struct CopyLogEntry {
    /// Region moved.
    pub region: RegionId,
    /// Source memory.
    pub src_mem: MemId,
    /// Destination memory.
    pub dst_mem: MemId,
    /// Source node (`usize::MAX` = staging).
    pub src_node: usize,
    /// Destination node.
    pub dst_node: usize,
    /// Bytes moved.
    pub bytes: u64,
    /// Simulated start time, seconds.
    pub start_s: f64,
    /// Simulated end time, seconds.
    pub end_s: f64,
    /// Plain copy or reduction fold.
    pub kind: CopyKind,
}

/// Aggregate statistics for one program run.
///
/// `PartialEq` compares every field (including the copy log when present):
/// two runs of the same program under different executors must produce
/// *equal* statistics, and the parity tests assert exactly that.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunStats {
    /// End-to-end simulated time of the run, seconds.
    pub makespan_s: f64,
    /// Total floating-point work executed.
    pub total_flops: f64,
    /// Number of tasks executed.
    pub tasks: u64,
    /// Number of copies performed (excluding staging).
    pub copies: u64,
    /// Number of reduction folds applied.
    pub reductions_applied: u64,
    /// Bytes moved, per channel class.
    pub bytes_by_class: BTreeMap<ChannelClass, u64>,
    /// Peak bytes resident per memory kind name ("SYS_MEM", "GPU_FB_MEM").
    pub peak_mem_bytes: BTreeMap<String, u64>,
    /// Busy seconds per processor (indexed by `ProcId.0`).
    pub proc_busy_s: Vec<f64>,
    /// Work executed per kernel variant (`interpreter`, `tape`,
    /// `gemm.gen`, `spmv.gen`, …).
    pub task_classes: BTreeMap<String, KernelClassStats>,
    /// Copy log (only when requested).
    pub copy_log: Option<Vec<CopyLogEntry>>,
    /// Task log (only when requested, alongside the copy log).
    pub task_log: Option<Vec<TaskLogEntry>>,
}

impl RunStats {
    /// Bytes moved across node boundaries.
    pub fn inter_node_bytes(&self) -> u64 {
        *self
            .bytes_by_class
            .get(&ChannelClass::InterNode)
            .unwrap_or(&0)
    }

    /// Total bytes moved over real channels — staging (functional-mode
    /// input seeding) excluded. This is the backend-neutral "bytes moved"
    /// figure higher layers normalize into their reports.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_by_class
            .iter()
            .filter(|(c, _)| !matches!(c, ChannelClass::Staging))
            .map(|(_, b)| *b)
            .sum()
    }

    /// Bytes moved inside nodes (NVLink + socket + host-device).
    pub fn intra_node_bytes(&self) -> u64 {
        self.bytes_by_class
            .iter()
            .filter(|(c, _)| {
                matches!(
                    c,
                    ChannelClass::IntraNodeNvlink
                        | ChannelClass::IntraNodeSys
                        | ChannelClass::HostDevice
                )
            })
            .map(|(_, b)| *b)
            .sum()
    }

    /// Achieved GFLOP/s per node for a run on `nodes` nodes.
    pub fn gflops_per_node(&self, nodes: usize) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        self.total_flops / self.makespan_s / nodes as f64 / 1e9
    }

    /// Achieved GB/s per node of *useful* tensor traffic: `bytes` is the
    /// workload's logical footprint (used for bandwidth-bound kernels like
    /// TTV, Figure 16a/b).
    pub fn gbs_per_node(&self, logical_bytes: u64, nodes: usize) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        logical_bytes as f64 / self.makespan_s / nodes as f64 / 1e9
    }

    /// Accumulates another (sequential) phase into this one: makespans add,
    /// counters and byte totals sum, peaks take the maximum.
    pub fn merge(&mut self, other: &RunStats) {
        self.makespan_s += other.makespan_s;
        self.total_flops += other.total_flops;
        self.tasks += other.tasks;
        self.copies += other.copies;
        self.reductions_applied += other.reductions_applied;
        for (c, b) in &other.bytes_by_class {
            *self.bytes_by_class.entry(*c).or_insert(0) += b;
        }
        for (k, v) in &other.peak_mem_bytes {
            let e = self.peak_mem_bytes.entry(k.clone()).or_insert(0);
            *e = (*e).max(*v);
        }
        if self.proc_busy_s.len() < other.proc_busy_s.len() {
            self.proc_busy_s.resize(other.proc_busy_s.len(), 0.0);
        }
        for (i, b) in other.proc_busy_s.iter().enumerate() {
            self.proc_busy_s[i] += b;
        }
        for (k, v) in &other.task_classes {
            let e = self.task_classes.entry(k.clone()).or_default();
            e.tasks += v.tasks;
            e.flops += v.flops;
            e.busy_s += v.busy_s;
        }
        if let Some(log) = &other.copy_log {
            self.copy_log
                .get_or_insert_with(Vec::new)
                .extend(log.iter().cloned());
        }
        if let Some(log) = &other.task_log {
            self.task_log
                .get_or_insert_with(Vec::new)
                .extend(log.iter().cloned());
        }
    }

    /// Average processor utilization over the makespan.
    pub fn avg_utilization(&self) -> f64 {
        if self.makespan_s <= 0.0 || self.proc_busy_s.is_empty() {
            return 0.0;
        }
        let busy: f64 = self.proc_busy_s.iter().sum();
        busy / (self.makespan_s * self.proc_busy_s.len() as f64)
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "makespan: {:.6} s", self.makespan_s)?;
        writeln!(
            f,
            "tasks: {}, copies: {}, reductions: {}",
            self.tasks, self.copies, self.reductions_applied
        )?;
        writeln!(f, "flops: {:.3e}", self.total_flops)?;
        for (class, bytes) in &self.bytes_by_class {
            writeln!(f, "  {class:?}: {:.3} MB", *bytes as f64 / 1e6)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = RunStats {
            makespan_s: 2.0,
            total_flops: 8e9,
            ..RunStats::default()
        };
        s.bytes_by_class.insert(ChannelClass::InterNode, 100);
        s.bytes_by_class.insert(ChannelClass::IntraNodeNvlink, 50);
        s.bytes_by_class.insert(ChannelClass::Staging, 999);
        assert_eq!(s.inter_node_bytes(), 100);
        assert_eq!(s.intra_node_bytes(), 50);
        assert!((s.gflops_per_node(2) - 2.0).abs() < 1e-12);
        assert!((s.gbs_per_node(4_000_000_000, 2) - 1.0).abs() < 1e-12);
        s.proc_busy_s = vec![1.0, 1.0];
        assert!((s.avg_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_phases() {
        let mut a = RunStats {
            makespan_s: 1.0,
            total_flops: 10.0,
            tasks: 2,
            copies: 1,
            proc_busy_s: vec![0.5],
            ..RunStats::default()
        };
        a.bytes_by_class.insert(ChannelClass::InterNode, 100);
        a.peak_mem_bytes.insert("SYS_MEM".into(), 50);
        let mut b = RunStats {
            makespan_s: 2.0,
            total_flops: 5.0,
            tasks: 3,
            copies: 2,
            reductions_applied: 4,
            proc_busy_s: vec![0.25, 1.0],
            ..RunStats::default()
        };
        b.bytes_by_class.insert(ChannelClass::InterNode, 11);
        b.peak_mem_bytes.insert("SYS_MEM".into(), 80);
        a.merge(&b);
        assert_eq!(a.makespan_s, 3.0);
        assert_eq!(a.total_flops, 15.0);
        assert_eq!(a.tasks, 5);
        assert_eq!(a.copies, 3);
        assert_eq!(a.reductions_applied, 4);
        assert_eq!(a.inter_node_bytes(), 111);
        assert_eq!(a.peak_mem_bytes["SYS_MEM"], 80); // max, not sum
        assert_eq!(a.proc_busy_s, vec![0.75, 1.0]);
    }

    #[test]
    fn zero_makespan_is_safe() {
        let s = RunStats::default();
        assert_eq!(s.gflops_per_node(4), 0.0);
        assert_eq!(s.avg_utilization(), 0.0);
        let shown = format!("{s}");
        assert!(shown.contains("makespan"));
    }
}
