//! Programs: the instruction stream the compiler hands to the runtime.
//!
//! A [`Program`] is an ordered list of operations, mirroring a Legion
//! program: fills, single tasks, index task launches (the parallel-for
//! construct of §6.1), barriers (used by baselines that do not overlap
//! communication with computation), and scratch-discard hints that model
//! Legion instance reclamation for systolic double-buffering.
//!
//! Tasks name the *rectangles* of the regions they touch and the privilege
//! with which they touch them; the runtime inserts all communication
//! implicitly from these requirements.

use crate::kernel::Kernel;
use crate::region::RegionId;
use crate::topology::{MemId, ProcId};
use distal_machine::geom::{Point, Rect};
use std::fmt;
use std::sync::Arc;

/// Index of a kernel in a program's kernel table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KernelId(pub u32);

/// Privilege with which a task accesses a region requirement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Privilege {
    /// Read existing data.
    Read,
    /// Overwrite without reading (discard previous contents).
    Write,
    /// Read and update in place.
    ReadWrite,
    /// Sum-reduce into the region; multiple reducers may run in parallel
    /// through private reduction instances folded on the next read.
    Reduce,
}

impl Privilege {
    /// True for privileges that require existing data to be fetched.
    pub fn needs_fetch(self) -> bool {
        matches!(self, Privilege::Read | Privilege::ReadWrite)
    }

    /// True for privileges that produce new data.
    pub fn writes(self) -> bool {
        !matches!(self, Privilege::Read)
    }
}

/// One region requirement of a task.
#[derive(Clone, Debug)]
pub struct RegionReq {
    /// The region touched.
    pub region: RegionId,
    /// The rectangle touched.
    pub rect: Rect,
    /// Access privilege.
    pub privilege: Privilege,
    /// Memory in which the task wants the data materialized (chosen by the
    /// mapper layer).
    pub mem: MemId,
    /// Pin the materialized instance as a *home* instance (used by data
    /// placement launches, whose copies must survive scratch discards).
    pub pin: bool,
}

impl RegionReq {
    /// An unpinned requirement.
    pub fn new(region: RegionId, rect: Rect, privilege: Privilege, mem: MemId) -> Self {
        RegionReq {
            region,
            rect,
            privilege,
            mem,
            pin: false,
        }
    }
}

/// A single (point) task.
#[derive(Clone, Debug)]
pub struct TaskDesc {
    /// Kernel to run (index into [`Program::kernels`]).
    pub kernel: KernelId,
    /// Processor the mapper placed this task on.
    pub proc: ProcId,
    /// The launch-domain point of this task (for debugging/statistics).
    pub point: Point,
    /// Region requirements, in the order the kernel expects.
    pub reqs: Vec<RegionReq>,
    /// Floating-point work of the task (for the cost model).
    pub flops: f64,
    /// Bytes the task streams from its local memory (roofline term for
    /// bandwidth-bound kernels).
    pub bytes: f64,
    /// Fraction of peak the leaf kernel achieves (e.g. ~0.95 for GEMM).
    pub efficiency: f64,
    /// Scalar arguments forwarded to the kernel.
    pub scalars: Vec<i64>,
}

impl TaskDesc {
    /// A task with default cost fields, useful in tests.
    pub fn new(kernel: KernelId, proc: ProcId, point: Point, reqs: Vec<RegionReq>) -> Self {
        TaskDesc {
            kernel,
            proc,
            point,
            reqs,
            flops: 0.0,
            bytes: 0.0,
            efficiency: 1.0,
            scalars: Vec::new(),
        }
    }
}

/// A collection of point tasks launched together; tasks of one launch are
/// independent and may run in parallel (like a Legion index task launch).
#[derive(Clone, Debug)]
pub struct IndexLaunch {
    /// Debug name.
    pub name: String,
    /// The point tasks.
    pub tasks: Vec<TaskDesc>,
}

/// One operation of a program.
#[derive(Clone, Debug)]
pub enum Op {
    /// Initialize an entire region to a constant (creates a valid staging
    /// instance; placement tasks then move it where formats dictate).
    Fill { region: RegionId, value: f64 },
    /// Run one task.
    SingleTask(TaskDesc),
    /// Run a set of independent point tasks.
    IndexLaunch(IndexLaunch),
    /// Execution barrier: everything before completes before anything after
    /// starts. Used by the ScaLAPACK/CTF baselines, which do not overlap
    /// communication with computation (§7.1.1).
    Barrier,
    /// Retire scratch (fetched) instances of `region` older than the
    /// `keep_recent` most recent generations, freeing their memory. Models
    /// the bounded buffering of systolic algorithms.
    DiscardScratch { region: RegionId, keep_recent: u64 },
}

/// A complete program: operations plus the kernel table they reference.
#[derive(Clone, Default)]
pub struct Program {
    /// The operations in program order.
    pub ops: Vec<Op>,
    /// Kernels referenced by tasks.
    pub kernels: Vec<Arc<dyn Kernel>>,
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Program ({} ops, {} kernels):",
            self.ops.len(),
            self.kernels.len()
        )?;
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                Op::Fill { region, value } => writeln!(f, "  [{i}] fill {region:?} = {value}")?,
                Op::SingleTask(t) => writeln!(
                    f,
                    "  [{i}] task k{} on {:?} point {:?} ({} reqs)",
                    t.kernel.0,
                    t.proc,
                    t.point,
                    t.reqs.len()
                )?,
                Op::IndexLaunch(l) => writeln!(
                    f,
                    "  [{i}] index launch '{}' with {} point tasks",
                    l.name,
                    l.tasks.len()
                )?,
                Op::Barrier => writeln!(f, "  [{i}] barrier")?,
                Op::DiscardScratch {
                    region,
                    keep_recent,
                } => writeln!(f, "  [{i}] discard scratch {region:?} keep {keep_recent}")?,
            }
        }
        Ok(())
    }
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Registers a kernel and returns its id.
    pub fn register_kernel(&mut self, kernel: Arc<dyn Kernel>) -> KernelId {
        self.kernels.push(kernel);
        KernelId(self.kernels.len() as u32 - 1)
    }

    /// Appends an operation.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Total number of point tasks across all launches.
    pub fn task_count(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                Op::SingleTask(_) => 1,
                Op::IndexLaunch(l) => l.tasks.len(),
                _ => 0,
            })
            .sum()
    }

    /// Appends all operations of `other` (kernel ids are remapped).
    pub fn extend(&mut self, other: Program) {
        let offset = self.kernels.len() as u32;
        self.kernels.extend(other.kernels);
        for mut op in other.ops {
            match &mut op {
                Op::SingleTask(t) => t.kernel.0 += offset,
                Op::IndexLaunch(l) => {
                    for t in &mut l.tasks {
                        t.kernel.0 += offset;
                    }
                }
                _ => {}
            }
            self.ops.push(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::NoopKernel;

    #[test]
    fn program_building_and_counts() {
        let mut p = Program::new();
        let k = p.register_kernel(Arc::new(NoopKernel));
        assert_eq!(k, KernelId(0));
        p.push(Op::Fill {
            region: RegionId(0),
            value: 0.0,
        });
        p.push(Op::SingleTask(TaskDesc::new(
            k,
            ProcId(0),
            Point::zeros(1),
            vec![],
        )));
        p.push(Op::IndexLaunch(IndexLaunch {
            name: "l".into(),
            tasks: vec![
                TaskDesc::new(k, ProcId(0), Point::zeros(1), vec![]),
                TaskDesc::new(k, ProcId(1), Point::zeros(1), vec![]),
            ],
        }));
        assert_eq!(p.task_count(), 3);
        let dbg = format!("{p:?}");
        assert!(dbg.contains("index launch 'l'"));
    }

    #[test]
    fn extend_remaps_kernels() {
        let mut a = Program::new();
        a.register_kernel(Arc::new(NoopKernel));
        let mut b = Program::new();
        let kb = b.register_kernel(Arc::new(NoopKernel));
        b.push(Op::SingleTask(TaskDesc::new(
            kb,
            ProcId(0),
            Point::zeros(1),
            vec![],
        )));
        a.extend(b);
        match &a.ops[0] {
            Op::SingleTask(t) => assert_eq!(t.kernel, KernelId(1)),
            _ => panic!("expected task"),
        }
    }

    #[test]
    fn privilege_classification() {
        assert!(Privilege::Read.needs_fetch());
        assert!(Privilege::ReadWrite.needs_fetch());
        assert!(!Privilege::Write.needs_fetch());
        assert!(!Privilege::Reduce.needs_fetch());
        assert!(Privilege::Write.writes());
        assert!(Privilege::Reduce.writes());
        assert!(!Privilege::Read.writes());
    }
}
