//! Chrome-tracing export of simulated executions.
//!
//! Converts a [`RunStats`] copy log (and optional task log) into the Chrome
//! trace-event JSON format, viewable in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev): one row per memory/NIC channel,
//! copies as duration events. Handy for understanding why a schedule's
//! communication does or does not overlap with computation.

use crate::stats::{CopyKind, RunStats};
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the run's copy and task logs as Chrome trace-event JSON.
///
/// Each copy becomes a complete ("X") event on a track identified by its
/// source→destination memory pair; each task becomes an "X" event on its
/// processor's track, named after the kernel variant that ran (`tape`,
/// `gemm.gen`, `interpreter`, …). Times are microseconds. Returns an empty
/// trace when the run was executed without `record_copies`.
pub fn chrome_trace(stats: &RunStats) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    if let Some(log) = &stats.copy_log {
        for c in log {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let name = match c.kind {
                CopyKind::Data => format!("copy {:?}", c.region),
                CopyKind::ReduceApply => format!("reduce {:?}", c.region),
            };
            let track = if c.src_node == usize::MAX {
                "staging".to_string()
            } else if c.src_node == c.dst_node {
                format!("node{} local", c.src_node)
            } else {
                format!("node{}->node{}", c.src_node, c.dst_node)
            };
            let _ = write!(
                out,
                "  {{\"name\": \"{}\", \"cat\": \"copy\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 0, \"tid\": \"{}\", \"args\": {{\"bytes\": {}}}}}",
                escape(&name),
                c.start_s * 1e6,
                (c.end_s - c.start_s).max(0.0) * 1e6,
                escape(&track),
                c.bytes
            );
        }
    }
    if let Some(log) = &stats.task_log {
        for t in log {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "  {{\"name\": \"{}\", \"cat\": \"task\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 0, \"tid\": \"proc{}\", \"args\": {{\"flops\": {}}}}}",
                escape(&t.kernel),
                t.start_s * 1e6,
                (t.end_s - t.start_s).max(0.0) * 1e6,
                t.proc,
                t.flops
            );
        }
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{CopyLogEntry, TaskLogEntry};
    use crate::{MemId, RegionId};

    #[test]
    fn trace_renders_events() {
        let stats = RunStats {
            copy_log: Some(vec![CopyLogEntry {
                region: RegionId(3),
                src_mem: MemId(0),
                dst_mem: MemId(1),
                src_node: 0,
                dst_node: 1,
                bytes: 4096,
                start_s: 0.001,
                end_s: 0.002,
                kind: CopyKind::Data,
            }]),
            task_log: Some(vec![TaskLogEntry {
                kernel: "gemm.gen".into(),
                proc: 2,
                flops: 2048.0,
                start_s: 0.002,
                end_s: 0.004,
            }]),
            ..RunStats::default()
        };
        let json = chrome_trace(&stats);
        assert!(json.contains("\"copy R3\""));
        assert!(json.contains("node0->node1"));
        assert!(json.contains("\"bytes\": 4096"));
        assert!(json.contains("\"gemm.gen\""));
        assert!(json.contains("\"proc2\""));
        assert!(json.contains("\"flops\": 2048"));
        // Must be valid-ish JSON array.
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn empty_log_yields_empty_array() {
        let stats = RunStats::default();
        let json = chrome_trace(&stats);
        assert_eq!(json.trim(), "[\n\n]".trim());
    }
}
