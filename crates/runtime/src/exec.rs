//! The runtime facade: owns regions and instances, runs programs.

use crate::executor::{ExecCtx, Executor, ExecutorKind, ParallelExecutor, SerialExecutor};
use crate::graph::GraphBuilder;
use crate::program::Program;
use crate::region::{
    DataCell, Instance, InstanceId, InstanceRole, LogicalRegion, RegionId, ELEM_BYTES,
};
use crate::stats::RunStats;
use crate::topology::{MemId, PhysicalMachine};
use distal_machine::geom::{Rect, RectSet};
use distal_machine::spec::MemKind;
use std::fmt;
use std::sync::RwLock;

/// Execution mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Real buffers, real copies, real leaf kernels.
    Functional,
    /// Timing/communication model only — no data is touched.
    Model,
}

/// Errors reported by the runtime.
#[derive(Clone, Debug, PartialEq)]
pub enum RuntimeError {
    /// A memory's capacity was exceeded (e.g. Johnson's algorithm replicating
    /// tiles beyond the 16 GB GPU framebuffer, §7.1.2).
    OutOfMemory {
        /// Kind of the exhausted memory.
        mem_kind: MemKind,
        /// Node holding the memory.
        node: usize,
        /// Bytes the failed allocation requested.
        requested: u64,
        /// Bytes already in use.
        in_use: u64,
        /// The memory's capacity.
        capacity: u64,
    },
    /// A task read a rectangle for which no valid data exists anywhere.
    UninitializedData {
        /// Region name.
        region: String,
        /// The rectangle that could not be sourced.
        rect: Rect,
    },
    /// A requirement referenced coordinates outside its region.
    InvalidRequirement {
        /// Region name.
        region: String,
        /// The offending rectangle.
        rect: Rect,
    },
    /// `set_region_data` was given a buffer of the wrong length.
    DataSizeMismatch {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        got: usize,
    },
    /// An operation required functional mode.
    NotFunctional,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::OutOfMemory { mem_kind, node, requested, in_use, capacity } => write!(
                f,
                "out of memory in {mem_kind} on node {node}: requested {requested} B with {in_use}/{capacity} B in use"
            ),
            RuntimeError::UninitializedData { region, rect } => {
                write!(f, "no valid data for region '{region}' rect {rect:?}")
            }
            RuntimeError::InvalidRequirement { region, rect } => {
                write!(f, "requirement rect {rect:?} outside region '{region}'")
            }
            RuntimeError::DataSizeMismatch { expected, got } => {
                write!(f, "data size mismatch: expected {expected} elements, got {got}")
            }
            RuntimeError::NotFunctional => write!(f, "operation requires functional mode"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Persistent region/instance state (survives across program runs so that a
/// placement phase can feed a compute phase).
///
/// Instance *metadata* (bounds, coherence) lives in `Store::instances`;
/// the backing *buffers* live beside it in per-instance [`DataCell`] locks,
/// so executors can share `&Store` across worker threads and mutate buffers
/// concurrently where the dependence DAG allows it.
#[derive(Debug, Default)]
pub struct Store {
    pub(crate) regions: Vec<LogicalRegion>,
    pub(crate) instances: Vec<Instance>,
    /// Backing buffers, indexed like `instances`.
    pub(crate) buffers: Vec<DataCell>,
    /// Data instances per region (home + scratch).
    pub(crate) by_region: Vec<Vec<InstanceId>>,
    /// Pending reduction instances per region.
    pub(crate) reductions_by_region: Vec<Vec<InstanceId>>,
    /// Scratch generation counter per region (see `Op::DiscardScratch`).
    pub(crate) scratch_gen: Vec<u64>,
    /// Live bytes per memory.
    pub(crate) used_bytes: Vec<u64>,
    /// Peak live bytes per memory.
    pub(crate) peak_bytes: Vec<u64>,
}

impl Store {
    pub(crate) fn region(&self, id: RegionId) -> &LogicalRegion {
        &self.regions[id.0 as usize]
    }

    pub(crate) fn instance(&self, id: InstanceId) -> &Instance {
        &self.instances[id.0 as usize]
    }

    pub(crate) fn instance_mut(&mut self, id: InstanceId) -> &mut Instance {
        &mut self.instances[id.0 as usize]
    }

    /// The buffer cell of an instance (lock to read/write data).
    pub(crate) fn buffer(&self, id: InstanceId) -> &DataCell {
        &self.buffers[id.0 as usize]
    }

    /// Direct access to an instance's buffer (no locking; needs `&mut`).
    pub(crate) fn buffer_mut(&mut self, id: InstanceId) -> &mut Option<Vec<f64>> {
        self.buffers[id.0 as usize]
            .get_mut()
            .expect("poisoned buffer lock")
    }

    /// Allocates an instance, enforcing memory capacity.
    pub(crate) fn create_instance(
        &mut self,
        machine: &PhysicalMachine,
        region: RegionId,
        mem: MemId,
        rect: Rect,
        role: InstanceRole,
        functional: bool,
    ) -> Result<InstanceId, RuntimeError> {
        let bytes = rect.volume() as u64 * ELEM_BYTES;
        let m = machine.mem(mem);
        let used = &mut self.used_bytes[mem.0 as usize];
        if m.capacity != u64::MAX && *used + bytes > m.capacity {
            return Err(RuntimeError::OutOfMemory {
                mem_kind: m.kind,
                node: m.node,
                requested: bytes,
                in_use: *used,
                capacity: m.capacity,
            });
        }
        *used += bytes;
        let peak = &mut self.peak_bytes[mem.0 as usize];
        *peak = (*peak).max(self.used_bytes[mem.0 as usize]);
        let id = InstanceId(self.instances.len() as u32);
        let data = if functional {
            Some(vec![0.0; rect.volume() as usize])
        } else {
            None
        };
        self.instances.push(Instance {
            id,
            region,
            mem,
            rect,
            valid: RectSet::new(),
            role,
            gen: self.scratch_gen[region.0 as usize],
            depth: 0,
        });
        self.buffers.push(RwLock::new(data));
        match role {
            InstanceRole::Reduction => self.reductions_by_region[region.0 as usize].push(id),
            _ => self.by_region[region.0 as usize].push(id),
        }
        Ok(id)
    }

    /// Frees an instance's accounting and hides it from coherence, keeping
    /// its buffer alive for kernels already scheduled against it.
    pub(crate) fn retire_instance(&mut self, id: InstanceId) {
        let inst = &mut self.instances[id.0 as usize];
        let bytes = inst.bytes();
        let mem = inst.mem.0 as usize;
        inst.valid = RectSet::new();
        let region = inst.region.0 as usize;
        self.used_bytes[mem] = self.used_bytes[mem].saturating_sub(bytes);
        self.by_region[region].retain(|i| *i != id);
        self.reductions_by_region[region].retain(|i| *i != id);
    }
}

/// The runtime: a physical machine plus persistent region state.
///
/// See the crate-level docs for an overview and example.
#[derive(Debug)]
pub struct Runtime {
    machine: PhysicalMachine,
    mode: Mode,
    record_copies: bool,
    executor: ExecutorKind,
    executor_threads: usize,
    pub(crate) store: Store,
}

impl Runtime {
    /// Creates a runtime for `machine` in the given mode.
    pub fn new(machine: PhysicalMachine, mode: Mode) -> Self {
        let mems = machine.mems().len();
        Runtime {
            machine,
            mode,
            record_copies: false,
            executor: ExecutorKind::default(),
            executor_threads: 0,
            store: Store {
                used_bytes: vec![0; mems],
                peak_bytes: vec![0; mems],
                ..Store::default()
            },
        }
    }

    /// Enables per-copy logging in [`RunStats::copy_log`].
    pub fn record_copies(&mut self, on: bool) -> &mut Self {
        self.record_copies = on;
        self
    }

    /// Selects how [`Runtime::run`] executes DAG nodes. The default,
    /// [`ExecutorKind::Auto`], picks the parallel executor in functional
    /// mode and the serial executor in model mode.
    pub fn set_executor(&mut self, kind: ExecutorKind) -> &mut Self {
        self.executor = kind;
        self
    }

    /// The configured executor selection.
    pub fn executor(&self) -> ExecutorKind {
        self.executor
    }

    /// Caps the parallel executor's worker count (0 = one per host core,
    /// or the `DISTAL_THREADS` environment variable when set).
    pub fn set_executor_threads(&mut self, threads: usize) -> &mut Self {
        self.executor_threads = threads;
        self
    }

    /// The physical machine.
    pub fn machine(&self) -> &PhysicalMachine {
        &self.machine
    }

    /// The execution mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Creates a logical region over `rect`.
    pub fn create_region(&mut self, name: impl Into<String>, rect: Rect) -> RegionId {
        let id = RegionId(self.store.regions.len() as u32);
        self.store.regions.push(LogicalRegion {
            id,
            name: name.into(),
            rect,
            payload_scale: 1.0,
        });
        self.store.by_region.push(Vec::new());
        self.store.reductions_by_region.push(Vec::new());
        self.store.scratch_gen.push(0);
        id
    }

    /// Sets a region's wire-payload scale (compressed-format byte
    /// accounting; see [`LogicalRegion::payload_scale`]). Values are
    /// clamped to be positive; `1.0` restores flat dense accounting.
    pub fn set_region_payload_scale(&mut self, region: RegionId, scale: f64) {
        self.store.regions[region.0 as usize].payload_scale = scale.max(f64::MIN_POSITIVE);
    }

    /// Seeds a region with row-major data in the staging memory
    /// (functional mode only).
    ///
    /// # Errors
    ///
    /// Fails when not in functional mode or when `data` has the wrong length.
    pub fn set_region_data(
        &mut self,
        region: RegionId,
        data: Vec<f64>,
    ) -> Result<(), RuntimeError> {
        if self.mode != Mode::Functional {
            return Err(RuntimeError::NotFunctional);
        }
        let rect = self.store.region(region).rect.clone();
        let expected = rect.volume() as usize;
        if data.len() != expected {
            return Err(RuntimeError::DataSizeMismatch {
                expected,
                got: data.len(),
            });
        }
        self.seed_region(region, Some(data))
    }

    /// Marks a region as holding `value` everywhere (both modes). In model
    /// mode this only establishes validity for the dependence analysis.
    pub fn fill_region(&mut self, region: RegionId, value: f64) -> Result<(), RuntimeError> {
        let rect = self.store.region(region).rect.clone();
        let data = if self.mode == Mode::Functional {
            Some(vec![value; rect.volume() as usize])
        } else {
            None
        };
        self.seed_region(region, data)
    }

    fn seed_region(
        &mut self,
        region: RegionId,
        data: Option<Vec<f64>>,
    ) -> Result<(), RuntimeError> {
        let rect = self.store.region(region).rect.clone();
        // Invalidate all existing instances of the region.
        let existing: Vec<InstanceId> = self.store.by_region[region.0 as usize].clone();
        for id in existing {
            self.store.instance_mut(id).valid = RectSet::new();
        }
        let pending: Vec<InstanceId> = self.store.reductions_by_region[region.0 as usize].clone();
        for id in pending {
            self.store.retire_instance(id);
        }
        let global = self.machine.global_mem();
        let id = self.store.create_instance(
            &self.machine,
            region,
            global,
            rect.clone(),
            InstanceRole::Home,
            false,
        )?;
        *self.store.buffer_mut(id) = data;
        self.store.instance_mut(id).valid = RectSet::from_rect(rect);
        Ok(())
    }

    /// Runs a program under the configured executor and returns its
    /// statistics.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError::OutOfMemory`] (the Johnson/COSMA GPU
    /// behaviour in Figure 15b), uninitialized reads, and malformed
    /// requirements.
    pub fn run(&mut self, program: &Program) -> Result<RunStats, RuntimeError> {
        match self.executor.resolve(self.mode) {
            ExecutorKind::Parallel => {
                let exec = ParallelExecutor::new(self.executor_threads);
                self.run_with(program, &exec)
            }
            _ => self.run_with(program, &SerialExecutor),
        }
    }

    /// Runs a program under an explicit [`Executor`] (the two built-in ones
    /// are [`SerialExecutor`] and [`ParallelExecutor`]).
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::run`].
    pub fn run_with(
        &mut self,
        program: &Program,
        executor: &dyn Executor,
    ) -> Result<RunStats, RuntimeError> {
        let functional = self.mode == Mode::Functional;
        let graph = GraphBuilder::build(&self.machine, &mut self.store, program, functional)?;
        let mut ctx = ExecCtx {
            machine: &self.machine,
            store: &mut self.store,
            graph: &graph,
            kernels: &program.kernels,
            functional,
            record_copies: self.record_copies,
        };
        let mut stats = executor.execute(&mut ctx);
        // Report peak memory by kind.
        for mem in self.machine.mems() {
            let peak = self.store.peak_bytes[mem.id.0 as usize];
            let entry = stats
                .peak_mem_bytes
                .entry(mem.kind.to_string())
                .or_insert(0);
            *entry = (*entry).max(peak);
        }
        Ok(stats)
    }

    /// Gathers a region's current contents into a row-major buffer,
    /// folding any pending reductions (functional mode only).
    ///
    /// # Errors
    ///
    /// Fails when not in functional mode or when parts of the region have
    /// never been written.
    pub fn read_region(&self, region: RegionId) -> Result<Vec<f64>, RuntimeError> {
        if self.mode != Mode::Functional {
            return Err(RuntimeError::NotFunctional);
        }
        let lr = self.store.region(region);
        let rect = lr.rect.clone();
        let mut out = vec![0.0; rect.volume() as usize];
        let mut covered = RectSet::new();
        for id in &self.store.by_region[region.0 as usize] {
            let inst = self.store.instance(*id);
            let cell = self.store.buffer(*id).read().expect("poisoned buffer lock");
            for vr in inst.valid.rects().to_vec() {
                let mut fresh = RectSet::from_rect(vr.clone());
                for c in covered.rects().to_vec() {
                    fresh.subtract(&c);
                }
                for piece in fresh.rects().to_vec() {
                    if let Some(data) = cell.as_ref() {
                        for p in piece.points() {
                            out[rect.linearize(&p)] = data[inst.rect.linearize(&p)];
                        }
                    }
                    covered.add(piece);
                }
            }
        }
        if !covered.covers(&rect) {
            return Err(RuntimeError::UninitializedData {
                region: lr.name.clone(),
                rect,
            });
        }
        // Fold pending reductions.
        for id in &self.store.reductions_by_region[region.0 as usize] {
            let inst = self.store.instance(*id);
            let cell = self.store.buffer(*id).read().expect("poisoned buffer lock");
            if let Some(data) = cell.as_ref() {
                for p in inst.rect.points() {
                    out[rect.linearize(&p)] += data[inst.rect.linearize(&p)];
                }
            }
        }
        Ok(out)
    }

    /// A human-readable summary of a region's physical instances (memory,
    /// role, allocation bounds, valid pieces) — for debugging placements.
    pub fn describe_region(&self, region: RegionId) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let lr = self.store.region(region);
        let _ = writeln!(out, "region '{}' over {:?}:", lr.name, lr.rect);
        for id in &self.store.by_region[region.0 as usize] {
            let inst = self.store.instance(*id);
            let _ = writeln!(
                out,
                "  {:?} in {:?} ({:?}, alloc {:?}) valid {:?}",
                inst.id,
                inst.mem,
                inst.role,
                inst.rect,
                inst.valid.rects()
            );
        }
        for id in &self.store.reductions_by_region[region.0 as usize] {
            let inst = self.store.instance(*id);
            let _ = writeln!(
                out,
                "  {:?} reduction in {:?} over {:?}",
                inst.id, inst.mem, inst.rect
            );
        }
        out
    }

    /// Current live bytes in a memory (for tests of the discard machinery).
    pub fn used_bytes(&self, mem: MemId) -> u64 {
        self.store.used_bytes[mem.0 as usize]
    }

    /// Peak live bytes observed in a memory.
    pub fn peak_bytes(&self, mem: MemId) -> u64 {
        self.store.peak_bytes[mem.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distal_machine::spec::MachineSpec;

    fn rt() -> Runtime {
        Runtime::new(
            PhysicalMachine::new(MachineSpec::small(2)),
            Mode::Functional,
        )
    }

    #[test]
    fn seed_and_read_roundtrip() {
        let mut rt = rt();
        let r = rt.create_region("A", Rect::sized(&[4, 4]));
        let data: Vec<f64> = (0..16).map(|x| x as f64).collect();
        rt.set_region_data(r, data.clone()).unwrap();
        assert_eq!(rt.read_region(r).unwrap(), data);
    }

    #[test]
    fn wrong_data_size_rejected() {
        let mut rt = rt();
        let r = rt.create_region("A", Rect::sized(&[4]));
        let err = rt.set_region_data(r, vec![0.0; 3]).unwrap_err();
        assert_eq!(
            err,
            RuntimeError::DataSizeMismatch {
                expected: 4,
                got: 3
            }
        );
    }

    #[test]
    fn uninitialized_read_errors() {
        let mut rt = rt();
        let r = rt.create_region("A", Rect::sized(&[4]));
        assert!(matches!(
            rt.read_region(r),
            Err(RuntimeError::UninitializedData { .. })
        ));
    }

    #[test]
    fn model_mode_rejects_data_access() {
        let mut rt = Runtime::new(PhysicalMachine::new(MachineSpec::small(1)), Mode::Model);
        let r = rt.create_region("A", Rect::sized(&[4]));
        assert_eq!(
            rt.set_region_data(r, vec![0.0; 4]),
            Err(RuntimeError::NotFunctional)
        );
        assert_eq!(rt.read_region(r), Err(RuntimeError::NotFunctional));
        // fill_region is allowed: it establishes validity for the analysis.
        rt.fill_region(r, 0.0).unwrap();
    }

    #[test]
    fn fill_overwrites_previous_data() {
        let mut rt = rt();
        let r = rt.create_region("A", Rect::sized(&[2, 2]));
        rt.set_region_data(r, vec![5.0; 4]).unwrap();
        rt.fill_region(r, 1.5).unwrap();
        assert_eq!(rt.read_region(r).unwrap(), vec![1.5; 4]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = RuntimeError::OutOfMemory {
            mem_kind: distal_machine::spec::MemKind::Fb,
            node: 3,
            requested: 100,
            in_use: 50,
            capacity: 120,
        };
        let msg = format!("{e}");
        assert!(msg.contains("node 3"));
        assert!(msg.contains("GPU_FB_MEM"));
    }
}
