//! Logical regions and physical instances.
//!
//! Regions are Legion's abstraction for distributed data structures; we use
//! them to represent dense tensors (paper §6.1). A *logical* region is just
//! an index space; *physical instances* materialize (sub-)rectangles of a
//! region in a concrete memory and track which of their sub-rectangles hold
//! current data.

use crate::topology::MemId;
use distal_machine::geom::{Point, Rect, RectSet};
use std::fmt;

/// Identifier of a logical region.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

impl fmt::Debug for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Identifier of a physical instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u32);

impl fmt::Debug for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}", self.0)
    }
}

/// A logical region: a named, dense, `f64`-element index space.
#[derive(Clone, Debug)]
pub struct LogicalRegion {
    /// This region's id.
    pub id: RegionId,
    /// Debug name (usually the tensor name).
    pub name: String,
    /// The region's index space.
    pub rect: Rect,
    /// Wire-payload bytes per dense byte moved out of this region
    /// (`1.0` = flat dense data). Tensors stored in a compressed level
    /// format ship `pos`/`crd`/`vals` payloads instead of dense tiles;
    /// the owning session sets this to `payload / dense` so copy byte
    /// accounting (and model-mode copy timing) charges nnz-sized
    /// transfers. Functional buffers stay dense either way — only the
    /// communication accounting is scaled.
    pub payload_scale: f64,
}

pub use distal_machine::ELEM_BYTES;

impl LogicalRegion {
    /// Size of the full region in bytes.
    pub fn bytes(&self) -> u64 {
        self.rect.volume() as u64 * ELEM_BYTES
    }

    /// Wire bytes of moving `volume` elements of this region: dense bytes
    /// scaled by [`LogicalRegion::payload_scale`], rounded up.
    pub fn payload_bytes(&self, volume: i64) -> u64 {
        let dense = volume.max(0) as u64 * ELEM_BYTES;
        if self.payload_scale == 1.0 {
            dense
        } else {
            (dense as f64 * self.payload_scale).ceil() as u64
        }
    }
}

/// How an instance came to exist; home instances are pinned, scratch
/// instances may be discarded by [`crate::program::Op::DiscardScratch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceRole {
    /// Created by a write-privilege task (data placement); never discarded.
    Home,
    /// Created to satisfy a read requirement; discardable.
    Scratch,
    /// A reduction buffer awaiting folding.
    Reduction,
}

/// A physical instance: storage for a sub-rectangle of a region in one
/// memory.
#[derive(Clone, Debug)]
pub struct Instance {
    /// This instance's id.
    pub id: InstanceId,
    /// The region this instance caches.
    pub region: RegionId,
    /// The memory holding the instance.
    pub mem: MemId,
    /// Bounds of the allocation (row-major layout over this rect).
    pub rect: Rect,
    /// Which sub-rectangles currently hold up-to-date data.
    pub valid: RectSet,
    /// Home, scratch, or reduction buffer.
    pub role: InstanceRole,
    /// Scratch generation (incremented by `DiscardScratch`); used to retire
    /// old systolic forwarding buffers while keeping the latest.
    pub gen: u64,
    /// Forwarding depth: 0 for data produced here (home writes, fills),
    /// `src.depth + 1` for copied data. Together with the per-instance
    /// served-copy count, it shapes one-to-many transfers into binomial
    /// trees instead of linear chains.
    pub depth: u32,
}

/// The interior-mutable backing buffer of one instance (functional mode;
/// `None` in model mode or before seeding).
///
/// Buffers live in [`crate::exec::Store`] *beside* the instance metadata —
/// rather than inside [`Instance`] — so that executors can share the store
/// immutably across worker threads while mutating buffers under per-instance
/// locks. The dependence DAG serializes conflicting accesses; the locks make
/// that guarantee checkable by the type system.
pub type DataCell = std::sync::RwLock<Option<Vec<f64>>>;

impl Instance {
    /// Allocation size in bytes.
    pub fn bytes(&self) -> u64 {
        self.rect.volume() as u64 * ELEM_BYTES
    }
}

/// Copies `rect` between row-major buffers element-wise (functional mode).
///
/// `src_alloc`/`dst_alloc` are the allocation bounds the buffers are laid
/// out over; both must cover `rect`. `reduce` folds with `+=` instead of
/// overwriting (used when applying reduction buffers).
pub fn copy_rect(
    src_alloc: &Rect,
    src_data: &[f64],
    dst_alloc: &Rect,
    dst_data: &mut [f64],
    rect: &Rect,
    reduce: bool,
) {
    debug_assert!(src_alloc.contains_rect(rect));
    debug_assert!(dst_alloc.contains_rect(rect));
    // Fast path: copy contiguous runs along the last dimension.
    let dim = rect.dim();
    if rect.is_empty() {
        return;
    }
    if dim == 0 {
        // Scalar (0-dimensional) regions hold exactly one element.
        let v = src_data[0];
        let d = &mut dst_data[0];
        if reduce {
            *d += v;
        } else {
            *d = v;
        }
        return;
    }
    let row_len = rect.extent(dim - 1) as usize;
    // Iterate over all but the last dimension.
    let outer_rect = if dim == 1 {
        Rect::sized(&[1])
    } else {
        Rect::new(
            Point::new(rect.lo().coords()[..dim - 1].to_vec()),
            Point::new(rect.hi().coords()[..dim - 1].to_vec()),
        )
    };
    for prefix in outer_rect.points() {
        let mut start = Vec::with_capacity(dim);
        if dim == 1 {
            start.push(rect.lo()[0]);
        } else {
            start.extend_from_slice(prefix.coords());
            start.push(rect.lo()[dim - 1]);
        }
        let start = Point::new(start);
        let s_off = src_alloc.linearize(&start);
        let d_off = dst_alloc.linearize(&start);
        if reduce {
            for i in 0..row_len {
                dst_data[d_off + i] += src_data[s_off + i];
            }
        } else {
            dst_data[d_off..d_off + row_len].copy_from_slice(&src_data[s_off..s_off + row_len]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(id: u32, rect: Rect) -> Instance {
        Instance {
            id: InstanceId(id),
            region: RegionId(0),
            mem: MemId(0),
            valid: RectSet::from_rect(rect.clone()),
            rect,
            role: InstanceRole::Home,
            gen: 0,
            depth: 0,
        }
    }

    #[test]
    fn instance_bytes() {
        let i = inst(0, Rect::sized(&[2, 3]));
        assert_eq!(i.bytes(), 48);
    }

    #[test]
    fn copy_rect_full_and_sub() {
        let r = Rect::sized(&[4, 4]);
        let src: Vec<f64> = (0..16).map(|x| x as f64).collect();
        let mut dst = vec![0.0; 16];
        copy_rect(&r, &src, &r, &mut dst, &r, false);
        assert_eq!(dst, src);

        // Sub-rectangle copy into a buffer with different bounds.
        let sub = Rect::new(Point::new(vec![1, 1]), Point::new(vec![2, 2]));
        let mut small = vec![0.0; 4];
        copy_rect(&r, &src, &sub, &mut small, &sub, false);
        assert_eq!(small[sub.linearize(&Point::new(vec![1, 1]))], 5.0);
        assert_eq!(small[sub.linearize(&Point::new(vec![2, 2]))], 10.0);
    }

    #[test]
    fn copy_rect_reduce_accumulates() {
        let r = Rect::sized(&[2, 2]);
        let src = vec![1.0; 4];
        let mut dst = vec![2.0; 4];
        copy_rect(&r, &src, &r, &mut dst, &r, true);
        assert_eq!(dst, vec![3.0; 4]);
    }

    #[test]
    fn copy_rect_1d() {
        let r = Rect::sized(&[5]);
        let src: Vec<f64> = (0..5).map(|x| x as f64).collect();
        let mut dst = vec![0.0; 5];
        let sub = Rect::new(Point::new(vec![1]), Point::new(vec![3]));
        copy_rect(&r, &src, &r, &mut dst, &sub, false);
        assert_eq!(dst, vec![0.0, 1.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn copy_rect_scalar() {
        let r = Rect::sized(&[]);
        let src = vec![4.0];
        let mut dst = vec![1.0];
        copy_rect(&r, &src, &r, &mut dst, &r, true);
        assert_eq!(dst, vec![5.0]);
    }
}
