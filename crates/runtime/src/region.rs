//! Logical regions and physical instances.
//!
//! Regions are Legion's abstraction for distributed data structures; we use
//! them to represent dense tensors (paper §6.1). A *logical* region is just
//! an index space; *physical instances* materialize (sub-)rectangles of a
//! region in a concrete memory and track which of their sub-rectangles hold
//! current data.

use crate::topology::MemId;
use distal_machine::geom::{Point, Rect, RectSet};
use std::fmt;

/// Identifier of a logical region.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

impl fmt::Debug for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Identifier of a physical instance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u32);

impl fmt::Debug for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}", self.0)
    }
}

/// A logical region: a named, dense, `f64`-element index space.
#[derive(Clone, Debug)]
pub struct LogicalRegion {
    /// This region's id.
    pub id: RegionId,
    /// Debug name (usually the tensor name).
    pub name: String,
    /// The region's index space.
    pub rect: Rect,
}

/// Element size in bytes (all tensors are `f64`, as in the paper).
pub const ELEM_BYTES: u64 = 8;

impl LogicalRegion {
    /// Size of the full region in bytes.
    pub fn bytes(&self) -> u64 {
        self.rect.volume() as u64 * ELEM_BYTES
    }
}

/// How an instance came to exist; home instances are pinned, scratch
/// instances may be discarded by [`crate::program::Op::DiscardScratch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstanceRole {
    /// Created by a write-privilege task (data placement); never discarded.
    Home,
    /// Created to satisfy a read requirement; discardable.
    Scratch,
    /// A reduction buffer awaiting folding.
    Reduction,
}

/// A physical instance: storage for a sub-rectangle of a region in one
/// memory.
#[derive(Clone, Debug)]
pub struct Instance {
    /// This instance's id.
    pub id: InstanceId,
    /// The region this instance caches.
    pub region: RegionId,
    /// The memory holding the instance.
    pub mem: MemId,
    /// Bounds of the allocation (row-major layout over this rect).
    pub rect: Rect,
    /// Which sub-rectangles currently hold up-to-date data.
    pub valid: RectSet,
    /// Home, scratch, or reduction buffer.
    pub role: InstanceRole,
    /// Scratch generation (incremented by `DiscardScratch`); used to retire
    /// old systolic forwarding buffers while keeping the latest.
    pub gen: u64,
    /// Forwarding depth: 0 for data produced here (home writes, fills),
    /// `src.depth + 1` for copied data. Together with the per-instance
    /// served-copy count, it shapes one-to-many transfers into binomial
    /// trees instead of linear chains.
    pub depth: u32,
    /// Backing data in functional mode (`None` in model mode).
    pub data: Option<Vec<f64>>,
}

impl Instance {
    /// Allocation size in bytes.
    pub fn bytes(&self) -> u64 {
        self.rect.volume() as u64 * ELEM_BYTES
    }

    /// Reads the element at `p` (functional mode only).
    ///
    /// # Panics
    ///
    /// Panics if the instance has no data or `p` is outside its bounds.
    pub fn read(&self, p: &Point) -> f64 {
        let idx = self.rect.linearize(p);
        self.data.as_ref().expect("instance has no data")[idx]
    }

    /// Writes the element at `p` (functional mode only).
    ///
    /// # Panics
    ///
    /// Panics if the instance has no data or `p` is outside its bounds.
    pub fn write(&mut self, p: &Point, v: f64) {
        let idx = self.rect.linearize(p);
        self.data.as_mut().expect("instance has no data")[idx] = v;
    }
}

/// Copies `rect` of `src` into `dst` element-wise (functional mode).
///
/// Both instances must cover `rect`. `reduce` folds with `+=` instead of
/// overwriting (used when applying reduction buffers).
pub fn copy_rect(src: &Instance, dst: &mut Instance, rect: &Rect, reduce: bool) {
    debug_assert!(src.rect.contains_rect(rect));
    debug_assert!(dst.rect.contains_rect(rect));
    if src.data.is_none() || dst.data.is_none() {
        return;
    }
    // Fast path: copy contiguous runs along the last dimension.
    let dim = rect.dim();
    if rect.is_empty() {
        return;
    }
    if dim == 0 {
        // Scalar (0-dimensional) regions hold exactly one element.
        let v = src.data.as_ref().unwrap()[0];
        let d = &mut dst.data.as_mut().unwrap()[0];
        if reduce {
            *d += v;
        } else {
            *d = v;
        }
        return;
    }
    let row_len = rect.extent(dim - 1) as usize;
    // Iterate over all but the last dimension.
    let outer_rect = if dim == 1 {
        Rect::sized(&[1])
    } else {
        Rect::new(
            Point::new(rect.lo().coords()[..dim - 1].to_vec()),
            Point::new(rect.hi().coords()[..dim - 1].to_vec()),
        )
    };
    for prefix in outer_rect.points() {
        let mut start = Vec::with_capacity(dim);
        if dim == 1 {
            start.push(rect.lo()[0]);
        } else {
            start.extend_from_slice(prefix.coords());
            start.push(rect.lo()[dim - 1]);
        }
        let start = Point::new(start);
        let s_off = src.rect.linearize(&start);
        let d_off = dst.rect.linearize(&start);
        let src_data = src.data.as_ref().unwrap();
        let dst_data = dst.data.as_mut().unwrap();
        if reduce {
            for i in 0..row_len {
                dst_data[d_off + i] += src_data[s_off + i];
            }
        } else {
            dst_data[d_off..d_off + row_len].copy_from_slice(&src_data[s_off..s_off + row_len]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(id: u32, rect: Rect, data: Vec<f64>) -> Instance {
        Instance {
            id: InstanceId(id),
            region: RegionId(0),
            mem: MemId(0),
            valid: RectSet::from_rect(rect.clone()),
            rect,
            role: InstanceRole::Home,
            gen: 0,
            depth: 0,
            data: Some(data),
        }
    }

    #[test]
    fn read_write_roundtrip() {
        let r = Rect::sized(&[2, 3]);
        let mut i = inst(0, r.clone(), vec![0.0; 6]);
        i.write(&Point::new(vec![1, 2]), 7.5);
        assert_eq!(i.read(&Point::new(vec![1, 2])), 7.5);
        assert_eq!(i.bytes(), 48);
    }

    #[test]
    fn copy_rect_full_and_sub() {
        let r = Rect::sized(&[4, 4]);
        let src = inst(0, r.clone(), (0..16).map(|x| x as f64).collect());
        let mut dst = inst(1, r.clone(), vec![0.0; 16]);
        copy_rect(&src, &mut dst, &r, false);
        assert_eq!(dst.data.as_ref().unwrap(), src.data.as_ref().unwrap());

        // Sub-rectangle copy into an instance with different bounds.
        let sub = Rect::new(Point::new(vec![1, 1]), Point::new(vec![2, 2]));
        let mut small = inst(2, sub.clone(), vec![0.0; 4]);
        copy_rect(&src, &mut small, &sub, false);
        assert_eq!(small.read(&Point::new(vec![1, 1])), 5.0);
        assert_eq!(small.read(&Point::new(vec![2, 2])), 10.0);
    }

    #[test]
    fn copy_rect_reduce_accumulates() {
        let r = Rect::sized(&[2, 2]);
        let src = inst(0, r.clone(), vec![1.0; 4]);
        let mut dst = inst(1, r.clone(), vec![2.0; 4]);
        copy_rect(&src, &mut dst, &r, true);
        assert_eq!(dst.data.as_ref().unwrap(), &vec![3.0; 4]);
    }

    #[test]
    fn copy_rect_1d() {
        let r = Rect::sized(&[5]);
        let src = inst(0, r.clone(), (0..5).map(|x| x as f64).collect());
        let mut dst = inst(1, r.clone(), vec![0.0; 5]);
        let sub = Rect::new(Point::new(vec![1]), Point::new(vec![3]));
        copy_rect(&src, &mut dst, &sub, false);
        assert_eq!(dst.data.as_ref().unwrap(), &vec![0.0, 1.0, 2.0, 3.0, 0.0]);
    }
}
