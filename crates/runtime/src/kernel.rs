//! Leaf kernels and the functional-mode execution context.
//!
//! A [`Kernel`] is the body of a task: it receives views over the physical
//! instances backing each of the task's region requirements and computes on
//! them. Kernels are registered per [`crate::program::Program`] and invoked
//! only in [`crate::exec::Mode::Functional`]; model mode uses the cost fields
//! of [`crate::program::TaskDesc`] instead.

use crate::program::Privilege;
use distal_machine::geom::{Point, Rect};

/// A view over one region requirement's backing instance.
///
/// The view exposes the requirement rectangle (`rect`) and the instance's
/// allocation bounds (`alloc`); elements are addressed by *global* tensor
/// coordinates and mapped to the row-major layout over `alloc`.
#[derive(Debug)]
pub struct KernelArg {
    /// The privilege the task holds on this argument.
    pub privilege: Privilege,
    /// The rectangle the task may touch.
    pub rect: Rect,
    /// Allocation bounds of the backing instance.
    pub alloc: Rect,
    /// The backing buffer (row-major over `alloc`), temporarily moved out of
    /// the instance for the duration of the kernel.
    pub data: Vec<f64>,
}

impl KernelArg {
    /// Reads the element at global coordinates `p`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `p` is outside the allocation.
    #[inline]
    pub fn at(&self, p: &[i64]) -> f64 {
        self.data[self.offset(p)]
    }

    /// Writes the element at global coordinates `p`.
    #[inline]
    pub fn set(&mut self, p: &[i64], v: f64) {
        let off = self.offset(p);
        self.data[off] = v;
    }

    /// Adds `v` to the element at global coordinates `p`.
    #[inline]
    pub fn add(&mut self, p: &[i64], v: f64) {
        let off = self.offset(p);
        self.data[off] += v;
    }

    /// Row-major offset of global coordinates `p` within the allocation.
    #[inline]
    pub fn offset(&self, p: &[i64]) -> usize {
        debug_assert_eq!(p.len(), self.alloc.dim());
        let mut idx: i64 = 0;
        for d in 0..self.alloc.dim() {
            debug_assert!(
                self.alloc.lo()[d] <= p[d] && p[d] <= self.alloc.hi()[d],
                "coordinate {p:?} outside allocation {:?}",
                self.alloc
            );
            idx = idx * self.alloc.extent(d) + (p[d] - self.alloc.lo()[d]);
        }
        idx as usize
    }

    /// Row stride of the last dimension (for blocked inner loops).
    #[inline]
    pub fn last_dim_stride(&self) -> usize {
        1
    }
}

/// The context handed to a kernel: one [`KernelArg`] per region requirement
/// (in requirement order) plus the task's launch point and scalars.
#[derive(Debug)]
pub struct KernelCtx {
    /// Views over the task's region requirements, in requirement order.
    pub args: Vec<KernelArg>,
    /// The task's launch-domain point.
    pub point: Point,
    /// Scalar arguments from the task descriptor.
    pub scalars: Vec<i64>,
}

/// A leaf computation run by tasks in functional mode.
pub trait Kernel: Send + Sync {
    /// Human-readable kernel name (appears in debug output).
    fn name(&self) -> &str;

    /// Executes the kernel over the views in `ctx`.
    fn execute(&self, ctx: &mut KernelCtx);
}

/// A kernel that does nothing; useful for placement launches, whose only
/// purpose is to force instances to materialize in mapper-chosen memories.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopKernel;

impl Kernel for NoopKernel {
    fn name(&self) -> &str {
        "noop"
    }

    fn execute(&self, _ctx: &mut KernelCtx) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use distal_machine::geom::{Point, Rect};

    #[test]
    fn kernel_arg_addressing() {
        let alloc = Rect::new(Point::new(vec![2, 4]), Point::new(vec![3, 7]));
        let mut arg = KernelArg {
            privilege: Privilege::ReadWrite,
            rect: alloc.clone(),
            alloc,
            data: vec![0.0; 8],
        };
        arg.set(&[2, 4], 1.0);
        arg.set(&[3, 7], 9.0);
        arg.add(&[3, 7], 1.0);
        assert_eq!(arg.at(&[2, 4]), 1.0);
        assert_eq!(arg.at(&[3, 7]), 10.0);
        assert_eq!(arg.offset(&[2, 4]), 0);
        assert_eq!(arg.offset(&[3, 7]), 7);
    }

    #[test]
    fn noop_kernel_runs() {
        let mut ctx = KernelCtx {
            args: vec![],
            point: Point::zeros(1),
            scalars: vec![],
        };
        NoopKernel.execute(&mut ctx);
        assert_eq!(NoopKernel.name(), "noop");
    }
}
