//! A Legion-like distributed task-based runtime, as a deterministic
//! discrete-event simulator.
//!
//! Pipeline layers 5–6 (kernel generation, dynamic-runtime execution) —
//! `ARCHITECTURE.md` at the workspace root maps all six layers.
//!
//! DISTAL (PLDI 2022) targets the Legion runtime system, which supplies
//! (§6): overlap of communication and computation, data movement through deep
//! memory hierarchies, native accelerator support, and control over the
//! placement of data and computation. No Legion equivalent exists in Rust, so
//! this crate implements the same *programming model* as a simulator:
//!
//! * **Logical regions** ([`region::LogicalRegion`]) are multi-dimensional
//!   arrays of `f64` identified by [`region::RegionId`].
//! * **Physical instances** hold (sub-)region data in a specific memory and
//!   track which sub-rectangles are currently valid (coherence).
//! * **Tasks** ([`program::TaskDesc`]) declare *region requirements* — which
//!   rectangle of which region they touch with which privilege (read, write,
//!   read-write, or reduce). Multiple point tasks form an **index launch**.
//! * The runtime performs **dynamic dependence analysis** over program order,
//!   inserting copies between memories exactly where data is not already
//!   resident — communication in Legion is implicit, and so it is here.
//! * A **mapper** (the compiler layer above) chooses target processors and
//!   memories; the runtime obeys.
//!
//! Execution has two modes ([`exec::Mode`]):
//!
//! * `Functional` — instances carry real buffers, copies move real bytes, and
//!   leaf kernels compute real numerics (used by tests and examples);
//! * `Model` — the identical task/copy DAG is built and scheduled, but no
//!   data is touched, so 256-node weak-scaling sweeps run in milliseconds.
//!
//! Both modes traverse the same DAG, so communication statistics
//! ([`stats::RunStats`]) are identical between them.
//!
//! # Example
//!
//! ```
//! use distal_machine::{Rect, spec::MachineSpec};
//! use distal_runtime::{Runtime, exec::Mode, topology::PhysicalMachine};
//!
//! let machine = PhysicalMachine::new(MachineSpec::small(2));
//! let mut rt = Runtime::new(machine, Mode::Functional);
//! let region = rt.create_region("A", Rect::sized(&[8, 8]));
//! rt.set_region_data(region, vec![1.0; 64]).unwrap();
//! assert_eq!(rt.read_region(region).unwrap()[0], 1.0);
//! ```

pub mod exec;
pub mod executor;
pub mod graph;
pub mod kernel;
pub mod kernelgen;
pub mod program;
pub mod region;
pub(crate) mod sim;
pub mod stats;
pub mod topology;
pub mod trace;

pub use exec::{Mode, Runtime, RuntimeError};
pub use executor::{ExecCtx, Executor, ExecutorKind, ParallelExecutor, SerialExecutor};
pub use kernel::{Kernel, KernelArg, KernelCtx};
pub use kernelgen::{KernelGen, LeafRequest};
pub use program::{IndexLaunch, KernelId, Op, Privilege, Program, RegionReq, TaskDesc};
pub use region::RegionId;
pub use stats::{ChannelClass, CopyKind, CopyLogEntry, RunStats};
pub use topology::{MemId, PhysicalMachine, ProcId};
