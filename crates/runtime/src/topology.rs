//! Physical machine topology: processors, memories, and channels.
//!
//! A [`PhysicalMachine`] instantiates a [`MachineSpec`] into concrete
//! processor and memory tables. Following the paper's evaluation setup, each
//! CPU *socket* is one abstract processor with its own system-memory slice,
//! and each GPU is one processor with its own framebuffer memory. One extra
//! unbounded `Global` staging memory holds functional-mode input data before
//! placement.

use distal_machine::spec::{MachineSpec, MemKind, ProcKind};
use std::fmt;

/// Identifier of a physical processor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of a physical memory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemId(pub u32);

impl fmt::Debug for MemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// A physical processor.
#[derive(Clone, Debug)]
pub struct Processor {
    /// This processor's id.
    pub id: ProcId,
    /// CPU socket or GPU.
    pub kind: ProcKind,
    /// Node index in `[0, spec.nodes)`.
    pub node: usize,
    /// Index of this processor within its node (socket index or GPU index).
    pub local_index: usize,
    /// The memory local to this processor (socket DRAM slice or GPU FB).
    pub local_mem: MemId,
}

/// A physical memory.
#[derive(Clone, Debug)]
pub struct Memory {
    /// This memory's id.
    pub id: MemId,
    /// System, framebuffer, or staging memory.
    pub kind: MemKind,
    /// Node index; `usize::MAX` for the global staging memory.
    pub node: usize,
    /// Capacity in bytes.
    pub capacity: u64,
}

/// The physical machine: processors, memories, and the channel cost model.
#[derive(Clone, Debug)]
pub struct PhysicalMachine {
    /// The spec this machine was built from.
    pub spec: MachineSpec,
    procs: Vec<Processor>,
    mems: Vec<Memory>,
    global_mem: MemId,
}

impl PhysicalMachine {
    /// Builds the processor/memory tables for a spec.
    ///
    /// Per node, processors are laid out as: CPU sockets first, then GPUs.
    pub fn new(spec: MachineSpec) -> Self {
        let mut procs = Vec::new();
        let mut mems = Vec::new();
        for node in 0..spec.nodes {
            for s in 0..spec.node.cpu_sockets {
                let mem = MemId(mems.len() as u32);
                mems.push(Memory {
                    id: mem,
                    kind: MemKind::Sys,
                    node,
                    capacity: spec.mem_capacity(MemKind::Sys),
                });
                procs.push(Processor {
                    id: ProcId(procs.len() as u32),
                    kind: ProcKind::Cpu,
                    node,
                    local_index: s,
                    local_mem: mem,
                });
            }
            for g in 0..spec.node.gpus {
                let mem = MemId(mems.len() as u32);
                mems.push(Memory {
                    id: mem,
                    kind: MemKind::Fb,
                    node,
                    capacity: spec.mem_capacity(MemKind::Fb),
                });
                procs.push(Processor {
                    id: ProcId(procs.len() as u32),
                    kind: ProcKind::Gpu,
                    node,
                    local_index: g,
                    local_mem: mem,
                });
            }
        }
        let global_mem = MemId(mems.len() as u32);
        mems.push(Memory {
            id: global_mem,
            kind: MemKind::Global,
            node: usize::MAX,
            capacity: u64::MAX,
        });
        PhysicalMachine {
            spec,
            procs,
            mems,
            global_mem,
        }
    }

    /// All processors.
    pub fn procs(&self) -> &[Processor] {
        &self.procs
    }

    /// All memories (the last one is the global staging memory).
    pub fn mems(&self) -> &[Memory] {
        &self.mems
    }

    /// Processor lookup.
    pub fn proc(&self, id: ProcId) -> &Processor {
        &self.procs[id.0 as usize]
    }

    /// Memory lookup.
    pub fn mem(&self, id: MemId) -> &Memory {
        &self.mems[id.0 as usize]
    }

    /// The unbounded staging memory.
    pub fn global_mem(&self) -> MemId {
        self.global_mem
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.spec.nodes
    }

    /// The `socket`-th CPU processor of `node`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    pub fn cpu_proc(&self, node: usize, socket: usize) -> ProcId {
        assert!(node < self.spec.nodes && socket < self.spec.node.cpu_sockets);
        let per_node = self.spec.node.cpu_sockets + self.spec.node.gpus;
        ProcId((node * per_node + socket) as u32)
    }

    /// The `gpu`-th GPU processor of `node`.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    pub fn gpu_proc(&self, node: usize, gpu: usize) -> ProcId {
        assert!(node < self.spec.nodes && gpu < self.spec.node.gpus);
        let per_node = self.spec.node.cpu_sockets + self.spec.node.gpus;
        ProcId((node * per_node + self.spec.node.cpu_sockets + gpu) as u32)
    }

    /// All processors of one kind, in node-major order.
    pub fn procs_of_kind(&self, kind: ProcKind) -> Vec<ProcId> {
        self.procs
            .iter()
            .filter(|p| p.kind == kind)
            .map(|p| p.id)
            .collect()
    }

    /// Transfer duration in seconds of `bytes` between two memories.
    pub fn copy_time_s(&self, src: MemId, dst: MemId, bytes: u64) -> f64 {
        let (s, d) = (self.mem(src), self.mem(dst));
        let same_node = s.node == d.node;
        let gbs = self.spec.channel_gbs(s.kind, d.kind, same_node);
        let lat = self.spec.channel_latency_s(s.kind, d.kind, same_node);
        if gbs.is_infinite() {
            return 0.0;
        }
        lat + bytes as f64 / (gbs * 1e9)
    }

    /// Classifies a copy for the statistics report.
    pub fn channel_class(&self, src: MemId, dst: MemId) -> crate::stats::ChannelClass {
        use crate::stats::ChannelClass;
        let (s, d) = (self.mem(src), self.mem(dst));
        if s.kind == MemKind::Global || d.kind == MemKind::Global {
            ChannelClass::Staging
        } else if s.node != d.node {
            ChannelClass::InterNode
        } else if s.kind == MemKind::Fb && d.kind == MemKind::Fb {
            ChannelClass::IntraNodeNvlink
        } else if s.kind != d.kind {
            ChannelClass::HostDevice
        } else {
            ChannelClass::IntraNodeSys
        }
    }

    /// Model-mode duration of a leaf task: fixed runtime overhead plus a
    /// roofline term over the processor's compute and memory throughput.
    pub fn task_time_s(&self, proc: ProcId, flops: f64, bytes: f64, efficiency: f64) -> f64 {
        let kind = self.proc(proc).kind;
        let gflops = self.spec.proc_gflops(kind) * efficiency;
        let membw = match kind {
            ProcKind::Cpu => self.spec.node.intra_cpu_gbs,
            ProcKind::Gpu => 900.0,
        };
        let compute = flops / (gflops * 1e9);
        let memory = bytes / (membw * 1e9);
        self.spec.task_overhead_s + compute.max(memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> PhysicalMachine {
        PhysicalMachine::new(MachineSpec::lassen(2))
    }

    #[test]
    fn builds_expected_processor_layout() {
        let m = machine();
        // 2 nodes x (2 sockets + 4 GPUs) = 12 processors.
        assert_eq!(m.procs().len(), 12);
        // 12 local memories + 1 global staging memory.
        assert_eq!(m.mems().len(), 13);
        assert_eq!(m.proc(m.cpu_proc(1, 0)).node, 1);
        assert_eq!(m.proc(m.cpu_proc(1, 0)).kind, ProcKind::Cpu);
        assert_eq!(m.proc(m.gpu_proc(0, 3)).kind, ProcKind::Gpu);
        assert_eq!(m.proc(m.gpu_proc(0, 3)).local_index, 3);
        assert_eq!(m.procs_of_kind(ProcKind::Gpu).len(), 8);
    }

    #[test]
    fn local_memory_kinds() {
        let m = machine();
        let cpu = m.proc(m.cpu_proc(0, 1));
        assert_eq!(m.mem(cpu.local_mem).kind, MemKind::Sys);
        let gpu = m.proc(m.gpu_proc(1, 2));
        assert_eq!(m.mem(gpu.local_mem).kind, MemKind::Fb);
        assert_eq!(m.mem(m.global_mem()).kind, MemKind::Global);
    }

    #[test]
    fn copy_times_respect_channels() {
        let m = machine();
        let fb0 = m.proc(m.gpu_proc(0, 0)).local_mem;
        let fb1 = m.proc(m.gpu_proc(0, 1)).local_mem;
        let fb_remote = m.proc(m.gpu_proc(1, 0)).local_mem;
        let bytes = 1 << 30;
        let nvlink = m.copy_time_s(fb0, fb1, bytes);
        let nic = m.copy_time_s(fb0, fb_remote, bytes);
        assert!(nic > nvlink * 3.0, "nic={nic} nvlink={nvlink}");
        // Staging copies are free.
        assert_eq!(m.copy_time_s(m.global_mem(), fb0, bytes), 0.0);
    }

    #[test]
    fn task_time_roofline() {
        let m = machine();
        let gpu = m.gpu_proc(0, 0);
        // Compute bound: 7 TFLOP at 7 TFLOP/s ≈ 1 s.
        let t = m.task_time_s(gpu, 7e12, 0.0, 1.0);
        assert!((t - 1.0).abs() < 0.01, "{t}");
        // Memory bound term dominates when bytes are large.
        let t2 = m.task_time_s(gpu, 1.0, 900e9, 1.0);
        assert!((t2 - 1.0).abs() < 0.01, "{t2}");
    }
}
