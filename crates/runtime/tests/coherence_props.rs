//! Property tests for the runtime's coherence machinery: arbitrary
//! sequences of tiled reads/writes across memories always read back what a
//! sequential interpretation would.

use distal_machine::geom::{Point, Rect};
use distal_machine::spec::MachineSpec;
use distal_runtime::kernel::{Kernel, KernelCtx};
use distal_runtime::program::{Op, Privilege, Program, RegionReq, TaskDesc};
use distal_runtime::topology::PhysicalMachine;
use distal_runtime::{Mode, Runtime};
use proptest::prelude::*;
use std::sync::Arc;

/// Adds a constant over the requirement rect (ReadWrite) — order matters,
/// so hazards must be exact.
struct AddKernel(f64);
impl Kernel for AddKernel {
    fn name(&self) -> &str {
        "add"
    }
    fn execute(&self, ctx: &mut KernelCtx) {
        let rect = ctx.args[0].rect.clone();
        for p in rect.points() {
            let v = ctx.args[0].at(p.coords());
            ctx.args[0].set(p.coords(), v + self.0);
        }
    }
}

#[derive(Clone, Debug)]
struct Step {
    lo: i64,
    hi: i64,
    proc_idx: usize,
    delta: f64,
}

fn step_strategy(n: i64, procs: usize) -> impl Strategy<Value = Step> {
    ((0..n), (0..n), 0..procs, 1u32..5u32).prop_map(move |(a, b, proc_idx, d)| Step {
        lo: a.min(b),
        hi: a.max(b),
        proc_idx,
        delta: d as f64,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random read-modify-write sequences across 4 memories on 2 nodes
    /// match a sequential model exactly.
    #[test]
    fn random_rmw_sequences_are_sequentially_consistent(
        steps in prop::collection::vec(step_strategy(16, 4), 1..12)
    ) {
        let machine = PhysicalMachine::new(MachineSpec::small(2));
        let procs: Vec<_> = (0..2)
            .flat_map(|node| (0..2).map(move |s| (node, s)))
            .map(|(node, s)| machine.cpu_proc(node, s))
            .collect();
        let mut rt = Runtime::new(machine, Mode::Functional);
        let region = rt.create_region("T", Rect::sized(&[16]));
        rt.set_region_data(region, vec![0.0; 16]).unwrap();

        let mut program = Program::new();
        let mut reference = vec![0.0f64; 16];
        for step in &steps {
            let k = program.register_kernel(Arc::new(AddKernel(step.delta)));
            let proc = procs[step.proc_idx];
            let mem = rt.machine().proc(proc).local_mem;
            let rect = Rect::new(Point::new(vec![step.lo]), Point::new(vec![step.hi]));
            program.push(Op::SingleTask(TaskDesc::new(
                k,
                proc,
                Point::new(vec![step.proc_idx as i64]),
                vec![RegionReq::new(region, rect, Privilege::ReadWrite, mem)],
            )));
            for i in step.lo..=step.hi {
                reference[i as usize] += step.delta;
            }
        }
        rt.run(&program).unwrap();
        prop_assert_eq!(rt.read_region(region).unwrap(), reference);
    }

    /// Reductions commute: any assignment of reducers to processors folds
    /// to the same totals.
    #[test]
    fn reductions_fold_exactly(
        steps in prop::collection::vec(step_strategy(8, 4), 1..10)
    ) {
        let machine = PhysicalMachine::new(MachineSpec::small(2));
        let procs: Vec<_> = (0..2)
            .flat_map(|node| (0..2).map(move |s| (node, s)))
            .map(|(node, s)| machine.cpu_proc(node, s))
            .collect();
        let mut rt = Runtime::new(machine, Mode::Functional);
        let region = rt.create_region("T", Rect::sized(&[8]));
        rt.set_region_data(region, vec![0.0; 8]).unwrap();

        let mut program = Program::new();
        let mut reference = vec![0.0f64; 8];
        for step in &steps {
            let k = program.register_kernel(Arc::new(AddKernel(step.delta)));
            let proc = procs[step.proc_idx];
            let mem = rt.machine().proc(proc).local_mem;
            let rect = Rect::new(Point::new(vec![step.lo]), Point::new(vec![step.hi]));
            program.push(Op::SingleTask(TaskDesc::new(
                k,
                proc,
                Point::new(vec![step.proc_idx as i64]),
                vec![RegionReq::new(region, rect, Privilege::Reduce, mem)],
            )));
            for i in step.lo..=step.hi {
                reference[i as usize] += step.delta;
            }
        }
        rt.run(&program).unwrap();
        // read_region folds all pending reduction instances.
        prop_assert_eq!(rt.read_region(region).unwrap(), reference);
    }
}
