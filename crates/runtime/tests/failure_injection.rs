//! Failure injection for the runtime substrate: out-of-memory, reads of
//! uninitialized data, malformed requirements, and the barrier semantics
//! the baselines depend on. A Legion-like runtime must fail loudly and
//! precisely — the Figure 15b OOM points are *results*, so the error paths
//! are part of the reproduction.

use distal_machine::geom::{Point, Rect};
use distal_machine::spec::{MachineSpec, MemKind};
use distal_runtime::exec::{Mode, Runtime, RuntimeError};
use distal_runtime::kernel::NoopKernel;
use distal_runtime::program::{IndexLaunch, Op, Privilege, Program, RegionReq, TaskDesc};
use distal_runtime::topology::PhysicalMachine;
use std::sync::Arc;

/// A machine with one node and framebuffers shrunk to `fb_bytes`.
fn tiny_machine(fb_bytes: u64) -> PhysicalMachine {
    let mut spec = MachineSpec::small(1);
    spec.node.fb_bytes = fb_bytes;
    PhysicalMachine::new(spec)
}

/// The memory local to the node's first GPU.
fn fb_mem(machine: &PhysicalMachine) -> distal_runtime::topology::MemId {
    let gpu = machine.gpu_proc(0, 0);
    machine.proc(gpu).local_mem
}

#[test]
fn oversized_instance_reports_oom_with_accounting() {
    // 1 MiB framebuffer; a 512x512 f64 tile is 2 MiB.
    let machine = tiny_machine(1 << 20);
    let fb = fb_mem(&machine);
    let gpu = machine.gpu_proc(0, 0);
    let mut rt = Runtime::new(machine, Mode::Model);
    let region = rt.create_region("T", Rect::sized(&[512, 512]));
    rt.fill_region(region, 0.0).unwrap();

    let mut program = Program::new();
    let k = program.register_kernel(Arc::new(NoopKernel));
    program.push(Op::SingleTask(TaskDesc::new(
        k,
        gpu,
        Point::zeros(1),
        vec![RegionReq::new(
            region,
            Rect::sized(&[512, 512]),
            Privilege::Read,
            fb,
        )],
    )));
    match rt.run(&program) {
        Err(RuntimeError::OutOfMemory {
            mem_kind,
            requested,
            capacity,
            ..
        }) => {
            assert_eq!(mem_kind, MemKind::Fb);
            assert_eq!(requested, 512 * 512 * 8);
            assert_eq!(capacity, 1 << 20);
        }
        other => panic!("expected OOM, got {other:?}"),
    }
}

#[test]
fn oom_is_cumulative_not_per_instance() {
    // Two tiles that fit individually but not together.
    let machine = tiny_machine(3 << 20); // 3 MiB; each tile 2 MiB
    let fb = fb_mem(&machine);
    let gpu = machine.gpu_proc(0, 0);
    let mut rt = Runtime::new(machine, Mode::Model);
    let r1 = rt.create_region("T1", Rect::sized(&[512, 512]));
    let r2 = rt.create_region("T2", Rect::sized(&[512, 512]));
    rt.fill_region(r1, 0.0).unwrap();
    rt.fill_region(r2, 0.0).unwrap();

    let mut program = Program::new();
    let k = program.register_kernel(Arc::new(NoopKernel));
    for r in [r1, r2] {
        program.push(Op::SingleTask(TaskDesc::new(
            k,
            gpu,
            Point::zeros(1),
            vec![RegionReq::new(
                r,
                Rect::sized(&[512, 512]),
                Privilege::Read,
                fb,
            )],
        )));
    }
    match rt.run(&program) {
        Err(RuntimeError::OutOfMemory { in_use, .. }) => {
            assert_eq!(in_use, 512 * 512 * 8, "first tile was resident");
        }
        other => panic!("expected OOM on the second tile, got {other:?}"),
    }
}

#[test]
fn scratch_discard_frees_memory_for_systolic_reuse() {
    // With discards between launches, a buffer the size of the memory can
    // be streamed through it repeatedly (the systolic double-buffer bound).
    let machine = tiny_machine(5 << 20); // fits two 2 MiB tiles + slack
    let fb = fb_mem(&machine);
    let gpu = machine.gpu_proc(0, 0);
    let mut rt = Runtime::new(machine, Mode::Model);
    let region = rt.create_region("B", Rect::sized(&[4, 512, 512]));
    rt.fill_region(region, 0.0).unwrap();

    let mut program = Program::new();
    let k = program.register_kernel(Arc::new(NoopKernel));
    for step in 0..4i64 {
        program.push(Op::DiscardScratch {
            region,
            keep_recent: 1,
        });
        let rect = Rect::new(
            Point::new(vec![step, 0, 0]),
            Point::new(vec![step, 511, 511]),
        );
        program.push(Op::SingleTask(TaskDesc::new(
            k,
            gpu,
            Point::new(vec![step]),
            vec![RegionReq::new(region, rect, Privilege::Read, fb)],
        )));
    }
    // Without discards this would need 8 MiB; with them it must fit.
    rt.run(&program).expect("discards bound the working set");

    // The same program without discards exhausts the memory.
    let mut rt2 = Runtime::new(tiny_machine(5 << 20), Mode::Model);
    let region2 = rt2.create_region("B", Rect::sized(&[4, 512, 512]));
    rt2.fill_region(region2, 0.0).unwrap();
    let mut program2 = Program::new();
    let k2 = program2.register_kernel(Arc::new(NoopKernel));
    let fb2 = {
        let m = rt2.machine();
        m.proc(m.gpu_proc(0, 0)).local_mem
    };
    let gpu2 = rt2.machine().gpu_proc(0, 0);
    for step in 0..4i64 {
        let rect = Rect::new(
            Point::new(vec![step, 0, 0]),
            Point::new(vec![step, 511, 511]),
        );
        program2.push(Op::SingleTask(TaskDesc::new(
            k2,
            gpu2,
            Point::new(vec![step]),
            vec![RegionReq::new(region2, rect, Privilege::Read, fb2)],
        )));
    }
    assert!(matches!(
        rt2.run(&program2),
        Err(RuntimeError::OutOfMemory { .. })
    ));
}

#[test]
fn reading_uninitialized_region_fails() {
    let machine = tiny_machine(1 << 30);
    let fb = fb_mem(&machine);
    let gpu = machine.gpu_proc(0, 0);
    let mut rt = Runtime::new(machine, Mode::Functional);
    let region = rt.create_region("X", Rect::sized(&[8]));
    // No fill / set_region_data: a read must fail.
    let mut program = Program::new();
    let k = program.register_kernel(Arc::new(NoopKernel));
    program.push(Op::SingleTask(TaskDesc::new(
        k,
        gpu,
        Point::zeros(1),
        vec![RegionReq::new(
            region,
            Rect::sized(&[8]),
            Privilege::Read,
            fb,
        )],
    )));
    match rt.run(&program) {
        Err(RuntimeError::UninitializedData { region, .. }) => assert_eq!(region, "X"),
        other => panic!("expected uninitialized-data error, got {other:?}"),
    }
}

#[test]
fn requirement_outside_region_rejected() {
    let machine = tiny_machine(1 << 30);
    let fb = fb_mem(&machine);
    let gpu = machine.gpu_proc(0, 0);
    let mut rt = Runtime::new(machine, Mode::Model);
    let region = rt.create_region("X", Rect::sized(&[8]));
    rt.fill_region(region, 0.0).unwrap();
    let mut program = Program::new();
    let k = program.register_kernel(Arc::new(NoopKernel));
    program.push(Op::SingleTask(TaskDesc::new(
        k,
        gpu,
        Point::zeros(1),
        vec![RegionReq::new(
            region,
            Rect::new(Point::new(vec![4]), Point::new(vec![12])),
            Privilege::Read,
            fb,
        )],
    )));
    assert!(matches!(
        rt.run(&program),
        Err(RuntimeError::InvalidRequirement { .. })
    ));
}

#[test]
fn data_size_mismatch_rejected() {
    let machine = tiny_machine(1 << 30);
    let mut rt = Runtime::new(machine, Mode::Functional);
    let region = rt.create_region("X", Rect::sized(&[8]));
    assert!(matches!(
        rt.set_region_data(region, vec![0.0; 7]),
        Err(RuntimeError::DataSizeMismatch {
            expected: 8,
            got: 7
        })
    ));
}

#[test]
fn model_mode_reads_are_rejected() {
    let machine = tiny_machine(1 << 30);
    let mut rt = Runtime::new(machine, Mode::Model);
    let region = rt.create_region("X", Rect::sized(&[8]));
    rt.fill_region(region, 0.0).unwrap();
    assert!(matches!(
        rt.read_region(region),
        Err(RuntimeError::NotFunctional)
    ));
}

#[test]
fn barrier_serializes_phases() {
    // Two independent tasks on different sockets overlap without a
    // barrier and serialize with one — the §7.1.1 ScaLAPACK/CTF handicap.
    let build = |with_barrier: bool| -> f64 {
        let machine = PhysicalMachine::new(MachineSpec::small(1));
        let p0 = machine.cpu_proc(0, 0);
        let p1 = machine.cpu_proc(0, 1);
        let mut rt = Runtime::new(machine, Mode::Model);
        let region = rt.create_region("X", Rect::sized(&[2, 64]));
        rt.fill_region(region, 0.0).unwrap();
        let mut program = Program::new();
        let k = program.register_kernel(Arc::new(NoopKernel));
        let mems: Vec<_> = {
            let m = rt.machine();
            vec![m.proc(p0).local_mem, m.proc(p1).local_mem]
        };
        for (i, (proc, mem)) in [(p0, mems[0]), (p1, mems[1])].into_iter().enumerate() {
            if with_barrier && i == 1 {
                program.push(Op::Barrier);
            }
            let rect = Rect::new(
                Point::new(vec![i as i64, 0]),
                Point::new(vec![i as i64, 63]),
            );
            let mut task = TaskDesc::new(
                k,
                proc,
                Point::new(vec![i as i64]),
                vec![RegionReq::new(region, rect, Privilege::Read, mem)],
            );
            task.flops = 1e9; // ~3 ms of work per task
            task.efficiency = 1.0;
            program.push(Op::SingleTask(task));
        }
        rt.run(&program).unwrap().makespan_s
    };
    let overlapped = build(false);
    let serialized = build(true);
    assert!(
        serialized > overlapped * 1.8,
        "barrier should roughly double the makespan: {overlapped} vs {serialized}"
    );
}

#[test]
fn index_launch_tasks_run_in_parallel() {
    let machine = PhysicalMachine::new(MachineSpec::small(1));
    let procs: Vec<_> = (0..2).map(|s| machine.cpu_proc(0, s)).collect();
    let mut rt = Runtime::new(machine, Mode::Model);
    let mut program = Program::new();
    let k = program.register_kernel(Arc::new(NoopKernel));
    let tasks: Vec<TaskDesc> = procs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut t = TaskDesc::new(k, *p, Point::new(vec![i as i64]), vec![]);
            t.flops = 1e9;
            t.efficiency = 1.0;
            t
        })
        .collect();
    let one_task_flops = tasks[0].flops;
    program.push(Op::IndexLaunch(IndexLaunch {
        name: "par".into(),
        tasks,
    }));
    let stats = rt.run(&program).unwrap();
    // Two tasks, one task's wall-clock (plus overhead slack).
    let serial_estimate = 2.0 * one_task_flops
        / (rt
            .machine()
            .spec
            .proc_gflops(distal_machine::spec::ProcKind::Cpu)
            * 1e9);
    assert!(
        stats.makespan_s < serial_estimate * 0.75,
        "{}",
        stats.makespan_s
    );
    assert_eq!(stats.tasks, 2);
}
