//! Shared baseline machinery: phased runs and barrier insertion.

use distal_core::{CompiledKernel, Session};
use distal_runtime::program::{Op, Program};
use distal_runtime::stats::RunStats;
use distal_runtime::RuntimeError;

/// The comparison systems of §7.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineSystem {
    /// ScaLAPACK's SUMMA (bulk-synchronous).
    ScaLapack,
    /// Cyclops Tensor Framework (2.5D GEMM; matricized higher-order ops).
    Ctf,
    /// COSMA (communication-optimal grid, full overlap, 40 cores).
    Cosma,
    /// COSMA restricted to DISTAL's 36 worker cores (Figure 15a).
    CosmaRestrictedCpus,
}

impl BaselineSystem {
    /// Figure legend name.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineSystem::ScaLapack => "SCALAPACK",
            BaselineSystem::Ctf => "CTF",
            BaselineSystem::Cosma => "COSMA",
            BaselineSystem::CosmaRestrictedCpus => "COSMA (Restricted CPUs)",
        }
    }
}

/// One phase of a multi-phase baseline run.
#[allow(clippy::large_enum_variant)] // kernels dominate; phases are few
pub enum Phase {
    /// A compiled kernel: placement then compute.
    Kernel(CompiledKernel),
    /// A raw runtime program (redistributions/reshapes).
    Raw(Program),
    /// A raw program whose time is excluded from the measured total (input
    /// staging that the paper's timers also exclude).
    Untimed(Program),
}

impl std::fmt::Debug for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::Kernel(_) => f.write_str("Phase::Kernel"),
            Phase::Raw(_) => f.write_str("Phase::Raw"),
            Phase::Untimed(_) => f.write_str("Phase::Untimed"),
        }
    }
}

/// A session plus an ordered list of phases (CTF-style pipelines).
#[derive(Debug)]
pub struct PhasedRun {
    /// The session owning all regions.
    pub session: Session,
    /// Phases, run in order.
    pub phases: Vec<Phase>,
    /// Name of the output tensor (for correctness checks).
    pub output: String,
}

impl PhasedRun {
    /// Runs all phases, summing the measured statistics.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors from any phase.
    pub fn run(&mut self) -> Result<RunStats, RuntimeError> {
        let mut total = RunStats::default();
        for phase in &self.phases {
            match phase {
                Phase::Kernel(k) => {
                    let p = self.session.place(k)?;
                    total.merge(&p);
                    let c = self.session.execute(k)?;
                    total.merge(&c);
                }
                Phase::Raw(p) => {
                    let s = self.session.runtime_mut().run(p)?;
                    total.merge(&s);
                }
                Phase::Untimed(p) => {
                    self.session.runtime_mut().run(p)?;
                }
            }
        }
        Ok(total)
    }
}

/// Inserts a barrier after every index launch: the bulk-synchronous
/// execution style of ScaLAPACK and CTF (§7.1.1 — they cannot hide
/// communication behind computation).
pub fn make_bulk_synchronous(program: &mut Program) {
    let mut ops = Vec::with_capacity(program.ops.len() * 2);
    for op in program.ops.drain(..) {
        let is_launch = matches!(op, Op::IndexLaunch(_));
        ops.push(op);
        if is_launch {
            ops.push(Op::Barrier);
        }
    }
    program.ops = ops;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_insertion() {
        let mut p = Program::new();
        p.push(Op::IndexLaunch(distal_runtime::program::IndexLaunch {
            name: "l".into(),
            tasks: vec![],
        }));
        p.push(Op::Fill {
            region: distal_runtime::RegionId(0),
            value: 0.0,
        });
        make_bulk_synchronous(&mut p);
        assert_eq!(p.ops.len(), 3);
        assert!(matches!(p.ops[1], Op::Barrier));
    }

    #[test]
    fn names() {
        assert_eq!(BaselineSystem::Ctf.name(), "CTF");
        assert_eq!(
            BaselineSystem::CosmaRestrictedCpus.name(),
            "COSMA (Restricted CPUs)"
        );
    }
}
