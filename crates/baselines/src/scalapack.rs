//! ScaLAPACK baseline: bulk-synchronous SUMMA (paper §7.1).
//!
//! ScaLAPACK implements the SUMMA algorithm on a 2D block distribution. Its
//! MPI implementation synchronizes at each broadcast step, so communication
//! is not hidden behind computation — the paper measures it at ≤80% of
//! DISTAL/COSMA at 256 nodes, with variability on non-square grids.

use crate::common::make_bulk_synchronous;
use distal_algs::matmul::MatmulAlgorithm;
use distal_algs::setup::RunConfig;
use distal_core::lower::CompileOptions;
use distal_core::{CompileError, CompiledKernel, DistalMachine, Session, TensorSpec};
use distal_ir::expr::Assignment;
use distal_runtime::Mode;

/// Builds a bulk-synchronous SUMMA GEMM session (ScaLAPACK's algorithm).
///
/// # Errors
///
/// Propagates compile errors.
pub fn gemm(
    config: &RunConfig,
    n: i64,
    chunk: i64,
) -> Result<(Session, CompiledKernel), CompileError> {
    let p = config.processors();
    let alg = MatmulAlgorithm::Summa;
    let machine = DistalMachine::flat(alg.grid(p), config.proc_kind);
    let mut session = Session::new(config.spec.clone(), machine, config.mode);
    for (name, format) in ["A", "B", "C"].iter().zip(alg.formats(config.mem)) {
        session.tensor(TensorSpec::new(*name, vec![n, n], format))?;
    }
    match config.mode {
        Mode::Functional => {
            session.fill_random("B", 0xB)?;
            session.fill_random("C", 0xC)?;
        }
        Mode::Model => {
            session.fill("B", 0.0)?;
            session.fill("C", 0.0)?;
        }
    }
    let assignment = Assignment::parse("A(i,j) = B(i,k) * C(k,j)")
        .map_err(|e| CompileError::Expression(e.to_string()))?;
    let options = CompileOptions {
        // MPI ranks use the full node (no cores reserved for a runtime), but
        // the rank-per-socket decomposition costs a little leaf efficiency.
        leaf_efficiency: Some(0.92),
        ..CompileOptions::default()
    };
    let mut kernel =
        session.compile_assignment(&assignment, &alg.schedule(p, n, chunk), &options)?;
    make_bulk_synchronous(&mut kernel.compute);
    Ok((session, kernel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use distal_machine::spec::MachineSpec;
    use distal_runtime::program::Op;

    #[test]
    fn scalapack_gemm_is_correct_and_synchronous() {
        let mut config = RunConfig::cpu(2, Mode::Functional);
        config.spec = MachineSpec::small(2);
        let (mut session, kernel) = gemm(&config, 8, 4).unwrap();
        let barriers = kernel
            .compute
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Barrier))
            .count();
        assert!(barriers >= 2, "expected per-step barriers, got {barriers}");
        session.run(&kernel).unwrap();
        let a = session.read("A").unwrap();
        // Oracle check.
        let mut dims = std::collections::BTreeMap::new();
        for t in ["A", "B", "C"] {
            dims.insert(t.to_string(), vec![8, 8]);
        }
        let mut inputs = std::collections::BTreeMap::new();
        inputs.insert("B".to_string(), session.read("B").unwrap());
        inputs.insert("C".to_string(), session.read("C").unwrap());
        let want = distal_core::oracle::evaluate(&kernel.assignment, &dims, &inputs).unwrap();
        for (g, w) in a.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn barriers_slow_the_model_down() {
        let config = RunConfig::cpu(4, Mode::Model);
        let n = 4096;
        let (mut s1, k1) = gemm(&config, n, n / 8).unwrap();
        let sync = {
            s1.place(&k1).unwrap();
            s1.execute(&k1).unwrap()
        };
        // DISTAL's own SUMMA on the same machine, no barriers.
        let (mut s2, k2) =
            distal_algs::setup::matmul_session(MatmulAlgorithm::Summa, &config, n, n / 8).unwrap();
        let free = {
            s2.place(&k2).unwrap();
            s2.execute(&k2).unwrap()
        };
        assert!(
            sync.makespan_s > free.makespan_s,
            "bulk-synchronous {} should be slower than overlapped {}",
            sync.makespan_s,
            free.makespan_s
        );
    }
}
