//! Re-implementations of the systems the paper compares against (§7.1).
//!
//! Comparison systems beside the pipeline — `ARCHITECTURE.md` at the
//! workspace root maps the six layers they are measured against.
//!
//! The systems:
//! ScaLAPACK, the Cyclops Tensor Framework (CTF), and COSMA — each running
//! on the same simulated substrate as DISTAL so that the comparison isolates
//! the *distribution strategy*, which is exactly what the paper evaluates.
//!
//! Per the paper's own analysis, the baselines differ from DISTAL in:
//!
//! * **ScaLAPACK** — SUMMA with bulk-synchronous phases (no overlap of
//!   communication and computation, §7.1.1) on a 2D block distribution;
//! * **CTF** — the 2.5D algorithm for GEMM, also bulk-synchronous; for
//!   higher-order expressions, every contraction is *matricized*: tensors
//!   are redistributed/reshaped into matrices, multiplied with the internal
//!   distributed GEMM, and reshaped back (§8: "CTF casts tensor contractions
//!   into a series of distributed matrix-multiplication operations and
//!   transposes") — the redistribution of the large 3-tensor is the
//!   "unnecessary communication" behind Figure 16's gaps;
//! * **COSMA** — the communication-optimal grid from its cost model with
//!   full compute/communication overlap; it uses all 40 cores per node
//!   where DISTAL reserves 4 for the runtime (the "Restricted CPUs" variant
//!   levels that field), and on GPUs it stages tiles through host memory
//!   (out-of-core), avoiding the framebuffer DMA penalty but paying
//!   host↔device transfers.

pub mod common;
pub mod cosma;
pub mod ctf;
pub mod scalapack;

pub use common::{BaselineSystem, Phase, PhasedRun};
