//! COSMA baseline (Kwasniewski et al. 2019).
//!
//! COSMA computes a communication-optimal processor grid and parallelization
//! from its red-blue pebbling cost model, and overlaps communication with
//! computation. Differences from DISTAL captured here (per §7.1.1–7.1.2):
//!
//! * **CPU**: COSMA uses all 40 cores per node, while DISTAL reserves 4 for
//!   Legion's dependence analysis — so COSMA's effective peak is ~10%
//!   higher. The "Restricted CPUs" variant pins COSMA to 36 cores, which
//!   the paper shows matches DISTAL exactly.
//! * **GPU**: COSMA keeps matrices in host memory and streams tiles through
//!   an out-of-core GEMM. It pays host↔device transfers (≈2× slower than
//!   DISTAL at one node, Figure 15b) but its inter-node transfers run at the
//!   full NIC rate, avoiding the Legion GPU-framebuffer DMA penalty that
//!   costs DISTAL ~15% at 256 nodes. It also never exhausts the 16 GB
//!   framebuffer, unlike replication-heavy 3D algorithms.

use distal_algs::matmul::MatmulAlgorithm;
use distal_algs::setup::RunConfig;
use distal_core::lower::CompileOptions;
use distal_core::{CompileError, CompiledKernel, DistalMachine, Session, TensorSpec};
use distal_ir::expr::Assignment;
use distal_machine::spec::{MemKind, ProcKind};
use distal_runtime::Mode;

/// Builds the COSMA GEMM session.
///
/// `restricted_cpus` models the paper's "COSMA (Restricted CPUs)" line
/// (36 of 40 cores).
///
/// # Errors
///
/// Propagates compile errors.
pub fn gemm(
    config: &RunConfig,
    n: i64,
    restricted_cpus: bool,
) -> Result<(Session, CompiledKernel), CompileError> {
    let p = config.processors();
    let alg = MatmulAlgorithm::Cosma;
    let mut spec = config.spec.clone();
    if config.proc_kind == ProcKind::Cpu {
        // COSMA dedicates every core to computation.
        spec.cpu_worker_fraction = if restricted_cpus { 36.0 / 40.0 } else { 1.0 };
    }
    let machine = DistalMachine::flat(alg.grid(p), config.proc_kind);
    let mut session = Session::new(spec, machine, config.mode);

    // GPU out-of-core: tensors live in host memory; compute stages into FB.
    let out_of_core = config.proc_kind == ProcKind::Gpu;
    let mem = if out_of_core {
        MemKind::Sys
    } else {
        config.mem
    };
    for (name, format) in ["A", "B", "C"].iter().zip(alg.formats(mem)) {
        session.tensor(TensorSpec::new(*name, vec![n, n], format))?;
    }
    match config.mode {
        Mode::Functional => {
            session.fill_random("B", 0xB)?;
            session.fill_random("C", 0xC)?;
        }
        Mode::Model => {
            session.fill("B", 0.0)?;
            session.fill("C", 0.0)?;
        }
    }
    let assignment = Assignment::parse("A(i,j) = B(i,k) * C(k,j)")
        .map_err(|e| CompileError::Expression(e.to_string()))?;
    let options = CompileOptions {
        // The out-of-core GEMM (Tiled-MM) achieves roughly half of cuBLAS
        // peak — the 2x single-node gap of Figure 15b. CPU COSMA runs at
        // full leaf efficiency.
        leaf_efficiency: Some(if out_of_core { 0.5 } else { 0.95 }),
        compute_mem: out_of_core.then_some(MemKind::Fb),
        ..CompileOptions::default()
    };
    // COSMA sequentializes the local k range so the staged working set fits
    // in the framebuffer (its "sequential steps"); it therefore never runs
    // out of GPU memory, unlike the replication-heavy 3D algorithms.
    let grid = alg.grid(p);
    let (gx, gy, gz) = (grid.extent(0), grid.extent(1), grid.extent(2));
    let steps = if out_of_core {
        let budget = (session.runtime().machine().spec.node.fb_bytes as f64 * 0.9) as u64;
        distal_algs::matmul::cosma_steps_for_memory(n, gx, gy, gz, budget).unwrap_or(1)
    } else {
        1
    };
    let schedule = distal_algs::matmul::cosma_schedule(gx, gy, gz, steps.max(1));
    let kernel = session.compile_assignment(&assignment, &schedule, &options)?;
    Ok((session, kernel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use distal_machine::spec::MachineSpec;

    #[test]
    fn cosma_gemm_correct() {
        let mut config = RunConfig::cpu(2, Mode::Functional);
        config.spec = MachineSpec::small(2);
        let (mut session, kernel) = gemm(&config, 8, false).unwrap();
        session.run(&kernel).unwrap();
        let a = session.read("A").unwrap();
        let mut dims = std::collections::BTreeMap::new();
        for t in ["A", "B", "C"] {
            dims.insert(t.to_string(), vec![8, 8]);
        }
        let mut inputs = std::collections::BTreeMap::new();
        inputs.insert("B".to_string(), session.read("B").unwrap());
        inputs.insert("C".to_string(), session.read("C").unwrap());
        let want = distal_core::oracle::evaluate(&kernel.assignment, &dims, &inputs).unwrap();
        for (g, w) in a.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn restricted_variant_is_slower_on_cpu() {
        let config = RunConfig::cpu(1, Mode::Model);
        let n = 8192;
        let (mut s_full, k_full) = gemm(&config, n, false).unwrap();
        s_full.place(&k_full).unwrap();
        let full = s_full.execute(&k_full).unwrap();
        let (mut s_r, k_r) = gemm(&config, n, true).unwrap();
        s_r.place(&k_r).unwrap();
        let restricted = s_r.execute(&k_r).unwrap();
        assert!(restricted.makespan_s > full.makespan_s * 1.05);
    }

    #[test]
    fn gpu_variant_stages_through_host() {
        let config = RunConfig::gpu(1, Mode::Model);
        let (mut s, k) = gemm(&config, 2048, false).unwrap();
        s.place(&k).unwrap();
        let stats = s.execute(&k).unwrap();
        // Host-device traffic must appear (out-of-core staging).
        let hd = stats
            .bytes_by_class
            .get(&distal_runtime::ChannelClass::HostDevice)
            .copied()
            .unwrap_or(0);
        assert!(hd > 0, "expected host-device staging traffic");
    }
}
