//! Cyclops Tensor Framework baseline (Solomonik et al. 2014).
//!
//! CTF is the only prior system with DISTAL's generality (§8). Its strategy:
//! *matricize* every tensor contraction — reshape/redistribute the operand
//! tensors into matrices laid out on CTF's internal processor grid, run its
//! hand-written distributed GEMM (the 2.5D algorithm), and reshape back.
//!
//! The reshapes are where the "unnecessary communication" of §7.2.2 comes
//! from: the user's data distribution rarely matches the internal matrix
//! layout, so the large 3-tensor crosses the network before any flop is
//! computed. DISTAL instead compiles a bespoke kernel against the data where
//! it lies. This module reproduces the pipeline faithfully enough that its
//! functional results are bit-checked against the oracle in tests.

use crate::common::{make_bulk_synchronous, Phase, PhasedRun};
use distal_algs::higher_order::HigherOrderKernel;
use distal_algs::matmul::{best_c, MatmulAlgorithm};
use distal_algs::setup::RunConfig;
use distal_core::lower::CompileOptions;
use distal_core::{
    CompileError, CompiledKernel, DistalMachine, GridMapper, Schedule, Session, TensorSpec,
};
use distal_format::Format;
use distal_ir::expr::Assignment;
use distal_machine::geom::{Point, Rect};
use distal_machine::grid::Grid;
use distal_runtime::kernel::{Kernel, KernelCtx};
use distal_runtime::program::{IndexLaunch, Op, Privilege, Program, RegionReq, TaskDesc};
use distal_runtime::Mode;

/// CTF's GEMM: the 2.5D algorithm, bulk-synchronous.
///
/// # Errors
///
/// Propagates compile errors.
pub fn gemm(config: &RunConfig, n: i64) -> Result<(Session, CompiledKernel), CompileError> {
    let p = config.processors();
    let alg = MatmulAlgorithm::Solomonik { c: best_c(p) };
    let machine = DistalMachine::flat(alg.grid(p), config.proc_kind);
    let mut session = Session::new(config.spec.clone(), machine, config.mode);
    for (name, format) in ["A", "B", "C"].iter().zip(alg.formats(config.mem)) {
        session.tensor(TensorSpec::new(*name, vec![n, n], format))?;
    }
    match config.mode {
        Mode::Functional => {
            session.fill_random("B", 0xB)?;
            session.fill_random("C", 0xC)?;
        }
        Mode::Model => {
            session.fill("B", 0.0)?;
            session.fill("C", 0.0)?;
        }
    }
    let assignment = Assignment::parse("A(i,j) = B(i,k) * C(k,j)")
        .map_err(|e| CompileError::Expression(e.to_string()))?;
    let options = CompileOptions {
        leaf_efficiency: Some(0.92),
        ..CompileOptions::default()
    };
    let mut kernel = session.compile_assignment(&assignment, &alg.schedule(p, n, 1), &options)?;
    make_bulk_synchronous(&mut kernel.compute);
    Ok((session, kernel))
}

/// A reshape between two tensors whose row-major linearizations agree
/// (dimension grouping): `dst[ℓ] = src[ℓ]`.
struct ReshapeKernel {
    src_dims: Vec<i64>,
    dst_dims: Vec<i64>,
}

impl Kernel for ReshapeKernel {
    fn name(&self) -> &str {
        "reshape"
    }

    fn execute(&self, ctx: &mut KernelCtx) {
        // args[0] = dst (Write), args[1] = src (Read).
        let rect = ctx.args[0].rect.clone();
        if rect.is_empty() {
            return;
        }
        let dst_full = Rect::sized(&self.dst_dims);
        let src_full = Rect::sized(&self.src_dims);
        for q in rect.points() {
            let linear = dst_full.linearize(&q) as i64;
            let p = src_full.delinearize(linear);
            let v = ctx.args[1].at(p.coords());
            ctx.args[0].set(q.coords(), v);
        }
    }
}

/// Builds the Khatri-Rao product `K(s, l) = C(s / n, l) * D(s mod n, l)`
/// needed to matricize MTTKRP (the "element-wise operation" of §7.2.1).
struct KrpKernel {
    n: i64,
}

impl Kernel for KrpKernel {
    fn name(&self) -> &str {
        "khatri-rao"
    }

    fn execute(&self, ctx: &mut KernelCtx) {
        let rect = ctx.args[0].rect.clone();
        if rect.is_empty() {
            return;
        }
        for q in rect.points() {
            let (s, l) = (q[0], q[1]);
            let c = ctx.args[1].at(&[s / self.n, l]);
            let d = ctx.args[2].at(&[s % self.n, l]);
            ctx.args[0].set(q.coords(), c * d);
        }
    }
}

/// Groups of consecutive `fine` dimensions forming each `coarse` dimension
/// of a reshape, when `coarse` really is a grouping of `fine`.
///
/// A coarse extent of 1 consumes no fine dimensions (it is a synthetic
/// matrix dimension, e.g. the single column of TTV's `Cm`).
fn fold_groups(fine: &[i64], coarse: &[i64]) -> Option<Vec<Vec<usize>>> {
    let mut groups = Vec::new();
    let mut s = 0;
    for &d in coarse {
        let mut group = Vec::new();
        let mut prod = 1;
        while prod < d {
            if s >= fine.len() {
                return None;
            }
            group.push(s);
            prod *= fine[s];
            s += 1;
        }
        if prod != d {
            return None;
        }
        groups.push(group);
    }
    (s == fine.len() || fine[s..].iter().all(|&e| e == 1)).then_some(groups)
}

/// The source rectangle covering everything a destination tile needs, for
/// reshapes in either direction (fold or unfold).
fn src_rect_for(dst_tile: &Rect, src_dims: &[i64], dst_dims: &[i64]) -> Rect {
    let mut lo = vec![0i64; src_dims.len()];
    let mut hi: Vec<i64> = src_dims.iter().map(|e| (e - 1).max(0)).collect();
    if let Some(groups) = fold_groups(src_dims, dst_dims) {
        // dst is coarser: each dst dim groups consecutive src dims.
        for (d, group) in groups.iter().enumerate() {
            match group.len() {
                0 => {}
                1 => {
                    lo[group[0]] = dst_tile.lo()[d];
                    hi[group[0]] = dst_tile.hi()[d];
                }
                _ => {
                    // Leading dim bounds; trailing dims span fully.
                    let trailing: i64 = group[1..].iter().map(|&g| src_dims[g]).product();
                    lo[group[0]] = dst_tile.lo()[d] / trailing;
                    hi[group[0]] = dst_tile.hi()[d] / trailing;
                }
            }
        }
    } else if let Some(groups) = fold_groups(dst_dims, src_dims) {
        // src is coarser: each src dim is the row-major fold of a group of
        // dst dims; the tile's corners bound the folded coordinate.
        for (s, group) in groups.iter().enumerate() {
            if group.is_empty() {
                lo[s] = 0;
                hi[s] = 0;
                continue;
            }
            let mut smin = 0;
            let mut smax = 0;
            for &g in group {
                smin = smin * dst_dims[g] + dst_tile.lo()[g];
                smax = smax * dst_dims[g] + dst_tile.hi()[g];
            }
            lo[s] = smin;
            hi[s] = smax;
        }
    } else {
        panic!("reshape between {src_dims:?} and {dst_dims:?} is not a dimension grouping");
    }
    Rect::new(Point::new(lo), Point::new(hi))
}

/// Builds a program that redistributes `src` into the matricized tensor
/// `dst` (tiled on `dst_machine`), reading across the network as needed.
fn reshape_program(
    session: &Session,
    src: &str,
    dst: &str,
    dst_machine: &DistalMachine,
) -> Result<Program, CompileError> {
    let src_b = session
        .binding(src)
        .ok_or_else(|| CompileError::UnknownTensor(src.into()))?
        .clone();
    let dst_b = session
        .binding(dst)
        .ok_or_else(|| CompileError::UnknownTensor(dst.into()))?
        .clone();
    let mapper = GridMapper::new(dst_machine, session.runtime().machine())?;
    let mut program = Program::new();
    let kernel = program.register_kernel(std::sync::Arc::new(ReshapeKernel {
        src_dims: src_b.dims.clone(),
        dst_dims: dst_b.dims.clone(),
    }));
    let dst_rect = Rect::sized(&dst_b.dims);
    let mut tasks = Vec::new();
    let owners: Vec<(Point, Rect)> = if dst_b.format.is_distributed() {
        dst_machine
            .grid()
            .points()
            .map(|point| {
                let tile = distal_format::semantics::hierarchical_tile(
                    &dst_b.format.distributions,
                    &dst_rect,
                    &dst_machine.hierarchy,
                    &point,
                );
                (point, tile)
            })
            .filter(|(_, t)| !t.is_empty())
            .collect()
    } else {
        // Undistributed destination (e.g. the scalar `a`): rank 0 owns it.
        vec![(dst_machine.grid().rect().lo().clone(), dst_rect.clone())]
    };
    for (point, tile) in owners {
        let rank = mapper.rank(&point);
        let src_rect = src_rect_for(&tile, &src_b.dims, &dst_b.dims);
        let mem = mapper.mem_for(rank, dst_b.format.mem);
        let mut dst_req = RegionReq::new(dst_b.region, tile.clone(), Privilege::Write, mem);
        dst_req.pin = true;
        let src_req = RegionReq::new(src_b.region, src_rect.clone(), Privilege::Read, mem);
        let mut task = TaskDesc::new(
            kernel,
            mapper.proc_for_rank(rank),
            point.clone(),
            vec![dst_req, src_req],
        );
        task.bytes = (tile.volume() + src_rect.volume()) as f64 * 8.0;
        tasks.push(task);
    }
    program.push(Op::IndexLaunch(IndexLaunch {
        name: format!("reshape-{src}-to-{dst}"),
        tasks,
    }));
    // The fetched pieces of the source are transient.
    program.push(Op::DiscardScratch {
        region: src_b.region,
        keep_recent: 0,
    });
    program.push(Op::Barrier);
    Ok(program)
}

/// CTF's matricized pipeline for a §7.2 higher-order kernel.
///
/// Phases: reshape operands onto the internal near-square matrix grid,
/// run the internal bulk-synchronous GEMM, reshape the result back into the
/// user's distribution.
///
/// # Errors
///
/// Propagates compile errors from any phase.
pub fn higher_order(
    kernel: HigherOrderKernel,
    config: &RunConfig,
    n: i64,
) -> Result<PhasedRun, CompileError> {
    let p = config.processors();
    // User tensors start in the same at-rest distributions DISTAL uses
    // (§7.2: inputs distributed to match the chosen schedule).
    let user_machine = DistalMachine::flat(kernel.grid(p), config.proc_kind);
    let mut session = Session::new(config.spec.clone(), user_machine.clone(), config.mode);
    let shapes = kernel.shapes(n);
    let formats = kernel.formats(config.mem);
    for ((name, dims), format) in shapes.iter().zip(formats) {
        session.tensor_for_machine(TensorSpec::new(*name, dims.clone(), format), &user_machine)?;
    }
    for (idx, (name, _)) in shapes.iter().enumerate().skip(1) {
        match config.mode {
            Mode::Functional => session.fill_random(name, 0x51ED + idx as u64)?,
            Mode::Model => session.fill(name, 0.0)?,
        }
    }

    // Internal matrix dimensions (M, N, K) per kernel.
    let l = 32.min(n);
    let (m_rows, n_cols, k_contr) = match kernel {
        HigherOrderKernel::Ttv => (n * n, 1, n),
        HigherOrderKernel::Innerprod => (1, 1, n * n * n),
        HigherOrderKernel::Ttm => (n * n, l, n),
        HigherOrderKernel::Mttkrp => (n, l, n * n),
    };
    // CTF's internal processor grid, per its own grid-selection heuristics:
    // a (capped) near-square grid for the matricized mat-vec (TTV) — whose
    // broadcasts of the folded 3-tensor are the "unnecessary communication"
    // behind the paper's outlier — and row-aligned (p, 1) grids for the
    // fat-by-skinny TTM/MTTKRP products, which keep the big operand
    // stationary. Innerprod bypasses the matrix machinery entirely (a
    // k-distributed dot + allreduce).
    let g2 = match kernel {
        HigherOrderKernel::Ttv => {
            let ns = Grid::near_square_2d(p);
            let gy = divisor_at_most(p, ns.extent(1).min(8));
            Grid::grid2(p / gy, gy)
        }
        HigherOrderKernel::Innerprod => Grid::line(p),
        HigherOrderKernel::Ttm => Grid::grid2(p, 1),
        // MTTKRP's contraction dimension (j·k = n²) dwarfs both free
        // dimensions; CTF splits it across the grid's second dimension and
        // reduces the small output.
        HigherOrderKernel::Mttkrp => Grid::near_square_2d(p),
    };
    let internal = DistalMachine::flat(g2.clone(), config.proc_kind);
    let tiled = Format::parse("xy->xy", config.mem).unwrap();

    let mut phases: Vec<Phase> = Vec::new();
    // Data starts at rest in the user's distributions (untimed, as the
    // paper's timers exclude input staging); every reshape below then pays
    // real redistribution traffic from those homes.
    let placement_names: Vec<(&str, bool)> = shapes
        .iter()
        .skip(1)
        .map(|(name, _)| (*name, true))
        .collect();
    phases.push(Phase::Untimed(
        session.placement_program(&placement_names, &user_machine)?,
    ));
    let register = |session: &mut Session, name: &str, dims: Vec<i64>, internal: &DistalMachine| {
        session.tensor_for_machine(TensorSpec::new(name, dims, tiled.clone()), internal)
    };

    match kernel {
        HigherOrderKernel::Ttv => {
            register(&mut session, "Bm", vec![m_rows, k_contr], &internal)?;
            register(&mut session, "Cm", vec![k_contr, n_cols], &internal)?;
            register(&mut session, "Am", vec![m_rows, n_cols], &internal)?;
            phases.push(Phase::Raw(reshape_program(&session, "B", "Bm", &internal)?));
            phases.push(Phase::Raw(reshape_program(&session, "c", "Cm", &internal)?));
            phases.push(Phase::Kernel(internal_matmul(
                &session,
                &internal,
                &g2,
                ("Am", "Bm", "Cm"),
                k_contr,
            )?));
            phases.push(Phase::Raw(reshape_program(
                &session,
                "Am",
                "A",
                &user_machine,
            )?));
        }
        HigherOrderKernel::Innerprod => {
            // Folded vectors, distributed by rows (aligned with the user
            // layout); the dot is k-distributed with a final allreduce.
            let vec_fmt = Format::parse("x->x", config.mem).unwrap();
            session.tensor_for_machine(
                TensorSpec::new("Bm", vec![k_contr], vec_fmt.clone()),
                &internal,
            )?;
            session.tensor_for_machine(TensorSpec::new("Cm", vec![k_contr], vec_fmt), &internal)?;
            session.tensor_for_machine(TensorSpec::scalar("am"), &internal)?;
            phases.push(Phase::Raw(reshape_program(&session, "B", "Bm", &internal)?));
            phases.push(Phase::Raw(reshape_program(&session, "C", "Cm", &internal)?));
            phases.push(Phase::Kernel(internal_dot(&session, &internal, p)?));
            phases.push(Phase::Raw(reshape_program(
                &session,
                "am",
                "a",
                &user_machine,
            )?));
        }
        HigherOrderKernel::Ttm => {
            register(&mut session, "Bm", vec![m_rows, k_contr], &internal)?;
            register(&mut session, "Cm", vec![k_contr, n_cols], &internal)?;
            register(&mut session, "Am", vec![m_rows, n_cols], &internal)?;
            phases.push(Phase::Raw(reshape_program(&session, "B", "Bm", &internal)?));
            phases.push(Phase::Raw(reshape_program(&session, "C", "Cm", &internal)?));
            phases.push(Phase::Kernel(internal_matmul(
                &session,
                &internal,
                &g2,
                ("Am", "Bm", "Cm"),
                k_contr,
            )?));
            phases.push(Phase::Raw(reshape_program(
                &session,
                "Am",
                "A",
                &user_machine,
            )?));
        }
        HigherOrderKernel::Mttkrp => {
            // Bm (n x n²) 2D-tiled; Km k-sliced along the grid's second
            // dimension (replicated over the first); Am reduced onto the
            // first grid column.
            register(&mut session, "Bm", vec![m_rows, k_contr], &internal)?;
            session.tensor_for_machine(
                TensorSpec::new(
                    "Km",
                    vec![k_contr, n_cols],
                    Format::parse("xy->*x", config.mem).unwrap(),
                ),
                &internal,
            )?;
            session.tensor_for_machine(
                TensorSpec::new(
                    "Am",
                    vec![m_rows, n_cols],
                    Format::parse("xy->x0", config.mem).unwrap(),
                ),
                &internal,
            )?;
            phases.push(Phase::Raw(reshape_program(&session, "B", "Bm", &internal)?));
            phases.push(Phase::Raw(krp_program(&session, n, &internal)?));
            phases.push(Phase::Kernel(internal_kdist_matmul(
                &session,
                &internal,
                &g2,
                ("Am", "Bm", "Km"),
            )?));
            phases.push(Phase::Raw(reshape_program(
                &session,
                "Am",
                "A",
                &user_machine,
            )?));
        }
    }

    Ok(PhasedRun {
        session,
        phases,
        output: shapes[0].0.to_string(),
    })
}

/// A divisor of `p` no larger than `cap` (largest such).
fn divisor_at_most(p: i64, cap: i64) -> i64 {
    (1..=cap.max(1)).rev().find(|d| p % d == 0).unwrap_or(1)
}

/// CTF's k-distributed dot product with a final allreduce (its path for
/// full contractions like innerprod, which need no matricized GEMM).
fn internal_dot(
    session: &Session,
    internal: &DistalMachine,
    p: i64,
) -> Result<CompiledKernel, CompileError> {
    let assignment = Assignment::parse("am = Bm(k) * Cm(k)")
        .map_err(|e| CompileError::Expression(e.to_string()))?;
    let schedule = Schedule::new()
        .distribute_onto(&["k"], &["ko"], &["ki"], &[p])
        .communicate(&["am", "Bm", "Cm"], "ko");
    let options = CompileOptions {
        leaf_efficiency: Some(0.55),
        ..CompileOptions::default()
    };
    let mut kernel = session.compile_on(internal, &assignment, &schedule, &options)?;
    make_bulk_synchronous(&mut kernel.compute);
    Ok(kernel)
}

/// The k-distributed contraction CTF uses when the contraction dimension
/// dominates (MTTKRP): tiles of `Bm` and slices of `Km` stay put, partial
/// outputs reduce across the grid's second dimension.
fn internal_kdist_matmul(
    session: &Session,
    internal: &DistalMachine,
    grid: &Grid,
    names: (&str, &str, &str),
) -> Result<CompiledKernel, CompileError> {
    let (am, bm, cm) = names;
    let expr = format!("{am}(i,j) = {bm}(i,k) * {cm}(k,j)");
    let assignment =
        Assignment::parse(&expr).map_err(|e| CompileError::Expression(e.to_string()))?;
    let (gi, gk) = (grid.extent(0), grid.extent(1));
    let schedule = Schedule::new()
        .divide("i", "io", "ii", gi)
        .divide("k", "ko", "ki", gk)
        .reorder(&["io", "ko", "ii", "j", "ki"])
        .distribute(&["io", "ko"])
        .communicate(&[am, bm, cm], "ko");
    let options = CompileOptions {
        leaf_efficiency: Some(0.55),
        ..CompileOptions::default()
    };
    let mut kernel = session.compile_on(internal, &assignment, &schedule, &options)?;
    make_bulk_synchronous(&mut kernel.compute);
    Ok(kernel)
}

/// The internal bulk-synchronous SUMMA the matricized contraction runs on.
fn internal_matmul(
    session: &Session,
    internal: &DistalMachine,
    grid: &Grid,
    names: (&str, &str, &str),
    k_contr: i64,
) -> Result<CompiledKernel, CompileError> {
    let (am, bm, cm) = names;
    let expr = format!("{am}(i,j) = {bm}(i,k) * {cm}(k,j)");
    let assignment =
        Assignment::parse(&expr).map_err(|e| CompileError::Expression(e.to_string()))?;
    let (gx, gy) = (grid.extent(0), grid.extent(1));
    // Pipeline over at most 16 chunks: barriered micro-steps would be
    // latency-bound on row-aligned (p, 1) grids.
    let chunk = (k_contr / gx.min(16)).max(1);
    let schedule = Schedule::new()
        .distribute_onto(&["i", "j"], &["io", "jo"], &["ii", "ji"], &[gx, gy])
        .split("k", "ko", "ki", chunk)
        .reorder(&["io", "jo", "ko", "ii", "ji", "ki"])
        .communicate(&[am], "jo")
        .communicate(&[bm, cm], "ko");
    let options = CompileOptions {
        // §7.2.1: CTF aims at scalability to large core counts rather than
        // fully utilizing a single node.
        leaf_efficiency: Some(0.55),
        ..CompileOptions::default()
    };
    let mut kernel = session.compile_on(internal, &assignment, &schedule, &options)?;
    make_bulk_synchronous(&mut kernel.compute);
    Ok(kernel)
}

/// Builds `Km(s, l) = C(s/n, l) * D(s%n, l)` tiles on the internal grid.
fn krp_program(
    session: &Session,
    n: i64,
    internal: &DistalMachine,
) -> Result<Program, CompileError> {
    let km = session
        .binding("Km")
        .ok_or_else(|| CompileError::UnknownTensor("Km".into()))?
        .clone();
    let c = session
        .binding("C")
        .ok_or_else(|| CompileError::UnknownTensor("C".into()))?
        .clone();
    let d = session
        .binding("D")
        .ok_or_else(|| CompileError::UnknownTensor("D".into()))?
        .clone();
    let mapper = GridMapper::new(internal, session.runtime().machine())?;
    let mut program = Program::new();
    let kernel = program.register_kernel(std::sync::Arc::new(KrpKernel { n }));
    let km_rect = Rect::sized(&km.dims);
    let mut tasks = Vec::new();
    for point in internal.grid().points() {
        let tile = distal_format::semantics::hierarchical_tile(
            &km.format.distributions,
            &km_rect,
            &internal.hierarchy,
            &point,
        );
        if tile.is_empty() {
            continue;
        }
        let rank = mapper.rank(&point);
        let mem = mapper.mem_for(rank, km.format.mem);
        // C rows s/n for s in tile rows; D rows s%n (conservatively all).
        let c_rect = Rect::sized(&c.dims).restrict(0, tile.lo()[0] / n, tile.hi()[0] / n);
        let d_rect = Rect::sized(&d.dims);
        let mut km_req = RegionReq::new(km.region, tile.clone(), Privilege::Write, mem);
        km_req.pin = true;
        let mut task = TaskDesc::new(
            kernel,
            mapper.proc_for_rank(rank),
            point.clone(),
            vec![
                km_req,
                RegionReq::new(c.region, c_rect, Privilege::Read, mem),
                RegionReq::new(d.region, d_rect, Privilege::Read, mem),
            ],
        );
        task.flops = tile.volume() as f64;
        task.bytes = 2.0 * tile.volume() as f64 * 8.0;
        tasks.push(task);
    }
    program.push(Op::IndexLaunch(IndexLaunch {
        name: "khatri-rao".into(),
        tasks,
    }));
    program.push(Op::Barrier);
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use distal_core::oracle;
    use distal_machine::spec::MachineSpec;
    use std::collections::BTreeMap;

    #[test]
    fn fold_group_inference() {
        // (i, j, k) -> (i*j, k)
        assert_eq!(
            fold_groups(&[4, 4, 4], &[16, 4]),
            Some(vec![vec![0, 1], vec![2]])
        );
        // (i, j, k) -> (i, j*k)
        assert_eq!(
            fold_groups(&[4, 4, 4], &[4, 16]),
            Some(vec![vec![0], vec![1, 2]])
        );
        // (i, j, k) -> (1, i*j*k): the synthetic row dim consumes nothing.
        assert_eq!(
            fold_groups(&[4, 4, 4], &[1, 64]),
            Some(vec![vec![], vec![0, 1, 2]])
        );
        // Non-grouping shapes are rejected.
        assert_eq!(fold_groups(&[4, 4], &[8, 2]), None);
    }

    #[test]
    fn src_rect_covers_folded_tile() {
        // Bm (16, 4) from B (4, 4, 4): tile rows 5..10 need i in 1..2.
        let tile = Rect::new(Point::new(vec![5, 0]), Point::new(vec![10, 3]));
        let r = src_rect_for(&tile, &[4, 4, 4], &[16, 4]);
        assert_eq!(r.lo().coords(), &[1, 0, 0]);
        assert_eq!(r.hi().coords(), &[2, 3, 3]);
    }

    fn check_ctf(kernel: HigherOrderKernel, nodes: usize, n: i64) {
        let mut config = RunConfig::cpu(nodes, Mode::Functional);
        config.spec = MachineSpec::small(nodes);
        let mut run = higher_order(kernel, &config, n).unwrap();
        run.run().unwrap();
        let got = run.session.read(&run.output).unwrap();
        let mut dims = BTreeMap::new();
        let mut inputs = BTreeMap::new();
        for (name, d) in kernel.shapes(n) {
            dims.insert(name.to_string(), d);
            if name != run.output {
                inputs.insert(name.to_string(), run.session.read(name).unwrap());
            }
        }
        let a = Assignment::parse(kernel.expression()).unwrap();
        let want = oracle::evaluate(&a, &dims, &inputs).unwrap();
        for (idx, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (g - w).abs() < 1e-6 * (1.0 + w.abs()),
                "{kernel:?} at {idx}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn ctf_ttv_matches_oracle() {
        check_ctf(HigherOrderKernel::Ttv, 2, 8);
    }

    #[test]
    fn ctf_innerprod_matches_oracle() {
        check_ctf(HigherOrderKernel::Innerprod, 2, 8);
    }

    #[test]
    fn ctf_ttm_matches_oracle() {
        check_ctf(HigherOrderKernel::Ttm, 2, 8);
    }

    #[test]
    fn ctf_mttkrp_matches_oracle() {
        check_ctf(HigherOrderKernel::Mttkrp, 2, 8);
    }

    #[test]
    fn ctf_gemm_matches_oracle() {
        let mut config = RunConfig::cpu(2, Mode::Functional);
        config.spec = MachineSpec::small(2);
        let (mut session, kernel) = gemm(&config, 8).unwrap();
        session.run(&kernel).unwrap();
        let a = session.read("A").unwrap();
        let mut dims = BTreeMap::new();
        for t in ["A", "B", "C"] {
            dims.insert(t.to_string(), vec![8, 8]);
        }
        let mut inputs = BTreeMap::new();
        inputs.insert("B".to_string(), session.read("B").unwrap());
        inputs.insert("C".to_string(), session.read("C").unwrap());
        let want = oracle::evaluate(&kernel.assignment, &dims, &inputs).unwrap();
        for (g, w) in a.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-9);
        }
    }

    #[test]
    fn ctf_ttv_pays_redistribution_traffic() {
        // In model mode, CTF must move (a large part of) B across nodes,
        // while DISTAL's TTV schedule moves nothing (§7.2.2).
        let config = RunConfig::cpu(4, Mode::Model);
        let n = 128;
        let mut ctf = higher_order(HigherOrderKernel::Ttv, &config, n).unwrap();
        let ctf_stats = ctf.run().unwrap();
        let (mut s, k) =
            distal_algs::setup::higher_order_session(HigherOrderKernel::Ttv, &config, n).unwrap();
        s.place(&k).unwrap();
        let ours = s.execute(&k).unwrap();
        assert_eq!(ours.inter_node_bytes(), 0, "DISTAL TTV should move nothing");
        assert!(
            ctf_stats.inter_node_bytes() > (n * n * n) as u64, // at least ~B/8
            "CTF should redistribute B, moved only {}",
            ctf_stats.inter_node_bytes()
        );
    }
}
