//! End-to-end verification of automatic schedule/format selection:
//! the winning candidate must be *correct* (functional run vs oracle),
//! competitive with the hand schedules of Figure 9, and the search must
//! respect memory limits the way the paper's Figure 15b does (replication-
//! heavy candidates go infeasible on small framebuffers).

use distal_autosched::{AutoScheduler, Candidate, SearchConfig};
use distal_core::{oracle, DistalMachine, Session, TensorSpec};
use distal_machine::spec::{MachineSpec, ProcKind};
use distal_runtime::Mode;
use std::collections::BTreeMap;

fn matmul_dims(n: i64) -> BTreeMap<String, Vec<i64>> {
    ["A", "B", "C"]
        .iter()
        .map(|t| (t.to_string(), vec![n, n]))
        .collect()
}

/// Runs a candidate functionally and compares against the oracle.
fn run_functional(
    candidate: &Candidate,
    expr: &str,
    dims: &BTreeMap<String, Vec<i64>>,
    proc_kind: ProcKind,
    out: &str,
) {
    let machine = DistalMachine::flat(candidate.grid.clone(), proc_kind);
    let mut session = Session::new(MachineSpec::small(4), machine, Mode::Functional);
    for (name, shape) in dims {
        session
            .tensor(TensorSpec::new(
                name.clone(),
                shape.clone(),
                candidate.formats[name].clone(),
            ))
            .unwrap();
        if name != out {
            session.fill_random(name, 0xAB + name.len() as u64).unwrap();
        }
    }
    let kernel = session.compile(expr, &candidate.schedule).unwrap();
    session.run(&kernel).unwrap();
    let got = session.read(out).unwrap();

    let mut inputs = BTreeMap::new();
    for name in dims.keys().filter(|n| *n != out) {
        inputs.insert(name.clone(), session.read(name).unwrap());
    }
    let want = oracle::evaluate(&kernel.assignment, dims, &inputs).unwrap();
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert!(
            (g - w).abs() < 1e-9 * (1.0 + w.abs()),
            "{}: index {i}: {g} vs {w}",
            candidate.name
        );
    }
}

#[test]
fn best_matmul_candidate_is_functionally_correct() {
    let scheduler = AutoScheduler::new(SearchConfig::cpu(MachineSpec::small(4)));
    let dims = matmul_dims(16);
    let result = scheduler.search("A(i,j) = B(i,k) * C(k,j)", &dims).unwrap();
    let best = result.best().expect("feasible candidate");
    run_functional(
        &best.candidate,
        "A(i,j) = B(i,k) * C(k,j)",
        &dims,
        ProcKind::Cpu,
        "A",
    );
}

#[test]
fn top_candidates_are_all_functionally_correct() {
    // Not just the winner: every feasible candidate the search would rank
    // must compute the right answer (schedules affect performance, not
    // correctness — §3.3).
    let scheduler = AutoScheduler::new(SearchConfig::cpu(MachineSpec::small(2)));
    let dims = matmul_dims(12);
    let result = scheduler.search("A(i,j) = B(i,k) * C(k,j)", &dims).unwrap();
    let feasible: Vec<_> = result.evaluations.iter().filter(|e| e.feasible()).collect();
    assert!(
        feasible.len() >= 4,
        "want a real space, got {}",
        feasible.len()
    );
    for e in feasible {
        run_functional(
            &e.candidate,
            "A(i,j) = B(i,k) * C(k,j)",
            &dims,
            ProcKind::Cpu,
            "A",
        );
    }
}

#[test]
fn ttv_best_candidate_is_functionally_correct() {
    let scheduler = AutoScheduler::new(SearchConfig::cpu(MachineSpec::small(2)));
    let mut dims = BTreeMap::new();
    dims.insert("A".to_string(), vec![8, 8]);
    dims.insert("B".to_string(), vec![8, 8, 8]);
    dims.insert("c".to_string(), vec![8]);
    let result = scheduler.search("A(i,j) = B(i,j,k) * c(k)", &dims).unwrap();
    let best = result.best().expect("feasible candidate");
    run_functional(
        &best.candidate,
        "A(i,j) = B(i,j,k) * c(k)",
        &dims,
        ProcKind::Cpu,
        "A",
    );
}

#[test]
fn auto_is_at_least_as_good_as_hand_summa() {
    // The space contains the SUMMA shape, so the winner can never lose to
    // the hand-written Figure 2 schedule evaluated under the same model.
    let scheduler = AutoScheduler::new(SearchConfig::cpu(MachineSpec::small(8)));
    let p = scheduler.config().processors();
    let n = 2048i64;
    let dims = matmul_dims(n);
    let result = scheduler.search("A(i,j) = B(i,k) * C(k,j)", &dims).unwrap();
    let best = result.best().unwrap();

    let grid = distal_machine::grid::Grid::near_square_2d(p);
    let hand = Candidate {
        name: "hand-summa".into(),
        grid: grid.clone(),
        formats: ["A", "B", "C"]
            .iter()
            .map(|t| {
                (
                    t.to_string(),
                    distal_format::Format::parse("xy->xy", distal_machine::spec::MemKind::Sys)
                        .unwrap(),
                )
            })
            .collect(),
        schedule: distal_core::Schedule::summa(grid.extent(0), grid.extent(1), n / grid.extent(0)),
    };
    let hand_eval = scheduler.evaluate("A(i,j) = B(i,k) * C(k,j)", &dims, hand);
    assert!(hand_eval.feasible(), "{:?}", hand_eval.infeasible);
    assert!(
        best.makespan_s <= hand_eval.makespan_s * 1.001,
        "auto {} ({:.6}s) lost to hand SUMMA ({:.6}s)",
        best.candidate.name,
        best.makespan_s,
        hand_eval.makespan_s
    );
}

#[test]
fn memory_pressure_rejects_replication_like_figure15b() {
    // On a machine with tiny framebuffers, the replication-heavy families
    // (pre-broadcast inputs, Johnson-style 3D) must be reported infeasible
    // — the paper's Johnson's/COSMA OOM at 32 nodes (§7.1.2) — while a
    // tiled 2D candidate still wins.
    let n = 4096i64;
    let dims = matmul_dims(n);

    let mut tight = MachineSpec::lassen(4);
    // Full matrices are 128 MiB each; a 4x4-grid tile is 8 MiB. 40 MiB of
    // framebuffer fits tiles + streamed chunks but not replicated inputs.
    tight.node.fb_bytes = 40 * (1 << 20);
    let scheduler = AutoScheduler::new(SearchConfig::gpu(tight));
    let result = scheduler.search("A(i,j) = B(i,k) * C(k,j)", &dims).unwrap();

    let infeasible: Vec<&str> = result
        .evaluations
        .iter()
        .filter(|e| !e.feasible())
        .map(|e| e.candidate.name.as_str())
        .collect();
    assert!(
        infeasible
            .iter()
            .any(|n| n.ends_with("+rep") || n.starts_with("reduce3d")),
        "expected replication-heavy candidates to OOM, infeasible = {infeasible:?}"
    );
    let best = result.best().expect("a tiled 2D candidate must survive");
    assert!(
        best.candidate.name.starts_with("owner") || best.candidate.name.starts_with("systolic"),
        "{}",
        best.candidate.name
    );
    assert!(!best.candidate.name.ends_with("+rep"));

    // The same search with roomy memory keeps everything feasible.
    let roomy = AutoScheduler::new(SearchConfig::gpu(MachineSpec::lassen(4)));
    let roomy_result = roomy.search("A(i,j) = B(i,k) * C(k,j)", &dims).unwrap();
    assert!(
        roomy_result.evaluations.iter().all(|e| e.feasible()),
        "{:?}",
        roomy_result
            .evaluations
            .iter()
            .filter(|e| !e.feasible())
            .map(|e| (&e.candidate.name, &e.infeasible))
            .collect::<Vec<_>>()
    );
}

#[test]
fn search_report_is_printable() {
    let scheduler = AutoScheduler::new(SearchConfig::cpu(MachineSpec::small(2)));
    let result = scheduler
        .search("A(i,j) = B(i,k) * C(k,j)", &matmul_dims(64))
        .unwrap();
    for e in &result.evaluations {
        let line = format!("{e}");
        assert!(line.contains(&e.candidate.name));
    }
}
