//! Automatic schedule and format selection for DISTAL.
//!
//! Searches over pipeline layers 2–3 (schedules, scored plans) —
//! `ARCHITECTURE.md` at the workspace root maps all six layers.
//!
//! The paper's future-work section (§9) envisions "auto-scheduling and
//! auto-formatting frameworks for DISTAL ... With automatic schedule and
//! format selection, application developers could independently achieve
//! high performance". This crate builds that framework on top of the
//! reproduction's compiler and cost-model simulator:
//!
//! 1. [`space`] enumerates *candidates* — joint (machine grid, tensor
//!    formats, schedule) choices — from three generic families that span
//!    the paper's design space:
//!    * **owner-computes** (2D-style): distribute a subset of the output's
//!      free variables, keep the output stationary, and stream reduction
//!      chunks (SUMMA's shape, Figure 2);
//!    * **systolic** (Cannon-style): the same, plus a `rotate` of the
//!      reduction loop so transfers become neighbour shifts;
//!    * **reduction-distributed** (3D/Johnson-style): also distribute a
//!      reduction variable, fixing tensors to faces of the processor grid
//!      and folding partial outputs at the end.
//! 2. [`search`] compiles every candidate through the unified
//!    `Problem` → backend → `Artifact` pipeline and scores the backend's
//!    normalized report. The default backend is the runtime's cost-model
//!    simulator (`Mode::Model`); [`AutoScheduler::search_with`] /
//!    [`AutoScheduler::score_with`] accept any other
//!    [`distal_core::Backend`] — notably the SPMD α-β model
//!    (`distal_spmd::CostBackend::alpha_beta`), which prices each
//!    candidate's exact static message schedule. Candidates that exceed
//!    memory (the 3D algorithms at scale, §7.1.2) are reported infeasible
//!    rather than silently dropped.
//!
//! The search therefore *rediscovers* the classic algorithms from the
//! machine description: square grids favour the 2D family, cubes with
//! spare memory favour the 3D family, and tight framebuffers knock the 3D
//! family out — the same trade-offs the paper's Figure 15 shows.
//!
//! # Example
//!
//! ```
//! use distal_autosched::{AutoScheduler, SearchConfig};
//! use distal_machine::spec::MachineSpec;
//! use std::collections::BTreeMap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dims = BTreeMap::new();
//! for t in ["A", "B", "C"] {
//!     dims.insert(t.to_string(), vec![64, 64]);
//! }
//! let scheduler = AutoScheduler::new(SearchConfig::cpu(MachineSpec::small(2)));
//! let result = scheduler.search("A(i,j) = B(i,k) * C(k,j)", &dims)?;
//! let best = result.best().expect("at least the sequential candidate");
//! println!("picked {} ({:.3} ms simulated)", best.candidate.name, best.makespan_s * 1e3);
//! # Ok(())
//! # }
//! ```

pub mod search;
pub mod space;

pub use search::{AutoScheduler, Evaluation, SearchConfig, SearchResult};
pub use space::{enumerate_candidates, AutoschedError, Candidate, SpaceOptions};
