//! Cost-model search over the candidate space.
//!
//! The search is backend-parameterized: [`AutoScheduler::score_with`] and
//! [`AutoScheduler::search_with`] accept any
//! [`distal_core::Backend`], so candidates can be ranked by the
//! dynamic runtime's model-mode simulator (the default), the SPMD α-β
//! makespan (`distal_spmd::CostBackend::alpha_beta`), or even functional
//! execution. Each candidate becomes one [`Problem`] (its grid + formats)
//! compiled through the shared pipeline; whatever the backend's
//! [`Report`](distal_core::Report) says is the score.

use crate::space::{enumerate_candidates, AutoschedError, Candidate, SpaceOptions};
use distal_core::{
    Backend, CacheStats, DistalMachine, Lint, LintConfig, PlanCache, Problem, RuntimeBackend,
    TensorSpec,
};
use distal_machine::spec::{MachineSpec, MemKind, ProcKind};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

/// What machine the search targets and how it scores candidates.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// The physical machine model.
    pub spec: MachineSpec,
    /// Abstract processor kind (CPU sockets or GPUs).
    pub proc_kind: ProcKind,
    /// Enumeration knobs.
    pub space: SpaceOptions,
    /// Score placement traffic too (off by default: the paper's framing is
    /// that data is already distributed and computation shapes to it).
    pub include_placement: bool,
    /// Schedule-admission lints (`distal_core::lint`) used as a pre-cost
    /// pruner: candidates with denied findings are rejected before any
    /// lowering or cost modelling is spent on them. The stock configs
    /// additionally deny [`Lint::LoadImbalance`] — an imbalanced (or
    /// empty-part) candidate never beats its balanced sibling from the
    /// same enumeration, so costing it is pure waste.
    pub lint: LintConfig,
}

impl SearchConfig {
    /// CPU-socket search on `spec` with system-memory tiles.
    pub fn cpu(spec: MachineSpec) -> Self {
        SearchConfig {
            spec,
            proc_kind: ProcKind::Cpu,
            space: SpaceOptions::new(MemKind::Sys),
            include_placement: false,
            lint: LintConfig::new().deny(Lint::LoadImbalance),
        }
    }

    /// GPU search on `spec` with framebuffer tiles (memory-constrained:
    /// replication-heavy candidates can go infeasible, §7.1.2).
    pub fn gpu(spec: MachineSpec) -> Self {
        SearchConfig {
            spec,
            proc_kind: ProcKind::Gpu,
            space: SpaceOptions::new(MemKind::Fb),
            include_placement: false,
            lint: LintConfig::new().deny(Lint::LoadImbalance),
        }
    }

    /// Abstract processors available.
    pub fn processors(&self) -> i64 {
        match self.proc_kind {
            ProcKind::Cpu => self.spec.total_cpu_sockets() as i64,
            ProcKind::Gpu => self.spec.total_gpus() as i64,
        }
    }
}

/// The outcome of scoring one candidate.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// The candidate.
    pub candidate: Candidate,
    /// Simulated makespan in seconds (`f64::INFINITY` when infeasible).
    pub makespan_s: f64,
    /// Bytes communicated during compute.
    pub comm_bytes: u64,
    /// `None` when the candidate compiled and ran; `Some(reason)` when it
    /// was rejected (out of memory, oversized grid, failing schedule).
    pub infeasible: Option<String>,
    /// True when the admission linter's legality passes rejected the
    /// candidate *before* costing — no lowering or model time was spent.
    pub pruned: bool,
}

impl Evaluation {
    /// True when the candidate compiled and ran within memory.
    pub fn feasible(&self) -> bool {
        self.infeasible.is_none()
    }
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.infeasible {
            None => write!(
                f,
                "{:<28} {:>10.3} ms  {:>12} B",
                self.candidate.name,
                self.makespan_s * 1e3,
                self.comm_bytes
            ),
            Some(reason) => write!(f, "{:<28} infeasible: {reason}", self.candidate.name),
        }
    }
}

/// All evaluations of one search, sorted best-first.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// Evaluations sorted by (feasibility, makespan, bytes, name).
    pub evaluations: Vec<Evaluation>,
}

impl SearchResult {
    /// The winning evaluation, if any candidate was feasible.
    pub fn best(&self) -> Option<&Evaluation> {
        self.evaluations.first().filter(|e| e.feasible())
    }

    /// The evaluation of the named candidate.
    pub fn named(&self, name: &str) -> Option<&Evaluation> {
        self.evaluations.iter().find(|e| e.candidate.name == name)
    }

    /// How many candidates the admission linter pruned before costing
    /// (the `search` stat the benches report and CI gates).
    pub fn pruned_candidates(&self) -> usize {
        self.evaluations.iter().filter(|e| e.pruned).count()
    }
}

/// Automatic schedule and format selection (paper §9).
///
/// The scheduler scores candidates through an internal
/// [`PlanCache`]: each candidate's (grid, formats, schedule) bundle is
/// planned once and the plan reused on every later scoring with the same
/// key — so re-running a search, or sweeping overlapping candidate sets,
/// never re-lowers a candidate it has already seen.
pub struct AutoScheduler {
    config: SearchConfig,
    cache: Mutex<PlanCache>,
}

/// Candidate spaces are tens of entries; a few searches' worth fit
/// comfortably.
const SCORE_CACHE_CAPACITY: usize = 256;

impl Clone for AutoScheduler {
    fn clone(&self) -> Self {
        AutoScheduler {
            config: self.config.clone(),
            cache: Mutex::new(self.lock_cache().clone()),
        }
    }
}

impl fmt::Debug for AutoScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AutoScheduler")
            .field("config", &self.config)
            .field("cache", &self.lock_cache().stats())
            .finish()
    }
}

impl AutoScheduler {
    /// A scheduler for the given target.
    pub fn new(config: SearchConfig) -> Self {
        AutoScheduler {
            config,
            cache: Mutex::new(PlanCache::new(SCORE_CACHE_CAPACITY)),
        }
    }

    /// The search configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// The internal plan cache's counters (hits = candidates scored
    /// without re-lowering).
    pub fn cache_stats(&self) -> CacheStats {
        self.lock_cache().stats()
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, PlanCache> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enumerates and scores every candidate for `expr` under the default
    /// backend (the dynamic runtime's model-mode simulator), returning
    /// them best-first. Infeasible candidates are kept (sorted last) so
    /// callers can see *why* e.g. a 3D algorithm lost: OOM, not slowness.
    ///
    /// # Errors
    ///
    /// Propagates enumeration errors ([`AutoschedError`]); evaluation
    /// failures are per-candidate infeasibility, not errors.
    pub fn search(
        &self,
        expr: &str,
        dims: &BTreeMap<String, Vec<i64>>,
    ) -> Result<SearchResult, AutoschedError> {
        self.search_with(&RuntimeBackend::model(), expr, dims)
    }

    /// [`AutoScheduler::search`] under an explicit scoring backend —
    /// e.g. `distal_spmd::CostBackend::alpha_beta` to rank candidates by
    /// the static SPMD α-β makespan instead of the runtime simulator.
    ///
    /// # Errors
    ///
    /// Propagates enumeration errors ([`AutoschedError`]).
    pub fn search_with(
        &self,
        backend: &dyn Backend,
        expr: &str,
        dims: &BTreeMap<String, Vec<i64>>,
    ) -> Result<SearchResult, AutoschedError> {
        let p = self.config.processors();
        let (_, candidates) = enumerate_candidates(expr, dims, p, &self.config.space)?;
        let mut evaluations: Vec<Evaluation> = candidates
            .into_iter()
            .map(|c| self.score_with(backend, expr, dims, c))
            .collect();
        evaluations.sort_by(|a, b| {
            (!a.feasible(), a.makespan_s, a.comm_bytes, &a.candidate.name)
                .partial_cmp(&(!b.feasible(), b.makespan_s, b.comm_bytes, &b.candidate.name))
                .expect("makespans are never NaN")
        });
        Ok(SearchResult { evaluations })
    }

    /// Scores one candidate by playing it through the default cost-model
    /// simulator.
    pub fn evaluate(
        &self,
        expr: &str,
        dims: &BTreeMap<String, Vec<i64>>,
        candidate: Candidate,
    ) -> Evaluation {
        self.score_with(&RuntimeBackend::model(), expr, dims, candidate)
    }

    /// Scores one candidate on an explicit backend: builds the candidate's
    /// [`Problem`] (its grid + formats over the shared spec), fetches its
    /// plan from the internal [`PlanCache`] (planning only on the first
    /// encounter of the key), binds the problem's data, and reads the
    /// score off the backend's normalized report.
    pub fn score_with(
        &self,
        backend: &dyn Backend,
        expr: &str,
        dims: &BTreeMap<String, Vec<i64>>,
        candidate: Candidate,
    ) -> Evaluation {
        let infeasible = |candidate: Candidate, reason: String| Evaluation {
            candidate,
            makespan_s: f64::INFINITY,
            comm_bytes: 0,
            infeasible: Some(reason),
            pruned: false,
        };
        let machine = DistalMachine::flat(candidate.grid.clone(), self.config.proc_kind);
        let mut problem = Problem::new(self.config.spec.clone(), machine);
        if let Err(e) = problem.statement(expr) {
            return infeasible(candidate, e.to_string());
        }
        for (name, shape) in dims {
            let format = match candidate.formats.get(name) {
                Some(f) => f.clone(),
                None => return infeasible(candidate, format!("no format for tensor '{name}'")),
            };
            if let Err(e) = problem.tensor(TensorSpec::new(name.clone(), shape.clone(), format)) {
                return infeasible(candidate, e.to_string());
            }
            if let Err(e) = problem.fill(name, 0.0) {
                return infeasible(candidate, e.to_string());
            }
        }
        // Pre-cost pruning: run the admission linter's passes over the
        // candidate. A denied finding means the schedule cannot lower (or
        // would execute wrongly), so neither a lowering nor a cost-model
        // evaluation is spent on it.
        let lint = distal_core::lint_schedule(&problem, &candidate.schedule, &self.config.lint);
        if let Some(first) = lint.iter().find(|d| d.is_error()) {
            let reason = format!("lint: {first}");
            return Evaluation {
                pruned: true,
                ..infeasible(candidate, reason)
            };
        }
        // Look up under the lock, but plan *outside* it: a cache miss
        // must not serialize concurrent scorers on this lowering.
        let key = distal_core::PlanKey::new(backend, &problem, &candidate.schedule);
        // Bind the lookup to its own statement so the guard drops here —
        // a `match self.lock_cache().get(..)` scrutinee would hold the
        // lock across the whole match, deadlocking the miss arm's
        // re-lock.
        let cached = self.lock_cache().get(&key);
        let plan = match cached {
            Some(p) => p,
            None => match problem.plan(backend, &candidate.schedule) {
                Ok(p) => {
                    let p: std::sync::Arc<dyn distal_core::Plan> = std::sync::Arc::from(p);
                    self.lock_cache()
                        .insert_planned(key, std::sync::Arc::clone(&p));
                    p
                }
                Err(e) => return infeasible(candidate, e.to_string()),
            },
        };
        let mut artifact = match plan.bind(&problem.bindings()) {
            Ok(a) => a,
            Err(e) => return infeasible(candidate, e.to_string()),
        };
        let placement = match artifact.place() {
            Ok(r) => r,
            Err(e) => return infeasible(candidate, format!("placement: {e}")),
        };
        let compute = match artifact.execute() {
            Ok(r) => r,
            Err(e) => return infeasible(candidate, format!("compute: {e}")),
        };
        let mut makespan = compute.critical_path_s;
        if self.config.include_placement {
            makespan += placement.critical_path_s;
        }
        Evaluation {
            candidate,
            makespan_s: makespan,
            comm_bytes: compute.bytes_moved,
            infeasible: None,
            pruned: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul_dims(n: i64) -> BTreeMap<String, Vec<i64>> {
        ["A", "B", "C"]
            .iter()
            .map(|t| (t.to_string(), vec![n, n]))
            .collect()
    }

    #[test]
    fn search_runs_and_sorts() {
        let scheduler = AutoScheduler::new(SearchConfig::cpu(MachineSpec::small(2)));
        let result = scheduler
            .search("A(i,j) = B(i,k) * C(k,j)", &matmul_dims(128))
            .unwrap();
        let best = result.best().expect("feasible candidate exists");
        assert!(best.makespan_s.is_finite());
        // Sorted: every feasible candidate precedes every infeasible one,
        // and makespans are non-decreasing among the feasible.
        let mut last = 0.0;
        for e in &result.evaluations {
            if e.feasible() {
                assert!(e.makespan_s >= last);
                last = e.makespan_s;
            }
        }
    }

    #[test]
    fn distributed_beats_sequential_at_scale() {
        // On 8 sockets with a big matrix, any sane search must beat the
        // single-socket baseline.
        let scheduler = AutoScheduler::new(SearchConfig::cpu(MachineSpec::small(4)));
        let result = scheduler
            .search("A(i,j) = B(i,k) * C(k,j)", &matmul_dims(512))
            .unwrap();
        let best = result.best().unwrap();
        let sequential = result.named("sequential").unwrap();
        assert_ne!(best.candidate.name, "sequential");
        assert!(best.makespan_s < sequential.makespan_s / 2.0);
    }

    #[test]
    fn alpha_beta_backend_ranks_candidates() {
        // The same enumeration scored under the SPMD α-β cost model: the
        // static backend lowers each candidate to its exact message
        // schedule and prices the critical path — no runtime simulation,
        // no numerics.
        let scheduler = AutoScheduler::new(SearchConfig::cpu(MachineSpec::small(2)));
        let backend = distal_spmd::CostBackend::alpha_beta(distal_spmd::AlphaBeta::default());
        let result = scheduler
            .search_with(&backend, "A(i,j) = B(i,k) * C(k,j)", &matmul_dims(64))
            .unwrap();
        let best = result.best().expect("α-β-feasible candidate exists");
        assert!(best.makespan_s.is_finite());
        assert!(best.makespan_s > 0.0);
        // The α-β model still sees real communication volume.
        assert!(result
            .evaluations
            .iter()
            .filter(|e| e.feasible())
            .any(|e| e.comm_bytes > 0));
        // Both backends agree on *feasible schedules*, even where their
        // cost models differ: every α-β-feasible candidate also compiles
        // and runs under the default simulator.
        let sim = scheduler
            .search("A(i,j) = B(i,k) * C(k,j)", &matmul_dims(64))
            .unwrap();
        for e in result.evaluations.iter().filter(|e| e.feasible()) {
            let other = sim.named(&e.candidate.name).unwrap();
            assert!(
                other.feasible(),
                "{} feasible under α-β but not the simulator",
                e.candidate.name
            );
        }
    }

    #[test]
    fn repeat_searches_reuse_cached_plans() {
        let scheduler = AutoScheduler::new(SearchConfig::cpu(MachineSpec::small(2)));
        let first = scheduler
            .search("A(i,j) = B(i,k) * C(k,j)", &matmul_dims(64))
            .unwrap();
        let after_first = scheduler.cache_stats();
        assert!(after_first.misses > 0);
        let feasible = first.evaluations.iter().filter(|e| e.feasible()).count();
        // Every feasible candidate planned exactly once (infeasible ones
        // may fail before/at planning and are not cached).
        assert!(after_first.len >= feasible);

        // The second identical search performs ZERO new lowering work:
        // every feasible candidate is a cache hit.
        let lowerings = distal_core::lower::compile_count();
        let applications = distal_core::schedule::apply_count();
        let second = scheduler
            .search("A(i,j) = B(i,k) * C(k,j)", &matmul_dims(64))
            .unwrap();
        let after_second = scheduler.cache_stats();
        assert!(after_second.hits >= feasible as u64);
        assert_eq!(after_second.misses, after_first.misses);
        // Infeasible candidates that fail *during* planning still pay a
        // (failed, uncached) lowering attempt; the feasible set must not
        // add any. Bound: new lowerings <= infeasible candidates.
        let infeasible = first.evaluations.len() - feasible;
        assert!(
            distal_core::lower::compile_count() - lowerings <= infeasible as u64,
            "feasible candidates re-lowered on a warm cache"
        );
        assert!(
            distal_core::schedule::apply_count() - applications <= infeasible as u64,
            "feasible candidates re-applied schedules on a warm cache"
        );
        // And scoring is unchanged by the cache.
        for (a, b) in first.evaluations.iter().zip(second.evaluations.iter()) {
            assert_eq!(a.candidate.name, b.candidate.name);
            assert_eq!(a.makespan_s, b.makespan_s);
            assert_eq!(a.comm_bytes, b.comm_bytes);
        }
    }

    #[test]
    fn illegal_candidates_are_pruned_before_costing() {
        // Exhaustive 8-way grids over extent-4 loops necessarily contain divides
        // with more parts than iterations: the admission linter rejects
        // those before any planning happens.
        let mut config = SearchConfig::cpu(MachineSpec::small(4));
        config.space.exhaustive_grids = true;
        let scheduler = AutoScheduler::new(config);
        let result = scheduler
            .search("A(i,j) = B(i,k) * C(k,j)", &matmul_dims(4))
            .unwrap();
        let pruned = result.pruned_candidates();
        assert!(
            pruned >= 1,
            "an 8-way grid dimension over an extent-4 loop must be pruned"
        );
        for e in result.evaluations.iter().filter(|e| e.pruned) {
            assert!(!e.feasible());
            let reason = e.infeasible.as_deref().unwrap();
            assert!(reason.starts_with("lint: "), "unexpected reason {reason:?}");
        }
        // Zero lowering work on pruned candidates: they never even reach
        // the plan cache, so cache traffic is bounded by the survivors.
        let stats = scheduler.cache_stats();
        let survivors = result.evaluations.len() - pruned;
        assert!(
            (stats.hits + stats.misses) as usize <= survivors,
            "pruned candidates consulted the plan cache"
        );
        // The legal candidates are unaffected by the pruner.
        assert!(result.best().expect("legal candidates remain").feasible());
    }

    #[test]
    fn determinism() {
        let scheduler = AutoScheduler::new(SearchConfig::cpu(MachineSpec::small(2)));
        let a = scheduler
            .search("A(i,j) = B(i,k) * C(k,j)", &matmul_dims(64))
            .unwrap();
        let b = scheduler
            .search("A(i,j) = B(i,k) * C(k,j)", &matmul_dims(64))
            .unwrap();
        let names_a: Vec<&str> = a
            .evaluations
            .iter()
            .map(|e| e.candidate.name.as_str())
            .collect();
        let names_b: Vec<&str> = b
            .evaluations
            .iter()
            .map(|e| e.candidate.name.as_str())
            .collect();
        assert_eq!(names_a, names_b);
    }
}
