//! Candidate enumeration: the joint (grid, formats, schedule) search space.

use distal_core::Schedule;
use distal_format::notation::{DimName, TensorDistribution};
use distal_format::Format;
use distal_ir::expr::{Assignment, IndexVar};
use distal_machine::grid::Grid;
use distal_machine::spec::MemKind;
use std::collections::BTreeMap;
use std::fmt;

/// Errors from candidate enumeration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AutoschedError {
    /// The expression failed to parse.
    Expression(String),
    /// A tensor in the expression has no dimension information.
    MissingDims(String),
    /// Tensor shapes disagree about a variable's extent.
    InconsistentExtents,
}

impl fmt::Display for AutoschedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutoschedError::Expression(e) => write!(f, "expression error: {e}"),
            AutoschedError::MissingDims(t) => write!(f, "missing dims for tensor '{t}'"),
            AutoschedError::InconsistentExtents => write!(f, "inconsistent index extents"),
        }
    }
}

impl std::error::Error for AutoschedError {}

/// One point of the search space: a machine organization, a format per
/// tensor, and a schedule — the three things Figure 1 asks the user for.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Human-readable description (family, distributed vars, grid, chunk).
    pub name: String,
    /// The machine grid (a factorization of the processor count).
    pub grid: Grid,
    /// Format per tensor name.
    pub formats: BTreeMap<String, Format>,
    /// The schedule.
    pub schedule: Schedule,
}

/// Knobs bounding the enumeration.
#[derive(Clone, Debug)]
pub struct SpaceOptions {
    /// Memory kind tensor tiles live in.
    pub mem: MemKind,
    /// Enumerate every grid factorization instead of only the balanced one
    /// (COSMA-style grid exploration; exhaustive for small `p`).
    pub exhaustive_grids: bool,
    /// Maximum number of distributed dimensions (1..=3).
    pub max_dims: usize,
    /// Chunk sizes to try for streaming the sequential reduction loop
    /// (`0` means "one chunk per grid row", SUMMA's natural granularity).
    pub chunks: Vec<i64>,
}

impl SpaceOptions {
    /// Defaults: balanced grids, up to 3 distributed dims, natural chunks.
    pub fn new(mem: MemKind) -> Self {
        SpaceOptions {
            mem,
            exhaustive_grids: false,
            max_dims: 3,
            chunks: vec![0, 256],
        }
    }
}

/// All ordered size-`k` subsequences of `items` (order preserved, so the
/// distributed loop order follows the statement's variable order).
fn subsequences<T: Clone>(items: &[T], k: usize) -> Vec<Vec<T>> {
    if k == 0 {
        return vec![Vec::new()];
    }
    if items.len() < k {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, first) in items.iter().enumerate() {
        for mut rest in subsequences(&items[i + 1..], k - 1) {
            rest.insert(0, first.clone());
            out.push(rest);
        }
    }
    out
}

/// All factorizations of `p` into exactly `d` ordered factors.
fn factorizations(p: i64, d: usize) -> Vec<Vec<i64>> {
    if d == 1 {
        return vec![vec![p]];
    }
    let mut out = Vec::new();
    let mut f = 1;
    while f <= p {
        if p % f == 0 {
            for mut rest in factorizations(p / f, d - 1) {
                rest.insert(0, f);
                out.push(rest);
            }
        }
        f += 1;
    }
    out
}

/// The most balanced factorization of `p` into `d` factors: largest
/// minimum factor, then smallest maximum, then lexicographically first
/// (so ties resolve deterministically to the ascending form).
fn balanced(p: i64, d: usize) -> Vec<i64> {
    factorizations(p, d)
        .into_iter()
        .min_by_key(|f| {
            let min = *f.iter().min().expect("nonempty");
            let max = *f.iter().max().expect("nonempty");
            (-min, max, f.clone())
        })
        .expect("p >= 1 always factors")
}

/// Positional dimension names for a tensor of the given order ("a", "b"...).
fn dim_names(order: usize) -> Vec<String> {
    (0..order)
        .map(|i| char::from(b'a' + i as u8).to_string())
        .collect()
}

/// How to lay out the machine dimensions whose variable does not index a
/// given input tensor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AbsentPolicy {
    /// Replicate the tensor across the dimension (`*`) — communication-lean
    /// at compute time, memory-hungry (the 2D family with pre-broadcast
    /// inputs; "Replicate B onto all nodes", Figure 1).
    Broadcast,
    /// Partition a spare tensor dimension (one indexed by a reduction
    /// variable) over the machine dimension — the classic tiled layouts of
    /// Figure 9 (SUMMA's `B xy↦xy` tiles B's reduction dimension over the
    /// machine's `y`). Falls back to broadcast when no spare dim remains.
    PartitionSpare,
    /// Fix the tensor to face 0 of the dimension — Johnson's layout.
    Face,
}

/// The format distributing each tensor dimension indexed by a variable in
/// `dist_vars` along that variable's machine dimension; `spare` lists the
/// tensor's dimensions indexed by reduction variables not in `dist_vars`
/// (candidates for [`AbsentPolicy::PartitionSpare`]).
fn format_for(
    acc_indices: &[IndexVar],
    dist_vars: &[IndexVar],
    policy: AbsentPolicy,
    reductions: &[IndexVar],
    mem: MemKind,
) -> Format {
    let names = dim_names(acc_indices.len());
    let mut spare: Vec<usize> = acc_indices
        .iter()
        .enumerate()
        .filter(|(_, v)| reductions.contains(v) && !dist_vars.contains(v))
        .map(|(i, _)| i)
        .collect();
    let machine_dims: Vec<DimName> = dist_vars
        .iter()
        .map(|v| match acc_indices.iter().position(|i| i == v) {
            Some(pos) => DimName::Var(names[pos].clone()),
            None => match policy {
                AbsentPolicy::Broadcast => DimName::Broadcast,
                AbsentPolicy::Face => DimName::Const(0),
                AbsentPolicy::PartitionSpare => {
                    if spare.is_empty() {
                        DimName::Broadcast
                    } else {
                        DimName::Var(names[spare.remove(0)].clone())
                    }
                }
            },
        })
        .collect();
    let dist = TensorDistribution::new(names, machine_dims)
        .expect("generated notation is valid by construction");
    Format::new(dist, mem)
}

/// Formats for every tensor of `assignment` under the distributed
/// variables `dist_vars`. The *output* never broadcasts: machine dims not
/// indexing it are fixed to face 0 (partial results fold there).
fn formats_for(
    assignment: &Assignment,
    dist_vars: &[IndexVar],
    inputs_policy: AbsentPolicy,
    mem: MemKind,
) -> BTreeMap<String, Format> {
    let reductions = assignment.reduction_vars();
    let mut formats = BTreeMap::new();
    formats.insert(
        assignment.lhs.tensor.clone(),
        format_for(
            &assignment.lhs.indices,
            dist_vars,
            AbsentPolicy::Face,
            &reductions,
            mem,
        ),
    );
    for acc in assignment.input_accesses() {
        formats.entry(acc.tensor.clone()).or_insert_with(|| {
            format_for(&acc.indices, dist_vars, inputs_policy, &reductions, mem)
        });
    }
    formats
}

fn var_names(vars: &[IndexVar]) -> Vec<String> {
    vars.iter().map(|v| v.0.clone()).collect()
}

fn derived(vars: &[IndexVar], suffix: &str) -> Vec<String> {
    vars.iter().map(|v| format!("{}{suffix}", v.0)).collect()
}

fn refs(v: &[String]) -> Vec<&str> {
    v.iter().map(String::as_str).collect()
}

/// A schedule prefix that distributes `targets` over `gdims` with the
/// distributed halves hoisted outermost — unlike the compound
/// `distribute_onto`, this works for *any* subset of the statement's
/// variables (e.g. distributing only `j` of `A(i,j)`), by issuing a full
/// reorder over every loop variable.
///
/// Returns the schedule and the loop order below the distributed prefix
/// (`targets` replaced by their inner halves, other variables unchanged).
fn distribute_prefix(
    all_vars: &[IndexVar],
    targets: &[IndexVar],
    outs: &[String],
    ins: &[String],
    gdims: &[i64],
) -> (Schedule, Vec<String>) {
    let mut schedule = Schedule::new();
    for ((v, o), (i, g)) in targets
        .iter()
        .zip(outs.iter())
        .zip(ins.iter().zip(gdims.iter()))
    {
        schedule = schedule.divide(&v.0, o, i, *g);
    }
    let rest: Vec<String> = all_vars
        .iter()
        .map(|v| match targets.iter().position(|t| t == v) {
            Some(pos) => ins[pos].clone(),
            None => v.0.clone(),
        })
        .collect();
    let mut order: Vec<&str> = refs(outs);
    order.extend(rest.iter().map(String::as_str));
    schedule = schedule.reorder(&order).distribute(&refs(outs));
    (schedule, rest)
}

/// Enumerates the candidate (grid, formats, schedule) triples for an
/// expression on `p` processors.
///
/// # Errors
///
/// Propagates parse/extent failures as [`AutoschedError`].
pub fn enumerate_candidates(
    expr: &str,
    dims: &BTreeMap<String, Vec<i64>>,
    p: i64,
    options: &SpaceOptions,
) -> Result<(Assignment, Vec<Candidate>), AutoschedError> {
    let assignment =
        Assignment::parse(expr).map_err(|e| AutoschedError::Expression(e.to_string()))?;
    for acc in assignment.accesses() {
        if !dims.contains_key(&acc.tensor) {
            return Err(AutoschedError::MissingDims(acc.tensor.clone()));
        }
    }
    let extents = assignment
        .infer_extents(dims)
        .ok_or(AutoschedError::InconsistentExtents)?;
    let free = assignment.free_vars();
    let reductions = assignment.reduction_vars();
    // The reduction variable streamed sequentially: the largest one.
    let stream = reductions.iter().max_by_key(|v| extents[*v]).cloned();

    let mut candidates = Vec::new();

    // Baseline: everything on one processor, tensors undistributed.
    {
        let mut formats = BTreeMap::new();
        for acc in assignment.accesses() {
            formats.insert(acc.tensor.clone(), Format::undistributed());
        }
        candidates.push(Candidate {
            name: "sequential".into(),
            grid: Grid::line(1),
            formats,
            schedule: Schedule::new(),
        });
    }

    // Owner-computes and systolic families over subsets of free variables.
    for ds in 1..=options.max_dims.min(free.len()) {
        for subset in subsequences(&free, ds) {
            let grids = if options.exhaustive_grids {
                factorizations(p, ds)
            } else {
                vec![balanced(p, ds)]
            };
            for gdims in grids {
                if gdims.iter().any(|&g| g < 1) || gdims.iter().product::<i64>() != p {
                    continue;
                }
                candidates.extend(owner_computes_family(
                    &assignment,
                    &subset,
                    &gdims,
                    stream.as_ref(),
                    &extents,
                    options,
                ));
            }
        }
    }

    // Reduction-distributed (Johnson-style) family: distribute up to two
    // free variables plus the streamed reduction variable.
    if let Some(r) = &stream {
        for ds in 1..=2usize.min(free.len()) {
            for subset in subsequences(&free, ds) {
                let gdims = balanced(p, ds + 1);
                if gdims.iter().product::<i64>() != p {
                    continue;
                }
                if let Some(c) = reduction_distributed(&assignment, &subset, r, &gdims, options) {
                    candidates.push(c);
                }
            }
        }
    }

    Ok((assignment, candidates))
}

/// SUMMA-shaped (and, when the grid allows, Cannon-shaped) candidates for
/// one choice of distributed free variables and grid. Each schedule comes
/// in two format variants: classic *tiled* inputs (Figure 9's layouts) and
/// pre-*replicated* inputs (`+rep`, trading memory for silence at compute
/// time) — memory limits arbitrate between them during the search.
fn owner_computes_family(
    assignment: &Assignment,
    subset: &[IndexVar],
    gdims: &[i64],
    stream: Option<&IndexVar>,
    extents: &BTreeMap<IndexVar, i64>,
    options: &SpaceOptions,
) -> Vec<Candidate> {
    let grid = Grid::new(gdims.to_vec());
    let tiled = formats_for(
        assignment,
        subset,
        AbsentPolicy::PartitionSpare,
        options.mem,
    );
    let replicated = formats_for(assignment, subset, AbsentPolicy::Broadcast, options.mem);
    let variants: Vec<(&str, &BTreeMap<String, Format>)> = if tiled == replicated {
        vec![("", &tiled)]
    } else {
        vec![("", &tiled), ("+rep", &replicated)]
    };
    let outs = derived(subset, "_o");
    let ins = derived(subset, "_i");
    let out_name = assignment.lhs.tensor.clone();
    let input_names: Vec<String> = {
        let mut seen = Vec::new();
        for acc in assignment.input_accesses() {
            if !seen.contains(&acc.tensor) && acc.tensor != out_name {
                seen.push(acc.tensor.clone());
            }
        }
        seen
    };
    let subset_label = var_names(subset).join(",");
    let grid_label = gdims
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("x");

    let (base, rest) = distribute_prefix(&assignment.all_vars(), subset, &outs, &ins, gdims);
    let mut out = Vec::new();

    // The loop order once the stream variable is split: distributed outers,
    // then the stream's chunk loop, then everything else, then the chunk's
    // inner half.
    let stream_order = |ro: &str, ri: &str| -> Vec<String> {
        let mut order: Vec<String> = outs.clone();
        order.push(ro.to_string());
        order.extend(
            rest.iter()
                .filter(|v| stream.map(|r| &r.0) != Some(*v))
                .cloned(),
        );
        order.push(ri.to_string());
        order
    };

    match stream {
        None => {
            // Element-wise: everything communicates at the launch level.
            let mut tensors: Vec<&str> = vec![&out_name];
            tensors.extend(input_names.iter().map(String::as_str));
            for (suffix, formats) in &variants {
                out.push(Candidate {
                    name: format!("owner[{subset_label}] {grid_label}{suffix}"),
                    grid: grid.clone(),
                    formats: (*formats).clone(),
                    schedule: base
                        .clone()
                        .communicate(&tensors, outs.last().expect("ds >= 1")),
                });
            }
        }
        Some(r) => {
            let extent = extents[r];
            let last_out = outs.last().expect("ds >= 1").clone();
            for &chunk in &options.chunks {
                let chunk = if chunk == 0 {
                    (extent / gdims[0]).max(1)
                } else if chunk >= extent {
                    continue; // no streaming at this size; covered by chunk=0
                } else {
                    chunk
                };
                let (ro, ri) = (format!("{}_so", r.0), format!("{}_si", r.0));
                let order = stream_order(&ro, &ri);
                let schedule = base
                    .clone()
                    .split(&r.0, &ro, &ri, chunk)
                    .reorder(&refs(&order))
                    .communicate(&[&out_name], &last_out)
                    .communicate(&refs(&input_names), &ro);
                for (suffix, formats) in &variants {
                    out.push(Candidate {
                        name: format!("owner[{subset_label}] {grid_label} chunk={chunk}{suffix}"),
                        grid: grid.clone(),
                        formats: (*formats).clone(),
                        schedule: schedule.clone(),
                    });
                }
            }
            // Systolic variant: divide the stream by the first grid
            // dimension and rotate over the distributed vars (Cannon's
            // shape, meaningful with classic tiled layouts and a
            // non-trivial first dimension).
            if gdims[0] > 1 {
                let (ro, ri, ros) = (
                    format!("{}_so", r.0),
                    format!("{}_si", r.0),
                    format!("{}_ss", r.0),
                );
                let order = stream_order(&ro, &ri);
                let schedule = base
                    .clone()
                    .divide(&r.0, &ro, &ri, gdims[0])
                    .reorder(&refs(&order))
                    .rotate(&ro, &refs(&outs), &ros)
                    .communicate(&[&out_name], &last_out)
                    .communicate(&refs(&input_names), &ros);
                out.push(Candidate {
                    name: format!("systolic[{subset_label}] {grid_label}"),
                    grid,
                    formats: tiled.clone(),
                    schedule,
                });
            }
        }
    }
    out
}

/// One Johnson-style candidate: distribute `subset + r`, fix tensors to
/// grid faces, fold partial outputs.
fn reduction_distributed(
    assignment: &Assignment,
    subset: &[IndexVar],
    r: &IndexVar,
    gdims: &[i64],
    options: &SpaceOptions,
) -> Option<Candidate> {
    let mut dist_vars = subset.to_vec();
    dist_vars.push(r.clone());
    let grid = Grid::new(gdims.to_vec());
    // Faces (Const 0) for machine dims a tensor does not share — the
    // schedule's launch-level communicate broadcasts them, trading memory
    // for communication exactly like the paper's 3D algorithms.
    let formats = formats_for(assignment, &dist_vars, AbsentPolicy::Face, options.mem);
    let outs = derived(&dist_vars, "_o");
    let ins = derived(&dist_vars, "_i");
    let mut tensors: Vec<&str> = vec![&assignment.lhs.tensor];
    let input_names: Vec<String> = assignment
        .input_accesses()
        .iter()
        .map(|a| a.tensor.clone())
        .collect();
    for n in &input_names {
        if !tensors.contains(&n.as_str()) {
            tensors.push(n);
        }
    }
    let (base, _rest) = distribute_prefix(&assignment.all_vars(), &dist_vars, &outs, &ins, gdims);
    let schedule = base.communicate(&tensors, outs.last().expect("nonempty"));
    let grid_label = gdims
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("x");
    Some(Candidate {
        name: format!(
            "reduce3d[{},{}] {grid_label}",
            var_names(subset).join(","),
            r.0
        ),
        grid,
        formats,
        schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul_dims(n: i64) -> BTreeMap<String, Vec<i64>> {
        ["A", "B", "C"]
            .iter()
            .map(|t| (t.to_string(), vec![n, n]))
            .collect()
    }

    #[test]
    fn helpers() {
        assert_eq!(
            subsequences(&[1, 2, 3], 2),
            vec![vec![1, 2], vec![1, 3], vec![2, 3]]
        );
        assert_eq!(factorizations(12, 2).len(), 6);
        assert_eq!(balanced(16, 2), vec![4, 4]);
        assert_eq!(balanced(8, 3), vec![2, 2, 2]);
        assert_eq!(balanced(7, 2), vec![1, 7]);
        assert_eq!(dim_names(3), vec!["a", "b", "c"]);
    }

    #[test]
    fn matmul_space_contains_the_classics() {
        let opts = SpaceOptions::new(MemKind::Sys);
        let (_, cands) =
            enumerate_candidates("A(i,j) = B(i,k) * C(k,j)", &matmul_dims(64), 16, &opts).unwrap();
        let names: Vec<&str> = cands.iter().map(|c| c.name.as_str()).collect();
        // SUMMA's shape: owner-computes over (i, j) on the square grid.
        assert!(
            names.iter().any(|n| n.starts_with("owner[i,j] 4x4")),
            "{names:?}"
        );
        // Cannon's shape.
        assert!(names.contains(&"systolic[i,j] 4x4"), "{names:?}");
        // Johnson's shape needs a cube; at p=16 the balanced 3d grid is
        // non-cubic but still present.
        assert!(
            names.iter().any(|n| n.starts_with("reduce3d[i,j,k]")),
            "{names:?}"
        );
        assert!(names.contains(&"sequential"));
        // Every candidate name is unique.
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }

    #[test]
    fn formats_follow_distribution_choices() {
        let opts = SpaceOptions::new(MemKind::Sys);
        let (a, cands) =
            enumerate_candidates("A(i,j) = B(i,k) * C(k,j)", &matmul_dims(64), 16, &opts).unwrap();
        let summa = cands
            .iter()
            .find(|c| c.name.starts_with("owner[i,j] 4x4 chunk") && !c.name.ends_with("+rep"))
            .unwrap();
        // The classic SUMMA layout of Figure 9: all three matrices tiled
        // (B's and C's reduction dimension covers the machine dim their
        // missing free variable would have).
        assert_eq!(
            format!("{}", summa.formats["A"].distributions[0]),
            "ab ↦ ab"
        );
        assert_eq!(
            format!("{}", summa.formats["B"].distributions[0]),
            "ab ↦ ab"
        );
        assert_eq!(
            format!("{}", summa.formats["C"].distributions[0]),
            "ab ↦ ab"
        );
        // The pre-replicated variant broadcasts the missing dimension.
        let rep = cands
            .iter()
            .find(|c| c.name.starts_with("owner[i,j] 4x4 chunk") && c.name.ends_with("+rep"))
            .unwrap();
        assert_eq!(format!("{}", rep.formats["B"].distributions[0]), "ab ↦ a*");
        assert_eq!(format!("{}", rep.formats["C"].distributions[0]), "ab ↦ *b");
        let johnson = cands
            .iter()
            .find(|c| c.name.starts_with("reduce3d[i,j,k]"))
            .unwrap();
        // Johnson's face-fixed layout (Figure 9).
        assert_eq!(
            format!("{}", johnson.formats["A"].distributions[0]),
            "ab ↦ ab0"
        );
        assert_eq!(
            format!("{}", johnson.formats["B"].distributions[0]),
            "ab ↦ a0b"
        );
        assert_eq!(
            format!("{}", johnson.formats["C"].distributions[0]),
            "ab ↦ 0ba"
        );
        let _ = a;
    }

    #[test]
    fn elementwise_expression_has_no_stream() {
        let mut dims = BTreeMap::new();
        for t in ["A", "B", "C"] {
            dims.insert(t.to_string(), vec![32, 32]);
        }
        let opts = SpaceOptions::new(MemKind::Sys);
        let (_, cands) = enumerate_candidates("A(i,j) = B(i,j) + C(i,j)", &dims, 4, &opts).unwrap();
        // No reduction: no systolic or 3d candidates.
        assert!(cands.iter().all(|c| !c.name.starts_with("systolic")));
        assert!(cands.iter().all(|c| !c.name.starts_with("reduce3d")));
        assert!(cands.iter().any(|c| c.name.starts_with("owner[i,j]")));
    }

    #[test]
    fn exhaustive_grids_expand_the_space() {
        let mut opts = SpaceOptions::new(MemKind::Sys);
        let (_, balanced_only) =
            enumerate_candidates("A(i,j) = B(i,k) * C(k,j)", &matmul_dims(32), 8, &opts).unwrap();
        opts.exhaustive_grids = true;
        let (_, all) =
            enumerate_candidates("A(i,j) = B(i,k) * C(k,j)", &matmul_dims(32), 8, &opts).unwrap();
        assert!(all.len() > balanced_only.len());
    }

    #[test]
    fn errors_surface() {
        let opts = SpaceOptions::new(MemKind::Sys);
        assert!(matches!(
            enumerate_candidates("not an expression", &BTreeMap::new(), 4, &opts),
            Err(AutoschedError::Expression(_))
        ));
        assert!(matches!(
            enumerate_candidates("A(i,j) = B(i,k) * C(k,j)", &BTreeMap::new(), 4, &opts),
            Err(AutoschedError::MissingDims(_))
        ));
        let mut bad = BTreeMap::new();
        bad.insert("A".to_string(), vec![4, 4]);
        bad.insert("B".to_string(), vec![4, 8]);
        bad.insert("C".to_string(), vec![4, 4]);
        assert!(matches!(
            enumerate_candidates("A(i,j) = B(i,k) * C(k,j)", &bad, 4, &opts),
            Err(AutoschedError::InconsistentExtents)
        ));
    }
}
