//! Keyed plan reuse: [`PlanKey`], a bounded LRU [`PlanCache`], and its
//! concurrent sharded front [`ShardedPlanCache`].
//!
//! Serving workloads compile the *same* (statement, shapes + formats,
//! machine, schedule) bundle over and over with fresh operand values.
//! Because [`Plan`]s are data-independent, one lowering can serve every
//! such request: the cache canonicalizes the compile-relevant inputs into
//! a [`PlanKey`], hands back a shared `Arc<dyn Plan>` on a hit, and
//! plans-and-inserts on a miss. Hit/miss/eviction statistics are
//! surfaced through [`CacheStats`], which [`PlanCache::annotate`]
//! attaches to any [`Report`].
//!
//! # What a key covers
//!
//! A [`PlanKey`] hashes exactly the inputs lowering depends on — and
//! nothing the data may vary: the backend's name *and* configuration
//! fingerprint ([`Backend::config_fingerprint`]: mode, compile options,
//! collective configuration, cost-model parameters), the statement text,
//! every tensor's name/shape/format, the machine spec and grid
//! hierarchy, and the schedule's stable [`Display`](std::fmt::Display)
//! form. Two problems differing only in initializers (values, seeds,
//! densities) share a key; anything that changes the plan — including
//! reconfiguring the backend — changes the key.

use crate::backend::{Backend, BackendError};
use crate::plan::Plan;
use crate::problem::Problem;
use crate::report::Report;
use crate::schedule::Schedule;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A canonical, stable identity for one compilation: the backend, the
/// statement, the tensors (shape, level formats, distribution, memory),
/// the machine (spec, grid hierarchy, processor kind), and the
/// schedule's stable `Display` form. Equality is exact (the full
/// canonical text is kept); the 64-bit FNV-1a digest only accelerates
/// hashing.
#[derive(Clone, Debug, Eq)]
pub struct PlanKey {
    canonical: String,
    digest: u64,
}

impl PlanKey {
    /// The key of compiling `problem` with `schedule` on `backend` —
    /// covering both the backend's name and its configuration
    /// fingerprint, so differently-configured instances of one backend
    /// never collide.
    pub fn new(backend: &dyn Backend, problem: &Problem, schedule: &Schedule) -> Self {
        let mut c = String::new();
        let _ = write!(
            c,
            "backend={}[{}];stmt=",
            backend.name(),
            backend.config_fingerprint()
        );
        match problem.assignment() {
            Some(a) => {
                let _ = write!(c, "{a}");
            }
            None => c.push_str("<none>"),
        }
        c.push_str(";tensors=");
        for (name, spec) in problem.tensors() {
            let _ = write!(c, "{name}:{:?}:", spec.dims);
            // Normalize levels to one character per dimension: an empty
            // `levels` vector and an explicit all-dense one describe the
            // same storage, so they must share a key.
            for d in 0..spec.dims.len() {
                c.push(match spec.format.level(d) {
                    distal_format::LevelFormat::Dense => 'd',
                    distal_format::LevelFormat::Compressed => 's',
                });
            }
            let _ = write!(c, ":{:?}:[", spec.format.mem);
            for d in &spec.format.distributions {
                let _ = write!(c, "{d},");
            }
            c.push_str("];");
        }
        let machine = problem.machine();
        let _ = write!(c, "machine=proc:{:?};levels:", machine.proc_kind);
        for level in machine.hierarchy.levels() {
            let _ = write!(c, "{:?},", level.dims());
        }
        // The physical model prices plans (model mode, α-β inputs), so it
        // is compile-relevant; Debug covers every field.
        let _ = write!(c, ";spec={:?}", problem.spec());
        let _ = write!(c, ";schedule={schedule}");
        let digest = fnv1a(c.as_bytes());
        PlanKey {
            canonical: c,
            digest,
        }
    }

    /// The full canonical text (diagnostics; equality is defined on it).
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The 64-bit FNV-1a digest of the canonical text — stable across
    /// processes and toolchains (unlike `DefaultHasher`).
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

impl PartialEq for PlanKey {
    fn eq(&self, other: &Self) -> bool {
        self.digest == other.digest && self.canonical == other.canonical
    }
}

impl Hash for PlanKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.digest);
    }
}

impl fmt::Display for PlanKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan:{:016x}", self.digest)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hit/miss/eviction counters of a [`PlanCache`] or
/// [`ShardedPlanCache`], surfaced in [`Report::cache`].
///
/// A snapshot is *coherent*: `hits + misses == requests()` always holds,
/// even when taken from a [`ShardedPlanCache`] under concurrent traffic
/// (counters there are atomics, but snapshots are validated — a torn
/// read is never returned).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that reused a cached plan.
    pub hits: u64,
    /// Lookups that planned fresh and inserted the result. Lookups whose
    /// planning *failed* count in neither bucket — nothing was cached,
    /// and retrying the same failing key should not depress the hit
    /// rate.
    pub misses: u64,
    /// Plans dropped to respect the capacity bound.
    pub evictions: u64,
    /// Plans currently cached.
    pub len: usize,
    /// Capacity bound.
    pub capacity: usize,
    /// Counted lookups (`hits + misses`); kept as its own tracked counter
    /// so concurrent snapshots can be *validated* against it rather than
    /// recomputed from possibly-torn parts.
    requests: u64,
}

impl CacheStats {
    /// Counted lookups. Failed plannings count in neither bucket, so this
    /// equals `hits + misses` in every coherent snapshot.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Hits per lookup (0.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.hits as f64 / self.requests as f64
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses / {} evictions over {} requests ({}/{} cached, {:.0}% hit rate)",
            self.hits,
            self.misses,
            self.evictions,
            self.requests,
            self.len,
            self.capacity,
            self.hit_rate() * 100.0
        )
    }
}

#[derive(Clone)]
struct Entry {
    plan: Arc<dyn Plan>,
    last_used: u64,
}

/// A bounded LRU cache of [`Plan`]s keyed by [`PlanKey`].
///
/// The cache owns no backend: [`PlanCache::get_or_plan`] takes the
/// backend per call, so one cache can serve plans for several targets
/// (keys embed the backend name, so they never collide).
#[derive(Clone)]
pub struct PlanCache {
    entries: HashMap<PlanKey, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    requests: u64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            requests: 0,
        }
    }

    /// The plan for (backend, problem, schedule): cached if present,
    /// freshly planned and inserted otherwise. This is the serving front
    /// door — on a hit, zero schedule-application or lowering work runs.
    ///
    /// # Errors
    ///
    /// Propagates [`Backend::plan`] errors; nothing is inserted then and
    /// neither counter moves (a plan-failing key retried N times is N
    /// errors, not N misses).
    pub fn get_or_plan(
        &mut self,
        backend: &dyn Backend,
        problem: &Problem,
        schedule: &Schedule,
    ) -> Result<Arc<dyn Plan>, BackendError> {
        let key = PlanKey::new(backend, problem, schedule);
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(&key) {
            e.last_used = tick;
            self.hits += 1;
            self.requests += 1;
            return Ok(Arc::clone(&e.plan));
        }
        let plan: Arc<dyn Plan> = Arc::from(backend.plan(problem, schedule)?);
        self.misses += 1;
        self.requests += 1;
        self.insert_entry(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// Looks up a key without planning on miss. A found plan counts as a
    /// hit (a not-found key counts nothing — the caller may or may not
    /// go on to plan it).
    pub fn get(&mut self, key: &PlanKey) -> Option<Arc<dyn Plan>> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.entries.get_mut(key)?;
        e.last_used = tick;
        self.hits += 1;
        self.requests += 1;
        Some(Arc::clone(&e.plan))
    }

    /// Inserts a plan under a key (evicting the least-recently-used entry
    /// when full). Does not touch the hit/miss counters.
    pub fn insert(&mut self, key: PlanKey, plan: Arc<dyn Plan>) {
        self.tick += 1;
        self.insert_entry(key, plan);
    }

    /// Records a successful out-of-band planning: counts the miss and
    /// inserts the plan. With [`PlanCache::get`], this is the
    /// lock-friendly split of [`PlanCache::get_or_plan`] — look up under
    /// the lock, plan *outside* it, then record — so concurrent callers
    /// never serialize on each other's lowering.
    pub fn insert_planned(&mut self, key: PlanKey, plan: Arc<dyn Plan>) {
        self.misses += 1;
        self.requests += 1;
        self.insert(key, plan);
    }

    fn insert_entry(&mut self, key: PlanKey, plan: Arc<dyn Plan>) {
        let tick = self.tick;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                plan,
                last_used: tick,
            },
        );
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.entries.len(),
            capacity: self.capacity,
            requests: self.requests,
        }
    }

    /// Attaches the cache's counters to a report
    /// ([`Report::cache`]).
    pub fn annotate(&self, report: &mut Report) {
        report.cache = Some(self.stats());
    }

    /// Plans currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every cached plan (counters keep accumulating).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanCache")
            .field("stats", &self.stats())
            .finish()
    }
}

/// One in-flight planning: the leader publishes its result here and
/// followers block on the condvar instead of re-running `Backend::plan`.
struct Flight {
    result: Mutex<Option<Result<Arc<dyn Plan>, BackendError>>>,
    ready: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, result: Result<Arc<dyn Plan>, BackendError>) {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(result);
        }
        drop(slot);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Arc<dyn Plan>, BackendError> {
        let mut slot = self.result.lock().expect("poisoned flight slot");
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.ready.wait(slot).expect("poisoned flight slot");
        }
    }
}

struct Shard {
    lru: PlanCache,
    inflight: HashMap<PlanKey, Arc<Flight>>,
}

/// A concurrent, sharded front of [`PlanCache`] for serving traffic.
///
/// Keys land on one of N shards by [`PlanKey::digest`]; each shard is an
/// independent bounded-LRU [`PlanCache`] behind its own mutex, so
/// lookups of unrelated keys never contend. Global counters are atomics
/// but every update happens while a shard lock is held, which makes a
/// *coherent* snapshot possible (see [`ShardedPlanCache::stats`]).
///
/// # Single-flight
///
/// A miss stampede — many threads asking for the same cold key — runs
/// [`Backend::plan`] exactly once: the first thread in (the *leader*)
/// registers an in-flight entry and plans **outside** the shard lock;
/// everyone else arriving before the plan lands waits on that entry and
/// receives the shared `Arc<dyn Plan>` (or the leader's error, cloned).
/// The leader's lookup counts the one miss; followers count hits, so
/// after a cold stampede `misses` equals the number of *distinct* keys
/// requested, regardless of thread count.
pub struct ShardedPlanCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    requests: AtomicU64,
    len: AtomicU64,
    /// Bumped (under a shard lock) after every counter update; lets
    /// `stats` detect a snapshot raced by a concurrent update.
    version: AtomicU64,
    per_shard_capacity: usize,
}

impl ShardedPlanCache {
    /// A cache of `shards` independent LRU shards (minimum 1) holding at
    /// most `capacity` plans in total. The per-shard bound is
    /// `ceil(capacity / shards)`, so the enforced total —
    /// [`CacheStats::capacity`] — is `shards * ceil(capacity / shards)`,
    /// which may round up slightly from the requested figure.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.max(1).div_ceil(shards);
        ShardedPlanCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        lru: PlanCache::new(per_shard_capacity),
                        inflight: HashMap::new(),
                    })
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            len: AtomicU64::new(0),
            version: AtomicU64::new(0),
            per_shard_capacity,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity actually enforced (`shards * per-shard bound`).
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    fn shard_of(&self, key: &PlanKey) -> &Mutex<Shard> {
        &self.shards[(key.digest() % self.shards.len() as u64) as usize]
    }

    /// Records counter deltas. Callers must hold the owning shard's lock
    /// — that discipline is what makes the lock-all fallback in `stats`
    /// a true quiescent point.
    fn record(&self, hits: u64, misses: u64, evictions: u64, len_delta: i64) {
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(misses, Ordering::Relaxed);
        self.evictions.fetch_add(evictions, Ordering::Relaxed);
        self.requests.fetch_add(hits + misses, Ordering::Relaxed);
        if len_delta >= 0 {
            self.len.fetch_add(len_delta as u64, Ordering::Relaxed);
        } else {
            self.len
                .fetch_sub(len_delta.unsigned_abs(), Ordering::Relaxed);
        }
        self.version.fetch_add(1, Ordering::Release);
    }

    /// The plan for (backend, problem, schedule): cached if present,
    /// planned once otherwise — even under a stampede (see the type-level
    /// docs). Lock-hold discipline matches
    /// [`PlanCache::get`]/[`PlanCache::insert_planned`]: the shard lock
    /// covers only lookup and bookkeeping, never `Backend::plan`.
    ///
    /// # Errors
    ///
    /// Propagates [`Backend::plan`] errors (followers of a failed flight
    /// receive a clone). Nothing is inserted and no counter moves, same
    /// as [`PlanCache::get_or_plan`].
    pub fn get_or_plan(
        &self,
        backend: &dyn Backend,
        problem: &Problem,
        schedule: &Schedule,
    ) -> Result<Arc<dyn Plan>, BackendError> {
        let key = PlanKey::new(backend, problem, schedule);
        self.get_or_plan_keyed(&key, || backend.plan(problem, schedule).map(Arc::from))
    }

    /// [`ShardedPlanCache::get_or_plan`] with a caller-computed key and
    /// planning closure — the serving engine's entry point, where the key
    /// is computed once at admission and reused across a batch.
    pub fn get_or_plan_keyed(
        &self,
        key: &PlanKey,
        plan: impl FnOnce() -> Result<Arc<dyn Plan>, BackendError>,
    ) -> Result<Arc<dyn Plan>, BackendError> {
        let shard = self.shard_of(key);
        let flight = {
            let mut s = shard.lock().expect("poisoned cache shard");
            if let Some(found) = s.lru.get(key) {
                self.record(1, 0, 0, 0);
                return Ok(found);
            }
            match s.inflight.get(key) {
                Some(flight) => Arc::clone(flight), // follower: wait below
                None => {
                    // Leader: register the flight, then plan with the
                    // shard unlocked so other keys keep flowing.
                    let flight = Arc::new(Flight::new());
                    s.inflight.insert(key.clone(), Arc::clone(&flight));
                    drop(s);
                    let mut guard = FlightGuard {
                        cache: self,
                        shard,
                        key,
                        flight: &flight,
                        landed: false,
                    };
                    let result: Result<Arc<dyn Plan>, BackendError> = plan();
                    guard.land(result.clone());
                    return result;
                }
            }
        };
        let result = flight.wait()?;
        // The flight succeeded; this lookup is a hit on the shared plan.
        let _s = shard.lock().expect("poisoned cache shard");
        self.record(1, 0, 0, 0);
        Ok(result)
    }

    /// A coherent snapshot of the counters: `hits + misses ==
    /// requests()`, always. Atomics are read optimistically and validated
    /// against the version counter (retrying on a detected race); under
    /// pathological contention it falls back to locking every shard,
    /// which quiesces updates entirely.
    pub fn stats(&self) -> CacheStats {
        for _ in 0..64 {
            let v1 = self.version.load(Ordering::Acquire);
            let snapshot = CacheStats {
                hits: self.hits.load(Ordering::Relaxed),
                misses: self.misses.load(Ordering::Relaxed),
                evictions: self.evictions.load(Ordering::Relaxed),
                len: self.len.load(Ordering::Relaxed) as usize,
                capacity: self.capacity(),
                requests: self.requests.load(Ordering::Relaxed),
            };
            let v2 = self.version.load(Ordering::Acquire);
            if v1 == v2 && snapshot.hits + snapshot.misses == snapshot.requests {
                return snapshot;
            }
        }
        // Quiesce: counter updates only happen under shard locks, so
        // holding all of them makes the atomics momentarily stable.
        let _guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("poisoned cache shard"))
            .collect();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.len.load(Ordering::Relaxed) as usize,
            capacity: self.capacity(),
            requests: self.requests.load(Ordering::Relaxed),
        }
    }

    /// Attaches a coherent stats snapshot to a report ([`Report::cache`]).
    pub fn annotate(&self, report: &mut Report) {
        report.cache = Some(self.stats());
    }

    /// Plans currently cached across all shards.
    pub fn len(&self) -> usize {
        self.stats().len
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (counters keep accumulating). In-flight
    /// plannings are unaffected and will insert on landing.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().expect("poisoned cache shard");
            let dropped = s.lru.len() as i64;
            s.lru.clear();
            self.record(0, 0, 0, -dropped);
        }
    }
}

impl fmt::Debug for ShardedPlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedPlanCache")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Publishes the leader's planning result exactly once — including when
/// the planning closure panics, so followers see an error instead of
/// blocking forever on a flight nobody will land.
struct FlightGuard<'a> {
    cache: &'a ShardedPlanCache,
    shard: &'a Mutex<Shard>,
    key: &'a PlanKey,
    flight: &'a Arc<Flight>,
    landed: bool,
}

impl FlightGuard<'_> {
    fn land(&mut self, result: Result<Arc<dyn Plan>, BackendError>) {
        self.landed = true;
        let mut s = self.shard.lock().expect("poisoned cache shard");
        s.inflight.remove(self.key);
        if let Ok(plan) = &result {
            let before = s.lru.stats();
            s.lru.insert_planned(self.key.clone(), Arc::clone(plan));
            let after = s.lru.stats();
            self.cache.record(
                0,
                1,
                after.evictions - before.evictions,
                after.len as i64 - before.len as i64,
            );
        }
        drop(s);
        self.flight.publish(result);
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.landed {
            return;
        }
        // The planning closure panicked. Unregister the flight and fail
        // the followers; counters stay untouched, as for any failed plan.
        if let Ok(mut s) = self.shard.lock() {
            s.inflight.remove(self.key);
        }
        self.flight.publish(Err(BackendError::Backend(
            "planning panicked mid-flight".to_string(),
        )));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RuntimeBackend;
    use crate::machine::DistalMachine;
    use crate::plan::Bindings;
    use crate::session::TensorSpec;
    use distal_format::Format;
    use distal_machine::grid::Grid;
    use distal_machine::spec::{MachineSpec, MemKind, ProcKind};

    fn problem(n: i64) -> Problem {
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        let mut p = Problem::new(MachineSpec::small(2), machine);
        p.statement("A(i,j) = B(i,k) * C(k,j)").unwrap();
        let f = Format::parse("xy->xy", MemKind::Sys).unwrap();
        for t in ["A", "B", "C"] {
            p.tensor(TensorSpec::new(t, vec![n, n], f.clone())).unwrap();
        }
        p
    }

    #[test]
    fn keys_ignore_data_but_see_compile_inputs() {
        let mut p1 = problem(8);
        let mut p2 = problem(8);
        p1.fill_random("B", 1).unwrap();
        p2.fill_random("B", 999).unwrap(); // data only — same key
        let s = Schedule::summa(2, 2, 4);
        let functional = RuntimeBackend::functional();
        assert_eq!(
            PlanKey::new(&functional, &p1, &s),
            PlanKey::new(&functional, &p2, &s)
        );
        // Shapes, schedules, and backend configuration all split keys.
        let p3 = problem(16);
        assert_ne!(
            PlanKey::new(&functional, &p1, &s),
            PlanKey::new(&functional, &p3, &s)
        );
        let s2 = Schedule::summa(2, 2, 8);
        assert_ne!(
            PlanKey::new(&functional, &p1, &s),
            PlanKey::new(&functional, &p1, &s2)
        );
        // Same backend name, different configuration: a model-mode plan
        // must never be served to a functional caller (or vice versa).
        assert_ne!(
            PlanKey::new(&functional, &p1, &s),
            PlanKey::new(&RuntimeBackend::model(), &p1, &s)
        );
    }

    #[test]
    fn cache_hits_and_serves_bindable_plans() {
        let p = problem(8);
        let s = Schedule::summa(2, 2, 4);
        let backend = RuntimeBackend::functional();
        let mut cache = PlanCache::new(4);
        let plan1 = cache.get_or_plan(&backend, &p, &s).unwrap();
        let plan2 = cache.get_or_plan(&backend, &p, &s).unwrap();
        assert!(Arc::ptr_eq(&plan1, &plan2));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);

        let mut b = Bindings::new();
        b.fill_random("B", 1).fill_random("C", 2);
        let mut inst = plan2.bind(&b).unwrap();
        inst.run().unwrap();
        assert_eq!(inst.read("A").unwrap().len(), 64);

        let mut report = Report::empty("runtime", crate::report::Provenance::Measured);
        cache.annotate(&mut report);
        assert_eq!(report.cache.unwrap().hits, 1);
    }

    #[test]
    fn equivalent_dense_level_spellings_share_a_key() {
        // `levels: []` and an explicit all-dense string describe the
        // same storage; the key must not split them.
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        let mut implicit = Problem::new(MachineSpec::small(2), machine.clone());
        let mut explicit = Problem::new(MachineSpec::small(2), machine);
        for p in [&mut implicit, &mut explicit] {
            p.statement("A(i,j) = B(i,k) * C(k,j)").unwrap();
        }
        let bare = Format::parse("xy->xy", MemKind::Sys).unwrap();
        let spelled = distal_format::Format::parse_levels("xy->xy", "dd", MemKind::Sys).unwrap();
        for t in ["A", "B", "C"] {
            implicit
                .tensor(TensorSpec::new(t, vec![8, 8], bare.clone()))
                .unwrap();
            explicit
                .tensor(TensorSpec::new(t, vec![8, 8], spelled.clone()))
                .unwrap();
        }
        let s = Schedule::summa(2, 2, 4);
        let backend = RuntimeBackend::functional();
        assert_eq!(
            PlanKey::new(&backend, &implicit, &s),
            PlanKey::new(&backend, &explicit, &s)
        );
        // A genuinely compressed level still splits the key.
        let mut compressed = implicit.clone();
        let ds = distal_format::Format::parse_levels("xy->xy", "ds", MemKind::Sys).unwrap();
        compressed
            .tensor(TensorSpec::new("B", vec![8, 8], ds))
            .unwrap();
        assert_ne!(
            PlanKey::new(&backend, &implicit, &s),
            PlanKey::new(&backend, &compressed, &s)
        );
    }

    #[test]
    fn failed_plans_move_no_counters_and_cache_nothing() {
        // No statement -> RuntimeBackend::plan errors. Retrying must not
        // inflate misses or depress the hit rate.
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        let broken = Problem::new(MachineSpec::small(2), machine);
        let backend = RuntimeBackend::functional();
        let mut cache = PlanCache::new(4);
        let s = Schedule::summa(2, 2, 4);
        for _ in 0..3 {
            assert!(cache.get_or_plan(&backend, &broken, &s).is_err());
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (0, 0, 0));
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn lru_evicts_oldest() {
        let backend = RuntimeBackend::model();
        let mut cache = PlanCache::new(2);
        let s4 = Schedule::summa(2, 2, 4);
        let s8 = Schedule::summa(2, 2, 8);
        let s2 = Schedule::summa(2, 2, 2);
        let p = problem(16);
        cache.get_or_plan(&backend, &p, &s4).unwrap();
        cache.get_or_plan(&backend, &p, &s8).unwrap();
        // Touch s4 so s8 is the LRU victim.
        cache.get_or_plan(&backend, &p, &s4).unwrap();
        cache.get_or_plan(&backend, &p, &s2).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&PlanKey::new(&backend, &p, &s4)).is_some());
        assert!(cache.get(&PlanKey::new(&backend, &p, &s8)).is_none());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn requests_counts_hits_plus_misses_never_failures() {
        let backend = RuntimeBackend::model();
        let mut cache = PlanCache::new(4);
        let p = problem(8);
        let s = Schedule::summa(2, 2, 4);
        cache.get_or_plan(&backend, &p, &s).unwrap(); // miss
        cache.get_or_plan(&backend, &p, &s).unwrap(); // hit
        cache.get(&PlanKey::new(&backend, &p, &s)).unwrap(); // hit
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        let broken = Problem::new(MachineSpec::small(2), machine);
        assert!(cache.get_or_plan(&backend, &broken, &s).is_err());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.requests()), (2, 1, 3));
        assert_eq!(stats.hits + stats.misses, stats.requests());
    }

    #[test]
    fn sharded_stampede_one_key_plans_exactly_once() {
        use std::sync::Barrier;
        const THREADS: usize = 16;
        let cache = ShardedPlanCache::new(8, 4);
        let backend = RuntimeBackend::functional();
        let p = problem(8);
        let s = Schedule::summa(2, 2, 4);
        let barrier = Barrier::new(THREADS);
        // `compile_count` is thread-local: summing each thread's delta
        // across the stampede counts every lowering wherever it ran.
        let lowered: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    scope.spawn(|| {
                        let before = crate::lower::compile_count();
                        barrier.wait();
                        let plan = cache.get_or_plan(&backend, &p, &s).unwrap();
                        assert_eq!(plan.backend(), "runtime");
                        crate::lower::compile_count() - before
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(lowered, 1, "single-flight must lower exactly once");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "misses == distinct keys");
        assert_eq!(stats.hits, THREADS as u64 - 1);
        assert_eq!(stats.requests(), THREADS as u64);
        assert_eq!(stats.hits + stats.misses, stats.requests());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn sharded_eviction_stays_bounded_under_concurrent_insert() {
        let cache = ShardedPlanCache::new(4, 2);
        let backend = RuntimeBackend::model();
        let p = problem(16);
        // 12 distinct keys (chunk sizes) racing into a 2-shard cache that
        // holds 4 plans total.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = &cache;
                let backend = &backend;
                let p = &p;
                scope.spawn(move || {
                    for chunk in 1..=12 {
                        let s = Schedule::summa(2, 2, chunk);
                        cache.get_or_plan(backend, p, &s).unwrap();
                    }
                });
            }
        });
        let stats = cache.stats();
        assert!(stats.len <= cache.capacity());
        assert_eq!(stats.len, cache.len());
        assert_eq!(stats.hits + stats.misses, stats.requests());
        assert_eq!(stats.requests(), 48);
        // Every miss either still sits in the cache or was evicted.
        assert_eq!(stats.misses, stats.evictions + stats.len as u64);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, stats.evictions);
    }

    #[test]
    fn sharded_failed_plans_fail_followers_and_count_nothing() {
        use std::sync::Barrier;
        const THREADS: usize = 8;
        let cache = ShardedPlanCache::new(4, 2);
        let backend = RuntimeBackend::functional();
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        let broken = Problem::new(MachineSpec::small(2), machine);
        let s = Schedule::summa(2, 2, 4);
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let cache = &cache;
                let backend = &backend;
                let broken = &broken;
                let s = &s;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    assert!(cache.get_or_plan(backend, broken, s).is_err());
                });
            }
        });
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.requests()), (0, 0, 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn sharded_stats_snapshots_stay_coherent_under_load() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let cache = ShardedPlanCache::new(4, 4);
        let backend = RuntimeBackend::model();
        let p = problem(8);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for t in 0..2 {
                let cache = &cache;
                let backend = &backend;
                let p = &p;
                let stop = &stop;
                scope.spawn(move || {
                    let mut chunk = 1 + t;
                    while !stop.load(Ordering::Relaxed) {
                        let s = Schedule::summa(2, 2, chunk);
                        cache.get_or_plan(backend, p, &s).unwrap();
                        chunk = chunk % 8 + 1;
                    }
                });
            }
            for _ in 0..200 {
                let stats = cache.stats();
                assert_eq!(
                    stats.hits + stats.misses,
                    stats.requests(),
                    "torn stats snapshot: {stats:?}"
                );
            }
            stop.store(true, Ordering::Relaxed);
        });
    }
}
