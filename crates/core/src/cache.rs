//! Keyed plan reuse: [`PlanKey`] + a bounded LRU [`PlanCache`].
//!
//! Serving workloads compile the *same* (statement, shapes + formats,
//! machine, schedule) bundle over and over with fresh operand values.
//! Because [`Plan`]s are data-independent, one lowering can serve every
//! such request: the cache canonicalizes the compile-relevant inputs into
//! a [`PlanKey`], hands back a shared `Arc<dyn Plan>` on a hit, and
//! plans-and-inserts on a miss. Hit/miss/eviction statistics are
//! surfaced through [`CacheStats`], which [`PlanCache::annotate`]
//! attaches to any [`Report`].
//!
//! # What a key covers
//!
//! A [`PlanKey`] hashes exactly the inputs lowering depends on — and
//! nothing the data may vary: the backend's name *and* configuration
//! fingerprint ([`Backend::config_fingerprint`]: mode, compile options,
//! collective configuration, cost-model parameters), the statement text,
//! every tensor's name/shape/format, the machine spec and grid
//! hierarchy, and the schedule's stable [`Display`](std::fmt::Display)
//! form. Two problems differing only in initializers (values, seeds,
//! densities) share a key; anything that changes the plan — including
//! reconfiguring the backend — changes the key.

use crate::backend::{Backend, BackendError};
use crate::plan::Plan;
use crate::problem::Problem;
use crate::report::Report;
use crate::schedule::Schedule;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A canonical, stable identity for one compilation: the backend, the
/// statement, the tensors (shape, level formats, distribution, memory),
/// the machine (spec, grid hierarchy, processor kind), and the
/// schedule's stable `Display` form. Equality is exact (the full
/// canonical text is kept); the 64-bit FNV-1a digest only accelerates
/// hashing.
#[derive(Clone, Debug, Eq)]
pub struct PlanKey {
    canonical: String,
    digest: u64,
}

impl PlanKey {
    /// The key of compiling `problem` with `schedule` on `backend` —
    /// covering both the backend's name and its configuration
    /// fingerprint, so differently-configured instances of one backend
    /// never collide.
    pub fn new(backend: &dyn Backend, problem: &Problem, schedule: &Schedule) -> Self {
        let mut c = String::new();
        let _ = write!(
            c,
            "backend={}[{}];stmt=",
            backend.name(),
            backend.config_fingerprint()
        );
        match problem.assignment() {
            Some(a) => {
                let _ = write!(c, "{a}");
            }
            None => c.push_str("<none>"),
        }
        c.push_str(";tensors=");
        for (name, spec) in problem.tensors() {
            let _ = write!(c, "{name}:{:?}:", spec.dims);
            // Normalize levels to one character per dimension: an empty
            // `levels` vector and an explicit all-dense one describe the
            // same storage, so they must share a key.
            for d in 0..spec.dims.len() {
                c.push(match spec.format.level(d) {
                    distal_format::LevelFormat::Dense => 'd',
                    distal_format::LevelFormat::Compressed => 's',
                });
            }
            let _ = write!(c, ":{:?}:[", spec.format.mem);
            for d in &spec.format.distributions {
                let _ = write!(c, "{d},");
            }
            c.push_str("];");
        }
        let machine = problem.machine();
        let _ = write!(c, "machine=proc:{:?};levels:", machine.proc_kind);
        for level in machine.hierarchy.levels() {
            let _ = write!(c, "{:?},", level.dims());
        }
        // The physical model prices plans (model mode, α-β inputs), so it
        // is compile-relevant; Debug covers every field.
        let _ = write!(c, ";spec={:?}", problem.spec());
        let _ = write!(c, ";schedule={schedule}");
        let digest = fnv1a(c.as_bytes());
        PlanKey {
            canonical: c,
            digest,
        }
    }

    /// The full canonical text (diagnostics; equality is defined on it).
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The 64-bit FNV-1a digest of the canonical text — stable across
    /// processes and toolchains (unlike `DefaultHasher`).
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

impl PartialEq for PlanKey {
    fn eq(&self, other: &Self) -> bool {
        self.digest == other.digest && self.canonical == other.canonical
    }
}

impl Hash for PlanKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.digest);
    }
}

impl fmt::Display for PlanKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan:{:016x}", self.digest)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hit/miss/eviction counters of a [`PlanCache`], surfaced in
/// [`Report::cache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that reused a cached plan.
    pub hits: u64,
    /// Lookups that planned fresh and inserted the result. Lookups whose
    /// planning *failed* count in neither bucket — nothing was cached,
    /// and retrying the same failing key should not depress the hit
    /// rate.
    pub misses: u64,
    /// Plans dropped to respect the capacity bound.
    pub evictions: u64,
    /// Plans currently cached.
    pub len: usize,
    /// Capacity bound.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits per lookup (0.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses / {} evictions ({}/{} cached, {:.0}% hit rate)",
            self.hits,
            self.misses,
            self.evictions,
            self.len,
            self.capacity,
            self.hit_rate() * 100.0
        )
    }
}

#[derive(Clone)]
struct Entry {
    plan: Arc<dyn Plan>,
    last_used: u64,
}

/// A bounded LRU cache of [`Plan`]s keyed by [`PlanKey`].
///
/// The cache owns no backend: [`PlanCache::get_or_plan`] takes the
/// backend per call, so one cache can serve plans for several targets
/// (keys embed the backend name, so they never collide).
#[derive(Clone)]
pub struct PlanCache {
    entries: HashMap<PlanKey, Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The plan for (backend, problem, schedule): cached if present,
    /// freshly planned and inserted otherwise. This is the serving front
    /// door — on a hit, zero schedule-application or lowering work runs.
    ///
    /// # Errors
    ///
    /// Propagates [`Backend::plan`] errors; nothing is inserted then and
    /// neither counter moves (a plan-failing key retried N times is N
    /// errors, not N misses).
    pub fn get_or_plan(
        &mut self,
        backend: &dyn Backend,
        problem: &Problem,
        schedule: &Schedule,
    ) -> Result<Arc<dyn Plan>, BackendError> {
        let key = PlanKey::new(backend, problem, schedule);
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(&key) {
            e.last_used = tick;
            self.hits += 1;
            return Ok(Arc::clone(&e.plan));
        }
        let plan: Arc<dyn Plan> = Arc::from(backend.plan(problem, schedule)?);
        self.misses += 1;
        self.insert_entry(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// Looks up a key without planning on miss. A found plan counts as a
    /// hit (a not-found key counts nothing — the caller may or may not
    /// go on to plan it).
    pub fn get(&mut self, key: &PlanKey) -> Option<Arc<dyn Plan>> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.entries.get_mut(key)?;
        e.last_used = tick;
        self.hits += 1;
        Some(Arc::clone(&e.plan))
    }

    /// Inserts a plan under a key (evicting the least-recently-used entry
    /// when full). Does not touch the hit/miss counters.
    pub fn insert(&mut self, key: PlanKey, plan: Arc<dyn Plan>) {
        self.tick += 1;
        self.insert_entry(key, plan);
    }

    /// Records a successful out-of-band planning: counts the miss and
    /// inserts the plan. With [`PlanCache::get`], this is the
    /// lock-friendly split of [`PlanCache::get_or_plan`] — look up under
    /// the lock, plan *outside* it, then record — so concurrent callers
    /// never serialize on each other's lowering.
    pub fn insert_planned(&mut self, key: PlanKey, plan: Arc<dyn Plan>) {
        self.misses += 1;
        self.insert(key, plan);
    }

    fn insert_entry(&mut self, key: PlanKey, plan: Arc<dyn Plan>) {
        let tick = self.tick;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(lru) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                plan,
                last_used: tick,
            },
        );
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            len: self.entries.len(),
            capacity: self.capacity,
        }
    }

    /// Attaches the cache's counters to a report
    /// ([`Report::cache`]).
    pub fn annotate(&self, report: &mut Report) {
        report.cache = Some(self.stats());
    }

    /// Plans currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every cached plan (counters keep accumulating).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanCache")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RuntimeBackend;
    use crate::machine::DistalMachine;
    use crate::plan::Bindings;
    use crate::session::TensorSpec;
    use distal_format::Format;
    use distal_machine::grid::Grid;
    use distal_machine::spec::{MachineSpec, MemKind, ProcKind};

    fn problem(n: i64) -> Problem {
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        let mut p = Problem::new(MachineSpec::small(2), machine);
        p.statement("A(i,j) = B(i,k) * C(k,j)").unwrap();
        let f = Format::parse("xy->xy", MemKind::Sys).unwrap();
        for t in ["A", "B", "C"] {
            p.tensor(TensorSpec::new(t, vec![n, n], f.clone())).unwrap();
        }
        p
    }

    #[test]
    fn keys_ignore_data_but_see_compile_inputs() {
        let mut p1 = problem(8);
        let mut p2 = problem(8);
        p1.fill_random("B", 1).unwrap();
        p2.fill_random("B", 999).unwrap(); // data only — same key
        let s = Schedule::summa(2, 2, 4);
        let functional = RuntimeBackend::functional();
        assert_eq!(
            PlanKey::new(&functional, &p1, &s),
            PlanKey::new(&functional, &p2, &s)
        );
        // Shapes, schedules, and backend configuration all split keys.
        let p3 = problem(16);
        assert_ne!(
            PlanKey::new(&functional, &p1, &s),
            PlanKey::new(&functional, &p3, &s)
        );
        let s2 = Schedule::summa(2, 2, 8);
        assert_ne!(
            PlanKey::new(&functional, &p1, &s),
            PlanKey::new(&functional, &p1, &s2)
        );
        // Same backend name, different configuration: a model-mode plan
        // must never be served to a functional caller (or vice versa).
        assert_ne!(
            PlanKey::new(&functional, &p1, &s),
            PlanKey::new(&RuntimeBackend::model(), &p1, &s)
        );
    }

    #[test]
    fn cache_hits_and_serves_bindable_plans() {
        let p = problem(8);
        let s = Schedule::summa(2, 2, 4);
        let backend = RuntimeBackend::functional();
        let mut cache = PlanCache::new(4);
        let plan1 = cache.get_or_plan(&backend, &p, &s).unwrap();
        let plan2 = cache.get_or_plan(&backend, &p, &s).unwrap();
        assert!(Arc::ptr_eq(&plan1, &plan2));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);

        let mut b = Bindings::new();
        b.fill_random("B", 1).fill_random("C", 2);
        let mut inst = plan2.bind(&b).unwrap();
        inst.run().unwrap();
        assert_eq!(inst.read("A").unwrap().len(), 64);

        let mut report = Report::empty("runtime", crate::report::Provenance::Measured);
        cache.annotate(&mut report);
        assert_eq!(report.cache.unwrap().hits, 1);
    }

    #[test]
    fn equivalent_dense_level_spellings_share_a_key() {
        // `levels: []` and an explicit all-dense string describe the
        // same storage; the key must not split them.
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        let mut implicit = Problem::new(MachineSpec::small(2), machine.clone());
        let mut explicit = Problem::new(MachineSpec::small(2), machine);
        for p in [&mut implicit, &mut explicit] {
            p.statement("A(i,j) = B(i,k) * C(k,j)").unwrap();
        }
        let bare = Format::parse("xy->xy", MemKind::Sys).unwrap();
        let spelled = distal_format::Format::parse_levels("xy->xy", "dd", MemKind::Sys).unwrap();
        for t in ["A", "B", "C"] {
            implicit
                .tensor(TensorSpec::new(t, vec![8, 8], bare.clone()))
                .unwrap();
            explicit
                .tensor(TensorSpec::new(t, vec![8, 8], spelled.clone()))
                .unwrap();
        }
        let s = Schedule::summa(2, 2, 4);
        let backend = RuntimeBackend::functional();
        assert_eq!(
            PlanKey::new(&backend, &implicit, &s),
            PlanKey::new(&backend, &explicit, &s)
        );
        // A genuinely compressed level still splits the key.
        let mut compressed = implicit.clone();
        let ds = distal_format::Format::parse_levels("xy->xy", "ds", MemKind::Sys).unwrap();
        compressed
            .tensor(TensorSpec::new("B", vec![8, 8], ds))
            .unwrap();
        assert_ne!(
            PlanKey::new(&backend, &implicit, &s),
            PlanKey::new(&backend, &compressed, &s)
        );
    }

    #[test]
    fn failed_plans_move_no_counters_and_cache_nothing() {
        // No statement -> RuntimeBackend::plan errors. Retrying must not
        // inflate misses or depress the hit rate.
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        let broken = Problem::new(MachineSpec::small(2), machine);
        let backend = RuntimeBackend::functional();
        let mut cache = PlanCache::new(4);
        let s = Schedule::summa(2, 2, 4);
        for _ in 0..3 {
            assert!(cache.get_or_plan(&backend, &broken, &s).is_err());
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (0, 0, 0));
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn lru_evicts_oldest() {
        let backend = RuntimeBackend::model();
        let mut cache = PlanCache::new(2);
        let s4 = Schedule::summa(2, 2, 4);
        let s8 = Schedule::summa(2, 2, 8);
        let s2 = Schedule::summa(2, 2, 2);
        let p = problem(16);
        cache.get_or_plan(&backend, &p, &s4).unwrap();
        cache.get_or_plan(&backend, &p, &s8).unwrap();
        // Touch s4 so s8 is the LRU victim.
        cache.get_or_plan(&backend, &p, &s4).unwrap();
        cache.get_or_plan(&backend, &p, &s2).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&PlanKey::new(&backend, &p, &s4)).is_some());
        assert!(cache.get(&PlanKey::new(&backend, &p, &s8)).is_none());
        cache.clear();
        assert!(cache.is_empty());
    }
}
