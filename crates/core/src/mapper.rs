//! The mapper: binding abstract grid points to physical processors and
//! memories.
//!
//! DISTAL interfaces with a custom Legion mapper that "places data and
//! computation onto memories and processors" (paper Figure 3, contribution
//! 3). Here the mapper assigns the abstract machine grid's points to
//! physical processors rank-by-rank (node-major, so that trailing grid
//! dimensions stay within a node — GPUs in one node are grid neighbours and
//! communicate over NVLink), and resolves the memory in which each task
//! wants its region requirements.

use crate::error::CompileError;
use crate::machine::DistalMachine;
use distal_machine::geom::Point;
use distal_machine::spec::{MemKind, ProcKind};
use distal_runtime::topology::{MemId, PhysicalMachine, ProcId};

/// Maps abstract machine grid points onto physical processors.
#[derive(Clone, Debug)]
pub struct GridMapper {
    procs: Vec<ProcId>,
    grid_dims: Vec<i64>,
    proc_kind: ProcKind,
    /// For each node, its socket-0 system memory (host staging for GPUs).
    node_sysmem: Vec<MemId>,
    fb_per_node: usize,
    local_mems: Vec<MemId>,
    nodes_of: Vec<usize>,
}

impl GridMapper {
    /// Builds a mapper for an abstract machine on a physical one.
    ///
    /// # Errors
    ///
    /// Fails when the abstract grid needs more processors of the requested
    /// kind than the physical machine has.
    pub fn new(machine: &DistalMachine, phys: &PhysicalMachine) -> Result<Self, CompileError> {
        let procs = phys.procs_of_kind(machine.proc_kind);
        let required = machine.size();
        if required > procs.len() as i64 {
            return Err(CompileError::GridTooLarge {
                required,
                available: procs.len() as i64,
            });
        }
        let node_sysmem = (0..phys.nodes())
            .map(|n| phys.proc(phys.cpu_proc(n, 0)).local_mem)
            .collect();
        let local_mems = procs.iter().map(|p| phys.proc(*p).local_mem).collect();
        let nodes_of = procs.iter().map(|p| phys.proc(*p).node).collect();
        Ok(GridMapper {
            procs,
            grid_dims: machine.grid().dims().to_vec(),
            proc_kind: machine.proc_kind,
            node_sysmem,
            fb_per_node: phys.spec.node.gpus,
            local_mems,
            nodes_of,
        })
    }

    /// The rank of an abstract grid point (row-major).
    pub fn rank(&self, point: &Point) -> i64 {
        let mut idx = 0;
        for (d, &e) in self.grid_dims.iter().enumerate() {
            idx = idx * e + point[d];
        }
        idx
    }

    /// Physical processor for an abstract grid point.
    pub fn proc_for(&self, point: &Point) -> ProcId {
        self.procs[self.rank(point) as usize]
    }

    /// Physical processor for a rank.
    pub fn proc_for_rank(&self, rank: i64) -> ProcId {
        self.procs[rank as usize]
    }

    /// The node hosting an abstract grid point.
    pub fn node_for(&self, point: &Point) -> usize {
        self.nodes_of[self.rank(point) as usize]
    }

    /// The memory in which a task on `proc` wants data of kind `kind`.
    ///
    /// GPUs asking for `Sys` memory get their node's host memory (the COSMA
    /// out-of-core staging pattern); CPUs asking for `Fb` fall back to their
    /// own system memory.
    pub fn mem_for(&self, rank: i64, kind: MemKind) -> MemId {
        let local = self.local_mems[rank as usize];
        match (self.proc_kind, kind) {
            (ProcKind::Gpu, MemKind::Fb) | (ProcKind::Cpu, MemKind::Sys) => local,
            (ProcKind::Gpu, _) => self.node_sysmem[self.nodes_of[rank as usize]],
            (ProcKind::Cpu, _) => local,
        }
    }

    /// Number of abstract processors in use.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True when the mapper controls no processors (never for valid grids).
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// GPUs per node of the underlying machine (for locality heuristics).
    pub fn fb_per_node(&self) -> usize {
        self.fb_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distal_machine::grid::Grid;
    use distal_machine::spec::MachineSpec;

    #[test]
    fn gpu_grid_maps_node_major() {
        // 2 nodes x 4 GPUs; 2x4 grid: row 0 = node 0, row 1 = node 1.
        let phys = PhysicalMachine::new(MachineSpec::lassen(2));
        let m = DistalMachine::flat(Grid::grid2(2, 4), ProcKind::Gpu);
        let mapper = GridMapper::new(&m, &phys).unwrap();
        assert_eq!(mapper.node_for(&Point::new(vec![0, 3])), 0);
        assert_eq!(mapper.node_for(&Point::new(vec![1, 0])), 1);
        let p = mapper.proc_for(&Point::new(vec![1, 2]));
        assert_eq!(phys.proc(p).kind, ProcKind::Gpu);
        assert_eq!(phys.proc(p).local_index, 2);
    }

    #[test]
    fn grid_too_large_rejected() {
        let phys = PhysicalMachine::new(MachineSpec::lassen(1));
        let m = DistalMachine::flat(Grid::grid2(4, 4), ProcKind::Gpu);
        assert!(matches!(
            GridMapper::new(&m, &phys),
            Err(CompileError::GridTooLarge {
                required: 16,
                available: 4
            })
        ));
    }

    #[test]
    fn memory_resolution() {
        let phys = PhysicalMachine::new(MachineSpec::lassen(1));
        let m = DistalMachine::flat(Grid::line(4), ProcKind::Gpu);
        let mapper = GridMapper::new(&m, &phys).unwrap();
        // FB request -> the GPU's framebuffer.
        let fb = mapper.mem_for(2, MemKind::Fb);
        assert_eq!(phys.mem(fb).kind, MemKind::Fb);
        // Sys request from a GPU -> the node's host memory.
        let sys = mapper.mem_for(2, MemKind::Sys);
        assert_eq!(phys.mem(sys).kind, MemKind::Sys);
    }
}
