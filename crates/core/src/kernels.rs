//! Leaf kernels.
//!
//! DISTAL lowers the loops *below* the distribution/communication levels
//! into leaf kernels that run on one processor (paper §6.2 follows TACO's
//! single-node lowering; Figure 2 substitutes a vendor GEMM at the leaves).
//! Here the default leaf is a generic dense-loop interpreter able to execute
//! any tensor index notation statement; matrix-multiply leaves use a blocked
//! specialization for speed in functional tests.

use distal_ir::expr::{Assignment, Expr, IndexVar};
use distal_runtime::kernel::{Kernel, KernelCtx};
use std::cell::RefCell;

/// Reusable per-leaf-execution scratch. Leaf kernels run thousands of
/// times per program with tiny per-task bounds, so per-execute heap
/// allocation is measurable; these buffers live per thread and are only
/// resized (never reallocated after warmup). Safe because leaf kernels
/// never invoke other leaf kernels.
#[derive(Default)]
struct Scratch {
    lo: Vec<i64>,
    hi: Vec<i64>,
    point: Vec<i64>,
    /// All access coordinate tuples, flattened back-to-back (the layout —
    /// one range per access — is precomputed at kernel construction).
    coords: Vec<i64>,
    values: Vec<f64>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::default();
}

/// A generic interpreter for one dense tensor algebra statement.
///
/// Task scalars carry `[lo, hi]` (inclusive) per variable, in
/// [`Assignment::all_vars`] order; kernel args are the destination followed
/// by the right-hand-side accesses in order.
#[derive(Debug)]
pub struct InterpreterKernel {
    assignment: Assignment,
    vars: Vec<IndexVar>,
    /// Positions (into `vars`) of each access's index variables; entry 0 is
    /// the destination.
    access_maps: Vec<Vec<usize>>,
    /// Start of each access's coordinate tuple within the flat scratch
    /// buffer, plus a trailing total-length entry.
    coord_starts: Vec<usize>,
    accumulate: bool,
}

impl InterpreterKernel {
    /// Builds an interpreter for a statement.
    pub fn new(assignment: Assignment) -> Self {
        let vars = assignment.all_vars();
        let pos = |v: &IndexVar| vars.iter().position(|x| x == v).expect("unknown var");
        let mut access_maps: Vec<Vec<usize>> = Vec::new();
        access_maps.push(assignment.lhs.indices.iter().map(pos).collect());
        for acc in assignment.input_accesses() {
            access_maps.push(acc.indices.iter().map(pos).collect());
        }
        let mut coord_starts = Vec::with_capacity(access_maps.len() + 1);
        let mut total = 0usize;
        for m in &access_maps {
            coord_starts.push(total);
            total += m.len();
        }
        coord_starts.push(total);
        let accumulate = assignment.is_reduction();
        InterpreterKernel {
            assignment,
            vars,
            access_maps,
            coord_starts,
            accumulate,
        }
    }

    /// The statement this kernel executes.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }
}

impl Kernel for InterpreterKernel {
    fn name(&self) -> &str {
        "interpreter"
    }

    fn execute(&self, ctx: &mut KernelCtx) {
        let nv = self.vars.len();
        assert_eq!(ctx.scalars.len(), 2 * nv, "bounds scalars mismatch");
        let n_inputs = self.access_maps.len() - 1;
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let Scratch {
                lo,
                hi,
                point,
                coords,
                values,
            } = scratch;
            lo.clear();
            hi.clear();
            for i in 0..nv {
                lo.push(ctx.scalars[2 * i]);
                hi.push(ctx.scalars[2 * i + 1]);
            }
            if (0..nv).any(|i| hi[i] < lo[i]) {
                return; // empty leaf (over-decomposed launch point)
            }
            point.clear();
            point.extend_from_slice(lo);
            coords.clear();
            coords.resize(*self.coord_starts.last().unwrap(), 0);
            values.clear();
            values.resize(n_inputs, 0.0);
            loop {
                // Gather input values.
                for (ai, map) in self.access_maps.iter().enumerate().skip(1) {
                    let c = &mut coords[self.coord_starts[ai]..self.coord_starts[ai + 1]];
                    for (d, &vi) in map.iter().enumerate() {
                        c[d] = point[vi];
                    }
                    values[ai - 1] = ctx.args[ai].at(c);
                }
                let mut it = values.iter().copied();
                let v = eval_expr(&self.assignment.rhs, &mut it);
                let c = &mut coords[self.coord_starts[0]..self.coord_starts[1]];
                for (d, &vi) in self.access_maps[0].iter().enumerate() {
                    c[d] = point[vi];
                }
                let out = &mut ctx.args[0];
                if self.accumulate {
                    out.add(c, v);
                } else {
                    out.set(c, v);
                }
                // Odometer advance.
                let mut d = nv;
                loop {
                    if d == 0 {
                        return;
                    }
                    d -= 1;
                    point[d] += 1;
                    if point[d] <= hi[d] {
                        break;
                    }
                    point[d] = lo[d];
                    if d == 0 {
                        return;
                    }
                }
            }
        })
    }
}

fn eval_expr(e: &Expr, values: &mut impl Iterator<Item = f64>) -> f64 {
    match e {
        Expr::Access(_) => values.next().expect("missing value"),
        Expr::Literal(c) => *c,
        Expr::Add(l, r) => {
            let a = eval_expr(l, values);
            let b = eval_expr(r, values);
            a + b
        }
        Expr::Mul(l, r) => {
            let a = eval_expr(l, values);
            let b = eval_expr(r, values);
            a * b
        }
    }
}

/// A blocked dense GEMM leaf: `A(i,j) += B(i,k) * C(k,j)` over the bounds in
/// the task scalars (`[ilo, ihi, jlo, jhi, klo, khi]`). Substituted for the
/// interpreter on matmul leaves (the `CuBLAS::GeMM` substitution of
/// Figure 2 line 40).
#[derive(Debug)]
pub struct GemmKernel;

impl Kernel for GemmKernel {
    fn name(&self) -> &str {
        "gemm"
    }

    fn execute(&self, ctx: &mut KernelCtx) {
        let s = &ctx.scalars;
        assert_eq!(s.len(), 6, "gemm bounds mismatch");
        let (ilo, ihi, jlo, jhi, klo, khi) = (s[0], s[1], s[2], s[3], s[4], s[5]);
        if ihi < ilo || jhi < jlo || khi < klo {
            return;
        }
        // Views: 0 = A (accumulate), 1 = B, 2 = C.
        let a_cols = ctx.args[0].alloc.extent(1);
        let b_cols = ctx.args[1].alloc.extent(1);
        let c_cols = ctx.args[2].alloc.extent(1);
        let a_base = ctx.args[0].offset(&[ilo, jlo]) as i64;
        let b_base = ctx.args[1].offset(&[ilo, klo]) as i64;
        let c_base = ctx.args[2].offset(&[klo, jlo]) as i64;
        let (nj, nk) = ((jhi - jlo + 1) as usize, (khi - klo + 1) as usize);
        for i in 0..=(ihi - ilo) {
            for k in 0..nk as i64 {
                let b = ctx.args[1].data[(b_base + i * b_cols + k) as usize];
                let a_row = (a_base + i * a_cols) as usize;
                let c_row = (c_base + k * c_cols) as usize;
                for j in 0..nj {
                    let c = ctx.args[2].data[c_row + j];
                    ctx.args[0].data[a_row + j] += b * c;
                }
            }
        }
    }
}

/// True when the right-hand side is a product of *accesses only* — no
/// literal factors, no sums. The shape guards (`is_matmul`, `is_spmv`,
/// `is_sddmm`) only inspect the access list, so a statement like
/// `A(i,j) = B(i,k) * C(k,j) * 3.0` matches them; the specialized leaves
/// (GEMM, sparse SpMV/SpMM/SDDMM) compute only the access product and
/// would silently drop the literal — this check keeps them honest.
pub(crate) fn rhs_is_access_product(a: &Assignment) -> bool {
    fn pure(e: &Expr) -> bool {
        match e {
            Expr::Access(_) => true,
            Expr::Mul(l, r) => pure(l) && pure(r),
            Expr::Literal(_) | Expr::Add(_, _) => false,
        }
    }
    pure(&a.rhs)
}

/// Chooses a leaf kernel for a statement: the blocked GEMM for canonical
/// matrix multiplies (pure access products only — literal factors fall
/// back to the interpreter, which evaluates the full expression), the
/// interpreter otherwise.
pub fn leaf_kernel_for(assignment: &Assignment) -> Box<dyn Kernel> {
    if is_matmul(assignment) && rhs_is_access_product(assignment) {
        Box::new(GemmKernel)
    } else {
        Box::new(InterpreterKernel::new(assignment.clone()))
    }
}

/// Chooses a *sparse* leaf kernel when the statement shape and the
/// operands' level formats admit one. `compressed` flags each input
/// access (in [`Assignment::input_accesses`] order) whose tensor has a
/// compressed level format.
///
/// The supported shapes mirror SpDISTAL's core workloads, each with the
/// *first* input compressed:
///
/// * SpMV — `a(i) = B(i,j) * c(j)`;
/// * SpMM — matmul-shaped `A(i,j) = B(i,k) * C(k,j)`;
/// * SDDMM — `A(i,j) = B(i,j) * C(i,k) * D(k,j)`.
///
/// Returns `None` otherwise — compressed formats outside these shapes
/// fall back to the dense leaves, which remain numerically correct
/// (buffers are dense underneath; compression then only drives the
/// byte/cost accounting).
pub fn sparse_leaf_for(assignment: &Assignment, compressed: &[bool]) -> Option<Box<dyn Kernel>> {
    let first_only =
        compressed.first().copied().unwrap_or(false) && compressed.iter().skip(1).all(|c| !c);
    if !first_only || !rhs_is_access_product(assignment) {
        return None;
    }
    if is_spmv(assignment) {
        Some(Box::new(distal_sparse::SpmvLeaf))
    } else if is_matmul(assignment) {
        Some(Box::new(distal_sparse::SpmmLeaf))
    } else if is_sddmm(assignment) {
        Some(Box::new(distal_sparse::SddmmLeaf))
    } else {
        None
    }
}

/// True for `A(i,j) = B(i,k) * C(k,j)`-shaped statements (any var names).
pub fn is_matmul(a: &Assignment) -> bool {
    if a.lhs.indices.len() != 2 {
        return false;
    }
    let inputs = a.input_accesses();
    if inputs.len() != 2 || !matches!(a.rhs, Expr::Mul(_, _)) {
        return false;
    }
    let (i, j) = (&a.lhs.indices[0], &a.lhs.indices[1]);
    let red = a.reduction_vars();
    if red.len() != 1 {
        return false;
    }
    let k = &red[0];
    inputs[0].indices == vec![i.clone(), k.clone()]
        && inputs[1].indices == vec![k.clone(), j.clone()]
}

/// True for `a(i) = B(i,j) * c(j)`-shaped statements (any var names): the
/// matrix-vector product, SpMV when B is compressed.
pub fn is_spmv(a: &Assignment) -> bool {
    if a.lhs.indices.len() != 1 {
        return false;
    }
    let inputs = a.input_accesses();
    if inputs.len() != 2 || !matches!(a.rhs, Expr::Mul(_, _)) {
        return false;
    }
    let i = &a.lhs.indices[0];
    let red = a.reduction_vars();
    if red.len() != 1 {
        return false;
    }
    let j = &red[0];
    inputs[0].indices == vec![i.clone(), j.clone()] && inputs[1].indices == vec![j.clone()]
}

/// True for `A(i,j) = B(i,j) * C(i,k) * D(k,j)`-shaped statements (any var
/// names): the sampled dense-dense matrix multiply, SDDMM when B is
/// compressed.
pub fn is_sddmm(a: &Assignment) -> bool {
    if a.lhs.indices.len() != 2 {
        return false;
    }
    let inputs = a.input_accesses();
    if inputs.len() != 3 {
        return false;
    }
    // A left-leaning pure product of the three accesses.
    let Expr::Mul(outer, _) = &a.rhs else {
        return false;
    };
    if !matches!(outer.as_ref(), Expr::Mul(_, _)) {
        return false;
    }
    let (i, j) = (&a.lhs.indices[0], &a.lhs.indices[1]);
    let red = a.reduction_vars();
    if red.len() != 1 {
        return false;
    }
    let k = &red[0];
    inputs[0].indices == vec![i.clone(), j.clone()]
        && inputs[1].indices == vec![i.clone(), k.clone()]
        && inputs[2].indices == vec![k.clone(), j.clone()]
}

/// True when an expression is bandwidth-bound at the leaves (element-wise
/// traversal with no data reuse): used to set the roofline `bytes` term.
pub fn is_streaming(a: &Assignment) -> bool {
    // Reuse exists when some input access omits a reduction variable that
    // another access carries (it gets re-read), or the output is smaller
    // than the iteration space by more than the reduction dims... A simple
    // proxy that matches the paper's kernels: every input access carries all
    // reduction variables (TTV: B(i,j,k) yes / c(k) small; innerprod: yes).
    let vars = a.all_vars();
    let largest = a
        .input_accesses()
        .iter()
        .map(|acc| acc.indices.len())
        .max()
        .unwrap_or(0);
    largest == vars.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use distal_machine::geom::{Point, Rect};
    use distal_runtime::kernel::KernelArg;
    use distal_runtime::program::Privilege;

    fn arg(rect: Rect, data: Vec<f64>) -> KernelArg {
        KernelArg {
            privilege: Privilege::ReadWrite,
            rect: rect.clone(),
            alloc: rect,
            data,
        }
    }

    fn run_matmul<K: Kernel>(kernel: &K, n: i64) -> Vec<f64> {
        let sq = Rect::sized(&[n, n]);
        let b: Vec<f64> = (0..n * n).map(|x| x as f64).collect();
        let c: Vec<f64> = (0..n * n).map(|x| (x % 7) as f64).collect();
        let mut ctx = KernelCtx {
            args: vec![
                arg(sq.clone(), vec![0.0; (n * n) as usize]),
                arg(sq.clone(), b),
                arg(sq, c),
            ],
            point: Point::zeros(2),
            scalars: vec![0, n - 1, 0, n - 1, 0, n - 1],
        };
        kernel.execute(&mut ctx);
        ctx.args.swap_remove(0).data
    }

    #[test]
    fn interpreter_matches_gemm_kernel() {
        let interp = InterpreterKernel::new(distal_ir::expr::kernels::matmul());
        let a1 = run_matmul(&interp, 6);
        let a2 = run_matmul(&GemmKernel, 6);
        assert_eq!(a1, a2);
        // Spot check one entry against a hand computation.
        // A[0][0] = sum_k B[0][k] * C[k][0] with B[0][k]=k, C[k][0]=(6k)%7.
        let expect: f64 = (0..6).map(|k| (k as f64) * ((6 * k % 7) as f64)).sum();
        assert_eq!(a1[0], expect);
    }

    #[test]
    fn interpreter_partial_bounds() {
        // Only the sub-block [1,2]x[1,2]x[0,2] of a 4x4 matmul.
        let interp = InterpreterKernel::new(distal_ir::expr::kernels::matmul());
        let sq = Rect::sized(&[4, 4]);
        let ones = vec![1.0; 16];
        let mut ctx = KernelCtx {
            args: vec![
                arg(sq.clone(), vec![0.0; 16]),
                arg(sq.clone(), ones.clone()),
                arg(sq, ones),
            ],
            point: Point::zeros(2),
            scalars: vec![1, 2, 1, 2, 0, 2],
        };
        interp.execute(&mut ctx);
        let a = &ctx.args[0].data;
        assert_eq!(a[5], 3.0); // (1,1) accumulated over k=0..2
        assert_eq!(a[0], 0.0); // outside bounds untouched
    }

    #[test]
    fn interpreter_handles_empty_bounds() {
        let interp = InterpreterKernel::new(distal_ir::expr::kernels::matmul());
        let sq = Rect::sized(&[2, 2]);
        let mut ctx = KernelCtx {
            args: vec![
                arg(sq.clone(), vec![0.0; 4]),
                arg(sq.clone(), vec![1.0; 4]),
                arg(sq, vec![1.0; 4]),
            ],
            point: Point::zeros(2),
            scalars: vec![0, 1, 0, 1, 1, 0], // empty k range
        };
        interp.execute(&mut ctx);
        assert_eq!(ctx.args[0].data, vec![0.0; 4]);
    }

    #[test]
    fn literal_factors_disable_specialized_leaves() {
        // The shape guards only look at the access list, so a trailing
        // literal factor still matches them — but the specialized leaves
        // compute only the access product and would silently drop it.
        // Both the GEMM and sparse substitutions must refuse.
        let spmv = distal_ir::expr::Assignment::parse("a(i) = B(i,j) * c(j) * 3.0").unwrap();
        assert!(is_spmv(&spmv), "shape guard still matches");
        assert!(sparse_leaf_for(&spmv, &[true, false]).is_none());

        let mm = distal_ir::expr::Assignment::parse("A(i,j) = B(i,k) * C(k,j) * 2.0").unwrap();
        assert!(is_matmul(&mm), "shape guard still matches");
        assert!(sparse_leaf_for(&mm, &[true, false]).is_none());
        assert_eq!(leaf_kernel_for(&mm).name(), "interpreter");

        // Pure products keep their specialized leaves.
        let pure = distal_ir::expr::kernels::matmul();
        assert_eq!(leaf_kernel_for(&pure).name(), "gemm");
        assert!(sparse_leaf_for(&pure, &[true, false]).is_some());
    }

    #[test]
    fn sparse_leaf_selection_by_shape_and_compression() {
        let spmv = distal_ir::expr::Assignment::parse("a(i) = B(i,j) * c(j)").unwrap();
        assert!(is_spmv(&spmv));
        assert_eq!(
            sparse_leaf_for(&spmv, &[true, false]).map(|k| k.name().to_string()),
            Some("spmv".into())
        );
        // Compression elsewhere than the first input falls back to dense.
        assert!(sparse_leaf_for(&spmv, &[false, true]).is_none());
        assert!(sparse_leaf_for(&spmv, &[false, false]).is_none());

        let sddmm =
            distal_ir::expr::Assignment::parse("A(i,j) = B(i,j) * C(i,k) * D(k,j)").unwrap();
        assert!(is_sddmm(&sddmm));
        assert!(!is_sddmm(&distal_ir::expr::kernels::matmul()));
        assert_eq!(
            sparse_leaf_for(&sddmm, &[true, false, false]).map(|k| k.name().to_string()),
            Some("sddmm".into())
        );

        let mm = distal_ir::expr::kernels::matmul();
        assert_eq!(
            sparse_leaf_for(&mm, &[true, false]).map(|k| k.name().to_string()),
            Some("spmm".into())
        );
    }

    #[test]
    fn matmul_detection() {
        assert!(is_matmul(&distal_ir::expr::kernels::matmul()));
        assert!(!is_matmul(&distal_ir::expr::kernels::ttv()));
        assert!(!is_matmul(&distal_ir::expr::kernels::mttkrp()));
        assert!(!is_matmul(&distal_ir::expr::kernels::innerprod()));
        // Same shape, different names, still a matmul.
        let a = distal_ir::expr::Assignment::parse("X(p,q) = Y(p,r) * Z(r,q)").unwrap();
        assert!(is_matmul(&a));
    }

    #[test]
    fn streaming_detection() {
        assert!(is_streaming(&distal_ir::expr::kernels::ttv()));
        assert!(is_streaming(&distal_ir::expr::kernels::innerprod()));
        assert!(!is_streaming(&distal_ir::expr::kernels::matmul()));
        assert!(!is_streaming(&distal_ir::expr::kernels::mttkrp()));
    }

    #[test]
    fn interpreter_scalar_output() {
        // a = B(i) * C(i): scalar (0-dim) destination.
        let a = distal_ir::expr::Assignment::parse("a = B(i) * C(i)").unwrap();
        let interp = InterpreterKernel::new(a);
        let scalar_rect = Rect::sized(&[]);
        let vec_rect = Rect::sized(&[4]);
        let mut ctx = KernelCtx {
            args: vec![
                arg(scalar_rect, vec![0.0]),
                arg(vec_rect.clone(), vec![1.0, 2.0, 3.0, 4.0]),
                arg(vec_rect, vec![1.0, 1.0, 1.0, 1.0]),
            ],
            point: Point::zeros(1),
            scalars: vec![0, 3],
        };
        interp.execute(&mut ctx);
        assert_eq!(ctx.args[0].data[0], 10.0);
    }
}
