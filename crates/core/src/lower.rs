//! Lowering scheduled statements to runtime programs (paper §6.2).
//!
//! Code generation walks the scheduled concrete index notation:
//!
//! * the outermost *distributed* loops become the index-launch domain (one
//!   point task per processor coordinate; directly nested distributed loops
//!   flatten into one multi-dimensional launch);
//! * sequential loops that carry (or sit above) `communicate` relations are
//!   emitted as program-level loops of index launches — each iteration
//!   re-fetches the tensors communicated at that level, which is exactly how
//!   aggregated communication manifests in a Legion program;
//! * everything below becomes the leaf kernel, with per-task rectangles
//!   derived by the bounds analysis in [`distal_ir::provenance`];
//! * scratch discards after each sequential iteration bound the memory of
//!   systolic/pipelined schedules to double buffering.
//!
//! Privileges on the output tensor follow the schedule: reductions over
//! *distributed* variables use `Reduce` (Legion reduction instances,
//! Johnson's and 2.5D algorithms); reductions over sequential variables use
//! `ReadWrite` accumulation; pure element-wise statements use `Write`.

use crate::error::CompileError;
use crate::kernels::{is_matmul, is_streaming};
use crate::machine::DistalMachine;
use crate::mapper::GridMapper;
use crate::schedule::Schedule;
use distal_format::semantics::hierarchical_pieces;
use distal_format::Format;
use distal_ir::cin::ConcreteNotation;
use distal_ir::expr::{Assignment, IndexVar};
use distal_machine::geom::{Point, Rect};
use distal_runtime::kernel::NoopKernel;
use distal_runtime::program::{IndexLaunch, Op, Privilege, Program, RegionReq, TaskDesc};
use distal_runtime::region::RegionId;
use distal_runtime::topology::PhysicalMachine;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

thread_local! {
    /// Per-thread count of [`compile`] invocations (schedule application
    /// + lowering). The plan/bind split's observable invariant: binding
    /// an already-compiled plan leaves this counter untouched.
    /// Thread-local so concurrent tests/requests don't perturb each
    /// other's readings.
    static COMPILATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// How many times the runtime lowering ([`compile`]) ran on the calling
/// thread.
pub fn compile_count() -> u64 {
    COMPILATIONS.with(|c| c.get())
}

/// A tensor bound to a region with a format.
#[derive(Clone, Debug)]
pub struct TensorBinding {
    /// Dimension sizes.
    pub dims: Vec<i64>,
    /// Distribution + memory kind.
    pub format: Format,
    /// The backing runtime region.
    pub region: RegionId,
}

/// Compile-time options.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Fraction of peak the leaf kernel achieves (model mode). `None`
    /// selects 0.95 for matmul-shaped leaves and 0.85 otherwise.
    pub leaf_efficiency: Option<f64>,
    /// Zero-fill the output before computing. `None` = automatic (filled
    /// when the statement accumulates).
    pub fill_output: Option<bool>,
    /// Generations of scratch instances kept by per-iteration discards
    /// (1 = double buffering, matching systolic forwarding).
    pub discard_keep: u64,
    /// Emit a final owner-gather launch that folds distributed reductions
    /// into the output's placed tiles.
    pub final_gather: bool,
    /// Memory kind compute tasks materialize data in, overriding the
    /// tensors' format memory. COSMA's out-of-core GPU mode keeps tensors in
    /// host memory (`Sys` formats) and stages chunks into `Fb` per task
    /// (§7.1.2).
    pub compute_mem: Option<distal_machine::spec::MemKind>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            leaf_efficiency: None,
            fill_output: None,
            discard_keep: 1,
            final_gather: true,
            compute_mem: None,
        }
    }
}

/// A compiled kernel: placement and compute programs plus metadata.
#[derive(Clone)]
pub struct CompiledKernel {
    /// The scheduled concrete index notation (inspect with `Display`).
    pub cin: ConcreteNotation,
    /// Moves tensors into their formats' distributions.
    pub placement: Program,
    /// The computation itself.
    pub compute: Program,
    /// Extents of the distributed launch domain (empty = single task).
    pub launch_domain: Vec<i64>,
    /// Total floating-point work of the compute program.
    pub total_flops: f64,
    /// The output tensor's name.
    pub output: String,
    /// The statement being computed.
    pub assignment: Assignment,
}

impl std::fmt::Debug for CompiledKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "CompiledKernel {{")?;
        writeln!(f, "  cin: {}", self.cin)?;
        writeln!(f, "  launch domain: {:?}", self.launch_domain)?;
        writeln!(f, "  placement tasks: {}", self.placement.task_count())?;
        writeln!(f, "  compute tasks: {}", self.compute.task_count())?;
        writeln!(f, "  flops: {:.3e}", self.total_flops)?;
        write!(f, "}}")
    }
}

/// Compiles a scheduled statement against tensor bindings and a machine.
///
/// # Errors
///
/// Reports unknown tensors, inconsistent extents, failing schedule
/// commands, and launch domains larger than the machine.
pub fn compile(
    assignment: &Assignment,
    tensors: &BTreeMap<String, TensorBinding>,
    machine: &DistalMachine,
    phys: &PhysicalMachine,
    schedule: &Schedule,
    options: &CompileOptions,
) -> Result<CompiledKernel, CompileError> {
    COMPILATIONS.with(|c| c.set(c.get() + 1));
    // Extents from tensor dims. Every access is resolved and arity-checked
    // here, so the body below can look tensors up infallibly.
    let mut dims_map = BTreeMap::new();
    for acc in assignment.accesses() {
        let b = binding(tensors, &acc.tensor)?;
        if acc.indices.len() != b.dims.len() {
            return Err(CompileError::Format(format!(
                "tensor '{}' is {}-dimensional but accessed with {} indices",
                acc.tensor,
                b.dims.len(),
                acc.indices.len()
            )));
        }
        dims_map.insert(acc.tensor.clone(), b.dims.clone());
    }
    let extents = assignment
        .infer_extents(&dims_map)
        .ok_or(CompileError::InconsistentExtents)?;

    // Lower to CIN and apply the schedule.
    let mut cin = ConcreteNotation::from_assignment(assignment.clone(), &extents)
        .map_err(|e| CompileError::Expression(e.to_string()))?;
    schedule.apply(&mut cin)?;

    let mapper = GridMapper::new(machine, phys)?;

    // Split the nest: distributed prefix / sequential program loops / leaf.
    let n_dist = cin.distributed_prefix().map_or(0, |p| p.len());
    let launch_domain: Vec<i64> = cin.loops[..n_dist]
        .iter()
        .map(|l| cin.solver.extent(&l.var))
        .collect();
    let domain_size: i64 = launch_domain.iter().product::<i64>().max(1);
    if domain_size > mapper.len() as i64 {
        return Err(CompileError::GridTooLarge {
            required: domain_size,
            available: mapper.len() as i64,
        });
    }
    // The cut: deepest loop carrying a communicate tag (distributed loops
    // are always above the cut). Loops past the cut form the leaf kernel.
    let mut cut = n_dist;
    for (pos, l) in cin.loops.iter().enumerate() {
        if !l.communicate.is_empty() {
            cut = cut.max(pos + 1);
        }
    }
    let seq_loops: Vec<IndexVar> = cin.loops[n_dist..cut]
        .iter()
        .map(|l| l.var.clone())
        .collect();
    let seq_extents: Vec<i64> = seq_loops.iter().map(|v| cin.solver.extent(v)).collect();

    // Output privilege.
    let reduction_roots: BTreeSet<IndexVar> = assignment.reduction_vars().into_iter().collect();
    let dist_reduces = cin.loops[..n_dist].iter().any(|l| {
        cin.solver
            .roots_of(&l.var)
            .iter()
            .any(|r| reduction_roots.contains(r))
    });
    let seq_reduces = seq_loops.iter().any(|v| {
        cin.solver
            .roots_of(v)
            .iter()
            .any(|r| reduction_roots.contains(r))
    });
    let leaf_reduces = assignment.is_reduction();
    let out_priv = if dist_reduces {
        Privilege::Reduce
    } else if seq_reduces {
        Privilege::ReadWrite
    } else {
        Privilege::Write
    };
    // Zero-fill whenever the leaf accumulates into pre-existing values.
    let fill_output = options
        .fill_output
        .unwrap_or(leaf_reduces && out_priv != Privilege::Write);

    let efficiency =
        options
            .leaf_efficiency
            .unwrap_or(if is_matmul(assignment) { 0.95 } else { 0.85 });
    let streaming = is_streaming(assignment);

    // Tensors discarded per sequential iteration: those communicated at a
    // sequential program loop. Communicate tags may name tensors the
    // statement never accesses, so resolve them to regions now.
    let mut seq_comm_regions: BTreeMap<String, RegionId> = BTreeMap::new();
    for l in cin.loops[n_dist..cut].iter() {
        for t in &l.communicate {
            if *t != assignment.lhs.tensor {
                seq_comm_regions.insert(t.clone(), binding(tensors, t)?.region);
            }
        }
    }

    // ---- Compute program ----
    let mut compute = Program::new();
    let out_binding = binding(tensors, &assignment.lhs.tensor)?;
    if fill_output {
        compute.push(Op::Fill {
            region: out_binding.region,
            value: 0.0,
        });
    }
    // Leaf kernel: a `substitute` command overrides the automatic choice
    // (Figure 2 line 40 substitutes a vendor GEMM at the leaves). The
    // automatic choice asks the kernel generator (`crate::kernelgen`) to
    // specialize the statement + formats into a monomorphized kernel —
    // CSR-specialized SpMV/SpMM/SDDMM when the shape admits one and the
    // first input operand's format carries a compressed level, the
    // generated dense GEMM for pure matmul products, and a tape-compiled
    // einsum otherwise. `compile` runs at plan time, so a cached plan
    // re-binds without ever re-specializing.
    let mut compressed_inputs: Vec<bool> = Vec::new();
    for acc in assignment.input_accesses() {
        compressed_inputs.push(binding(tensors, &acc.tensor)?.format.has_compressed());
    }
    let leaf_kernel: Arc<dyn distal_runtime::kernel::Kernel> = match schedule.leaf_choice() {
        Some((_, crate::schedule::LeafKind::Gemm)) => {
            if !is_matmul(assignment) || !crate::kernels::rhs_is_access_product(assignment) {
                return Err(CompileError::BadSubstitution(format!(
                    "the GEMM leaf requires a matmul-shaped statement \
                     (a pure product of two accesses), got `{assignment}`"
                )));
            }
            // The substitution asks for the optimized leaf; compression
            // still routes to the CSR-specialized SpMM when the stored
            // operand admits it (a strictly better "vendor kernel").
            crate::kernelgen::specialize(&distal_runtime::kernelgen::LeafRequest {
                assignment: assignment.clone(),
                compressed: compressed_inputs.clone(),
                accumulate: true,
                skip_zero: false,
            })
        }
        Some((_, crate::schedule::LeafKind::Interpreter)) => {
            Arc::new(crate::kernels::InterpreterKernel::new(assignment.clone()))
        }
        Some((_, crate::schedule::LeafKind::Auto)) | None => {
            crate::kernelgen::specialize(&distal_runtime::kernelgen::LeafRequest {
                assignment: assignment.clone(),
                compressed: compressed_inputs.clone(),
                accumulate: assignment.is_reduction(),
                skip_zero: false,
            })
        }
    };
    let leaf = compute.register_kernel(leaf_kernel);
    let all_vars = assignment.all_vars();
    let flops_per_point = assignment.flops_per_point();

    let domain_rect = Rect::sized(&if launch_domain.is_empty() {
        vec![1]
    } else {
        launch_domain.clone()
    });
    let seq_rect = Rect::sized(&if seq_extents.is_empty() {
        vec![1]
    } else {
        seq_extents.clone()
    });
    let mut total_flops = 0.0;
    for seq_point in seq_rect.points() {
        // Retire stale forwarding buffers *before* the launch: instances
        // fetched this iteration then carry a strictly newer generation
        // than home tiles, which steers systolic schedules to pull from
        // their neighbours' buffers (Figure 12) rather than the owners.
        if !seq_extents.is_empty() {
            for region in seq_comm_regions.values() {
                compute.push(Op::DiscardScratch {
                    region: *region,
                    keep_recent: options.discard_keep,
                });
            }
        }
        let mut tasks = Vec::new();
        for point in domain_rect.points() {
            let mut env: BTreeMap<IndexVar, i64> = BTreeMap::new();
            for (d, l) in cin.loops[..n_dist].iter().enumerate() {
                env.insert(l.var.clone(), point[d]);
            }
            for (d, v) in seq_loops.iter().enumerate() {
                env.insert(v.clone(), seq_point[d]);
            }
            let rank = if launch_domain.is_empty() {
                0
            } else {
                domain_rect.linearize(&point) as i64
            };
            // Leaf bounds per original variable.
            let mut scalars = Vec::with_capacity(all_vars.len() * 2);
            let mut iter_points = 1.0f64;
            let mut empty = false;
            for v in &all_vars {
                let iv = cin.solver.interval(v, &env);
                scalars.push(iv.lo);
                scalars.push(iv.hi);
                if iv.is_empty() {
                    empty = true;
                }
                iter_points *= iv.len() as f64;
            }
            if empty {
                continue;
            }
            // Region requirements: destination first, then inputs.
            let mut reqs = Vec::new();
            let mut bytes = 0.0f64;
            {
                let rect = access_rect(&assignment.lhs.indices, &cin, &env, &out_binding.dims);
                bytes += rect.volume() as f64 * 8.0;
                let mem_kind = options.compute_mem.unwrap_or(out_binding.format.mem);
                reqs.push(RegionReq::new(
                    out_binding.region,
                    rect,
                    out_priv,
                    mapper.mem_for(rank, mem_kind),
                ));
            }
            for acc in assignment.input_accesses() {
                let b = binding(tensors, &acc.tensor)?;
                let rect = access_rect(&acc.indices, &cin, &env, &b.dims);
                bytes += rect.volume() as f64 * 8.0;
                let mem_kind = options.compute_mem.unwrap_or(b.format.mem);
                reqs.push(RegionReq::new(
                    b.region,
                    rect,
                    Privilege::Read,
                    mapper.mem_for(rank, mem_kind),
                ));
            }
            let flops = flops_per_point * iter_points;
            total_flops += flops;
            let mut task = TaskDesc::new(leaf, mapper.proc_for_rank(rank), point.clone(), reqs);
            task.flops = flops;
            task.bytes = if streaming { bytes } else { 0.0 };
            task.efficiency = efficiency;
            task.scalars = scalars;
            tasks.push(task);
        }
        if !tasks.is_empty() {
            compute.push(Op::IndexLaunch(IndexLaunch {
                name: format!("compute{:?}", seq_point),
                tasks,
            }));
        }
    }
    // Retire the final iteration's buffers.
    if !seq_extents.is_empty() {
        for region in seq_comm_regions.values() {
            compute.push(Op::DiscardScratch {
                region: *region,
                keep_recent: options.discard_keep,
            });
        }
    }

    // Final gather: fold distributed reductions into the output's placed
    // tiles (Johnson's "sum reduces A_ijk to P_ij0").
    if out_priv == Privilege::Reduce && options.final_gather {
        let gather = compute.register_kernel(Arc::new(NoopKernel));
        let tasks = if out_binding.format.is_distributed() {
            placement_tasks(gather, out_binding, machine, &mapper, Privilege::Read, true)
        } else {
            // Undistributed (e.g. scalar) output: a single owner on rank 0
            // folds all reduction contributions.
            let mut req = RegionReq::new(
                out_binding.region,
                Rect::sized(&out_binding.dims),
                Privilege::Read,
                mapper.mem_for(0, out_binding.format.mem),
            );
            req.pin = true;
            vec![TaskDesc::new(
                gather,
                mapper.proc_for_rank(0),
                Point::zeros(1),
                vec![req],
            )]
        };
        if !tasks.is_empty() {
            compute.push(Op::IndexLaunch(IndexLaunch {
                name: "reduce-gather".into(),
                tasks,
            }));
        }
    }

    // ---- Placement program ----
    let mut placement = Program::new();
    let place = placement.register_kernel(Arc::new(NoopKernel));
    let mut placed: BTreeSet<String> = BTreeSet::new();
    for acc in assignment.accesses() {
        let name = &acc.tensor;
        if !placed.insert(name.clone()) {
            continue; // each tensor is placed once
        }
        let b = binding(tensors, name)?;
        if !b.format.is_distributed() {
            continue;
        }
        // Output-only tensors are placed with Write (no data to move);
        // inputs (and increment outputs) are pulled with pinned reads.
        let is_input = assignment
            .input_accesses()
            .iter()
            .any(|a| &a.tensor == name)
            || (name == &assignment.lhs.tensor && assignment.increment);
        let privilege = if is_input {
            Privilege::Read
        } else {
            Privilege::Write
        };
        let tasks = placement_tasks(place, b, machine, &mapper, privilege, true);
        if !tasks.is_empty() {
            placement.push(Op::IndexLaunch(IndexLaunch {
                name: format!("place-{name}"),
                tasks,
            }));
        }
    }

    Ok(CompiledKernel {
        cin,
        placement,
        compute,
        launch_domain,
        total_flops,
        output: assignment.lhs.tensor.clone(),
        assignment: assignment.clone(),
    })
}

/// Looks a tensor binding up by name, as a typed error instead of a map
/// indexing panic.
fn binding<'a>(
    tensors: &'a BTreeMap<String, TensorBinding>,
    name: &str,
) -> Result<&'a TensorBinding, CompileError> {
    tensors
        .get(name)
        .ok_or_else(|| CompileError::UnknownTensor(name.to_string()))
}

/// The rectangle an access touches under a loop-variable environment.
fn access_rect(
    indices: &[IndexVar],
    cin: &ConcreteNotation,
    env: &BTreeMap<IndexVar, i64>,
    dims: &[i64],
) -> Rect {
    let mut lo = Vec::with_capacity(indices.len());
    let mut hi = Vec::with_capacity(indices.len());
    for (d, v) in indices.iter().enumerate() {
        let iv = cin.solver.interval(v, env).clamp_extent(dims[d]);
        lo.push(iv.lo);
        hi.push(iv.hi);
    }
    Rect::new(Point::new(lo), Point::new(hi))
}

/// Builds a standalone placement program for a set of tensors: inputs are
/// pulled into their format's distribution with pinned reads, outputs are
/// established with writes. Used by baselines whose pipelines place user
/// data before their own redistribution phases.
///
/// # Errors
///
/// Propagates mapper construction failures (oversized grids).
pub fn placement_program(
    tensors: &BTreeMap<String, TensorBinding>,
    names: &[(&str, bool)],
    machine: &DistalMachine,
    phys: &PhysicalMachine,
) -> Result<Program, CompileError> {
    let mapper = GridMapper::new(machine, phys)?;
    let mut program = Program::new();
    let kernel = program.register_kernel(Arc::new(NoopKernel));
    for (name, is_input) in names {
        let b = tensors
            .get(*name)
            .ok_or_else(|| CompileError::UnknownTensor(name.to_string()))?;
        if !b.format.is_distributed() {
            continue;
        }
        let privilege = if *is_input {
            Privilege::Read
        } else {
            Privilege::Write
        };
        let tasks = placement_tasks(kernel, b, machine, &mapper, privilege, true);
        if !tasks.is_empty() {
            program.push(Op::IndexLaunch(IndexLaunch {
                name: format!("place-{name}"),
                tasks,
            }));
        }
    }
    Ok(program)
}

/// One placement/gather task per owning grid point of a tensor's format,
/// with one region requirement per owned piece (blocked formats own a
/// single tile; cyclic and block-cyclic formats own a set of stripes).
fn placement_tasks(
    kernel: distal_runtime::program::KernelId,
    binding: &TensorBinding,
    machine: &DistalMachine,
    mapper: &GridMapper,
    privilege: Privilege,
    pin: bool,
) -> Vec<TaskDesc> {
    let rect = Rect::sized(&binding.dims);
    let mut tasks = Vec::new();
    for point in machine.grid().points() {
        let pieces = hierarchical_pieces(
            &binding.format.distributions,
            &rect,
            &machine.hierarchy,
            &point,
        );
        if pieces.is_empty() {
            continue;
        }
        let rank = mapper.rank(&point);
        let mem = mapper.mem_for(rank, binding.format.mem);
        let reqs = pieces
            .into_iter()
            .map(|piece| {
                let mut req = RegionReq::new(binding.region, piece, privilege, mem);
                req.pin = pin;
                req
            })
            .collect();
        tasks.push(TaskDesc::new(
            kernel,
            mapper.proc_for_rank(rank),
            point.clone(),
            reqs,
        ));
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use distal_machine::grid::Grid;
    use distal_machine::spec::{MachineSpec, MemKind, ProcKind};

    fn bindings(n: i64) -> BTreeMap<String, TensorBinding> {
        let f = Format::parse("xy->xy", MemKind::Sys).unwrap();
        ["A", "B", "C"]
            .iter()
            .enumerate()
            .map(|(i, name)| {
                (
                    name.to_string(),
                    TensorBinding {
                        dims: vec![n, n],
                        format: f.clone(),
                        region: RegionId(i as u32),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn summa_compiles_to_expected_structure() {
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        let phys = PhysicalMachine::new(MachineSpec::small(2));
        let a = distal_ir::expr::kernels::matmul();
        let k = compile(
            &a,
            &bindings(16),
            &machine,
            &phys,
            &Schedule::summa(2, 2, 8),
            &CompileOptions::default(),
        )
        .unwrap();
        assert_eq!(k.launch_domain, vec![2, 2]);
        // k=16 in chunks of 8: two sequential iterations x 4 point tasks,
        // plus the fill.
        assert_eq!(k.compute.task_count(), 8);
        // 2 * 16^3 flops.
        assert!((k.total_flops - 2.0 * 16.0f64.powi(3)).abs() < 1.0);
        // Placement: 3 tensors x 4 tiles.
        assert_eq!(k.placement.task_count(), 12);
        // Discards for B and C before each sequential iteration plus the
        // trailing cleanup: (2 iterations + 1) x 2 tensors.
        let discards = k
            .compute
            .ops
            .iter()
            .filter(|o| matches!(o, Op::DiscardScratch { .. }))
            .count();
        assert_eq!(discards, 6);
    }

    #[test]
    fn unknown_tensor_rejected() {
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        let phys = PhysicalMachine::new(MachineSpec::small(2));
        let a = distal_ir::expr::Assignment::parse("Z(i,j) = B(i,k) * C(k,j)").unwrap();
        assert!(matches!(
            compile(&a, &bindings(8), &machine, &phys, &Schedule::new(), &CompileOptions::default()),
            Err(CompileError::UnknownTensor(t)) if t == "Z"
        ));
    }

    #[test]
    fn access_arity_mismatch_is_a_typed_error() {
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        let phys = PhysicalMachine::new(MachineSpec::small(2));
        let a = distal_ir::expr::kernels::matmul();
        let mut b = bindings(8);
        b.get_mut("B").unwrap().dims = vec![8]; // B(i,k) accessed 2-d
        let err = compile(
            &a,
            &b,
            &machine,
            &phys,
            &Schedule::new(),
            &CompileOptions::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, CompileError::Format(ref m) if m.contains("1-dimensional")),
            "{err:?}"
        );
    }

    #[test]
    fn oversized_grid_rejected() {
        let machine = DistalMachine::flat(Grid::grid2(8, 8), ProcKind::Cpu);
        let phys = PhysicalMachine::new(MachineSpec::small(2)); // 4 sockets
        let a = distal_ir::expr::kernels::matmul();
        let err = compile(
            &a,
            &bindings(64),
            &machine,
            &phys,
            &Schedule::summa(8, 8, 8),
            &CompileOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CompileError::GridTooLarge { required: 64, .. }
        ));
    }

    #[test]
    fn unscheduled_statement_is_single_task() {
        let machine = DistalMachine::flat(Grid::grid2(1, 1), ProcKind::Cpu);
        let phys = PhysicalMachine::new(MachineSpec::small(1));
        let a = distal_ir::expr::kernels::matmul();
        let k = compile(
            &a,
            &bindings(8),
            &machine,
            &phys,
            &Schedule::new(),
            &CompileOptions::default(),
        )
        .unwrap();
        assert!(k.launch_domain.is_empty());
        assert_eq!(k.compute.task_count(), 1);
    }
}
