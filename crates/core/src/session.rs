//! Sessions: the user-facing façade tying tensors, compilation, and
//! execution together.
//!
//! A [`Session`] is a thin convenience over the target-agnostic pipeline:
//! it keeps its tensor registry *in* a [`Problem`] (shapes, formats,
//! machine — data lives in the runtime regions, not in problem
//! initializers) plus a live [`Runtime`] with one region per registered
//! tensor — i.e. it is the
//! [`RuntimeBackend`](crate::backend::RuntimeBackend) with its artifact
//! state kept mutable and incremental, which baselines and multi-kernel
//! pipelines need. New code targeting a single statement should prefer
//! [`Problem::compile`] with an explicit backend.

use crate::error::CompileError;
use crate::lower::{compile, CompileOptions, CompiledKernel, TensorBinding};
use crate::machine::DistalMachine;
use crate::problem::Problem;
use crate::schedule::Schedule;
use distal_format::Format;
use distal_ir::expr::Assignment;
use distal_machine::geom::Rect;
use distal_machine::spec::MachineSpec;
use distal_runtime::exec::{Mode, Runtime, RuntimeError};
use distal_runtime::executor::ExecutorKind;
use distal_runtime::region::RegionId;
use distal_runtime::stats::RunStats;
use distal_runtime::topology::PhysicalMachine;
use std::collections::BTreeMap;

/// Declares a tensor: name, dimension sizes, and format.
#[derive(Clone, Debug)]
pub struct TensorSpec {
    /// Tensor name, as used in expressions.
    pub name: String,
    /// Dimension sizes (empty = scalar).
    pub dims: Vec<i64>,
    /// Distribution + memory kind.
    pub format: Format,
}

impl TensorSpec {
    /// Creates a spec.
    pub fn new(name: impl Into<String>, dims: Vec<i64>, format: Format) -> Self {
        TensorSpec {
            name: name.into(),
            dims,
            format,
        }
    }

    /// A scalar tensor (order 0), undistributed.
    pub fn scalar(name: impl Into<String>) -> Self {
        TensorSpec {
            name: name.into(),
            dims: Vec::new(),
            format: Format::undistributed(),
        }
    }
}

/// A session: a runtime instance plus registered tensors on an abstract
/// machine. See the crate-level example.
pub struct Session {
    runtime: Runtime,
    problem: Problem,
    regions: BTreeMap<String, RegionId>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("regions", &self.regions.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Creates a session on a fresh runtime.
    pub fn new(spec: MachineSpec, machine: DistalMachine, mode: Mode) -> Self {
        Session {
            runtime: Runtime::new(PhysicalMachine::new(spec.clone()), mode),
            problem: Problem::new(spec, machine),
            regions: BTreeMap::new(),
        }
    }

    /// The underlying runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// The underlying runtime, mutably.
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.runtime
    }

    /// The abstract machine.
    pub fn machine(&self) -> &DistalMachine {
        self.problem.machine()
    }

    /// Selects how [`Session::execute`] (and [`Session::place`]/
    /// [`Session::run`]) execute DAG nodes: serially, in parallel on the
    /// host's cores, or — the default — parallel in functional mode and
    /// serial in model mode.
    pub fn set_executor(&mut self, kind: ExecutorKind) -> &mut Self {
        self.runtime.set_executor(kind);
        self
    }

    /// The configured executor selection.
    pub fn executor(&self) -> ExecutorKind {
        self.runtime.executor()
    }

    /// Registers a tensor, validating its format against the machine.
    ///
    /// # Errors
    ///
    /// Rejects formats whose notation arity doesn't match the tensor order
    /// or the machine's hierarchy levels.
    pub fn tensor(&mut self, spec: TensorSpec) -> Result<(), CompileError> {
        let machine = self.problem.machine().clone();
        self.tensor_for_machine(spec, &machine)
    }

    /// Registers a tensor whose format targets a *different* abstract
    /// machine than the session default (used by the CTF baseline, whose
    /// internal matricized tensors live on per-contraction grids).
    ///
    /// # Errors
    ///
    /// Rejects formats whose notation arity doesn't match the tensor order
    /// or the given machine's hierarchy levels.
    pub fn tensor_for_machine(
        &mut self,
        spec: TensorSpec,
        machine: &DistalMachine,
    ) -> Result<(), CompileError> {
        let name = spec.name.clone();
        let rect = Rect::sized(&spec.dims);
        self.problem.tensor_for_machine(spec, machine)?;
        let region = self.runtime.create_region(name.clone(), rect);
        self.regions.insert(name, region);
        Ok(())
    }

    /// The binding of a registered tensor (shape + format + region).
    pub fn binding(&self, name: &str) -> Option<TensorBinding> {
        let spec = self.problem.tensor_spec(name)?;
        Some(TensorBinding {
            dims: spec.dims.clone(),
            format: spec.format.clone(),
            region: *self.regions.get(name)?,
        })
    }

    /// The backing region of a registered tensor.
    pub fn region(&self, name: &str) -> Option<RegionId> {
        self.regions.get(name).copied()
    }

    /// Seeds a tensor with row-major data (functional mode). For tensors
    /// registered with a compressed level format, the explicit zeros in
    /// `data` are the density knob: the region's wire-payload accounting
    /// is set from the data's nnz so copies charge `pos`/`crd`/`vals`
    /// bytes instead of dense volume.
    ///
    /// # Errors
    ///
    /// Unknown tensors and size mismatches.
    pub fn set_data(&mut self, name: &str, data: Vec<f64>) -> Result<(), CompileError> {
        let region = self.require(name)?;
        self.update_payload_scale(name, region, &data);
        self.runtime
            .set_region_data(region, data)
            .map_err(|e| CompileError::Session(e.to_string()))
    }

    /// Sets a compressed-format tensor's region payload scale from the
    /// actual nnz of `data`; dense formats keep flat accounting.
    fn update_payload_scale(&mut self, name: &str, region: RegionId, data: &[f64]) {
        let Some(spec) = self.problem.tensor_spec(name) else {
            return;
        };
        if !spec.format.has_compressed() {
            return;
        }
        let nnz = data.iter().filter(|v| v.to_bits() != 0).count() as u64;
        let scale = distal_sparse::csr_payload_scale(&spec.dims, nnz);
        self.runtime.set_region_payload_scale(region, scale);
    }

    /// Fills a tensor with a constant (both modes).
    ///
    /// # Errors
    ///
    /// Unknown tensor names.
    pub fn fill(&mut self, name: &str, value: f64) -> Result<(), CompileError> {
        let region = self.require(name)?;
        self.runtime
            .fill_region(region, value)
            .map_err(|e| CompileError::Session(e.to_string()))
    }

    /// Fills a tensor with deterministic pseudo-random values in `[-1, 1)`
    /// (functional mode; see [`crate::problem::random_data`]) or just
    /// marks it valid (model mode).
    ///
    /// # Errors
    ///
    /// Unknown tensor names.
    pub fn fill_random(&mut self, name: &str, seed: u64) -> Result<(), CompileError> {
        let region = self.require(name)?;
        if self.runtime.mode() == Mode::Functional {
            let dims = &self.problem.tensor_spec(name).expect("required above").dims;
            let n = dims.iter().product::<i64>().max(1) as usize;
            let data = crate::problem::random_data(n, seed);
            self.runtime
                .set_region_data(region, data)
                .map_err(|e| CompileError::Session(e.to_string()))
        } else {
            self.runtime
                .fill_region(region, 0.0)
                .map_err(|e| CompileError::Session(e.to_string()))
        }
    }

    /// Fills a tensor with deterministic pseudo-random values thinned to
    /// `density` (the density knob of [`Session::fill_random`]; see
    /// [`crate::problem::sparse_random_data`]). Functional mode seeds the
    /// data (and, for compressed formats, the nnz-derived payload
    /// accounting); model mode marks the region valid.
    ///
    /// # Errors
    ///
    /// Unknown tensor names and densities outside `[0, 1]`.
    pub fn fill_random_sparse(
        &mut self,
        name: &str,
        seed: u64,
        density: f64,
    ) -> Result<(), CompileError> {
        let region = self.require(name)?;
        if !(0.0..=1.0).contains(&density) {
            return Err(CompileError::Session(format!(
                "density must be in [0, 1], got {density}"
            )));
        }
        if self.runtime.mode() == Mode::Functional {
            let dims = &self.problem.tensor_spec(name).expect("required above").dims;
            let n = dims.iter().product::<i64>().max(1) as usize;
            let data = crate::problem::sparse_random_data(n, seed, density);
            self.update_payload_scale(name, region, &data);
            self.runtime
                .set_region_data(region, data)
                .map_err(|e| CompileError::Session(e.to_string()))
        } else {
            // Model mode holds no data, but the *accounting* must still be
            // nnz-aware: derive the payload scale analytically from the
            // expected nnz at this density, so modeled copy bytes/timing
            // see the compression.
            let spec = self.problem.tensor_spec(name).expect("required above");
            if spec.format.has_compressed() {
                let volume = spec.dims.iter().product::<i64>().max(1) as f64;
                let nnz = (volume * density).round() as u64;
                let scale = distal_sparse::csr_payload_scale(&spec.dims, nnz);
                self.runtime.set_region_payload_scale(region, scale);
            }
            self.runtime
                .fill_region(region, 0.0)
                .map_err(|e| CompileError::Session(e.to_string()))
        }
    }

    /// Compiles an expression string with a schedule and default options.
    ///
    /// # Errors
    ///
    /// Parse and compile errors.
    pub fn compile(&self, expr: &str, schedule: &Schedule) -> Result<CompiledKernel, CompileError> {
        let assignment =
            Assignment::parse(expr).map_err(|e| CompileError::Expression(e.to_string()))?;
        self.compile_assignment(&assignment, schedule, &CompileOptions::default())
    }

    /// Applies the `precompute` transformation (paper §2) and compiles both
    /// resulting stages: the product of the tensors named in `factors` is
    /// hoisted into a workspace tensor `workspace(ws_vars)` (registered on
    /// this session with `ws_format`, dimensions inferred from the
    /// statement), and the remainder consumes it. Run the returned kernels
    /// in order.
    ///
    /// # Errors
    ///
    /// Parse errors, invalid precompute splits (escaped reductions,
    /// trivial factor sets), and compile errors from either stage.
    ///
    /// # Example
    ///
    /// The matrix triple product drops from `O(n⁴)` fused to `O(n³)`
    /// through a workspace:
    ///
    /// ```
    /// # use distal_core::{DistalMachine, Schedule, Session, TensorSpec};
    /// # use distal_format::Format;
    /// # use distal_machine::{Grid, spec::{MachineSpec, MemKind, ProcKind}};
    /// # use distal_runtime::Mode;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let machine = DistalMachine::flat(Grid::line(2), ProcKind::Cpu);
    /// let mut s = Session::new(MachineSpec::small(1), machine, Mode::Functional);
    /// let rows = Format::parse("xy->x", MemKind::Sys)?;
    /// for t in ["A", "B", "C", "D"] {
    ///     s.tensor(TensorSpec::new(t, vec![8, 8], rows.clone()))?;
    ///     if t != "A" {
    ///         s.fill_random(t, 7)?;
    ///     }
    /// }
    /// let dist = Schedule::new()
    ///     .divide("i", "io", "ii", 2)
    ///     .reorder(&["io", "ii"])
    ///     .distribute(&["io"]);
    /// let (ws, rest) = s.compile_with_precompute(
    ///     "A(i,l) = B(i,j) * C(j,k) * D(k,l)",
    ///     &["B", "C"],
    ///     "T",
    ///     &["i", "k"],
    ///     rows,
    ///     &dist,
    ///     &dist,
    /// )?;
    /// assert!(ws.total_flops + rest.total_flops < 2.0 * 8f64.powi(4));
    /// s.run(&ws)?;
    /// s.run(&rest)?;
    /// # Ok(())
    /// # }
    /// ```
    #[allow(clippy::too_many_arguments)]
    pub fn compile_with_precompute(
        &mut self,
        expr: &str,
        factors: &[&str],
        workspace: &str,
        ws_vars: &[&str],
        ws_format: Format,
        ws_schedule: &Schedule,
        schedule: &Schedule,
    ) -> Result<(CompiledKernel, CompiledKernel), CompileError> {
        let assignment =
            Assignment::parse(expr).map_err(|e| CompileError::Expression(e.to_string()))?;
        let (ws_stmt, rest_stmt) =
            distal_ir::precompute::precompute_product(&assignment, factors, workspace, ws_vars)
                .map_err(|e| CompileError::Expression(e.to_string()))?;
        // Workspace dimensions from the statement's inferred extents.
        let mut dims_map = BTreeMap::new();
        for acc in assignment.accesses() {
            let spec = self
                .problem
                .tensor_spec(&acc.tensor)
                .ok_or_else(|| CompileError::UnknownTensor(acc.tensor.clone()))?;
            dims_map.insert(acc.tensor.clone(), spec.dims.clone());
        }
        let extents = assignment
            .infer_extents(&dims_map)
            .ok_or(CompileError::InconsistentExtents)?;
        let ws_dims: Vec<i64> = ws_stmt.lhs.indices.iter().map(|v| extents[v]).collect();
        self.tensor(TensorSpec::new(workspace, ws_dims, ws_format))?;
        let options = CompileOptions::default();
        let ws_kernel = self.compile_assignment(&ws_stmt, ws_schedule, &options)?;
        let rest_kernel = self.compile_assignment(&rest_stmt, schedule, &options)?;
        Ok((ws_kernel, rest_kernel))
    }

    /// Compiles an assignment with explicit options.
    ///
    /// # Errors
    ///
    /// Compile errors (unknown tensors, bad schedules, oversized grids).
    pub fn compile_assignment(
        &self,
        assignment: &Assignment,
        schedule: &Schedule,
        options: &CompileOptions,
    ) -> Result<CompiledKernel, CompileError> {
        self.compile_on(
            &self.problem.machine().clone(),
            assignment,
            schedule,
            options,
        )
    }

    /// Compiles against an explicit abstract machine (baselines compile
    /// phases onto per-contraction grids sharing one runtime).
    ///
    /// # Errors
    ///
    /// Compile errors (unknown tensors, bad schedules, oversized grids).
    pub fn compile_on(
        &self,
        machine: &DistalMachine,
        assignment: &Assignment,
        schedule: &Schedule,
        options: &CompileOptions,
    ) -> Result<CompiledKernel, CompileError> {
        compile(
            assignment,
            &self.bindings(),
            machine,
            self.runtime.machine(),
            schedule,
            options,
        )
    }

    /// Runs a compiled kernel's placement program (moves tensors into their
    /// formats' distributions).
    ///
    /// # Errors
    ///
    /// Runtime errors (OOM, uninitialized data).
    pub fn place(&mut self, kernel: &CompiledKernel) -> Result<RunStats, RuntimeError> {
        self.runtime.run(&kernel.placement)
    }

    /// Runs a compiled kernel's compute program.
    ///
    /// # Errors
    ///
    /// Runtime errors (OOM, uninitialized data).
    pub fn execute(&mut self, kernel: &CompiledKernel) -> Result<RunStats, RuntimeError> {
        self.runtime.run(&kernel.compute)
    }

    /// Places then executes, returning `(placement, compute)` statistics.
    ///
    /// # Errors
    ///
    /// Runtime errors from either phase.
    pub fn run(&mut self, kernel: &CompiledKernel) -> Result<(RunStats, RunStats), RuntimeError> {
        let p = self.place(kernel)?;
        let c = self.execute(kernel)?;
        Ok((p, c))
    }

    /// Reads a tensor's current contents (functional mode).
    ///
    /// # Errors
    ///
    /// [`CompileError::UnknownTensor`] for unregistered names, and
    /// [`CompileError::Session`] wrapping runtime read errors.
    pub fn read(&self, name: &str) -> Result<Vec<f64>, CompileError> {
        let region = *self
            .regions
            .get(name)
            .ok_or_else(|| CompileError::UnknownTensor(name.into()))?;
        self.runtime
            .read_region(region)
            .map_err(|e| CompileError::Session(e.to_string()))
    }

    /// All registered tensor bindings (for baselines building raw
    /// programs), materialized from the problem registry.
    pub fn bindings(&self) -> BTreeMap<String, TensorBinding> {
        self.problem
            .tensors()
            .iter()
            .map(|(name, spec)| {
                (
                    name.clone(),
                    TensorBinding {
                        dims: spec.dims.clone(),
                        format: spec.format.clone(),
                        region: self.regions[name],
                    },
                )
            })
            .collect()
    }

    /// Builds a placement program moving the named tensors into their
    /// formats' distributions on `machine` (`true` marks inputs, which are
    /// pulled with pinned reads; outputs are established with writes).
    ///
    /// # Errors
    ///
    /// Unknown tensors or oversized grids.
    pub fn placement_program(
        &self,
        names: &[(&str, bool)],
        machine: &DistalMachine,
    ) -> Result<distal_runtime::Program, CompileError> {
        crate::lower::placement_program(&self.bindings(), names, machine, self.runtime.machine())
    }

    fn require(&self, name: &str) -> Result<RegionId, CompileError> {
        self.regions
            .get(name)
            .copied()
            .ok_or_else(|| CompileError::UnknownTensor(name.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use distal_machine::grid::Grid;
    use distal_machine::spec::{MemKind, ProcKind};

    fn matmul_session(n: i64, gx: i64, gy: i64) -> Session {
        let machine = DistalMachine::flat(Grid::grid2(gx, gy), ProcKind::Cpu);
        let mut s = Session::new(MachineSpec::small(4), machine, Mode::Functional);
        let f = Format::parse("xy->xy", MemKind::Sys).unwrap();
        for name in ["A", "B", "C"] {
            s.tensor(TensorSpec::new(name, vec![n, n], f.clone()))
                .unwrap();
        }
        s
    }

    #[test]
    fn summa_matches_oracle() {
        let n = 12;
        let mut s = matmul_session(n, 2, 2);
        s.fill_random("B", 7).unwrap();
        s.fill_random("C", 11).unwrap();
        let k = s
            .compile("A(i,j) = B(i,k) * C(k,j)", &Schedule::summa(2, 2, 4))
            .unwrap();
        s.run(&k).unwrap();
        let got = s.read("A").unwrap();

        let mut dims = BTreeMap::new();
        for t in ["A", "B", "C"] {
            dims.insert(t.to_string(), vec![n, n]);
        }
        let mut inputs = BTreeMap::new();
        inputs.insert("B".to_string(), s.read("B").unwrap());
        inputs.insert("C".to_string(), s.read("C").unwrap());
        let want = oracle::evaluate(&k.assignment, &dims, &inputs).unwrap();
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-9, "{g} vs {w}");
        }
    }

    #[test]
    fn format_arity_validated() {
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        let mut s = Session::new(MachineSpec::small(2), machine, Mode::Functional);
        // 1-D notation for a 2-D machine grid.
        let bad = Format::parse("x->x", MemKind::Sys).unwrap();
        assert!(matches!(
            s.tensor(TensorSpec::new("T", vec![4, 4], bad)),
            Err(CompileError::Format(_))
        ));
    }

    #[test]
    fn scalar_tensor_spec() {
        let machine = DistalMachine::flat(Grid::line(2), ProcKind::Cpu);
        let mut s = Session::new(MachineSpec::small(1), machine, Mode::Functional);
        s.tensor(TensorSpec::scalar("a")).unwrap();
        s.set_data("a", vec![3.5]).unwrap();
        assert_eq!(s.read("a").unwrap(), vec![3.5]);
    }

    #[test]
    fn unknown_tensor_errors() {
        let machine = DistalMachine::flat(Grid::line(1), ProcKind::Cpu);
        let mut s = Session::new(MachineSpec::small(1), machine, Mode::Functional);
        assert!(matches!(
            s.set_data("nope", vec![]),
            Err(CompileError::UnknownTensor(_))
        ));
        // `read` of an unknown name is an unknown-tensor error, not a
        // mode error (it used to masquerade as `NotFunctional`).
        assert!(matches!(
            s.read("nope"),
            Err(CompileError::UnknownTensor(t)) if t == "nope"
        ));
        assert!(matches!(
            s.fill_random("nope", 1),
            Err(CompileError::UnknownTensor(_))
        ));
    }
}
