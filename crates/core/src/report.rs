//! The backend-neutral execution report.
//!
//! Every [`Artifact`](crate::backend::Artifact) — dynamic runtime, static
//! SPMD, pure cost estimation — reports its placement and compute phases
//! in this one schema, so examples, tests, benches, and the autoscheduler
//! can compare backends without knowing which one produced the numbers.
//! The runtime's [`RunStats`] and the SPMD backend's `CommStats` +
//! α-β `CostReport` both normalize into it.

use crate::cache::CacheStats;
use crate::diagnostic::Diagnostic;
use distal_runtime::stats::{KernelClassStats, RunStats};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// How a [`Report`]'s numbers were obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Real data moved and real kernels ran (functional execution).
    Measured,
    /// A model predicted the numbers without touching data.
    Modeled,
}

/// A normalized execution report: what one backend phase moved and spent.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// The backend that produced the report (e.g. `"runtime"`, `"spmd"`,
    /// `"cost"`).
    pub backend: String,
    /// Whether the numbers were measured or modeled.
    pub provenance: Provenance,
    /// Bytes moved between processors (staging/seeding traffic excluded).
    pub bytes_moved: u64,
    /// Discrete transfers: runtime copies, or SPMD messages.
    pub messages: u64,
    /// Critical-path (makespan) seconds: measured wall clock when the
    /// backend really ran (functional runtime, threaded SPMD transport),
    /// else the backend's timing model.
    pub critical_path_s: f64,
    /// The model's critical-path prediction when `critical_path_s` is a
    /// *measured* wall clock (e.g. the SPMD α-β makespan alongside a
    /// threaded-transport run) — `None` when the headline number is
    /// itself the model's. See [`Report::modeled_vs_measured`].
    pub modeled_s: Option<f64>,
    /// Floating-point work performed (or modeled).
    pub flops: f64,
    /// Leaf tasks / compute blocks executed.
    pub tasks: u64,
    /// Peak transient memory attributable to the phase (scratch or
    /// instance buffers), in bytes. Backends that don't track it report 0.
    pub peak_bytes: u64,
    /// Plan-cache counters, when a [`crate::cache::PlanCache`] served the
    /// plan behind this report (see `PlanCache::annotate`). `None` for
    /// uncached compilations.
    pub cache: Option<CacheStats>,
    /// Work executed per leaf-kernel variant (`tape`, `gemm.gen`,
    /// `interpreter`, …), when the backend tracks it. Empty otherwise.
    pub kernel_classes: BTreeMap<String, KernelClassStats>,
    /// Findings from plan-time static verification (warnings only — an
    /// error-severity finding rejects the plan before any report
    /// exists). Empty on backends without a verifier.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for a phase that did nothing (e.g. placement on a
    /// backend whose data already starts at rest in its distribution).
    pub fn empty(backend: impl Into<String>, provenance: Provenance) -> Self {
        Report {
            backend: backend.into(),
            provenance,
            bytes_moved: 0,
            messages: 0,
            critical_path_s: 0.0,
            modeled_s: None,
            flops: 0.0,
            tasks: 0,
            peak_bytes: 0,
            cache: None,
            kernel_classes: BTreeMap::new(),
            diagnostics: Vec::new(),
        }
    }

    /// Normalizes the dynamic runtime's statistics.
    pub fn from_run_stats(
        backend: impl Into<String>,
        provenance: Provenance,
        s: &RunStats,
    ) -> Self {
        Report {
            backend: backend.into(),
            provenance,
            bytes_moved: s.total_bytes(),
            messages: s.copies + s.reductions_applied,
            critical_path_s: s.makespan_s,
            modeled_s: None,
            flops: s.total_flops,
            tasks: s.tasks,
            peak_bytes: s.peak_mem_bytes.values().copied().max().unwrap_or(0),
            cache: None,
            kernel_classes: s.task_classes.clone(),
            diagnostics: Vec::new(),
        }
    }

    /// Accumulates a subsequent (sequential) phase: totals sum, makespans
    /// add, peaks take the maximum.
    pub fn merge(&mut self, other: &Report) {
        self.bytes_moved += other.bytes_moved;
        self.messages += other.messages;
        self.critical_path_s += other.critical_path_s;
        // A phase without its own model prediction contributes its
        // headline time, so the merged ratio still compares like spans.
        self.modeled_s = match (self.modeled_s, other.modeled_s) {
            (None, None) => None,
            (a, b) => Some(
                a.unwrap_or(self.critical_path_s - other.critical_path_s)
                    + b.unwrap_or(other.critical_path_s),
            ),
        };
        self.flops += other.flops;
        self.tasks += other.tasks;
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
        if other.provenance == Provenance::Modeled {
            self.provenance = Provenance::Modeled;
        }
        // The later phase's cache view wins (it has seen more lookups);
        // keep ours when the other phase was uncached.
        if other.cache.is_some() {
            self.cache = other.cache;
        }
        for (k, v) in &other.kernel_classes {
            let e = self.kernel_classes.entry(k.clone()).or_default();
            e.tasks += v.tasks;
            e.flops += v.flops;
            e.busy_s += v.busy_s;
        }
        // Phases of one plan share its findings; don't repeat them.
        for d in &other.diagnostics {
            if !self.diagnostics.contains(d) {
                self.diagnostics.push(d.clone());
            }
        }
    }

    /// Modeled-over-measured critical-path ratio (`modeled_s /
    /// critical_path_s`): `1.0` means the cost model predicted the
    /// measured wall clock exactly, `> 1` that it over-estimated. `None`
    /// unless the report carries both numbers (threaded SPMD runs).
    pub fn modeled_vs_measured(&self) -> Option<f64> {
        match self.modeled_s {
            Some(m) if self.critical_path_s > 0.0 => Some(m / self.critical_path_s),
            _ => None,
        }
    }

    /// Achieved (or modeled) GFLOP/s over the critical path.
    pub fn gflops(&self) -> f64 {
        if self.critical_path_s <= 0.0 {
            return 0.0;
        }
        self.flops / self.critical_path_s / 1e9
    }

    /// One line per kernel variant with its task count, flop share, and
    /// busy-time flop rate — empty string when the backend doesn't track
    /// variants. Feeds the bench reports and CI summaries.
    pub fn kernel_summary(&self) -> String {
        let mut out = String::new();
        for (name, c) in &self.kernel_classes {
            let _ = writeln!(
                out,
                "  {name}: {} tasks, {:.3e} flops, {:.2} GFLOP/s",
                c.tasks,
                c.flops,
                c.gflops()
            );
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}/{}] {} msgs, {} B moved, {:.3e} flops, {} tasks, critical path {:.3} us",
            self.backend,
            match self.provenance {
                Provenance::Measured => "measured",
                Provenance::Modeled => "modeled",
            },
            self.messages,
            self.bytes_moved,
            self.flops,
            self.tasks,
            self.critical_path_s * 1e6
        )?;
        if let Some(ratio) = self.modeled_vs_measured() {
            write!(f, " (modeled/measured {ratio:.2})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distal_runtime::stats::ChannelClass;

    #[test]
    fn from_run_stats_normalizes() {
        let mut s = RunStats {
            makespan_s: 2.0,
            total_flops: 1e9,
            tasks: 4,
            copies: 3,
            reductions_applied: 1,
            ..RunStats::default()
        };
        s.bytes_by_class.insert(ChannelClass::InterNode, 100);
        s.bytes_by_class.insert(ChannelClass::Staging, 999);
        s.peak_mem_bytes.insert("SYS_MEM".into(), 64);
        let r = Report::from_run_stats("runtime", Provenance::Measured, &s);
        assert_eq!(r.bytes_moved, 100); // staging excluded
        assert_eq!(r.messages, 4);
        assert_eq!(r.tasks, 4);
        assert_eq!(r.peak_bytes, 64);
        assert!((r.gflops() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_and_degrades_provenance() {
        let mut a = Report::empty("runtime", Provenance::Measured);
        a.bytes_moved = 10;
        a.critical_path_s = 1.0;
        let mut b = Report::empty("runtime", Provenance::Modeled);
        b.bytes_moved = 5;
        b.critical_path_s = 0.5;
        b.peak_bytes = 7;
        a.merge(&b);
        assert_eq!(a.bytes_moved, 15);
        assert_eq!(a.critical_path_s, 1.5);
        assert_eq!(a.peak_bytes, 7);
        assert_eq!(a.provenance, Provenance::Modeled);
    }

    #[test]
    fn empty_is_silent() {
        let r = Report::empty("spmd", Provenance::Measured);
        assert_eq!(r.bytes_moved, 0);
        assert_eq!(r.gflops(), 0.0);
        assert!(format!("{r}").contains("spmd"));
    }
}
