//! A sequential reference evaluator — the correctness oracle for tests.

use distal_ir::expr::{Assignment, Expr};
use std::collections::BTreeMap;

/// Evaluates a tensor index notation statement sequentially.
///
/// `dims` gives each tensor's dimension sizes; `inputs` gives row-major
/// data for every right-hand-side tensor. Returns the output tensor's
/// row-major data.
///
/// # Errors
///
/// Reports missing tensors, inconsistent extents, and size mismatches as
/// strings (this is a test utility, not part of the compiler surface).
pub fn evaluate(
    assignment: &Assignment,
    dims: &BTreeMap<String, Vec<i64>>,
    inputs: &BTreeMap<String, Vec<f64>>,
) -> Result<Vec<f64>, String> {
    let extents = assignment
        .infer_extents(dims)
        .ok_or_else(|| "missing tensor dims or inconsistent extents".to_string())?;
    let vars = assignment.all_vars();
    let var_extents: Vec<i64> = vars.iter().map(|v| extents[v]).collect();

    // Validate input sizes.
    for acc in assignment.input_accesses() {
        let d = dims
            .get(&acc.tensor)
            .ok_or(format!("missing dims for {}", acc.tensor))?;
        let expect: i64 = d.iter().product();
        let data = inputs
            .get(&acc.tensor)
            .ok_or(format!("missing data for {}", acc.tensor))?;
        if data.len() as i64 != expect {
            return Err(format!(
                "tensor {} has {} elements, expected {}",
                acc.tensor,
                data.len(),
                expect
            ));
        }
    }

    let out_dims = dims
        .get(&assignment.lhs.tensor)
        .ok_or(format!("missing dims for {}", assignment.lhs.tensor))?;
    let out_len: i64 = out_dims.iter().product::<i64>().max(1);
    let mut out = vec![0.0; out_len as usize];

    // Precompute access metadata: variable positions and strides.
    struct AccessInfo<'a> {
        var_pos: Vec<usize>,
        strides: Vec<i64>,
        data: &'a [f64],
    }
    let mut infos: Vec<AccessInfo> = Vec::new();
    for acc in assignment.input_accesses() {
        let d = &dims[&acc.tensor];
        let mut strides = vec![1i64; d.len()];
        for i in (0..d.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * d[i + 1];
        }
        infos.push(AccessInfo {
            var_pos: acc
                .indices
                .iter()
                .map(|v| vars.iter().position(|x| x == v).unwrap())
                .collect(),
            strides,
            data: &inputs[&acc.tensor],
        });
    }
    let mut out_strides = vec![1i64; out_dims.len()];
    for i in (0..out_dims.len().saturating_sub(1)).rev() {
        out_strides[i] = out_strides[i + 1] * out_dims[i + 1];
    }
    let out_pos: Vec<usize> = assignment
        .lhs
        .indices
        .iter()
        .map(|v| vars.iter().position(|x| x == v).unwrap())
        .collect();

    let mut point = vec![0i64; vars.len()];
    if var_extents.contains(&0) {
        return Ok(out);
    }
    let mut values = vec![0.0f64; infos.len()];
    loop {
        for (vi, info) in infos.iter().enumerate() {
            let mut idx = 0;
            for (d, &p) in info.var_pos.iter().enumerate() {
                idx += point[p] * info.strides[d];
            }
            values[vi] = info.data[idx as usize];
        }
        let mut it = values.iter().copied();
        let v = eval_expr(&assignment.rhs, &mut it);
        let mut idx = 0;
        for (d, &p) in out_pos.iter().enumerate() {
            idx += point[p] * out_strides[d];
        }
        if assignment.is_reduction() {
            out[idx as usize] += v;
        } else {
            out[idx as usize] = v;
        }
        // Odometer.
        let mut d = vars.len();
        loop {
            if d == 0 {
                return Ok(out);
            }
            d -= 1;
            point[d] += 1;
            if point[d] < var_extents[d] {
                break;
            }
            point[d] = 0;
            if d == 0 {
                return Ok(out);
            }
        }
    }
}

fn eval_expr(e: &Expr, values: &mut impl Iterator<Item = f64>) -> f64 {
    match e {
        Expr::Access(_) => values.next().expect("missing value"),
        Expr::Literal(c) => *c,
        Expr::Add(l, r) => {
            let a = eval_expr(l, values);
            let b = eval_expr(r, values);
            a + b
        }
        Expr::Mul(l, r) => {
            let a = eval_expr(l, values);
            let b = eval_expr(r, values);
            a * b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distal_ir::expr::kernels;

    fn dims_of(pairs: &[(&str, &[i64])]) -> BTreeMap<String, Vec<i64>> {
        pairs
            .iter()
            .map(|(n, d)| (n.to_string(), d.to_vec()))
            .collect()
    }

    #[test]
    fn matmul_identity() {
        let n = 3i64;
        let dims = dims_of(&[("A", &[n, n]), ("B", &[n, n]), ("C", &[n, n])]);
        let ident: Vec<f64> = (0..n * n)
            .map(|x| if x / n == x % n { 1.0 } else { 0.0 })
            .collect();
        let b: Vec<f64> = (0..n * n).map(|x| x as f64).collect();
        let mut inputs = BTreeMap::new();
        inputs.insert("B".into(), b.clone());
        inputs.insert("C".into(), ident);
        let out = evaluate(&kernels::matmul(), &dims, &inputs).unwrap();
        assert_eq!(out, b);
    }

    #[test]
    fn ttv_small() {
        // B is 2x2x2 of ones, c = [1, 2]; A(i,j) = sum_k B(i,j,k) c(k) = 3.
        let dims = dims_of(&[("A", &[2, 2]), ("B", &[2, 2, 2]), ("c", &[2])]);
        let mut inputs = BTreeMap::new();
        inputs.insert("B".into(), vec![1.0; 8]);
        inputs.insert("c".into(), vec![1.0, 2.0]);
        let out = evaluate(&kernels::ttv(), &dims, &inputs).unwrap();
        assert_eq!(out, vec![3.0; 4]);
    }

    #[test]
    fn innerprod_scalar() {
        let dims = dims_of(&[("a", &[]), ("B", &[2, 2, 2]), ("C", &[2, 2, 2])]);
        let mut inputs = BTreeMap::new();
        inputs.insert("B".into(), vec![2.0; 8]);
        inputs.insert("C".into(), vec![3.0; 8]);
        let out = evaluate(&kernels::innerprod(), &dims, &inputs).unwrap();
        assert_eq!(out, vec![48.0]);
    }

    #[test]
    fn mttkrp_hand_checked() {
        // 2x2x2 B of ones; C, D 2x2 of ones: A(i,l) = sum_{j,k} 1 = 4.
        let dims = dims_of(&[
            ("A", &[2, 2]),
            ("B", &[2, 2, 2]),
            ("C", &[2, 2]),
            ("D", &[2, 2]),
        ]);
        let mut inputs = BTreeMap::new();
        inputs.insert("B".into(), vec![1.0; 8]);
        inputs.insert("C".into(), vec![1.0; 4]);
        inputs.insert("D".into(), vec![1.0; 4]);
        let out = evaluate(&kernels::mttkrp(), &dims, &inputs).unwrap();
        assert_eq!(out, vec![4.0; 4]);
    }

    #[test]
    fn size_mismatch_reported() {
        let dims = dims_of(&[("A", &[2]), ("B", &[2])]);
        let mut inputs = BTreeMap::new();
        inputs.insert("B".into(), vec![1.0; 3]);
        let a = distal_ir::expr::Assignment::parse("A(i) = B(i)").unwrap();
        assert!(evaluate(&a, &dims, &inputs)
            .unwrap_err()
            .contains("elements"));
    }
}
