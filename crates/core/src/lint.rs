//! Schedule admission: a static typechecker + performance linter over
//! `(Problem, Schedule, Format, Machine)`, run in every `Backend::plan`
//! *before* lowering (pipeline layer 1½ — see `ARCHITECTURE.md`).
//!
//! Two pass families, both emitting the [`crate::diagnostic`] machinery
//! with the offending command index, loop variable, tensor, and a fix-it
//! hint:
//!
//! * **legality** — schedules that cannot lower or would execute wrongly:
//!   unknown/duplicated loop variables, `distribute_onto` grids that
//!   disagree with the machine shape, non-positive chunk/part counts,
//!   `communicate` at a nonexistent loop level, and re-distribution of
//!   an already-distributed dimension;
//! * **performance** — schedules that lower but waste the machine: load
//!   imbalance from non-dividing or overpartitioned part counts (with
//!   the computed imbalance ratio), coordinate-range distribution over a
//!   `Compressed` level (data-dependent positions land uneven nonzero
//!   counts), replication blowup past a byte threshold, communication
//!   fans the collective recognizer provably cannot rewrite, large
//!   tensors left undistributed on a multi-processor machine, and shape-
//!   specialized chunks that make the serving `PlanKey` cardinality
//!   unbounded.
//!
//! Severity is configured per lint through [`LintConfig`], rustc-style
//! (`-A`/`-W`/`-D`): denied lints fail `plan` with
//! [`BackendError::Verification`]; warned lints ride on the plan's
//! diagnostics into [`crate::report::Report::diagnostics`]. The config's
//! [`LintConfig::fingerprint`] is part of every backend's
//! `config_fingerprint`, so differently-configured plans never alias in
//! the [`crate::cache::PlanCache`]. The autoscheduler runs the same
//! analysis as a pre-cost pruner: candidates with denied findings are
//! dropped before any lowering or α-β costing.

use crate::backend::BackendError;
use crate::diagnostic::{Diagnostic, DiagnosticKind};
use crate::problem::Problem;
use crate::schedule::{SchedCmd, Schedule};
use distal_format::{DimName, Format, LevelFormat, PartitionKind};
use distal_machine::ELEM_BYTES;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// What a configured lint does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintLevel {
    /// Drop the finding entirely.
    Allow,
    /// Report the finding on the plan (and its executions' reports).
    Warn,
    /// Reject the plan with [`BackendError::Verification`].
    Deny,
}

impl fmt::Display for LintLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LintLevel::Allow => "allow",
            LintLevel::Warn => "warn",
            LintLevel::Deny => "deny",
        })
    }
}

/// One admission lint. Legality lints default to [`LintLevel::Deny`],
/// performance lints to [`LintLevel::Warn`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// A command names a loop variable that does not exist (legality).
    UnknownLoopVar,
    /// A command introduces a name that already exists, or lists one
    /// variable twice (legality).
    DuplicateLoopVar,
    /// The distributed shape disagrees with the machine grid (legality).
    GridMismatch,
    /// A non-positive chunk or part count (legality).
    BadChunk,
    /// `communicate` at a nonexistent loop or over a tensor the statement
    /// never accesses (legality).
    BadCommunicate,
    /// A dimension distributed more than once (legality).
    Redistribution,
    /// A coordinate-range distribution over a `Compressed` level:
    /// positions are data-dependent, so range partitions land wildly
    /// uneven nonzero counts per processor (performance).
    CompressedDistribution,
    /// Part counts that leave some processors with larger tiles — or,
    /// when the count exceeds the extent, with no work at all
    /// (performance).
    LoadImbalance,
    /// A broadcast machine dimension replicates a tensor past
    /// [`LintConfig::replication_threshold_bytes`] (performance).
    ReplicationBlowup,
    /// A communication fan whose per-destination payloads provably differ,
    /// so the collective recognizer cannot rewrite it into a tree or ring
    /// (performance).
    UnrewritableFan,
    /// A large tensor left undistributed on a multi-processor machine
    /// (performance).
    UndistributedTensor,
    /// A schedule parameter tied to the data shape makes the serving
    /// `PlanKey` cardinality unbounded (performance).
    PlanCardinality,
}

impl Lint {
    /// Every lint, in the stable order fingerprints and docs use.
    pub fn all() -> [Lint; 12] {
        [
            Lint::UnknownLoopVar,
            Lint::DuplicateLoopVar,
            Lint::GridMismatch,
            Lint::BadChunk,
            Lint::BadCommunicate,
            Lint::Redistribution,
            Lint::CompressedDistribution,
            Lint::LoadImbalance,
            Lint::ReplicationBlowup,
            Lint::UnrewritableFan,
            Lint::UndistributedTensor,
            Lint::PlanCardinality,
        ]
    }

    /// The diagnostic kind this lint emits.
    pub fn kind(self) -> DiagnosticKind {
        match self {
            Lint::UnknownLoopVar => DiagnosticKind::UnknownLoopVar,
            Lint::DuplicateLoopVar => DiagnosticKind::DuplicateLoopVar,
            Lint::GridMismatch => DiagnosticKind::GridMismatch,
            Lint::BadChunk => DiagnosticKind::BadChunk,
            Lint::BadCommunicate => DiagnosticKind::BadCommunicate,
            Lint::Redistribution => DiagnosticKind::Redistribution,
            Lint::CompressedDistribution => DiagnosticKind::CompressedDistribution,
            Lint::LoadImbalance => DiagnosticKind::LoadImbalance,
            Lint::ReplicationBlowup => DiagnosticKind::ReplicationBlowup,
            Lint::UnrewritableFan => DiagnosticKind::UnrewritableFan,
            Lint::UndistributedTensor => DiagnosticKind::UndistributedTensor,
            Lint::PlanCardinality => DiagnosticKind::PlanCardinality,
        }
    }

    /// True for the legality family (schedules that cannot lower or would
    /// execute wrongly); false for performance lints.
    pub fn is_legality(self) -> bool {
        matches!(
            self,
            Lint::UnknownLoopVar
                | Lint::DuplicateLoopVar
                | Lint::GridMismatch
                | Lint::BadChunk
                | Lint::BadCommunicate
                | Lint::Redistribution
        )
    }

    /// The out-of-the-box level: legality denies, performance warns.
    pub fn default_level(self) -> LintLevel {
        if self.is_legality() {
            LintLevel::Deny
        } else {
            LintLevel::Warn
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.kind().fmt(f)
    }
}

/// Per-lint severity configuration, rustc-style (`-A`/`-W`/`-D` per
/// lint), plus the byte thresholds the performance lints compare against.
///
/// The config participates in plan identity: every backend appends
/// [`LintConfig::fingerprint`] to its `config_fingerprint`, so plans
/// admitted under different configurations never alias in the
/// [`crate::cache::PlanCache`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintConfig {
    levels: BTreeMap<Lint, LintLevel>,
    /// Bytes past which a broadcast machine dimension's replication of a
    /// tensor fires [`Lint::ReplicationBlowup`].
    pub replication_threshold_bytes: u64,
    /// Bytes past which an undistributed tensor on a multi-processor
    /// machine fires [`Lint::UndistributedTensor`].
    pub undistributed_threshold_bytes: u64,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig::new()
    }
}

impl LintConfig {
    /// The default configuration: legality lints deny, performance lints
    /// warn, 1 MiB thresholds.
    pub fn new() -> Self {
        LintConfig {
            levels: BTreeMap::new(),
            replication_threshold_bytes: 1 << 20,
            undistributed_threshold_bytes: 1 << 20,
        }
    }

    /// Every lint at [`LintLevel::Deny`] (warnings become errors).
    pub fn deny_all() -> Self {
        let mut c = LintConfig::new();
        for l in Lint::all() {
            c.levels.insert(l, LintLevel::Deny);
        }
        c
    }

    /// Every lint at [`LintLevel::Allow`] (admission is a no-op).
    pub fn allow_all() -> Self {
        let mut c = LintConfig::new();
        for l in Lint::all() {
            c.levels.insert(l, LintLevel::Allow);
        }
        c
    }

    /// Sets one lint to [`LintLevel::Deny`].
    #[must_use]
    pub fn deny(mut self, lint: Lint) -> Self {
        self.levels.insert(lint, LintLevel::Deny);
        self
    }

    /// Sets one lint to [`LintLevel::Warn`].
    #[must_use]
    pub fn warn(mut self, lint: Lint) -> Self {
        self.levels.insert(lint, LintLevel::Warn);
        self
    }

    /// Sets one lint to [`LintLevel::Allow`].
    #[must_use]
    pub fn allow(mut self, lint: Lint) -> Self {
        self.levels.insert(lint, LintLevel::Allow);
        self
    }

    /// The effective level of a lint (explicit setting or the lint's
    /// default).
    pub fn level(&self, lint: Lint) -> LintLevel {
        self.levels
            .get(&lint)
            .copied()
            .unwrap_or_else(|| lint.default_level())
    }

    /// A stable textual identity of the whole configuration: every lint's
    /// effective level (in [`Lint::all`] order) plus the byte thresholds.
    /// Backends append this to their `config_fingerprint` so the plan
    /// cache never aliases differently-configured plans.
    pub fn fingerprint(&self) -> String {
        let mut s = String::new();
        for l in Lint::all() {
            if !s.is_empty() {
                s.push(',');
            }
            s.push_str(&format!("{l}={}", self.level(l)));
        }
        s.push_str(&format!(
            ";rep={};undist={}",
            self.replication_threshold_bytes, self.undistributed_threshold_bytes
        ));
        s
    }
}

/// Runs every configured pass and returns the findings (errors and
/// warnings, in schedule order then format order). Allowed lints are
/// dropped.
pub fn lint_schedule(
    problem: &Problem,
    schedule: &Schedule,
    config: &LintConfig,
) -> Vec<Diagnostic> {
    let mut linter = Linter {
        config,
        diags: Vec::new(),
    };
    linter.walk_schedule(problem, schedule);
    linter.lint_formats(problem);
    linter.diags
}

/// The admission gate every `Backend::plan` calls before lowering.
///
/// # Errors
///
/// [`BackendError::Verification`] carrying *all* findings when any denied
/// lint fired; otherwise `Ok` with the warnings (to ride on the plan).
pub fn admit(
    problem: &Problem,
    schedule: &Schedule,
    config: &LintConfig,
) -> Result<Vec<Diagnostic>, BackendError> {
    let diags = lint_schedule(problem, schedule, config);
    if diags.iter().any(Diagnostic::is_error) {
        return Err(BackendError::Verification(diags));
    }
    Ok(diags)
}

/// What the linter knows about one live loop variable while walking the
/// schedule.
#[derive(Clone, Debug)]
struct VarState {
    /// Iteration count, when the statement's extents determine it.
    extent: Option<i64>,
    /// Whether the loop is distributed (directly or inherited from the
    /// variable it derives from).
    distributed: bool,
    /// The original statement variables this loop derives from.
    roots: BTreeSet<String>,
}

struct Linter<'a> {
    config: &'a LintConfig,
    diags: Vec<Diagnostic>,
}

impl Linter<'_> {
    fn emit(
        &mut self,
        lint: Lint,
        message: String,
        decorate: impl FnOnce(Diagnostic) -> Diagnostic,
    ) {
        let d = match self.config.level(lint) {
            LintLevel::Allow => return,
            LintLevel::Warn => Diagnostic::warning(lint.kind(), message),
            LintLevel::Deny => Diagnostic::error(lint.kind(), message),
        };
        self.diags.push(decorate(d));
    }

    /// The legality/performance walk over the schedule's commands,
    /// simulating the loop-variable environment the commands build up.
    fn walk_schedule(&mut self, problem: &Problem, schedule: &Schedule) {
        let Some(assignment) = problem.assignment() else {
            return; // nothing to check; planning reports the missing statement
        };
        let extents = assignment.infer_extents(&problem.dims_map());
        let mut vars: BTreeMap<String, VarState> = BTreeMap::new();
        for v in assignment.all_vars() {
            vars.insert(
                v.0.clone(),
                VarState {
                    extent: extents.as_ref().and_then(|e| e.get(&v).copied()),
                    distributed: false,
                    roots: BTreeSet::from([v.0.clone()]),
                },
            );
        }
        let statement_tensors: BTreeSet<String> = assignment
            .accesses()
            .iter()
            .map(|a| a.tensor.clone())
            .collect();
        let machine_dims: Vec<i64> = problem.machine().grid().dims().to_vec();
        let machine_size = problem.machine().size();

        for (idx, cmd) in schedule.commands().iter().enumerate() {
            match cmd {
                SchedCmd::Divide {
                    var,
                    outer,
                    inner,
                    parts,
                } => {
                    self.check_derive(&mut vars, idx, var, outer, inner, *parts, true);
                }
                SchedCmd::Split {
                    var,
                    outer,
                    inner,
                    chunk,
                } => {
                    self.check_derive(&mut vars, idx, var, outer, inner, *chunk, false);
                }
                SchedCmd::Reorder(order) => {
                    let mut seen = BTreeSet::new();
                    for v in order {
                        if !seen.insert(v.clone()) {
                            self.emit(
                                Lint::DuplicateLoopVar,
                                format!("reorder lists '{v}' more than once"),
                                |d| {
                                    d.with_command(idx)
                                        .with_var(v.clone())
                                        .with_fixit("list each variable once")
                                },
                            );
                        } else if !vars.contains_key(v) {
                            self.unknown_var(&vars, idx, v);
                        }
                    }
                }
                SchedCmd::Distribute(list) => {
                    for v in list {
                        if !vars.contains_key(v) {
                            self.unknown_var(&vars, idx, v);
                            continue;
                        }
                        self.check_redistribution(&vars, idx, v);
                        vars.get_mut(v).expect("checked above").distributed = true;
                    }
                    self.check_distributed_volume(&vars, idx, machine_size);
                }
                SchedCmd::DistributeOnto {
                    targets,
                    dist,
                    local,
                    dims,
                } => {
                    if targets.len() != dist.len()
                        || targets.len() != local.len()
                        || targets.len() != dims.len()
                    {
                        self.emit(
                            Lint::GridMismatch,
                            format!(
                                "distribute_onto argument lists disagree: {} targets, {} dist, \
                                 {} local, {} grid dims",
                                targets.len(),
                                dist.len(),
                                local.len(),
                                dims.len()
                            ),
                            |d| {
                                d.with_command(idx).with_fixit(
                                    "give each target one dist var, one local var, and one grid dim",
                                )
                            },
                        );
                        continue;
                    }
                    if dims.as_slice() != machine_dims.as_slice() {
                        let grid = |ds: &[i64]| {
                            ds.iter()
                                .map(|d| d.to_string())
                                .collect::<Vec<_>>()
                                .join("x")
                        };
                        let (want, got) = (grid(&machine_dims), grid(dims));
                        self.emit(
                            Lint::GridMismatch,
                            format!(
                                "schedule distributes onto a {got} grid but the machine \
                                 grid is {want}"
                            ),
                            |d| {
                                d.with_command(idx).with_fixit(format!(
                                    "distribute onto {want} (the machine grid)"
                                ))
                            },
                        );
                    }
                    for i in 0..targets.len() {
                        if vars.contains_key(&targets[i]) {
                            self.check_redistribution(&vars, idx, &targets[i]);
                        }
                        self.check_derive(
                            &mut vars,
                            idx,
                            &targets[i],
                            &dist[i],
                            &local[i],
                            dims[i],
                            true,
                        );
                        if let Some(s) = vars.get_mut(&dist[i]) {
                            s.distributed = true;
                        }
                    }
                    self.check_distributed_volume(&vars, idx, machine_size);
                }
                SchedCmd::Communicate { tensors, var } => {
                    if !vars.contains_key(var) {
                        let available = live_vars(&vars);
                        self.emit(
                            Lint::BadCommunicate,
                            format!("communicate at '{var}', which is not a loop of the schedule"),
                            |d| {
                                d.with_command(idx)
                                    .with_var(var.clone())
                                    .with_fixit(format!("aggregate at one of: {available}"))
                            },
                        );
                    }
                    for t in tensors {
                        if !statement_tensors.contains(t) {
                            let known = statement_tensors
                                .iter()
                                .cloned()
                                .collect::<Vec<_>>()
                                .join(", ");
                            self.emit(
                                Lint::BadCommunicate,
                                format!("communicate of '{t}', which the statement never accesses"),
                                |d| {
                                    d.with_command(idx)
                                        .with_tensor(t.clone())
                                        .with_fixit(format!("communicate one of: {known}"))
                                },
                            );
                        } else if let Some(spec) = problem.tensor_spec(t) {
                            self.check_fan(idx, t, var, &spec.format);
                        }
                    }
                }
                SchedCmd::Rotate {
                    target,
                    over,
                    result,
                } => {
                    for v in std::iter::once(target).chain(over.iter()) {
                        if !vars.contains_key(v) {
                            self.unknown_var(&vars, idx, v);
                        }
                    }
                    if vars.contains_key(result) {
                        self.duplicate_var(idx, result);
                    } else if let Some(state) = vars.remove(target) {
                        vars.insert(result.clone(), state);
                    }
                }
                SchedCmd::Parallelize(var) => {
                    if !vars.contains_key(var) {
                        self.unknown_var(&vars, idx, var);
                    }
                }
                SchedCmd::Collapse { a, b, fused } => {
                    for v in [a, b] {
                        if !vars.contains_key(v) {
                            self.unknown_var(&vars, idx, v);
                        }
                    }
                    if vars.contains_key(fused) {
                        self.duplicate_var(idx, fused);
                        continue;
                    }
                    let sa = vars.remove(a);
                    let sb = vars.remove(b);
                    if let (Some(sa), Some(sb)) = (sa, sb) {
                        let mut roots = sa.roots;
                        roots.extend(sb.roots);
                        vars.insert(
                            fused.clone(),
                            VarState {
                                extent: sa.extent.zip(sb.extent).map(|(x, y)| x * y),
                                distributed: sa.distributed || sb.distributed,
                                roots,
                            },
                        );
                    }
                }
                SchedCmd::Substitute {
                    vars: leaf_vars, ..
                } => {
                    for v in leaf_vars {
                        if !vars.contains_key(v) {
                            self.unknown_var(&vars, idx, v);
                        }
                    }
                }
            }
        }
    }

    /// Shared `divide`/`split` checks + state update. `count` is the part
    /// count (divide) or chunk size (split).
    #[allow(clippy::too_many_arguments)]
    fn check_derive(
        &mut self,
        vars: &mut BTreeMap<String, VarState>,
        idx: usize,
        var: &str,
        outer: &str,
        inner: &str,
        count: i64,
        is_divide: bool,
    ) {
        let what = if is_divide { "part count" } else { "chunk" };
        if count <= 0 {
            self.emit(
                Lint::BadChunk,
                format!("{what} {count} is not positive"),
                |d| {
                    d.with_command(idx)
                        .with_var(var.to_string())
                        .with_fixit("use a positive count")
                },
            );
        }
        let Some(state) = vars.remove(var) else {
            self.unknown_var(vars, idx, var);
            // Keep walking with unknown-extent halves to avoid cascades.
            for v in [outer, inner] {
                vars.entry(v.to_string()).or_insert(VarState {
                    extent: None,
                    distributed: false,
                    roots: BTreeSet::from([var.to_string()]),
                });
            }
            return;
        };
        for (i, v) in [outer, inner].into_iter().enumerate() {
            if vars.contains_key(v) || (i == 1 && outer == inner) {
                self.duplicate_var(idx, v);
            }
        }
        let mut outer_extent = None;
        let mut inner_extent = None;
        if count > 0 {
            if let Some(e) = state.extent {
                if is_divide && count > e {
                    // Empty parts lower fine (they become zero-iteration
                    // tiles), so this is the extreme of load imbalance —
                    // some processors get no work at all — not a legality
                    // violation.
                    self.emit(
                        Lint::LoadImbalance,
                        format!(
                            "divide of '{var}' (extent {e}) into {count} parts leaves empty parts"
                        ),
                        |d| {
                            d.with_command(idx)
                                .with_var(var.to_string())
                                .with_fixit(format!("reduce the part count to at most {e}"))
                        },
                    );
                } else if !is_divide && count >= e && e > 1 {
                    self.emit(
                        Lint::PlanCardinality,
                        format!(
                            "chunk {count} covers the whole extent {e}: the schedule is \
                             specialized to this shape, so serving over varied shapes compiles \
                             a fresh plan per shape (unbounded PlanKey cardinality)"
                        ),
                        |d| {
                            d.with_command(idx)
                                .with_var(var.to_string())
                                .with_fixit(format!("use a chunk smaller than the extent {e}"))
                        },
                    );
                } else if e % count != 0 {
                    let parts = if is_divide { count } else { ceil_div(e, count) };
                    let tile = ceil_div(e, parts);
                    let ratio = (tile * parts) as f64 / e as f64;
                    self.emit(
                        Lint::LoadImbalance,
                        format!(
                            "{what} {count} does not divide extent {e} of '{var}': the largest \
                             tile does {ratio:.2}x the work of a balanced one"
                        ),
                        |d| {
                            d.with_command(idx)
                                .with_var(var.to_string())
                                .with_fixit(format!("use a count dividing {e}"))
                        },
                    );
                }
                if is_divide {
                    outer_extent = Some(count.min(e));
                    inner_extent = Some(ceil_div(e, count.max(1)));
                } else {
                    outer_extent = Some(ceil_div(e, count.max(1)));
                    inner_extent = Some(count.min(e));
                }
            } else if is_divide {
                outer_extent = Some(count);
            } else {
                inner_extent = Some(count);
            }
        }
        // Mirror the rewrite: the outer half inherits the distributed tag.
        vars.insert(
            outer.to_string(),
            VarState {
                extent: outer_extent,
                distributed: state.distributed,
                roots: state.roots.clone(),
            },
        );
        vars.insert(
            inner.to_string(),
            VarState {
                extent: inner_extent,
                distributed: false,
                roots: state.roots,
            },
        );
    }

    fn check_redistribution(&mut self, vars: &BTreeMap<String, VarState>, idx: usize, v: &str) {
        let Some(state) = vars.get(v) else { return };
        if state.distributed {
            let root = state.roots.iter().cloned().collect::<Vec<_>>().join(",");
            self.emit(
                Lint::Redistribution,
                format!("'{v}' is already distributed"),
                |d| {
                    d.with_command(idx)
                        .with_var(v.to_string())
                        .with_fixit(format!("distribute '{root}' once"))
                },
            );
            return;
        }
        // A sibling loop derived from the same statement dimension that is
        // already distributed: the dimension would be distributed twice.
        for (other, o) in vars {
            if other != v && o.distributed && o.roots.intersection(&state.roots).next().is_some() {
                let root = state.roots.iter().cloned().collect::<Vec<_>>().join(",");
                self.emit(
                    Lint::Redistribution,
                    format!("'{v}' derives from '{root}', which '{other}' already distributes"),
                    |d| {
                        d.with_command(idx)
                            .with_var(v.to_string())
                            .with_fixit(format!("distribute '{root}' once"))
                    },
                );
                return;
            }
        }
    }

    /// After a distribute, the launch domain (product of distributed loop
    /// extents) must fit the machine.
    fn check_distributed_volume(
        &mut self,
        vars: &BTreeMap<String, VarState>,
        idx: usize,
        machine_size: i64,
    ) {
        let mut product: i64 = 1;
        let mut named = Vec::new();
        for (v, s) in vars {
            if s.distributed {
                let Some(e) = s.extent else { return }; // unknown: stay conservative
                product = product.saturating_mul(e);
                named.push(v.clone());
            }
        }
        if product > machine_size {
            self.emit(
                Lint::GridMismatch,
                format!(
                    "distributing {} launches {product} tasks but the machine has \
                     {machine_size} processors",
                    named.join(",")
                ),
                |d| {
                    d.with_command(idx)
                        .with_fixit(format!("distribute at most {machine_size} iterations"))
                },
            );
        }
    }

    /// Fans of cyclic/block-cyclic tiles send a different stripe set to
    /// every destination, which the collective recognizer (same
    /// `(tensor, rect)` payload across destinations) provably cannot
    /// rewrite into a broadcast tree or ring.
    fn check_fan(&mut self, idx: usize, tensor: &str, var: &str, format: &Format) {
        for dist in &format.distributions {
            if matches!(
                dist.partition,
                PartitionKind::Cyclic | PartitionKind::BlockCyclic { .. }
            ) {
                self.emit(
                    Lint::UnrewritableFan,
                    format!(
                        "communicating '{tensor}' at '{var}' fans out per-destination stripe \
                         sets ({} partitioning), which the collective recognizer cannot \
                         rewrite into a tree or ring",
                        match dist.partition {
                            PartitionKind::Cyclic => "cyclic".to_string(),
                            PartitionKind::BlockCyclic { block } =>
                                format!("block-cyclic({block})"),
                            PartitionKind::Blocked => unreachable!("matched above"),
                        }
                    ),
                    |d| {
                        d.with_command(idx)
                            .with_tensor(tensor.to_string())
                            .with_var(var.to_string())
                            .with_fixit(format!("use a blocked partition for '{tensor}'"))
                    },
                );
                return;
            }
        }
    }

    /// The format passes: compressed-level distribution legality plus the
    /// replication and undistributed-size performance lints.
    fn lint_formats(&mut self, problem: &Problem) {
        let machine = problem.machine();
        let levels = machine.hierarchy.levels().to_vec();
        let machine_size = machine.size();
        for (name, spec) in problem.tensors() {
            let volume_bytes = spec.dims.iter().product::<i64>().unsigned_abs() * ELEM_BYTES;
            for (li, dist) in spec.format.distributions.iter().enumerate() {
                for (ti, _mi) in dist.partitioned_pairs() {
                    if spec.format.level(ti) == LevelFormat::Compressed {
                        self.emit(
                            Lint::CompressedDistribution,
                            format!(
                                "tensor '{name}' partitions dimension {ti} by coordinate \
                                 ranges, but that dimension is stored Compressed (its \
                                 coordinates are positions, not ranges)"
                            ),
                            |d| {
                                d.with_tensor(name.clone()).with_fixit(format!(
                                    "store dimension {ti} as Dense or partition a dense dimension"
                                ))
                            },
                        );
                    }
                }
                let Some(grid) = levels.get(li) else { continue };
                let mut factor: i64 = 1;
                for (mi, d) in dist.machine_dims.iter().enumerate() {
                    if *d == DimName::Broadcast && mi < grid.dim() {
                        factor = factor.saturating_mul(grid.extent(mi));
                    }
                }
                let replicated = volume_bytes.saturating_mul(factor.unsigned_abs());
                if factor > 1 && replicated > self.config.replication_threshold_bytes {
                    self.emit(
                        Lint::ReplicationBlowup,
                        format!(
                            "tensor '{name}' ({volume_bytes} bytes) is replicated {factor}x \
                             by broadcast machine dimensions ({replicated} bytes total)"
                        ),
                        |d| {
                            d.with_tensor(name.clone()).with_fixit(
                                "partition the broadcast machine dimension or raise \
                                 replication_threshold_bytes",
                            )
                        },
                    );
                }
            }
            if machine_size > 1
                && !spec.format.is_distributed()
                && volume_bytes > self.config.undistributed_threshold_bytes
            {
                self.emit(
                    Lint::UndistributedTensor,
                    format!(
                        "tensor '{name}' ({volume_bytes} bytes) is undistributed on a \
                         {machine_size}-processor machine: all of its traffic funnels \
                         through one rank"
                    ),
                    |d| {
                        d.with_tensor(name.clone())
                            .with_fixit(format!("distribute '{name}' across the machine"))
                    },
                );
            }
        }
    }

    fn unknown_var(&mut self, vars: &BTreeMap<String, VarState>, idx: usize, v: &str) {
        let available = live_vars(vars);
        self.emit(
            Lint::UnknownLoopVar,
            format!("'{v}' is not a loop variable at this point in the schedule"),
            |d| {
                d.with_command(idx)
                    .with_var(v.to_string())
                    .with_fixit(format!("available loop variables: {available}"))
            },
        );
    }

    fn duplicate_var(&mut self, idx: usize, v: &str) {
        self.emit(
            Lint::DuplicateLoopVar,
            format!("'{v}' already names a loop"),
            |d| {
                d.with_command(idx)
                    .with_var(v.to_string())
                    .with_fixit(format!("pick a fresh name for '{v}'"))
            },
        );
    }
}

fn ceil_div(a: i64, b: i64) -> i64 {
    (a + b - 1) / b
}

fn live_vars(vars: &BTreeMap<String, VarState>) -> String {
    vars.keys().cloned().collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::DistalMachine;
    use crate::session::TensorSpec;
    use distal_machine::grid::Grid;
    use distal_machine::spec::{MachineSpec, MemKind, ProcKind};

    fn matmul_problem(n: i64, gx: i64, gy: i64) -> Problem {
        let machine = DistalMachine::flat(Grid::grid2(gx, gy), ProcKind::Cpu);
        let mut p = Problem::new(MachineSpec::small(4), machine);
        p.statement("A(i,j) = B(i,k) * C(k,j)").unwrap();
        let f = Format::parse("xy->xy", MemKind::Sys).unwrap();
        for t in ["A", "B", "C"] {
            p.tensor(TensorSpec::new(t, vec![n, n], f.clone())).unwrap();
        }
        p
    }

    #[test]
    fn summa_is_clean_under_deny_all() {
        let p = matmul_problem(8, 2, 2);
        let diags = lint_schedule(&p, &Schedule::summa(2, 2, 4), &LintConfig::deny_all());
        assert!(diags.is_empty(), "{diags:?}");
        assert!(admit(&p, &Schedule::summa(2, 2, 4), &LintConfig::deny_all()).is_ok());
    }

    #[test]
    fn grid_mismatch_names_machine_shape() {
        let p = matmul_problem(8, 4, 1);
        let err = admit(&p, &Schedule::summa(2, 2, 4), &LintConfig::new()).unwrap_err();
        let BackendError::Verification(diags) = err else {
            panic!("expected verification failure")
        };
        let d = &diags[0];
        assert_eq!(d.kind, DiagnosticKind::GridMismatch);
        assert_eq!(d.command, Some(0));
        assert_eq!(
            d.fixit.as_deref(),
            Some("distribute onto 4x1 (the machine grid)")
        );
    }

    #[test]
    fn levels_gate_severity_and_allow_drops() {
        let p = matmul_problem(8, 4, 1);
        let s = Schedule::summa(2, 2, 4);
        let warned = lint_schedule(&p, &s, &LintConfig::new().warn(Lint::GridMismatch));
        assert!(warned.iter().all(|d| !d.is_error()));
        assert!(!warned.is_empty());
        assert!(admit(&p, &s, &LintConfig::new().warn(Lint::GridMismatch)).is_ok());
        let allowed = lint_schedule(&p, &s, &LintConfig::allow_all());
        assert!(allowed.is_empty());
    }

    #[test]
    fn load_imbalance_reports_the_ratio() {
        let p = matmul_problem(10, 2, 2);
        // 10 does not divide by 4: largest tile 3 vs balanced 2.5 = 1.2x.
        let s = Schedule::new().divide("k", "ko", "ki", 4);
        let diags = lint_schedule(&p, &s, &LintConfig::new());
        let d = diags
            .iter()
            .find(|d| d.kind == DiagnosticKind::LoadImbalance)
            .unwrap();
        assert!(!d.is_error());
        assert!(d.message.contains("1.20x"), "{}", d.message);
        assert_eq!(d.fixit.as_deref(), Some("use a count dividing 10"));
    }

    #[test]
    fn fingerprint_is_stable_and_config_sensitive() {
        let a = LintConfig::new();
        let b = LintConfig::new();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), LintConfig::deny_all().fingerprint());
        assert_ne!(
            a.fingerprint(),
            LintConfig::new().allow(Lint::GridMismatch).fingerprint()
        );
        let mut thick = LintConfig::new();
        thick.replication_threshold_bytes = 42;
        assert_ne!(a.fingerprint(), thick.fingerprint());
        assert!(a.fingerprint().contains("grid-mismatch=deny"));
        assert!(a.fingerprint().contains("load-imbalance=warn"));
    }

    #[test]
    fn legality_partition_matches_defaults() {
        for l in Lint::all() {
            assert_eq!(
                l.default_level(),
                if l.is_legality() {
                    LintLevel::Deny
                } else {
                    LintLevel::Warn
                }
            );
        }
        assert_eq!(Lint::all().len(), 12);
    }
}
