//! Compiler errors.

use distal_ir::transform::ScheduleError;
use std::fmt;

/// Errors from compiling a scheduled statement.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// A tensor named in the expression has no registered spec.
    UnknownTensor(String),
    /// The expression failed to parse or validate.
    Expression(String),
    /// Tensor dimensions imply conflicting extents for an index variable.
    InconsistentExtents,
    /// A scheduling command failed.
    Schedule(ScheduleError),
    /// The distributed loops' extents don't multiply to at most the number
    /// of available processors.
    GridTooLarge {
        /// Processors the launch domain requires.
        required: i64,
        /// Processors of the requested kind available.
        available: i64,
    },
    /// A format's notation doesn't match its tensor or machine.
    Format(String),
    /// The session has no tensor data where it was required.
    Session(String),
    /// Explicit tensor data whose length doesn't match the registered
    /// shape (caught at registration/bind, never silently materialized).
    DataSize {
        /// The tensor being seeded.
        tensor: String,
        /// Elements the registered shape requires.
        expected: usize,
        /// Elements the data provided.
        got: usize,
    },
    /// A `substitute` command named a kernel the statement cannot use
    /// (e.g. the GEMM leaf for a non-matmul statement).
    BadSubstitution(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownTensor(t) => write!(f, "unknown tensor '{t}'"),
            CompileError::Expression(e) => write!(f, "invalid expression: {e}"),
            CompileError::InconsistentExtents => {
                write!(f, "tensor dimensions imply conflicting index extents")
            }
            CompileError::Schedule(e) => write!(f, "schedule error: {e}"),
            CompileError::GridTooLarge {
                required,
                available,
            } => write!(
                f,
                "launch domain needs {required} processors but only {available} are available"
            ),
            CompileError::Format(e) => write!(f, "format error: {e}"),
            CompileError::Session(e) => write!(f, "session error: {e}"),
            CompileError::DataSize {
                tensor,
                expected,
                got,
            } => write!(f, "tensor '{tensor}' expects {expected} values, got {got}"),
            CompileError::BadSubstitution(e) => write!(f, "bad substitution: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ScheduleError> for CompileError {
    fn from(e: ScheduleError) -> Self {
        CompileError::Schedule(e)
    }
}
