//! Structured findings from plan-time static verification.
//!
//! The SPMD verifier (`distal-verify`, wired into `SpmdBackend::plan` and
//! `CostBackend::plan`) proves communication matching, deadlock freedom,
//! buffer-hazard freedom, and shape legality over a lowered program
//! *before* anything executes. Its findings surface through this type:
//! every [`Diagnostic`] names the offending rank/tensor/tag where the
//! analysis can attribute one, so a rejected plan reads like a compiler
//! error, not a hung thread or a silently corrupted output.
//!
//! Diagnostics ride on [`Plan::diagnostics`](crate::plan::Plan::diagnostics)
//! and [`Report::diagnostics`](crate::report::Report::diagnostics);
//! error-severity findings abort planning with
//! [`BackendError::Verification`](crate::backend::BackendError::Verification).

use std::fmt;

/// How severe a verification finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not provably wrong; the plan still executes.
    Warning,
    /// A proven violation: the plan is rejected at `Backend::plan` time.
    Error,
}

/// What class of invariant a [`Diagnostic`] reports against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiagnosticKind {
    /// A receive whose matching send does not exist: the receiver would
    /// block forever (the case the runtime watchdog only catches after
    /// its timeout).
    LostMessage,
    /// A send whose matching receive does not exist: the payload leaks
    /// into the network (threaded transport) or the pending map
    /// (sequential VM).
    OrphanMessage,
    /// More than one send or receive on a single tag: tag-keyed stashes
    /// silently overwrite, so delivery becomes order-dependent.
    DuplicateMessage,
    /// A matched send/receive pair that disagrees on tensor, rectangle,
    /// endpoints, byte count, or reduce semantics.
    MessageMismatch,
    /// A message rectangle, task access, or peer rank outside the owning
    /// tensor's extents or the launch domain.
    OutOfBounds,
    /// Overlapping writes to the same tensor cells without reduction
    /// semantics: the result depends on fold order (write-write race).
    WriteHazard,
    /// A received payload lands over data the rank reads in place
    /// (unordered read-write overlap).
    ReadHazard,
    /// A cycle in the cross-rank happens-before graph: some set of ranks
    /// waits on each other forever.
    Deadlock,
    /// Per-tensor byte conservation violated: bytes sent != bytes
    /// received across the program.
    ByteImbalance,
    /// A structurally ill-formed program (e.g. empty rank list).
    Malformed,
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DiagnosticKind::LostMessage => "lost-message",
            DiagnosticKind::OrphanMessage => "orphan-message",
            DiagnosticKind::DuplicateMessage => "duplicate-message",
            DiagnosticKind::MessageMismatch => "message-mismatch",
            DiagnosticKind::OutOfBounds => "out-of-bounds",
            DiagnosticKind::WriteHazard => "write-hazard",
            DiagnosticKind::ReadHazard => "read-hazard",
            DiagnosticKind::Deadlock => "deadlock",
            DiagnosticKind::ByteImbalance => "byte-imbalance",
            DiagnosticKind::Malformed => "malformed",
        };
        f.write_str(s)
    }
}

/// One structured verification finding, attributable to a rank, tensor,
/// and/or message tag where the analysis can name them.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// The invariant class violated.
    pub kind: DiagnosticKind,
    /// Whether the finding rejects the plan.
    pub severity: Severity,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending rank, when attributable.
    pub rank: Option<usize>,
    /// The tensor involved, when attributable.
    pub tensor: Option<String>,
    /// The message tag involved, when attributable.
    pub tag: Option<u64>,
}

impl Diagnostic {
    /// An error-severity finding (rejects the plan).
    pub fn error(kind: DiagnosticKind, message: impl Into<String>) -> Self {
        Diagnostic {
            kind,
            severity: Severity::Error,
            message: message.into(),
            rank: None,
            tensor: None,
            tag: None,
        }
    }

    /// A warning-severity finding (reported, not fatal).
    pub fn warning(kind: DiagnosticKind, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(kind, message)
        }
    }

    /// Attributes the finding to a rank.
    #[must_use]
    pub fn with_rank(mut self, rank: usize) -> Self {
        self.rank = Some(rank);
        self
    }

    /// Attributes the finding to a tensor.
    #[must_use]
    pub fn with_tensor(mut self, tensor: impl Into<String>) -> Self {
        self.tensor = Some(tensor.into());
        self
    }

    /// Attributes the finding to a message tag.
    #[must_use]
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = Some(tag);
        self
    }

    /// True for error-severity findings.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]",
            match self.severity {
                Severity::Warning => "warning",
                Severity::Error => "error",
            },
            self.kind
        )?;
        if let Some(r) = self.rank {
            write!(f, " rank {r}")?;
        }
        if let Some(t) = &self.tensor {
            write!(f, " tensor '{t}'")?;
        }
        if let Some(t) = self.tag {
            write!(f, " tag {t}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// True when no finding in `diags` is error-severity (the plan is legal;
/// warnings may remain).
pub fn verified_clean(diags: &[Diagnostic]) -> bool {
    diags.iter().all(|d| !d.is_error())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_attribute_and_display() {
        let d = Diagnostic::error(DiagnosticKind::LostMessage, "recv has no send")
            .with_rank(3)
            .with_tensor("B")
            .with_tag(17);
        assert!(d.is_error());
        let s = d.to_string();
        assert!(s.contains("error[lost-message]"), "{s}");
        assert!(s.contains("rank 3"), "{s}");
        assert!(s.contains("tensor 'B'"), "{s}");
        assert!(s.contains("tag 17"), "{s}");

        let w = Diagnostic::warning(DiagnosticKind::ReadHazard, "landing shadows home");
        assert!(!w.is_error());
        assert!(w.to_string().starts_with("warning[read-hazard]"));
    }

    #[test]
    fn clean_means_no_errors() {
        assert!(verified_clean(&[]));
        let w = Diagnostic::warning(DiagnosticKind::ReadHazard, "x");
        assert!(verified_clean(std::slice::from_ref(&w)));
        let e = Diagnostic::error(DiagnosticKind::Deadlock, "x");
        assert!(!verified_clean(&[w, e]));
    }
}
