//! Structured findings from plan-time static verification.
//!
//! The SPMD verifier (`distal-verify`, wired into `SpmdBackend::plan` and
//! `CostBackend::plan`) proves communication matching, deadlock freedom,
//! buffer-hazard freedom, and shape legality over a lowered program
//! *before* anything executes. Its findings surface through this type:
//! every [`Diagnostic`] names the offending rank/tensor/tag where the
//! analysis can attribute one, so a rejected plan reads like a compiler
//! error, not a hung thread or a silently corrupted output.
//!
//! The schedule admission linter (`crate::lint`, wired into every
//! `Backend::plan` *before* lowering) emits the same type for its legality
//! and performance passes; its findings additionally carry the offending
//! schedule command index, the loop variable, and a fix-it hint.
//!
//! Diagnostics ride on [`Plan::diagnostics`](crate::plan::Plan::diagnostics)
//! and [`Report::diagnostics`](crate::report::Report::diagnostics);
//! error-severity findings abort planning with
//! [`BackendError::Verification`](crate::backend::BackendError::Verification).

use std::fmt;

/// How severe a verification finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not provably wrong; the plan still executes.
    Warning,
    /// A proven violation: the plan is rejected at `Backend::plan` time.
    Error,
}

/// What class of invariant a [`Diagnostic`] reports against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiagnosticKind {
    /// A receive whose matching send does not exist: the receiver would
    /// block forever (the case the runtime watchdog only catches after
    /// its timeout).
    LostMessage,
    /// A send whose matching receive does not exist: the payload leaks
    /// into the network (threaded transport) or the pending map
    /// (sequential VM).
    OrphanMessage,
    /// More than one send or receive on a single tag: tag-keyed stashes
    /// silently overwrite, so delivery becomes order-dependent.
    DuplicateMessage,
    /// A matched send/receive pair that disagrees on tensor, rectangle,
    /// endpoints, byte count, or reduce semantics.
    MessageMismatch,
    /// A message rectangle, task access, or peer rank outside the owning
    /// tensor's extents or the launch domain.
    OutOfBounds,
    /// Overlapping writes to the same tensor cells without reduction
    /// semantics: the result depends on fold order (write-write race).
    WriteHazard,
    /// A received payload lands over data the rank reads in place
    /// (unordered read-write overlap).
    ReadHazard,
    /// A cycle in the cross-rank happens-before graph: some set of ranks
    /// waits on each other forever.
    Deadlock,
    /// Per-tensor byte conservation violated: bytes sent != bytes
    /// received across the program.
    ByteImbalance,
    /// A structurally ill-formed program (e.g. empty rank list).
    Malformed,
    /// A schedule command names a loop variable the statement (or the
    /// schedule so far) never introduced.
    UnknownLoopVar,
    /// A schedule command introduces a loop variable that already exists
    /// (or lists the same variable twice).
    DuplicateLoopVar,
    /// The shape a `distribute`/`distribute_onto` requests does not match
    /// the machine grid (wrong dimension count, wrong extents, or more
    /// distributed iterations than processors).
    GridMismatch,
    /// A `divide`/`split` chunk or part count that is non-positive or
    /// larger than the loop's extent.
    BadChunk,
    /// A `communicate` at a nonexistent loop level or naming a tensor the
    /// statement never accesses.
    BadCommunicate,
    /// A loop variable distributed more than once (directly or through a
    /// derived half of an already-distributed variable).
    Redistribution,
    /// A coordinate-range (blocked/cyclic) distribution over a tensor
    /// dimension stored as a `Compressed` level: position-space splits of
    /// compressed coordinates are not coordinate ranges.
    CompressedDistribution,
    /// Performance: a divide/split that does not divide the loop extent
    /// leaves some processors with larger tiles (reported with the
    /// computed imbalance ratio).
    LoadImbalance,
    /// Performance: a broadcast (`*`) machine dimension replicates a
    /// tensor past the configured byte threshold.
    ReplicationBlowup,
    /// Performance: a communication fan the collective recognizer provably
    /// cannot rewrite into a tree/ring (per-destination payloads differ).
    UnrewritableFan,
    /// Performance: a large tensor left undistributed on a multi-processor
    /// machine serializes its traffic through one rank.
    UndistributedTensor,
    /// Performance: a schedule parameter tied to the data size makes the
    /// serving `PlanKey` cardinality unbounded (every shape compiles a
    /// fresh plan).
    PlanCardinality,
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DiagnosticKind::LostMessage => "lost-message",
            DiagnosticKind::OrphanMessage => "orphan-message",
            DiagnosticKind::DuplicateMessage => "duplicate-message",
            DiagnosticKind::MessageMismatch => "message-mismatch",
            DiagnosticKind::OutOfBounds => "out-of-bounds",
            DiagnosticKind::WriteHazard => "write-hazard",
            DiagnosticKind::ReadHazard => "read-hazard",
            DiagnosticKind::Deadlock => "deadlock",
            DiagnosticKind::ByteImbalance => "byte-imbalance",
            DiagnosticKind::Malformed => "malformed",
            DiagnosticKind::UnknownLoopVar => "unknown-loop-var",
            DiagnosticKind::DuplicateLoopVar => "duplicate-loop-var",
            DiagnosticKind::GridMismatch => "grid-mismatch",
            DiagnosticKind::BadChunk => "bad-chunk",
            DiagnosticKind::BadCommunicate => "bad-communicate",
            DiagnosticKind::Redistribution => "re-distribution",
            DiagnosticKind::CompressedDistribution => "compressed-distribution",
            DiagnosticKind::LoadImbalance => "load-imbalance",
            DiagnosticKind::ReplicationBlowup => "replication-blowup",
            DiagnosticKind::UnrewritableFan => "unrewritable-fan",
            DiagnosticKind::UndistributedTensor => "undistributed-tensor",
            DiagnosticKind::PlanCardinality => "plan-cardinality",
        };
        f.write_str(s)
    }
}

/// One structured verification finding, attributable to a rank, tensor,
/// and/or message tag where the analysis can name them.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// The invariant class violated.
    pub kind: DiagnosticKind,
    /// Whether the finding rejects the plan.
    pub severity: Severity,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending rank, when attributable.
    pub rank: Option<usize>,
    /// The tensor involved, when attributable.
    pub tensor: Option<String>,
    /// The message tag involved, when attributable.
    pub tag: Option<u64>,
    /// The zero-based index of the offending schedule command, when the
    /// finding comes from schedule admission.
    pub command: Option<usize>,
    /// The loop variable involved, when attributable.
    pub var: Option<String>,
    /// A machine-applicable fix-it hint ("use chunk 16", "distribute onto
    /// 2x2"), when the analysis can compute one.
    pub fixit: Option<String>,
}

impl Diagnostic {
    /// An error-severity finding (rejects the plan).
    pub fn error(kind: DiagnosticKind, message: impl Into<String>) -> Self {
        Diagnostic {
            kind,
            severity: Severity::Error,
            message: message.into(),
            rank: None,
            tensor: None,
            tag: None,
            command: None,
            var: None,
            fixit: None,
        }
    }

    /// A warning-severity finding (reported, not fatal).
    pub fn warning(kind: DiagnosticKind, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(kind, message)
        }
    }

    /// Attributes the finding to a rank.
    #[must_use]
    pub fn with_rank(mut self, rank: usize) -> Self {
        self.rank = Some(rank);
        self
    }

    /// Attributes the finding to a tensor.
    #[must_use]
    pub fn with_tensor(mut self, tensor: impl Into<String>) -> Self {
        self.tensor = Some(tensor.into());
        self
    }

    /// Attributes the finding to a message tag.
    #[must_use]
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = Some(tag);
        self
    }

    /// Attributes the finding to a schedule command (zero-based index).
    #[must_use]
    pub fn with_command(mut self, command: usize) -> Self {
        self.command = Some(command);
        self
    }

    /// Attributes the finding to a loop variable.
    #[must_use]
    pub fn with_var(mut self, var: impl Into<String>) -> Self {
        self.var = Some(var.into());
        self
    }

    /// Attaches a fix-it hint.
    #[must_use]
    pub fn with_fixit(mut self, fixit: impl Into<String>) -> Self {
        self.fixit = Some(fixit.into());
        self
    }

    /// True for error-severity findings.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]",
            match self.severity {
                Severity::Warning => "warning",
                Severity::Error => "error",
            },
            self.kind
        )?;
        if let Some(c) = self.command {
            write!(f, " command {c}")?;
        }
        if let Some(r) = self.rank {
            write!(f, " rank {r}")?;
        }
        if let Some(t) = &self.tensor {
            write!(f, " tensor '{t}'")?;
        }
        if let Some(v) = &self.var {
            write!(f, " var '{v}'")?;
        }
        if let Some(t) = self.tag {
            write!(f, " tag {t}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(fix) = &self.fixit {
            write!(f, "; fix: {fix}")?;
        }
        Ok(())
    }
}

/// True when no finding in `diags` is error-severity (the plan is legal;
/// warnings may remain).
pub fn verified_clean(diags: &[Diagnostic]) -> bool {
    diags.iter().all(|d| !d.is_error())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_attribute_and_display() {
        let d = Diagnostic::error(DiagnosticKind::LostMessage, "recv has no send")
            .with_rank(3)
            .with_tensor("B")
            .with_tag(17);
        assert!(d.is_error());
        let s = d.to_string();
        assert!(s.contains("error[lost-message]"), "{s}");
        assert!(s.contains("rank 3"), "{s}");
        assert!(s.contains("tensor 'B'"), "{s}");
        assert!(s.contains("tag 17"), "{s}");

        let w = Diagnostic::warning(DiagnosticKind::ReadHazard, "landing shadows home");
        assert!(!w.is_error());
        assert!(w.to_string().starts_with("warning[read-hazard]"));
    }

    #[test]
    fn schedule_attribution_and_fixit_display() {
        let d = Diagnostic::error(DiagnosticKind::BadChunk, "7 parts do not fit")
            .with_command(2)
            .with_var("ko")
            .with_fixit("use 4 parts");
        let s = d.to_string();
        assert!(s.contains("error[bad-chunk]"), "{s}");
        assert!(s.contains("command 2"), "{s}");
        assert!(s.contains("var 'ko'"), "{s}");
        assert!(s.ends_with("; fix: use 4 parts"), "{s}");
        // Lint kinds render in kebab case.
        for (k, text) in [
            (DiagnosticKind::UnknownLoopVar, "unknown-loop-var"),
            (DiagnosticKind::GridMismatch, "grid-mismatch"),
            (DiagnosticKind::Redistribution, "re-distribution"),
            (DiagnosticKind::LoadImbalance, "load-imbalance"),
            (DiagnosticKind::PlanCardinality, "plan-cardinality"),
        ] {
            assert_eq!(k.to_string(), text);
        }
    }

    #[test]
    fn clean_means_no_errors() {
        assert!(verified_clean(&[]));
        let w = Diagnostic::warning(DiagnosticKind::ReadHazard, "x");
        assert!(verified_clean(std::slice::from_ref(&w)));
        let e = Diagnostic::error(DiagnosticKind::Deadlock, "x");
        assert!(!verified_clean(&[w, e]));
    }
}
