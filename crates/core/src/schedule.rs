//! The scheduling language (paper §3.3 and Figure 2).
//!
//! A [`Schedule`] is a recorded chain of scheduling commands applied to a
//! statement's concrete index notation at compile time. The API mirrors the
//! C++ surface of Figure 2:
//!
//! ```
//! use distal_core::Schedule;
//! let s = Schedule::new()
//!     .divide("i", "io", "ii", 2)
//!     .divide("j", "jo", "ji", 2)
//!     .reorder(&["io", "jo", "ii", "ji"])
//!     .distribute(&["io", "jo"])
//!     .split("k", "ko", "ki", 256)
//!     .reorder(&["io", "jo", "ko", "ii", "ji", "ki"])
//!     .communicate(&["A"], "jo")
//!     .communicate(&["B", "C"], "ko");
//! assert_eq!(s.commands().len(), 8);
//! ```

use distal_ir::cin::ConcreteNotation;
use distal_ir::expr::IndexVar;
use distal_ir::transform::ScheduleError;
use std::fmt;

thread_local! {
    /// Per-thread count of [`Schedule::apply`] invocations. Together with
    /// `crate::lower::compile_count` this is the observable "no
    /// re-lowering" invariant of the plan/bind split: binding a compiled
    /// plan must leave this counter untouched. Thread-local (compilation
    /// runs on the caller's thread) so concurrent tests/requests don't
    /// perturb each other's readings.
    static APPLICATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// How many times [`Schedule::apply`] ran on the calling thread.
pub fn apply_count() -> u64 {
    APPLICATIONS.with(|c| c.get())
}

/// One scheduling command.
#[derive(Clone, Debug, PartialEq)]
pub enum SchedCmd {
    /// `divide(var, outer, inner, parts)`.
    Divide {
        /// Variable to divide.
        var: String,
        /// Outer (block index) variable.
        outer: String,
        /// Inner (within block) variable.
        inner: String,
        /// Number of blocks.
        parts: i64,
    },
    /// `split(var, outer, inner, chunk)`.
    Split {
        /// Variable to split.
        var: String,
        /// Outer (chunk index) variable.
        outer: String,
        /// Inner (within chunk) variable.
        inner: String,
        /// Chunk size.
        chunk: i64,
    },
    /// `reorder(vars)`.
    Reorder(Vec<String>),
    /// `distribute(vars)`.
    Distribute(Vec<String>),
    /// The compound `distribute(targets, dist, local, grid)` of §3.3.
    DistributeOnto {
        /// Variables to distribute.
        targets: Vec<String>,
        /// Their distributed (outer) halves.
        dist: Vec<String>,
        /// Their local (inner) halves.
        local: Vec<String>,
        /// Machine grid dimensions.
        dims: Vec<i64>,
    },
    /// `communicate(tensors, var)`.
    Communicate {
        /// Tensors whose communication aggregates at the loop.
        tensors: Vec<String>,
        /// The loop variable.
        var: String,
    },
    /// `rotate(target, over, result)`.
    Rotate {
        /// Variable to rotate.
        target: String,
        /// Variables whose sum offsets the rotation.
        over: Vec<String>,
        /// The new loop variable.
        result: String,
    },
    /// `parallelize(var)`.
    Parallelize(String),
    /// `collapse(a, b, fused)`.
    Collapse {
        /// Outer loop.
        a: String,
        /// Inner loop (directly nested under `a`).
        b: String,
        /// The fused loop variable.
        fused: String,
    },
    /// `substitute(vars, kernel)` — Figure 2 line 40: replace the loops
    /// over `vars` with an optimized leaf kernel.
    Substitute {
        /// The leaf loop variables the kernel absorbs.
        vars: Vec<String>,
        /// Which kernel to substitute.
        leaf: LeafKind,
    },
}

/// The leaf kernel named by a `substitute` command.
///
/// The original system substitutes vendor kernels (`CuBLAS::GeMM`); this
/// reproduction substitutes its native blocked GEMM, with the generic
/// dense-loop interpreter as the no-substitution default.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeafKind {
    /// Pick automatically from the statement's shape (the default).
    Auto,
    /// The blocked dense GEMM (the `CuBLAS::GeMM` stand-in). Only valid
    /// for matmul-shaped statements.
    Gemm,
    /// The generic dense-loop interpreter.
    Interpreter,
}

/// A chain of scheduling commands.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Schedule {
    cmds: Vec<SchedCmd>,
}

fn ivs(names: &[&str]) -> Vec<IndexVar> {
    names.iter().map(|n| IndexVar::new(*n)).collect()
}

fn ivs_owned(names: &[String]) -> Vec<IndexVar> {
    names.iter().map(IndexVar::new).collect()
}

impl Schedule {
    /// An empty schedule (runs the default loop nest on one processor).
    pub fn new() -> Self {
        Schedule::default()
    }

    /// The recorded commands.
    pub fn commands(&self) -> &[SchedCmd] {
        &self.cmds
    }

    /// Appends `divide`.
    #[must_use]
    pub fn divide(mut self, var: &str, outer: &str, inner: &str, parts: i64) -> Self {
        self.cmds.push(SchedCmd::Divide {
            var: var.into(),
            outer: outer.into(),
            inner: inner.into(),
            parts,
        });
        self
    }

    /// Appends `split`.
    #[must_use]
    pub fn split(mut self, var: &str, outer: &str, inner: &str, chunk: i64) -> Self {
        self.cmds.push(SchedCmd::Split {
            var: var.into(),
            outer: outer.into(),
            inner: inner.into(),
            chunk,
        });
        self
    }

    /// Appends `reorder`.
    #[must_use]
    pub fn reorder(mut self, order: &[&str]) -> Self {
        self.cmds.push(SchedCmd::Reorder(
            order.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Appends `distribute`.
    #[must_use]
    pub fn distribute(mut self, vars: &[&str]) -> Self {
        self.cmds.push(SchedCmd::Distribute(
            vars.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Appends the compound `distribute(targets, dist, local, grid)`.
    #[must_use]
    pub fn distribute_onto(
        mut self,
        targets: &[&str],
        dist: &[&str],
        local: &[&str],
        dims: &[i64],
    ) -> Self {
        self.cmds.push(SchedCmd::DistributeOnto {
            targets: targets.iter().map(|s| s.to_string()).collect(),
            dist: dist.iter().map(|s| s.to_string()).collect(),
            local: local.iter().map(|s| s.to_string()).collect(),
            dims: dims.to_vec(),
        });
        self
    }

    /// Appends `communicate`.
    #[must_use]
    pub fn communicate(mut self, tensors: &[&str], var: &str) -> Self {
        self.cmds.push(SchedCmd::Communicate {
            tensors: tensors.iter().map(|s| s.to_string()).collect(),
            var: var.into(),
        });
        self
    }

    /// Appends `rotate`.
    #[must_use]
    pub fn rotate(mut self, target: &str, over: &[&str], result: &str) -> Self {
        self.cmds.push(SchedCmd::Rotate {
            target: target.into(),
            over: over.iter().map(|s| s.to_string()).collect(),
            result: result.into(),
        });
        self
    }

    /// Appends `parallelize`.
    #[must_use]
    pub fn parallelize(mut self, var: &str) -> Self {
        self.cmds.push(SchedCmd::Parallelize(var.into()));
        self
    }

    /// Appends `collapse`.
    #[must_use]
    pub fn collapse(mut self, a: &str, b: &str, fused: &str) -> Self {
        self.cmds.push(SchedCmd::Collapse {
            a: a.into(),
            b: b.into(),
            fused: fused.into(),
        });
        self
    }

    /// Appends `substitute` (Figure 2 line 40): absorb the leaf loops over
    /// `vars` into the named kernel.
    #[must_use]
    pub fn substitute(mut self, vars: &[&str], leaf: LeafKind) -> Self {
        self.cmds.push(SchedCmd::Substitute {
            vars: vars.iter().map(|s| s.to_string()).collect(),
            leaf,
        });
        self
    }

    /// The leaf kernel chosen by the last `substitute` command, if any.
    pub fn leaf_choice(&self) -> Option<(&[String], LeafKind)> {
        self.cmds.iter().rev().find_map(|c| match c {
            SchedCmd::Substitute { vars, leaf } => Some((vars.as_slice(), *leaf)),
            _ => None,
        })
    }

    /// Applies all commands to a concrete index notation statement.
    ///
    /// # Errors
    ///
    /// The first failing command's [`ScheduleError`], wrapped in
    /// [`ScheduleError::AtCommand`] with the command's index and stable
    /// `Display` so late failures name their schedule location.
    pub fn apply(&self, cin: &mut ConcreteNotation) -> Result<(), ScheduleError> {
        APPLICATIONS.with(|c| c.set(c.get() + 1));
        for (idx, cmd) in self.cmds.iter().enumerate() {
            Self::apply_cmd(cin, cmd)
                .map_err(|e| ScheduleError::at_command(idx, cmd.to_string(), e))?;
        }
        Ok(())
    }

    /// Applies one command (no location wrapping; `apply` adds it).
    fn apply_cmd(cin: &mut ConcreteNotation, cmd: &SchedCmd) -> Result<(), ScheduleError> {
        match cmd {
            SchedCmd::Divide {
                var,
                outer,
                inner,
                parts,
            } => {
                cin.divide(
                    &IndexVar::new(var),
                    IndexVar::new(outer),
                    IndexVar::new(inner),
                    *parts,
                )?;
            }
            SchedCmd::Split {
                var,
                outer,
                inner,
                chunk,
            } => {
                cin.split(
                    &IndexVar::new(var),
                    IndexVar::new(outer),
                    IndexVar::new(inner),
                    *chunk,
                )?;
            }
            SchedCmd::Reorder(order) => {
                cin.reorder(&ivs_owned(order))?;
            }
            SchedCmd::Distribute(vars) => {
                cin.distribute(&ivs_owned(vars))?;
            }
            SchedCmd::DistributeOnto {
                targets,
                dist,
                local,
                dims,
            } => {
                cin.distribute_onto(
                    &ivs_owned(targets),
                    &ivs_owned(dist),
                    &ivs_owned(local),
                    dims,
                )?;
            }
            SchedCmd::Communicate { tensors, var } => {
                let names: Vec<&str> = tensors.iter().map(String::as_str).collect();
                cin.communicate(&names, &IndexVar::new(var))?;
            }
            SchedCmd::Rotate {
                target,
                over,
                result,
            } => {
                cin.rotate(
                    &IndexVar::new(target),
                    &ivs_owned(over),
                    IndexVar::new(result),
                )?;
            }
            SchedCmd::Parallelize(var) => {
                cin.parallelize(&IndexVar::new(var))?;
            }
            SchedCmd::Collapse { a, b, fused } => {
                cin.collapse(&IndexVar::new(a), &IndexVar::new(b), IndexVar::new(fused))?;
            }
            SchedCmd::Substitute { vars, leaf } => {
                // A backend directive, not a loop rewrite: validate the
                // named loops exist and record it in the s.t. trail.
                for v in vars {
                    let iv = IndexVar::new(v);
                    if !cin.solver.knows(&iv) {
                        return Err(ScheduleError::UnknownLoopVar(v.clone()));
                    }
                }
                cin.note(format!("substitute({}, {leaf:?})", vars.join(", ")));
            }
        }
        Ok(())
    }

    /// The stable textual form of the schedule (see the [`fmt::Display`]
    /// impls): the canonical identity [`crate::cache::PlanKey`] hashes.
    /// Identically-built schedules render identically; any parameter
    /// change (chunk sizes, grids, orders, leaf kinds) renders
    /// differently.
    pub fn canonical(&self) -> String {
        self.to_string()
    }

    /// The SUMMA schedule of Figure 2 for `A(i,j) = B(i,k) * C(k,j)` on a
    /// `gx × gy` grid, stepping `k` in chunks of `chunk` — including the
    /// line-40 substitution of the optimized GEMM at the leaves.
    pub fn summa(gx: i64, gy: i64, chunk: i64) -> Self {
        let _ = ivs(&[]); // keep helper referenced for symmetric style
        Schedule::new()
            .distribute_onto(&["i", "j"], &["io", "jo"], &["ii", "ji"], &[gx, gy])
            .split("k", "ko", "ki", chunk)
            .reorder(&["io", "jo", "ko", "ii", "ji", "ki"])
            .communicate(&["A"], "jo")
            .communicate(&["B", "C"], "ko")
            .substitute(&["ii", "ji", "ki"], LeafKind::Gemm)
    }
}

impl fmt::Display for LeafKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeafKind::Auto => write!(f, "auto"),
            LeafKind::Gemm => write!(f, "gemm"),
            LeafKind::Interpreter => write!(f, "interpreter"),
        }
    }
}

/// The stable textual form of one command, e.g.
/// `distribute(i,j -> io,jo | ii,ji onto 2x2)`. Used by
/// [`crate::cache::PlanKey`] and diagnostics; every parameter appears, so
/// two commands render identically iff they are equal.
impl fmt::Display for SchedCmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedCmd::Divide {
                var,
                outer,
                inner,
                parts,
            } => write!(f, "divide({var} -> {outer},{inner} into {parts})"),
            SchedCmd::Split {
                var,
                outer,
                inner,
                chunk,
            } => write!(f, "split({var} -> {outer},{inner} chunk {chunk})"),
            SchedCmd::Reorder(order) => write!(f, "reorder({})", order.join(",")),
            SchedCmd::Distribute(vars) => write!(f, "distribute({})", vars.join(",")),
            SchedCmd::DistributeOnto {
                targets,
                dist,
                local,
                dims,
            } => write!(
                f,
                "distribute({} -> {} | {} onto {})",
                targets.join(","),
                dist.join(","),
                local.join(","),
                dims.iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("x")
            ),
            SchedCmd::Communicate { tensors, var } => {
                write!(f, "communicate({} @ {var})", tensors.join(","))
            }
            SchedCmd::Rotate {
                target,
                over,
                result,
            } => write!(f, "rotate({target} over {} -> {result})", over.join(",")),
            SchedCmd::Parallelize(var) => write!(f, "parallelize({var})"),
            SchedCmd::Collapse { a, b, fused } => write!(f, "collapse({a},{b} -> {fused})"),
            SchedCmd::Substitute { vars, leaf } => {
                write!(f, "substitute({} -> {leaf})", vars.join(","))
            }
        }
    }
}

/// The stable textual form of a whole schedule: its commands joined with
/// `; ` (empty schedules render as `(empty)`).
impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cmds.is_empty() {
            return write!(f, "(empty)");
        }
        for (i, cmd) in self.cmds.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{cmd}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distal_ir::cin::ConcreteNotation;
    use distal_ir::expr::kernels;
    use std::collections::BTreeMap;

    fn matmul_cin(n: i64) -> ConcreteNotation {
        let extents: BTreeMap<IndexVar, i64> = [("i", n), ("j", n), ("k", n)]
            .iter()
            .map(|(v, e)| (IndexVar::new(*v), *e))
            .collect();
        ConcreteNotation::from_assignment(kernels::matmul(), &extents).unwrap()
    }

    #[test]
    fn summa_schedule_applies() {
        let mut cin = matmul_cin(64);
        Schedule::summa(2, 2, 16).apply(&mut cin).unwrap();
        let vars: Vec<String> = cin.loop_vars().iter().map(|v| v.0.clone()).collect();
        assert_eq!(vars, vec!["io", "jo", "ko", "ii", "ji", "ki"]);
        assert_eq!(cin.distributed_prefix().unwrap().len(), 2);
        // The substitution shows in the s.t. trail (Figure 2 line 40).
        assert!(format!("{cin}").contains("substitute(ii, ji, ki"));
    }

    #[test]
    fn substitute_validates_loop_vars() {
        let mut cin = matmul_cin(8);
        let s = Schedule::new().substitute(&["nope"], LeafKind::Gemm);
        assert!(s.apply(&mut cin).is_err());
        assert_eq!(
            Schedule::summa(2, 2, 4).leaf_choice().map(|(_, l)| l),
            Some(LeafKind::Gemm)
        );
        assert_eq!(Schedule::new().leaf_choice(), None);
    }

    #[test]
    fn bad_schedule_surfaces_error() {
        let mut cin = matmul_cin(8);
        let s = Schedule::new().divide("zz", "a", "b", 2);
        assert!(s.apply(&mut cin).is_err());
    }

    #[test]
    fn apply_errors_carry_command_index_and_display() {
        // The third command (index 2) names a loop that never existed.
        let mut cin = matmul_cin(8);
        let s = Schedule::new()
            .divide("i", "io", "ii", 2)
            .divide("j", "jo", "ji", 2)
            .communicate(&["A"], "nope");
        let err = s.apply(&mut cin).unwrap_err();
        match &err {
            ScheduleError::AtCommand {
                index,
                command,
                inner,
            } => {
                assert_eq!(*index, 2);
                assert_eq!(command, "communicate(A @ nope)");
                assert_eq!(**inner, ScheduleError::UnknownLoopVar("nope".into()));
            }
            other => panic!("expected AtCommand, got {other:?}"),
        }
        assert_eq!(
            err.to_string(),
            "command 2 `communicate(A @ nope)`: 'nope' is not a loop variable"
        );
        assert_eq!(err.root(), &ScheduleError::UnknownLoopVar("nope".into()));
    }

    #[test]
    fn display_is_stable_and_parameter_sensitive() {
        // Two identically-built schedules render identically.
        let a = Schedule::summa(2, 2, 16);
        let b = Schedule::summa(2, 2, 16);
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.canonical(), b.to_string());
        // Different chunk sizes render differently.
        let c = Schedule::summa(2, 2, 8);
        assert_ne!(a.to_string(), c.to_string());
        // Different grids render differently.
        let d = Schedule::summa(4, 1, 16);
        assert_ne!(a.to_string(), d.to_string());
        // The compound distribute renders in the documented shape.
        assert!(
            a.to_string()
                .contains("distribute(i,j -> io,jo | ii,ji onto 2x2)"),
            "{a}"
        );
        assert!(a.to_string().contains("split(k -> ko,ki chunk 16)"));
        assert!(a.to_string().contains("substitute(ii,ji,ki -> gemm)"));
        // Every command kind renders with all its parameters.
        let all = Schedule::new()
            .divide("i", "io", "ii", 2)
            .reorder(&["io", "ii"])
            .distribute(&["io"])
            .communicate(&["A", "B"], "io")
            .rotate("ko", &["io"], "kos")
            .parallelize("ii")
            .collapse("a", "b", "ab")
            .substitute(&["ii"], LeafKind::Auto);
        let text = all.to_string();
        for needle in [
            "divide(i -> io,ii into 2)",
            "reorder(io,ii)",
            "distribute(io)",
            "communicate(A,B @ io)",
            "rotate(ko over io -> kos)",
            "parallelize(ii)",
            "collapse(a,b -> ab)",
            "substitute(ii -> auto)",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in `{text}`");
        }
        assert_eq!(Schedule::new().to_string(), "(empty)");
    }

    #[test]
    fn apply_bumps_the_process_counter() {
        let before = apply_count();
        let mut cin = matmul_cin(16);
        Schedule::summa(2, 2, 4).apply(&mut cin).unwrap();
        assert!(apply_count() > before);
    }

    #[test]
    fn builder_records_commands() {
        let s = Schedule::new()
            .rotate("ko", &["io", "jo"], "kos")
            .parallelize("ii");
        assert_eq!(s.commands().len(), 2);
        assert!(matches!(&s.commands()[0], SchedCmd::Rotate { target, .. } if target == "ko"));
    }
}
