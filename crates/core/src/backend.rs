//! The target abstraction: one [`Problem`] compiles onto any [`Backend`].
//!
//! DISTAL's central claim (§3–§6) is that one (statement, formats,
//! machine, schedule) bundle is portable across mappings *and* lowering
//! targets; §8 frames an MPI-style static backend as orthogonal to the
//! Legion-style dynamic runtime. This module is that claim as an API:
//!
//! * [`Backend`] — a compilation target. Implementations:
//!   [`RuntimeBackend`] (this crate: the dynamic runtime, functional or
//!   model mode), `SpmdBackend` and `CostBackend` (in `distal-spmd`:
//!   static MPI-style lowering, and pure cost estimation under either the
//!   model-mode simulator or the SPMD α-β model).
//! * [`Plan`] — what [`Backend::plan`] compiles to: a **data-independent**
//!   lowered object (launch domain, programs, cost model — no operand
//!   values). Plans are cacheable ([`crate::cache::PlanCache`]) and
//!   reusable: serving many requests over the same shapes pays for
//!   lowering once.
//! * [`Instance`] — a plan bound to per-request [`Bindings`] via
//!   [`Plan::bind`]. Every instance exposes the same surface (`place`,
//!   `execute`, `read`, [`Report`]s), so callers never special-case the
//!   backend they run on. `Artifact` is the pre-split name of this trait
//!   and remains as an alias.
//!
//! [`Backend::compile`] (and [`Problem::compile`]) is the one-shot shim:
//! exactly `plan(...)` then `bind(problem's own initializers)`.
//!
//! ```
//! use distal_core::{DistalMachine, Problem, RuntimeBackend, Schedule, TensorSpec};
//! use distal_format::Format;
//! use distal_machine::{Grid, spec::{MachineSpec, MemKind, ProcKind}};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
//! let mut problem = Problem::new(MachineSpec::small(2), machine);
//! problem.statement("A(i,j) = B(i,k) * C(k,j)")?;
//! let tiles = Format::parse("xy->xy", MemKind::Sys)?;
//! for t in ["A", "B", "C"] {
//!     problem.tensor(TensorSpec::new(t, vec![8, 8], tiles.clone()))?;
//! }
//! problem.fill_random("B", 1)?.fill_random("C", 2)?;
//!
//! let mut artifact = problem.compile(&RuntimeBackend::functional(), &Schedule::summa(2, 2, 4))?;
//! let report = artifact.run()?;
//! assert_eq!(artifact.read("A")?.len(), 64);
//! assert!(report.flops > 0.0);
//! # Ok(())
//! # }
//! ```

use crate::error::CompileError;
use crate::lint::LintConfig;
use crate::lower::{CompileOptions, CompiledKernel};
use crate::plan::{init_nnz, Bindings, Instance, Plan};
use crate::problem::Problem;
use crate::report::{Provenance, Report};
use crate::schedule::Schedule;
use crate::session::{Session, TensorSpec};
use distal_runtime::exec::{Mode, RuntimeError};
use distal_runtime::executor::ExecutorKind;
use distal_runtime::region::RegionId;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Pre-split name of [`Instance`], re-exported where it always lived.
pub use crate::plan::Instance as Artifact;

/// Errors from compiling or running a problem on a backend.
#[derive(Clone, Debug, PartialEq)]
pub enum BackendError {
    /// Compilation failed (parse, format, schedule, or lowering errors).
    Compile(CompileError),
    /// The dynamic runtime failed (OOM, uninitialized data).
    Runtime(RuntimeError),
    /// A tensor name is not registered on the problem.
    UnknownTensor(String),
    /// The instance holds no readable data (model/cost execution, or the
    /// instance was not executed yet).
    NoData(String),
    /// The problem/schedule combination is outside the backend's scope.
    Unsupported(String),
    /// A backend-specific execution failure.
    Backend(String),
    /// Plan-time static verification rejected the lowered program. The
    /// payload carries every finding (errors and warnings); each names
    /// the offending rank/tensor/tag where attributable.
    Verification(Vec<crate::diagnostic::Diagnostic>),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Compile(e) => write!(f, "compile error: {e}"),
            BackendError::Runtime(e) => write!(f, "runtime error: {e}"),
            BackendError::UnknownTensor(t) => write!(f, "unknown tensor '{t}'"),
            BackendError::NoData(m) => write!(f, "no data: {m}"),
            BackendError::Unsupported(m) => write!(f, "unsupported: {m}"),
            BackendError::Backend(m) => write!(f, "backend error: {m}"),
            BackendError::Verification(diags) => {
                let errors = diags.iter().filter(|d| d.is_error()).count();
                write!(f, "plan verification failed ({errors} error(s))")?;
                for d in diags.iter().filter(|d| d.is_error()).take(3) {
                    write!(f, "; {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for BackendError {}

impl From<CompileError> for BackendError {
    fn from(e: CompileError) -> Self {
        match e {
            CompileError::UnknownTensor(t) => BackendError::UnknownTensor(t),
            other => BackendError::Compile(other),
        }
    }
}

impl From<RuntimeError> for BackendError {
    fn from(e: RuntimeError) -> Self {
        BackendError::Runtime(e)
    }
}

/// A compilation target: lowers a [`Problem`] + [`Schedule`] to a
/// data-independent [`Plan`], which [`Bindings`] turn into executable
/// [`Instance`]s. See the [module docs](self).
pub trait Backend {
    /// Short stable name (`"runtime"`, `"spmd"`, `"cost"`), used in
    /// [`Report::backend`], [`crate::cache::PlanKey`]s, and diagnostics.
    fn name(&self) -> &str;

    /// A stable textual form of every knob that changes what
    /// [`Backend::plan`] produces (mode, compile options, collective
    /// configuration, cost-model parameters, …). [`crate::cache::PlanKey`]
    /// hashes it alongside [`Backend::name`], so two differently-configured
    /// instances of one backend never share cached plans. The default
    /// (empty) is only right for backends without compile-relevant
    /// configuration.
    fn config_fingerprint(&self) -> String {
        String::new()
    }

    /// Compiles the problem's *data-independent* part for this target:
    /// schedule application, lowering, launch-domain construction — no
    /// operand values. The resulting plan serves any number of
    /// [`Plan::bind`] calls without re-lowering.
    ///
    /// # Errors
    ///
    /// [`BackendError::Compile`] when the problem has no statement or the
    /// lowering rejects it; backend-specific errors otherwise.
    fn plan(&self, problem: &Problem, schedule: &Schedule) -> Result<Box<dyn Plan>, BackendError>;

    /// The compile-once/execute-once shim: [`Backend::plan`] followed by
    /// [`Plan::bind`] on the problem's own initializers.
    ///
    /// # Errors
    ///
    /// Errors from either half.
    fn compile(
        &self,
        problem: &Problem,
        schedule: &Schedule,
    ) -> Result<Box<dyn Instance>, BackendError> {
        self.plan(problem, schedule)?
            .bind(&Bindings::from_problem(problem))
    }
}

/// The dynamic-runtime target (the paper's Legion-style backend): tasks,
/// region coherence, work-stealing execution — functional numerics or the
/// pure timing model depending on [`Mode`].
#[derive(Clone, Debug)]
pub struct RuntimeBackend {
    /// Functional (real numerics) or model (timing only) execution.
    pub mode: Mode,
    /// Overrides the runtime's executor selection when set.
    pub executor: Option<ExecutorKind>,
    /// Compile options threaded into the lowering.
    pub options: CompileOptions,
    /// Schedule-admission lint configuration (see [`crate::lint`]):
    /// denied findings reject the plan, warned findings ride on it.
    pub lint: LintConfig,
}

impl RuntimeBackend {
    /// A backend with real numerics.
    pub fn functional() -> Self {
        RuntimeBackend {
            mode: Mode::Functional,
            executor: None,
            options: CompileOptions::default(),
            lint: LintConfig::default(),
        }
    }

    /// A backend that only simulates timing/communication.
    pub fn model() -> Self {
        RuntimeBackend {
            mode: Mode::Model,
            executor: None,
            options: CompileOptions::default(),
            lint: LintConfig::default(),
        }
    }

    /// Overrides the compile options.
    #[must_use]
    pub fn with_options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the executor selection.
    #[must_use]
    pub fn with_executor(mut self, kind: ExecutorKind) -> Self {
        self.executor = Some(kind);
        self
    }

    /// Overrides the schedule-admission lint configuration.
    #[must_use]
    pub fn with_lints(mut self, lint: LintConfig) -> Self {
        self.lint = lint;
        self
    }

    /// A fresh session with the given tensors registered, in the
    /// deterministic registry order the plan's kernel was compiled
    /// against.
    fn session_for(
        &self,
        spec: &distal_machine::spec::MachineSpec,
        machine: &crate::machine::DistalMachine,
        tensors: &BTreeMap<String, TensorSpec>,
    ) -> Result<Session, BackendError> {
        let mut session = Session::new(spec.clone(), machine.clone(), self.mode);
        if let Some(kind) = self.executor {
            session.set_executor(kind);
        }
        for spec in tensors.values() {
            session.tensor(spec.clone())?;
        }
        Ok(session)
    }
}

impl Backend for RuntimeBackend {
    fn name(&self) -> &str {
        "runtime"
    }

    fn config_fingerprint(&self) -> String {
        // Mode decides functional vs model plans, the executor is baked
        // into bound sessions, and the options steer the lowering — all
        // plan-relevant. The lint fingerprint keeps differently-configured
        // admissions from aliasing in the plan cache.
        format!(
            "{:?};{:?};{:?};lint={}",
            self.mode,
            self.executor,
            self.options,
            self.lint.fingerprint()
        )
    }

    fn plan(&self, problem: &Problem, schedule: &Schedule) -> Result<Box<dyn Plan>, BackendError> {
        let assignment = problem
            .assignment()
            .ok_or_else(|| {
                BackendError::Compile(CompileError::Expression("problem has no statement".into()))
            })?
            .clone();
        // Schedule admission: denied findings reject the plan before any
        // lowering; warned findings ride on the plan and its reports.
        let diagnostics = crate::lint::admit(problem, schedule, &self.lint)?;
        let tensors = problem.tensors().clone();
        // A throwaway planning session: registers the tensors (allocating
        // the region ids the kernel's programs will reference) and runs
        // schedule application + lowering exactly once. Bind-time
        // sessions re-register in the same deterministic order, so their
        // region ids coincide — asserted in `bind`.
        let session = self.session_for(problem.spec(), problem.machine(), &tensors)?;
        let regions = tensors
            .keys()
            .map(|name| {
                let region = session.region(name).expect("registered above");
                (name.clone(), region)
            })
            .collect();
        let kernel = session.compile_assignment(&assignment, schedule, &self.options)?;
        Ok(Box::new(RuntimePlan {
            backend: self.clone(),
            spec: problem.spec().clone(),
            machine: problem.machine().clone(),
            tensors,
            regions,
            kernel: Arc::new(kernel),
            diagnostics,
        }))
    }
}

/// A [`RuntimeBackend`] plan: the compiled kernel + the immutable
/// registry it was lowered against. Binding creates a fresh session
/// seeded with the request's data; the kernel is shared, never
/// recompiled.
pub struct RuntimePlan {
    backend: RuntimeBackend,
    spec: distal_machine::spec::MachineSpec,
    machine: crate::machine::DistalMachine,
    tensors: BTreeMap<String, TensorSpec>,
    regions: BTreeMap<String, RegionId>,
    // Shared with every instance the plan binds — binding never copies
    // the lowered programs.
    kernel: Arc<CompiledKernel>,
    // Admission warnings (denied findings never produce a plan).
    diagnostics: Vec<crate::diagnostic::Diagnostic>,
}

impl std::fmt::Debug for RuntimePlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimePlan")
            .field("tensors", &self.tensors.keys().collect::<Vec<_>>())
            .finish_non_exhaustive()
    }
}

impl RuntimePlan {
    /// The compiled kernel (launch domain, programs, flops).
    pub fn kernel(&self) -> &CompiledKernel {
        &self.kernel
    }
}

impl Plan for RuntimePlan {
    fn backend(&self) -> &str {
        "runtime"
    }

    fn tensors(&self) -> &BTreeMap<String, TensorSpec> {
        &self.tensors
    }

    fn diagnostics(&self) -> &[crate::diagnostic::Diagnostic] {
        &self.diagnostics
    }

    fn bind(&self, bindings: &Bindings) -> Result<Box<dyn Instance>, BackendError> {
        bindings.validate(&self.tensors)?;
        let mut session = self
            .backend
            .session_for(&self.spec, &self.machine, &self.tensors)?;
        // The kernel's programs reference the planning session's region
        // ids; identical registration order makes the fresh session's ids
        // identical. Guard the invariant rather than assuming it.
        for (name, expected) in &self.regions {
            if session.region(name) != Some(*expected) {
                return Err(BackendError::Backend(format!(
                    "internal: region id drift for tensor '{name}' between plan and bind"
                )));
            }
        }
        for (name, init) in bindings.iter() {
            let dims = &self.tensors[name.as_str()].dims;
            match self.backend.mode {
                Mode::Functional => {
                    session.set_data(name, init.materialize(dims))?;
                }
                // Model mode holds no data; filling marks regions valid.
                // Compressed-format tensors still get nnz-aware byte
                // accounting, derived from this binding's nnz (never an
                // earlier instance's).
                Mode::Model => {
                    session.fill(name, 0.0)?;
                    let spec = &self.tensors[name.as_str()];
                    if spec.format.has_compressed() {
                        let scale = distal_sparse::csr_payload_scale(dims, init_nnz(init, dims));
                        if let Some(region) = session.region(name) {
                            session
                                .runtime_mut()
                                .set_region_payload_scale(region, scale);
                        }
                    }
                }
            }
        }
        Ok(Box::new(RuntimeInstance {
            session,
            kernel: Arc::clone(&self.kernel),
            mode: self.backend.mode,
            diagnostics: self.diagnostics.clone(),
        }))
    }
}

/// A [`RuntimeBackend`] instance: a private session + shared compiled
/// kernel. (`RuntimeArtifact` is the pre-split alias.)
pub struct RuntimeInstance {
    session: Session,
    kernel: Arc<CompiledKernel>,
    mode: Mode,
    diagnostics: Vec<crate::diagnostic::Diagnostic>,
}

impl std::fmt::Debug for RuntimeInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeInstance")
            .field("mode", &self.mode)
            .finish_non_exhaustive()
    }
}

/// Pre-split name of [`RuntimeInstance`].
pub type RuntimeArtifact = RuntimeInstance;

impl RuntimeInstance {
    /// The compiled kernel (launch domain, programs, flops).
    pub fn kernel(&self) -> &CompiledKernel {
        &self.kernel
    }

    /// The underlying session (runtime, regions, statistics).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The underlying session, mutably (tracing, executor knobs).
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    fn provenance(&self) -> Provenance {
        match self.mode {
            Mode::Functional => Provenance::Measured,
            Mode::Model => Provenance::Modeled,
        }
    }
}

impl Instance for RuntimeInstance {
    fn backend(&self) -> &str {
        "runtime"
    }

    fn place(&mut self) -> Result<Report, BackendError> {
        let stats = self.session.place(&self.kernel)?;
        Ok(Report::from_run_stats("runtime", self.provenance(), &stats))
    }

    fn execute(&mut self) -> Result<Report, BackendError> {
        let stats = self.session.execute(&self.kernel)?;
        let mut report = Report::from_run_stats("runtime", self.provenance(), &stats);
        report.diagnostics = self.diagnostics.clone();
        Ok(report)
    }

    fn read(&self, tensor: &str) -> Result<Vec<f64>, BackendError> {
        if self.session.region(tensor).is_none() {
            return Err(BackendError::UnknownTensor(tensor.into()));
        }
        if self.mode == Mode::Model {
            return Err(BackendError::NoData(format!(
                "model-mode instances hold no numerics; '{tensor}' cannot be read"
            )));
        }
        self.session.read(tensor).map_err(BackendError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::DistalMachine;
    use crate::session::TensorSpec;
    use distal_format::Format;
    use distal_machine::grid::Grid;
    use distal_machine::spec::{MachineSpec, MemKind, ProcKind};

    fn matmul_problem(n: i64) -> Problem {
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        let mut p = Problem::new(MachineSpec::small(2), machine);
        p.statement("A(i,j) = B(i,k) * C(k,j)").unwrap();
        let f = Format::parse("xy->xy", MemKind::Sys).unwrap();
        for t in ["A", "B", "C"] {
            p.tensor(TensorSpec::new(t, vec![n, n], f.clone())).unwrap();
        }
        p.fill_random("B", 1).unwrap();
        p.fill_random("C", 2).unwrap();
        p
    }

    #[test]
    fn functional_artifact_runs_and_reads() {
        let p = matmul_problem(8);
        let mut art = p
            .compile(&RuntimeBackend::functional(), &Schedule::summa(2, 2, 4))
            .unwrap();
        let report = art.run().unwrap();
        assert_eq!(report.backend, "runtime");
        assert_eq!(report.provenance, Provenance::Measured);
        assert!(report.flops > 0.0);
        assert!(report.tasks > 0);
        assert_eq!(art.read("A").unwrap().len(), 64);
        assert!(matches!(
            art.read("Z"),
            Err(BackendError::UnknownTensor(t)) if t == "Z"
        ));
    }

    #[test]
    fn model_artifact_reports_but_holds_no_data() {
        let p = matmul_problem(16);
        let mut art = p
            .compile(&RuntimeBackend::model(), &Schedule::summa(2, 2, 8))
            .unwrap();
        let report = art.run().unwrap();
        assert_eq!(report.provenance, Provenance::Modeled);
        assert!(report.critical_path_s > 0.0);
        assert!(matches!(art.read("A"), Err(BackendError::NoData(_))));
    }

    #[test]
    fn statementless_problem_rejected() {
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        let p = Problem::new(MachineSpec::small(2), machine);
        assert!(matches!(
            p.compile(&RuntimeBackend::functional(), &Schedule::new()),
            Err(BackendError::Compile(_))
        ));
    }

    #[test]
    fn one_plan_binds_many_instances_without_recompiling() {
        let p = matmul_problem(8);
        let backend = RuntimeBackend::functional();
        let plan = backend.plan(&p, &Schedule::summa(2, 2, 4)).unwrap();
        assert_eq!(plan.backend(), "runtime");
        assert_eq!(plan.tensors().len(), 3);

        let lowerings = crate::lower::compile_count();
        let applications = crate::schedule::apply_count();
        let mut outputs = Vec::new();
        for seed in [7u64, 8u64] {
            let mut b = Bindings::new();
            b.fill_random("B", seed).fill_random("C", seed + 50);
            let mut inst = plan.bind(&b).unwrap();
            inst.run().unwrap();
            outputs.push(inst.read("A").unwrap());
        }
        // Binding performed zero schedule-application / lowering work.
        assert_eq!(crate::lower::compile_count(), lowerings);
        assert_eq!(crate::schedule::apply_count(), applications);
        assert_ne!(outputs[0], outputs[1]);

        // Bind-time validation: unknown tensors and mis-sized data.
        let mut bad = Bindings::new();
        bad.fill("Z", 1.0);
        assert!(matches!(
            plan.bind(&bad),
            Err(BackendError::UnknownTensor(t)) if t == "Z"
        ));
        let mut short = Bindings::new();
        short.set_data("B", vec![1.0; 3]);
        assert!(matches!(
            plan.bind(&short),
            Err(BackendError::Compile(CompileError::DataSize { .. }))
        ));
    }
}
