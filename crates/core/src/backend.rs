//! The target abstraction: one [`Problem`] compiles onto any [`Backend`].
//!
//! DISTAL's central claim (§3–§6) is that one (statement, formats,
//! machine, schedule) bundle is portable across mappings *and* lowering
//! targets; §8 frames an MPI-style static backend as orthogonal to the
//! Legion-style dynamic runtime. This module is that claim as an API:
//!
//! * [`Backend`] — a compilation target. Implementations:
//!   [`RuntimeBackend`] (this crate: the dynamic runtime, functional or
//!   model mode), `SpmdBackend` and `CostBackend` (in `distal-spmd`:
//!   static MPI-style lowering, and pure cost estimation under either the
//!   model-mode simulator or the SPMD α-β model).
//! * [`Artifact`] — what a backend compiles to. Every artifact exposes
//!   the same surface (`place`, `execute`, `read`, [`Report`]s), so
//!   callers never special-case the backend they run on.
//!
//! ```
//! use distal_core::{DistalMachine, Problem, RuntimeBackend, Schedule, TensorSpec};
//! use distal_format::Format;
//! use distal_machine::{Grid, spec::{MachineSpec, MemKind, ProcKind}};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
//! let mut problem = Problem::new(MachineSpec::small(2), machine);
//! problem.statement("A(i,j) = B(i,k) * C(k,j)")?;
//! let tiles = Format::parse("xy->xy", MemKind::Sys)?;
//! for t in ["A", "B", "C"] {
//!     problem.tensor(TensorSpec::new(t, vec![8, 8], tiles.clone()))?;
//! }
//! problem.fill_random("B", 1)?.fill_random("C", 2)?;
//!
//! let mut artifact = problem.compile(&RuntimeBackend::functional(), &Schedule::summa(2, 2, 4))?;
//! let report = artifact.run()?;
//! assert_eq!(artifact.read("A")?.len(), 64);
//! assert!(report.flops > 0.0);
//! # Ok(())
//! # }
//! ```

use crate::error::CompileError;
use crate::lower::{CompileOptions, CompiledKernel};
use crate::problem::Problem;
use crate::report::{Provenance, Report};
use crate::schedule::Schedule;
use crate::session::Session;
use distal_runtime::exec::{Mode, RuntimeError};
use distal_runtime::executor::ExecutorKind;
use std::fmt;

/// Errors from compiling or running a problem on a backend.
#[derive(Clone, Debug, PartialEq)]
pub enum BackendError {
    /// Compilation failed (parse, format, schedule, or lowering errors).
    Compile(CompileError),
    /// The dynamic runtime failed (OOM, uninitialized data).
    Runtime(RuntimeError),
    /// A tensor name is not registered on the problem.
    UnknownTensor(String),
    /// The artifact holds no readable data (model/cost execution, or the
    /// artifact was not executed yet).
    NoData(String),
    /// The problem/schedule combination is outside the backend's scope.
    Unsupported(String),
    /// A backend-specific execution failure.
    Backend(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Compile(e) => write!(f, "compile error: {e}"),
            BackendError::Runtime(e) => write!(f, "runtime error: {e}"),
            BackendError::UnknownTensor(t) => write!(f, "unknown tensor '{t}'"),
            BackendError::NoData(m) => write!(f, "no data: {m}"),
            BackendError::Unsupported(m) => write!(f, "unsupported: {m}"),
            BackendError::Backend(m) => write!(f, "backend error: {m}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<CompileError> for BackendError {
    fn from(e: CompileError) -> Self {
        match e {
            CompileError::UnknownTensor(t) => BackendError::UnknownTensor(t),
            other => BackendError::Compile(other),
        }
    }
}

impl From<RuntimeError> for BackendError {
    fn from(e: RuntimeError) -> Self {
        BackendError::Runtime(e)
    }
}

/// A compilation target: lowers a [`Problem`] + [`Schedule`] to an
/// executable [`Artifact`]. See the [module docs](self).
pub trait Backend {
    /// Short stable name (`"runtime"`, `"spmd"`, `"cost"`), used in
    /// [`Report::backend`] and diagnostics.
    fn name(&self) -> &str;

    /// Compiles the problem for this target.
    ///
    /// # Errors
    ///
    /// [`BackendError::Compile`] when the problem has no statement or the
    /// lowering rejects it; backend-specific errors otherwise.
    fn compile(
        &self,
        problem: &Problem,
        schedule: &Schedule,
    ) -> Result<Box<dyn Artifact>, BackendError>;
}

/// A compiled problem on one backend: the common executable surface.
pub trait Artifact {
    /// The producing backend's name.
    fn backend(&self) -> &str;

    /// Moves tensors into their formats' distributions (a no-op report on
    /// backends whose data starts at rest).
    ///
    /// # Errors
    ///
    /// Backend execution errors (OOM, missing data).
    fn place(&mut self) -> Result<Report, BackendError>;

    /// Runs the computation.
    ///
    /// # Errors
    ///
    /// Backend execution errors (OOM, missing data).
    fn execute(&mut self) -> Result<Report, BackendError>;

    /// Reads a tensor's current contents (row-major).
    ///
    /// # Errors
    ///
    /// [`BackendError::UnknownTensor`] for unregistered names;
    /// [`BackendError::NoData`] on backends that hold no numerics (model
    /// mode, cost estimation) or before the artifact executed.
    fn read(&self, tensor: &str) -> Result<Vec<f64>, BackendError>;

    /// Places then executes, returning the merged report.
    ///
    /// # Errors
    ///
    /// Errors from either phase.
    fn run(&mut self) -> Result<Report, BackendError> {
        let mut r = self.place()?;
        r.merge(&self.execute()?);
        Ok(r)
    }
}

/// The dynamic-runtime target (the paper's Legion-style backend): tasks,
/// region coherence, work-stealing execution — functional numerics or the
/// pure timing model depending on [`Mode`].
#[derive(Clone, Debug)]
pub struct RuntimeBackend {
    /// Functional (real numerics) or model (timing only) execution.
    pub mode: Mode,
    /// Overrides the runtime's executor selection when set.
    pub executor: Option<ExecutorKind>,
    /// Compile options threaded into the lowering.
    pub options: CompileOptions,
}

impl RuntimeBackend {
    /// A backend with real numerics.
    pub fn functional() -> Self {
        RuntimeBackend {
            mode: Mode::Functional,
            executor: None,
            options: CompileOptions::default(),
        }
    }

    /// A backend that only simulates timing/communication.
    pub fn model() -> Self {
        RuntimeBackend {
            mode: Mode::Model,
            executor: None,
            options: CompileOptions::default(),
        }
    }

    /// Overrides the compile options.
    #[must_use]
    pub fn with_options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Overrides the executor selection.
    #[must_use]
    pub fn with_executor(mut self, kind: ExecutorKind) -> Self {
        self.executor = Some(kind);
        self
    }
}

impl Backend for RuntimeBackend {
    fn name(&self) -> &str {
        "runtime"
    }

    fn compile(
        &self,
        problem: &Problem,
        schedule: &Schedule,
    ) -> Result<Box<dyn Artifact>, BackendError> {
        let assignment = problem
            .assignment()
            .ok_or_else(|| {
                BackendError::Compile(CompileError::Expression("problem has no statement".into()))
            })?
            .clone();
        let mut session =
            Session::new(problem.spec().clone(), problem.machine().clone(), self.mode);
        if let Some(kind) = self.executor {
            session.set_executor(kind);
        }
        for spec in problem.tensors().values() {
            session.tensor(spec.clone())?;
        }
        for (name, init) in problem.inits() {
            match self.mode {
                Mode::Functional => {
                    let dims = &problem.tensors()[name].dims;
                    session.set_data(name, init.materialize(dims))?;
                }
                // Model mode holds no data; filling marks regions valid.
                // Compressed-format tensors still get nnz-aware byte
                // accounting, derived from the initializer's nnz.
                Mode::Model => {
                    session.fill(name, 0.0)?;
                    let scale = problem.payload_scale(name);
                    if scale != 1.0 {
                        if let Some(region) = session.region(name) {
                            session
                                .runtime_mut()
                                .set_region_payload_scale(region, scale);
                        }
                    }
                }
            }
        }
        let kernel = session.compile_assignment(&assignment, schedule, &self.options)?;
        Ok(Box::new(RuntimeArtifact {
            session,
            kernel,
            mode: self.mode,
        }))
    }
}

/// A [`RuntimeBackend`] artifact: a private session + compiled kernel.
pub struct RuntimeArtifact {
    session: Session,
    kernel: CompiledKernel,
    mode: Mode,
}

impl RuntimeArtifact {
    /// The compiled kernel (launch domain, programs, flops).
    pub fn kernel(&self) -> &CompiledKernel {
        &self.kernel
    }

    /// The underlying session (runtime, regions, statistics).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The underlying session, mutably (tracing, executor knobs).
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    fn provenance(&self) -> Provenance {
        match self.mode {
            Mode::Functional => Provenance::Measured,
            Mode::Model => Provenance::Modeled,
        }
    }
}

impl Artifact for RuntimeArtifact {
    fn backend(&self) -> &str {
        "runtime"
    }

    fn place(&mut self) -> Result<Report, BackendError> {
        let stats = self.session.place(&self.kernel)?;
        Ok(Report::from_run_stats("runtime", self.provenance(), &stats))
    }

    fn execute(&mut self) -> Result<Report, BackendError> {
        let stats = self.session.execute(&self.kernel)?;
        Ok(Report::from_run_stats("runtime", self.provenance(), &stats))
    }

    fn read(&self, tensor: &str) -> Result<Vec<f64>, BackendError> {
        if self.session.region(tensor).is_none() {
            return Err(BackendError::UnknownTensor(tensor.into()));
        }
        if self.mode == Mode::Model {
            return Err(BackendError::NoData(format!(
                "model-mode artifacts hold no numerics; '{tensor}' cannot be read"
            )));
        }
        self.session.read(tensor).map_err(BackendError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::DistalMachine;
    use crate::session::TensorSpec;
    use distal_format::Format;
    use distal_machine::grid::Grid;
    use distal_machine::spec::{MachineSpec, MemKind, ProcKind};

    fn matmul_problem(n: i64) -> Problem {
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        let mut p = Problem::new(MachineSpec::small(2), machine);
        p.statement("A(i,j) = B(i,k) * C(k,j)").unwrap();
        let f = Format::parse("xy->xy", MemKind::Sys).unwrap();
        for t in ["A", "B", "C"] {
            p.tensor(TensorSpec::new(t, vec![n, n], f.clone())).unwrap();
        }
        p.fill_random("B", 1).unwrap();
        p.fill_random("C", 2).unwrap();
        p
    }

    #[test]
    fn functional_artifact_runs_and_reads() {
        let p = matmul_problem(8);
        let mut art = p
            .compile(&RuntimeBackend::functional(), &Schedule::summa(2, 2, 4))
            .unwrap();
        let report = art.run().unwrap();
        assert_eq!(report.backend, "runtime");
        assert_eq!(report.provenance, Provenance::Measured);
        assert!(report.flops > 0.0);
        assert!(report.tasks > 0);
        assert_eq!(art.read("A").unwrap().len(), 64);
        assert!(matches!(
            art.read("Z"),
            Err(BackendError::UnknownTensor(t)) if t == "Z"
        ));
    }

    #[test]
    fn model_artifact_reports_but_holds_no_data() {
        let p = matmul_problem(16);
        let mut art = p
            .compile(&RuntimeBackend::model(), &Schedule::summa(2, 2, 8))
            .unwrap();
        let report = art.run().unwrap();
        assert_eq!(report.provenance, Provenance::Modeled);
        assert!(report.critical_path_s > 0.0);
        assert!(matches!(art.read("A"), Err(BackendError::NoData(_))));
    }

    #[test]
    fn statementless_problem_rejected() {
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        let p = Problem::new(MachineSpec::small(2), machine);
        assert!(matches!(
            p.compile(&RuntimeBackend::functional(), &Schedule::new()),
            Err(BackendError::Compile(_))
        ));
    }
}
