//! The compiler's [`KernelGen`] implementation: statements become
//! monomorphized leaf kernels at plan time.
//!
//! Three layers of specialization, tried in order:
//!
//! 1. **CSR fast paths** (`spmv.gen` / `spmm.gen` / `sddmm.gen`, in
//!    `distal-sparse`) for the SpDISTAL shapes whose first input is
//!    compressed: row slices are scanned directly with the row base
//!    hoisted out of the inner loop — no per-execute CSR build, no
//!    per-element coordinate mapping.
//! 2. **Generated dense GEMM** (`gemm.gen`) for matmul-shaped pure
//!    access products: the `(i, k, j)` loop nest over contiguous row
//!    slices. The inner loop is a bare mul-add pair rather than
//!    `f64::mul_add` — without a guaranteed FMA target feature the
//!    intrinsic falls back to a libm call with different rounding, which
//!    would break bit-parity with the interpreter.
//! 3. **The tape compiler** (`tape` / `tape.s1`) for everything else:
//!    the expression tree is flattened once into a postfix op tape, and
//!    per-access offsets are strength-reduced along the innermost
//!    statement variable — eliminating the interpreter's per-point
//!    recursion and coordinate re-mapping while preserving its exact
//!    evaluation order (postfix evaluation of the same tree with the
//!    same operand order is the same float sequence). `tape.s1` marks
//!    statements whose innermost variable is the final index of every
//!    access that carries it, i.e. the inner loop walks every operand at
//!    stride 1.
//!
//! Every generated kernel is **bit-identical** to
//! [`crate::kernels::InterpreterKernel`] over the same request: fast
//! paths reorder only independent output elements, never the
//! accumulation order within one output element, and zero-skipping
//! follows the `±0.0` argument documented in `distal-sparse`.
//!
//! Specializations are cached process-wide by request fingerprint, so a
//! plan bound many times — or many plans over the same statement — pays
//! for kernel generation once. [`specialize_count`] counts cache misses
//! on the calling thread; `tests/plan_reuse.rs` asserts it stays flat
//! across `bind`/`run` of an existing plan.

use crate::kernels::{is_matmul, is_sddmm, is_spmv, rhs_is_access_product};
use distal_ir::expr::{Expr, IndexVar};
use distal_runtime::kernel::{Kernel, KernelCtx};
use distal_runtime::kernelgen::{KernelGen, LeafRequest};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

thread_local! {
    /// Per-thread count of *fresh* specializations (cache misses).
    /// Binding or running an already-planned statement must leave this
    /// untouched — the plan-reuse analogue of `lower::compile_count`.
    static SPECIALIZATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// How many leaf kernels were generated (not served from cache) on the
/// calling thread.
pub fn specialize_count() -> u64 {
    SPECIALIZATIONS.with(|c| c.get())
}

/// Process-wide specialization cache, keyed by request fingerprint.
/// Bounded: past [`CACHE_CAP`] entries it resets rather than growing
/// without limit (specializations are cheap to redo; unbounded maps in a
/// long-lived serving process are not).
static CACHE: OnceLock<Mutex<HashMap<String, Arc<dyn Kernel>>>> = OnceLock::new();

const CACHE_CAP: usize = 256;

/// Specializes a leaf request into a kernel, serving repeats from the
/// process-wide cache. This is the entry point both backends call at
/// plan time; `bind` never reaches it.
pub fn specialize(req: &LeafRequest) -> Arc<dyn Kernel> {
    let key = req.fingerprint();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(k) = cache.lock().expect("kernel cache poisoned").get(&key) {
        return Arc::clone(k);
    }
    SPECIALIZATIONS.with(|c| c.set(c.get() + 1));
    let kernel = build(req);
    let mut map = cache.lock().expect("kernel cache poisoned");
    if map.len() >= CACHE_CAP {
        map.clear();
    }
    map.insert(key, Arc::clone(&kernel));
    kernel
}

/// The compiler's kernel generator as a [`KernelGen`] trait object (for
/// callers that take the runtime-crate abstraction rather than this
/// crate's [`specialize`] directly).
#[derive(Clone, Copy, Debug, Default)]
pub struct Generator;

impl KernelGen for Generator {
    fn name(&self) -> &str {
        "distal-kernelgen"
    }

    fn specialize(&self, req: &LeafRequest) -> Arc<dyn Kernel> {
        specialize(req)
    }
}

/// Uncached specialization: shape dispatch per the module docs.
fn build(req: &LeafRequest) -> Arc<dyn Kernel> {
    let a = &req.assignment;
    let pure = rhs_is_access_product(a);
    let first_only = req.compressed.first().copied().unwrap_or(false)
        && req.compressed.iter().skip(1).all(|c| !c);
    // The CSR paths skip exactly the first operand's stored zeros, which
    // is both the runtime's canonical sparse-leaf behaviour and the SPMD
    // VM's pruning discipline when only that operand is compressed.
    if pure && first_only && req.accumulate {
        if is_spmv(a) {
            return Arc::new(distal_sparse::SpmvGenLeaf);
        }
        if is_matmul(a) {
            return Arc::new(distal_sparse::SpmmGenLeaf);
        }
        if is_sddmm(a) {
            return Arc::new(distal_sparse::SddmmGenLeaf);
        }
    }
    // The dense GEMM never skips, so it is only valid when no skipping
    // was requested (compressed operands outside the canonical shapes
    // execute densely in the runtime, where skip_zero is false).
    let skip_needed = req.skip_zero && req.any_compressed();
    if pure && req.accumulate && !skip_needed && is_matmul(a) {
        return Arc::new(GemmGenKernel);
    }
    Arc::new(TapeKernel::new(req))
}

/// One postfix tape operation.
#[derive(Clone, Copy, Debug)]
enum TapeOp {
    /// Push the `n`th gathered input value (right-hand-side access
    /// order — the order `Expr::eval` consumes them).
    Load(usize),
    /// Push a literal.
    Lit(f64),
    /// Pop two, push their sum (left operand pushed first).
    Add,
    /// Pop two, push their product.
    Mul,
}

fn flatten(e: &Expr, next: &mut usize, tape: &mut Vec<TapeOp>) {
    match e {
        Expr::Access(_) => {
            tape.push(TapeOp::Load(*next));
            *next += 1;
        }
        Expr::Literal(c) => tape.push(TapeOp::Lit(*c)),
        Expr::Add(l, r) => {
            flatten(l, next, tape);
            flatten(r, next, tape);
            tape.push(TapeOp::Add);
        }
        Expr::Mul(l, r) => {
            flatten(l, next, tape);
            flatten(r, next, tape);
            tape.push(TapeOp::Mul);
        }
    }
}

fn eval_tape(tape: &[TapeOp], vals: &[f64], stack: &mut Vec<f64>) -> f64 {
    stack.clear();
    for op in tape {
        match *op {
            TapeOp::Load(i) => stack.push(vals[i]),
            TapeOp::Lit(c) => stack.push(c),
            TapeOp::Add => {
                let b = stack.pop().expect("tape underflow");
                let a = stack.pop().expect("tape underflow");
                stack.push(a + b);
            }
            TapeOp::Mul => {
                let b = stack.pop().expect("tape underflow");
                let a = stack.pop().expect("tape underflow");
                stack.push(a * b);
            }
        }
    }
    stack.pop().expect("empty tape")
}

/// A tape-compiled leaf: postfix op tape + precomputed access maps, with
/// strength-reduced offsets along the innermost statement variable.
pub struct TapeKernel {
    name: &'static str,
    tape: Vec<TapeOp>,
    stack_cap: usize,
    /// Per access (destination first): positions into `all_vars` of each
    /// of the access's index variables.
    maps: Vec<Vec<usize>>,
    n_vars: usize,
    accumulate: bool,
    /// Per input access: prune points where this operand's value has a
    /// zero bit pattern (the SPMD VM's compressed-operand discipline).
    skip: Vec<bool>,
    any_skip: bool,
}

impl TapeKernel {
    /// Compiles a request's statement into a tape kernel.
    pub fn new(req: &LeafRequest) -> Self {
        let a = &req.assignment;
        let vars: Vec<IndexVar> = a.all_vars();
        let pos = |v: &IndexVar| vars.iter().position(|x| x == v).expect("unknown var");
        let mut maps: Vec<Vec<usize>> = Vec::new();
        maps.push(a.lhs.indices.iter().map(pos).collect());
        for acc in a.input_accesses() {
            maps.push(acc.indices.iter().map(pos).collect());
        }
        let mut tape = Vec::new();
        let mut next = 0usize;
        flatten(&a.rhs, &mut next, &mut tape);
        debug_assert_eq!(next, maps.len() - 1, "tape loads vs accesses");
        let mut depth = 0usize;
        let mut stack_cap = 0usize;
        for op in &tape {
            match op {
                TapeOp::Load(_) | TapeOp::Lit(_) => depth += 1,
                TapeOp::Add | TapeOp::Mul => depth -= 1,
            }
            stack_cap = stack_cap.max(depth);
        }
        // Stride-1 innermost loop: the last statement variable only ever
        // appears as the *final* index of an access, so every operand
        // that moves in the inner loop moves contiguously.
        let n_vars = vars.len();
        let stride1 = n_vars > 0
            && maps.iter().all(|m| {
                m.iter()
                    .enumerate()
                    .all(|(d, &vi)| vi != n_vars - 1 || d == m.len() - 1)
            });
        let skip = if req.skip_zero {
            req.compressed.clone()
        } else {
            vec![false; maps.len() - 1]
        };
        let any_skip = skip.iter().any(|&s| s);
        TapeKernel {
            name: if stride1 { "tape.s1" } else { "tape" },
            tape,
            stack_cap,
            maps,
            n_vars,
            accumulate: req.accumulate,
            skip,
            any_skip,
        }
    }
}

impl Kernel for TapeKernel {
    fn name(&self) -> &str {
        self.name
    }

    fn execute(&self, ctx: &mut KernelCtx) {
        let nv = self.n_vars;
        assert_eq!(ctx.scalars.len(), 2 * nv, "bounds scalars mismatch");
        let na = self.maps.len();
        let n_inputs = na - 1;
        let mut stack: Vec<f64> = Vec::with_capacity(self.stack_cap);
        let mut vals = vec![0.0f64; n_inputs];
        if nv == 0 {
            // Scalar statement: a single point, every access 0-d.
            let mut pruned = false;
            for (ii, val) in vals.iter_mut().enumerate() {
                let v = ctx.args[ii + 1].at(&[]);
                *val = v;
                pruned |= self.skip[ii] && v.to_bits() == 0;
            }
            if !pruned {
                let v = eval_tape(&self.tape, &vals, &mut stack);
                let out = &mut ctx.args[0];
                if self.accumulate {
                    out.add(&[], v);
                } else {
                    out.set(&[], v);
                }
            }
            return;
        }
        let mut lo = vec![0i64; nv];
        let mut hi = vec![0i64; nv];
        for v in 0..nv {
            lo[v] = ctx.scalars[2 * v];
            hi[v] = ctx.scalars[2 * v + 1];
            if hi[v] < lo[v] {
                return; // empty leaf (over-decomposed launch point)
            }
        }
        // Per access: row-major base offset at the `lo` corner and the
        // linear stride of each statement variable (repeated variables
        // within one access sum their dimension strides).
        let mut base = vec![0i64; na];
        let mut strides = vec![0i64; na * nv];
        let mut coords: Vec<i64> = Vec::with_capacity(nv);
        for (ai, map) in self.maps.iter().enumerate() {
            let arg = &ctx.args[ai];
            coords.clear();
            coords.extend(map.iter().map(|&vi| lo[vi]));
            base[ai] = arg.offset(&coords) as i64;
            let mut s = 1i64;
            for d in (0..map.len()).rev() {
                strides[ai * nv + map[d]] += s;
                s *= arg.alloc.extent(d);
            }
        }
        let inner = nv - 1;
        let n_inner = (hi[inner] - lo[inner]) as usize + 1;
        let mut point = lo.clone();
        let mut offs = vec![0i64; na];
        loop {
            // Offsets for this row (inner variable at its lower bound).
            for ai in 0..na {
                let mut o = base[ai];
                for v in 0..inner {
                    o += strides[ai * nv + v] * (point[v] - lo[v]);
                }
                offs[ai] = o;
            }
            for step in 0..n_inner as i64 {
                let mut pruned = false;
                for (ii, val) in vals.iter_mut().enumerate() {
                    let ai = ii + 1;
                    let off = offs[ai] + step * strides[ai * nv + inner];
                    let v = ctx.args[ai].data[off as usize];
                    *val = v;
                    pruned |= self.any_skip && self.skip[ii] && v.to_bits() == 0;
                }
                if pruned {
                    continue;
                }
                let v = eval_tape(&self.tape, &vals, &mut stack);
                let oo = (offs[0] + step * strides[inner]) as usize;
                if self.accumulate {
                    ctx.args[0].data[oo] += v;
                } else {
                    ctx.args[0].data[oo] = v;
                }
            }
            // Advance the outer odometer (variables before the inner one).
            if inner == 0 {
                return;
            }
            let mut d = inner;
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                point[d] += 1;
                if point[d] <= hi[d] {
                    break;
                }
                point[d] = lo[d];
                if d == 0 {
                    return;
                }
            }
        }
    }
}

impl std::fmt::Debug for TapeKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TapeKernel")
            .field("name", &self.name)
            .field("tape_len", &self.tape.len())
            .finish_non_exhaustive()
    }
}

/// The generated dense GEMM: `A(i,j) += B(i,k) * C(k,j)` in the same
/// `(i, ascending k, contiguous j)` order as the blocked
/// [`crate::kernels::GemmKernel`] — bit-identical to it and to the
/// interpreter — but with the inner loop over bounds-check-free row
/// slices.
#[derive(Debug)]
pub struct GemmGenKernel;

impl Kernel for GemmGenKernel {
    fn name(&self) -> &str {
        "gemm.gen"
    }

    fn execute(&self, ctx: &mut KernelCtx) {
        let s = &ctx.scalars;
        assert_eq!(s.len(), 6, "gemm bounds mismatch");
        let (ilo, ihi, jlo, jhi, klo, khi) = (s[0], s[1], s[2], s[3], s[4], s[5]);
        if ihi < ilo || jhi < jlo || khi < klo {
            return;
        }
        let (nj, nk) = ((jhi - jlo + 1) as usize, (khi - klo + 1) as usize);
        let (a_arg, rest) = ctx.args.split_at_mut(1);
        let (a, b, c) = (&mut a_arg[0], &rest[0], &rest[1]);
        let a_cols = a.alloc.extent(1) as usize;
        let b_cols = b.alloc.extent(1) as usize;
        let c_cols = c.alloc.extent(1) as usize;
        let a_base = a.offset(&[ilo, jlo]);
        let b_base = b.offset(&[ilo, klo]);
        let c_base = c.offset(&[klo, jlo]);
        for i in 0..=(ihi - ilo) as usize {
            let b_row = &b.data[b_base + i * b_cols..b_base + i * b_cols + nk];
            let a_row = &mut a.data[a_base + i * a_cols..a_base + i * a_cols + nj];
            for (k, &bv) in b_row.iter().enumerate() {
                let c_row = &c.data[c_base + k * c_cols..c_base + k * c_cols + nj];
                for (av, &cv) in a_row.iter_mut().zip(c_row) {
                    *av += bv * cv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{GemmKernel, InterpreterKernel};
    use distal_ir::expr::Assignment;
    use distal_machine::geom::{Point, Rect};
    use distal_runtime::kernel::KernelArg;
    use distal_runtime::program::Privilege;

    fn arg(rect: Rect, data: Vec<f64>) -> KernelArg {
        KernelArg {
            privilege: Privilege::ReadWrite,
            rect: rect.clone(),
            alloc: rect,
            data,
        }
    }

    fn data(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        (0..n)
            .map(|_| {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    /// Runs `kernel` over dense args shaped for `a`, with each variable
    /// spanning `0..n`.
    fn run(kernel: &dyn Kernel, a: &Assignment, n: i64, seed: u64) -> Vec<f64> {
        let nv = a.all_vars().len();
        let mut args = Vec::new();
        for (idx, acc) in a.accesses().iter().enumerate() {
            let dims: Vec<i64> = acc.indices.iter().map(|_| n).collect();
            let rect = Rect::sized(&dims);
            let vol = rect.volume().max(1) as usize;
            let d = if idx == 0 {
                vec![0.0; vol]
            } else {
                data(vol, seed + idx as u64)
            };
            args.push(arg(rect, d));
        }
        let mut scalars = Vec::new();
        for _ in 0..nv {
            scalars.push(0);
            scalars.push(n - 1);
        }
        let mut ctx = KernelCtx {
            args,
            point: Point::zeros(1),
            scalars,
        };
        kernel.execute(&mut ctx);
        ctx.args.swap_remove(0).data
    }

    #[test]
    fn tape_matches_interpreter_across_statements() {
        for stmt in [
            "A(i,j) = B(i,k) * C(k,j)",
            "A(i,j) = B(i,j,k) * c(k)",
            "A(i,l) = B(i,j,k) * C(j,l) * D(k,l)",
            "a = B(i,j,k) * C(i,j,k)",
            "A(i) = B(i) + C(i)",
            "A(i) = B(i) * 2.5 + C(i)",
            "A(i,j) = B(j,i)",
        ] {
            let a = Assignment::parse(stmt).unwrap();
            let interp = InterpreterKernel::new(a.clone());
            let req = LeafRequest::dense(a.clone(), a.is_reduction());
            let tape = TapeKernel::new(&req);
            let want = run(&interp, &a, 5, 11);
            let got = run(&tape, &a, 5, 11);
            assert_eq!(want.len(), got.len(), "{stmt}");
            for (g, w) in got.iter().zip(want.iter()) {
                assert_eq!(g.to_bits(), w.to_bits(), "{stmt}");
            }
        }
    }

    #[test]
    fn tape_stride1_naming() {
        // Last var `k` is the final index of B and c: stride-1.
        let ttv = Assignment::parse("A(i,j) = B(i,j,k) * c(k)").unwrap();
        assert_eq!(
            TapeKernel::new(&LeafRequest::dense(ttv, true)).name(),
            "tape.s1"
        );
        // Matmul's last var `k` is B's *first* index: strided.
        let mm = distal_ir::expr::kernels::matmul();
        assert_eq!(
            TapeKernel::new(&LeafRequest::dense(mm, true)).name(),
            "tape"
        );
    }

    #[test]
    fn generated_gemm_matches_blocked_gemm_and_interpreter() {
        let a = distal_ir::expr::kernels::matmul();
        let blocked = run(&GemmKernel, &a, 7, 3);
        let gen = run(&GemmGenKernel, &a, 7, 3);
        let interp = run(&InterpreterKernel::new(a.clone()), &a, 7, 3);
        for ((g, b), i) in gen.iter().zip(blocked.iter()).zip(interp.iter()) {
            assert_eq!(g.to_bits(), b.to_bits());
            assert_eq!(g.to_bits(), i.to_bits());
        }
    }

    #[test]
    fn tape_skip_zero_prunes_flagged_operands() {
        let a = Assignment::parse("A(i) = B(i) * C(i)").unwrap();
        let mut req = LeafRequest::dense(a, true);
        req.compressed = vec![true, false];
        req.skip_zero = true;
        let tape = TapeKernel::new(&req);
        let r = Rect::sized(&[3]);
        let mut ctx = KernelCtx {
            args: vec![
                arg(r.clone(), vec![0.0; 3]),
                arg(r.clone(), vec![0.0, -0.0, 2.0]),
                arg(r, vec![5.0, 5.0, 5.0]),
            ],
            point: Point::zeros(1),
            scalars: vec![0, 2],
        };
        tape.execute(&mut ctx);
        // +0.0 pruned; -0.0 is a *stored* entry (nonzero bits) and
        // computes -0.0 * 5.0 = -0.0 added into +0.0 -> +0.0.
        assert_eq!(ctx.args[0].data, vec![0.0, 0.0, 10.0]);
        assert_eq!(ctx.args[0].data[1].to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn dispatch_picks_expected_variants() {
        let mm = distal_ir::expr::kernels::matmul();
        assert_eq!(
            build(&LeafRequest::dense(mm.clone(), true)).name(),
            "gemm.gen"
        );
        let mut sp = LeafRequest::dense(mm.clone(), true);
        sp.compressed = vec![true, false];
        assert_eq!(build(&sp).name(), "spmm.gen");
        let spmv = Assignment::parse("a(i) = B(i,j) * c(j)").unwrap();
        let mut r = LeafRequest::dense(spmv, true);
        r.compressed = vec![true, false];
        assert_eq!(build(&r).name(), "spmv.gen");
        let sddmm = Assignment::parse("A(i,j) = B(i,j) * C(i,k) * D(k,j)").unwrap();
        let mut r = LeafRequest::dense(sddmm, true);
        r.compressed = vec![true, false, false];
        assert_eq!(build(&r).name(), "sddmm.gen");
        // Compression beyond the first operand with skipping: tape.
        let mut both = LeafRequest::dense(mm.clone(), true);
        both.compressed = vec![true, true];
        both.skip_zero = true;
        assert_eq!(build(&both).name(), "tape");
        // Literal factor: never a specialized product kernel.
        let lit = Assignment::parse("A(i,j) = B(i,k) * C(k,j) * 2.0").unwrap();
        assert_eq!(build(&LeafRequest::dense(lit, true)).name(), "tape");
    }

    #[test]
    fn cache_counts_only_fresh_specializations() {
        // A statement no other test specializes, so the first call is a
        // genuine miss on this thread.
        let a = Assignment::parse("Zq(u,v) = Qz(u,w) * Wz(w,v) + Qz(u,v)").unwrap();
        let req = LeafRequest::dense(a, true);
        let before = specialize_count();
        let k1 = specialize(&req);
        assert_eq!(specialize_count(), before + 1);
        let k2 = specialize(&req);
        assert_eq!(specialize_count(), before + 1, "second call must hit");
        assert!(Arc::ptr_eq(&k1, &k2));
    }
}
