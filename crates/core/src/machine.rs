//! The abstract machine a computation is scheduled onto.

use distal_machine::grid::{Grid, MachineHierarchy};
use distal_machine::spec::ProcKind;

/// DISTAL's view of the target machine: a (possibly hierarchical) grid of
/// abstract processors of one kind (paper §3.1).
///
/// Schedules distribute loops over the *flattened* grid; formats may
/// distribute tensors per hierarchy level. The [`crate::GridMapper`] binds
/// abstract grid points to physical processors, filling the role of the
/// paper's custom Legion mapper.
#[derive(Clone, Debug)]
pub struct DistalMachine {
    /// The abstract grid hierarchy (e.g. nodes × GPUs-per-node).
    pub hierarchy: MachineHierarchy,
    /// Which physical processors the abstract processors stand for.
    pub proc_kind: ProcKind,
}

impl DistalMachine {
    /// A flat (single-level) machine grid.
    pub fn flat(grid: Grid, proc_kind: ProcKind) -> Self {
        DistalMachine {
            hierarchy: MachineHierarchy::flat(grid),
            proc_kind,
        }
    }

    /// A hierarchical machine (outermost level first).
    pub fn hierarchical(levels: Vec<Grid>, proc_kind: ProcKind) -> Self {
        DistalMachine {
            hierarchy: MachineHierarchy::new(levels),
            proc_kind,
        }
    }

    /// The flattened grid schedules distribute over.
    pub fn grid(&self) -> Grid {
        self.hierarchy.flat_grid()
    }

    /// Total abstract processors.
    pub fn size(&self) -> i64 {
        self.hierarchy.total_processors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_and_hierarchical() {
        let m = DistalMachine::flat(Grid::grid2(4, 4), ProcKind::Gpu);
        assert_eq!(m.size(), 16);
        assert_eq!(m.grid(), Grid::grid2(4, 4));
        let h = DistalMachine::hierarchical(vec![Grid::grid2(2, 2), Grid::line(4)], ProcKind::Gpu);
        assert_eq!(h.size(), 16);
        assert_eq!(h.grid(), Grid::grid3(2, 2, 4));
    }
}
