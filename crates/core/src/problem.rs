//! The target-agnostic problem description: statement + tensors + machine.
//!
//! A [`Problem`] carries everything DISTAL's §3 input bundle needs *except*
//! the schedule and the lowering target: the tensor index notation
//! statement, the registered tensors (shape + distribution format, with
//! optional initial data), the abstract machine grid, and the physical
//! machine model. The same `Problem` then compiles against any
//! [`Backend`] — the dynamic runtime, the static
//! SPMD lowering, or a pure cost model — via
//! [`Problem::compile`]; schedules stay separate so an autoscheduler can
//! sweep them over one immutable problem.

use crate::backend::{Backend, BackendError};
use crate::error::CompileError;
use crate::machine::DistalMachine;
use crate::plan::{Bindings, Instance, Plan};
use crate::schedule::Schedule;
use crate::session::TensorSpec;
use distal_ir::expr::Assignment;
use distal_machine::spec::MachineSpec;
use std::collections::BTreeMap;

/// Deterministic pseudo-random tensor data in `[-1, 1)` (xorshift64*).
///
/// This is *the* seeding function shared by every backend: a tensor
/// registered with [`TensorInit::Random`] materializes to exactly these
/// values whether it is seeded into runtime regions or fed to the SPMD
/// rank VM, which is what makes cross-backend runs bit-comparable.
pub fn random_data(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    (0..n)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (r >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

/// Deterministic pseudo-random data with explicit `+0.0` entries at the
/// given density: element `i` keeps the value [`random_data`] would assign
/// it with probability `density` (drawn from an independent xorshift64*
/// mask stream) and is an exact `+0.0` otherwise.
///
/// `density >= 1.0` returns exactly `random_data(n, seed)`, so the dense
/// and sparse seeding paths coincide at full density. Like [`random_data`]
/// this is shared by every backend, which is what makes sparse problems
/// cross-backend bit-comparable.
pub fn sparse_random_data(n: usize, seed: u64, density: f64) -> Vec<f64> {
    let mut vals = random_data(n, seed);
    if density >= 1.0 {
        return vals;
    }
    let mut state = (seed ^ 0x5DEE_CE66_D171_9B4B)
        .wrapping_mul(0xD1B5_4A32_D192_ED03)
        .max(1);
    for v in &mut vals {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let u = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        if u >= density {
            *v = 0.0;
        }
    }
    vals
}

/// How a registered tensor's initial contents are defined.
#[derive(Clone, Debug, PartialEq)]
pub enum TensorInit {
    /// Every element set to a constant.
    Value(f64),
    /// Explicit row-major data.
    Data(Vec<f64>),
    /// Deterministic pseudo-random data from a seed (see [`random_data`]).
    Random(u64),
    /// Deterministic pseudo-random data with explicit zeros: each element
    /// is nonzero with probability `density` (see [`sparse_random_data`]).
    RandomSparse {
        /// The seed shared with [`TensorInit::Random`]'s value stream.
        seed: u64,
        /// Expected fraction of nonzero elements, in `[0, 1]`.
        density: f64,
    },
}

impl TensorInit {
    /// Materializes the initial contents for a tensor of the given shape.
    pub fn materialize(&self, dims: &[i64]) -> Vec<f64> {
        let n = dims.iter().product::<i64>().max(1) as usize;
        match self {
            TensorInit::Value(v) => vec![*v; n],
            TensorInit::Data(d) => d.clone(),
            TensorInit::Random(seed) => random_data(n, *seed),
            TensorInit::RandomSparse { seed, density } => sparse_random_data(n, *seed, *density),
        }
    }
}

/// A statement + registered tensors + abstract machine, ready to compile
/// onto any backend. See the [module docs](self) and the crate example.
#[derive(Clone, Debug)]
pub struct Problem {
    spec: MachineSpec,
    machine: DistalMachine,
    statement: Option<Assignment>,
    tensors: BTreeMap<String, TensorSpec>,
    init: BTreeMap<String, TensorInit>,
}

impl Problem {
    /// A problem on an abstract machine backed by a physical model.
    pub fn new(spec: MachineSpec, machine: DistalMachine) -> Self {
        Problem {
            spec,
            machine,
            statement: None,
            tensors: BTreeMap::new(),
            init: BTreeMap::new(),
        }
    }

    /// Sets the tensor index notation statement.
    ///
    /// # Errors
    ///
    /// Parse errors.
    pub fn statement(&mut self, expr: &str) -> Result<&mut Self, CompileError> {
        let a = Assignment::parse(expr).map_err(|e| CompileError::Expression(e.to_string()))?;
        self.statement = Some(a);
        Ok(self)
    }

    /// Sets an already-parsed statement.
    pub fn set_assignment(&mut self, assignment: Assignment) -> &mut Self {
        self.statement = Some(assignment);
        self
    }

    /// The parsed statement, if one was set.
    pub fn assignment(&self) -> Option<&Assignment> {
        self.statement.as_ref()
    }

    /// The physical machine model.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The abstract machine.
    pub fn machine(&self) -> &DistalMachine {
        &self.machine
    }

    /// Registers a tensor, validating its format against the machine.
    ///
    /// # Errors
    ///
    /// Rejects formats whose notation arity doesn't match the tensor order
    /// or the machine's hierarchy levels.
    pub fn tensor(&mut self, spec: TensorSpec) -> Result<&mut Self, CompileError> {
        let machine = self.machine.clone();
        self.tensor_for_machine(spec, &machine)
    }

    /// Registers a tensor whose format targets a *different* abstract
    /// machine than the problem default (the CTF baseline's internal
    /// matricized tensors live on per-contraction grids).
    ///
    /// # Errors
    ///
    /// Same as [`Problem::tensor`], validated against the given machine.
    pub fn tensor_for_machine(
        &mut self,
        spec: TensorSpec,
        machine: &DistalMachine,
    ) -> Result<&mut Self, CompileError> {
        validate_format(&spec, machine)?;
        self.tensors.insert(spec.name.clone(), spec);
        Ok(self)
    }

    /// The registered tensors, by name.
    pub fn tensors(&self) -> &BTreeMap<String, TensorSpec> {
        &self.tensors
    }

    /// The registered spec of one tensor.
    pub fn tensor_spec(&self, name: &str) -> Option<&TensorSpec> {
        self.tensors.get(name)
    }

    /// Tensor shapes keyed by name (the oracle/extents input format).
    pub fn dims_map(&self) -> BTreeMap<String, Vec<i64>> {
        self.tensors
            .iter()
            .map(|(n, s)| (n.clone(), s.dims.clone()))
            .collect()
    }

    /// Seeds a tensor with explicit row-major data.
    ///
    /// # Errors
    ///
    /// Unknown tensors and size mismatches.
    pub fn set_data(&mut self, name: &str, data: Vec<f64>) -> Result<&mut Self, CompileError> {
        let spec = self
            .tensors
            .get(name)
            .ok_or_else(|| CompileError::UnknownTensor(name.into()))?;
        let init = TensorInit::Data(data);
        // The typed length check: a mis-sized `Data` initializer would
        // otherwise materialize silently (`d.clone()` regardless of the
        // registered shape) and fail much later, inside a backend.
        init.validate(name, &spec.dims)?;
        self.init.insert(name.into(), init);
        Ok(self)
    }

    /// Fills a tensor with a constant.
    ///
    /// # Errors
    ///
    /// Unknown tensor names.
    pub fn fill(&mut self, name: &str, value: f64) -> Result<&mut Self, CompileError> {
        self.require(name)?;
        self.init.insert(name.into(), TensorInit::Value(value));
        Ok(self)
    }

    /// Seeds a tensor with deterministic pseudo-random values in `[-1, 1)`
    /// ([`random_data`]; identical across backends for the same seed).
    ///
    /// # Errors
    ///
    /// Unknown tensor names.
    pub fn fill_random(&mut self, name: &str, seed: u64) -> Result<&mut Self, CompileError> {
        self.require(name)?;
        self.init.insert(name.into(), TensorInit::Random(seed));
        Ok(self)
    }

    /// Seeds a tensor with deterministic pseudo-random values thinned to
    /// the given density: each element is nonzero with probability
    /// `density`, exactly `+0.0` otherwise ([`sparse_random_data`]) — the
    /// density knob of [`Problem::fill_random`]. At `density = 1.0` the
    /// two coincide. The materialized data is independent of the tensor's
    /// level formats, so a compressed and a dense registration of the same
    /// `(seed, density)` hold bit-identical logical contents (the basis of
    /// the sparse/dense parity suite). For [`Problem::set_data`] no knob is
    /// needed: the explicit zeros in the data itself determine the nnz
    /// ([`Problem::nnz_of`]).
    ///
    /// # Errors
    ///
    /// Unknown tensor names, and densities outside `[0, 1]`.
    pub fn fill_random_sparse(
        &mut self,
        name: &str,
        seed: u64,
        density: f64,
    ) -> Result<&mut Self, CompileError> {
        self.require(name)?;
        if !(0.0..=1.0).contains(&density) {
            return Err(CompileError::Session(format!(
                "density must be in [0, 1], got {density}"
            )));
        }
        self.init
            .insert(name.into(), TensorInit::RandomSparse { seed, density });
        Ok(self)
    }

    /// The declared initializer of a tensor, if any.
    pub fn init_of(&self, name: &str) -> Option<&TensorInit> {
        self.init.get(name)
    }

    /// The number of stored (nonzero-bit-pattern) elements of a tensor's
    /// initial contents; `None` when the tensor is unknown or has no
    /// initializer. This is the nnz the registry advertises to nnz-aware
    /// cost accounting on every backend.
    ///
    /// `Value` and `Random` initializers are answered analytically without
    /// materializing the data, and `Data` is scanned in place (`Random`
    /// values are uniform in `[-1, 1)`, so they are treated as fully
    /// dense; a stream value landing on exactly `+0.0` has probability
    /// `2^-53` per element and would only make the accounting
    /// infinitesimally conservative). Only `RandomSparse` generates its
    /// stream to count the surviving entries exactly.
    pub fn nnz_of(&self, name: &str) -> Option<u64> {
        let spec = self.tensors.get(name)?;
        Some(crate::plan::init_nnz(self.init.get(name)?, &spec.dims))
    }

    /// Fraction of stored elements of a tensor's initial contents (`None`
    /// when unknown or uninitialized).
    pub fn density_of(&self, name: &str) -> Option<f64> {
        let spec = self.tensors.get(name)?;
        let volume = spec.dims.iter().product::<i64>().max(1) as f64;
        Some(self.nnz_of(name)? as f64 / volume)
    }

    /// Wire-payload bytes per dense byte for a tensor: `1.0` for dense
    /// level formats; for compressed formats, the ratio of the CSR
    /// `pos`/`crd`/`vals` payload (at the initializer's nnz) to the flat
    /// dense size. Tensors without an initializer (e.g. outputs)
    /// conservatively report `1.0`.
    pub fn payload_scale(&self, name: &str) -> f64 {
        let Some(spec) = self.tensors.get(name) else {
            return 1.0;
        };
        if !spec.format.has_compressed() {
            return 1.0;
        }
        let Some(nnz) = self.nnz_of(name) else {
            return 1.0;
        };
        distal_sparse::csr_payload_scale(&spec.dims, nnz)
    }

    /// All declared initializers.
    pub fn inits(&self) -> &BTreeMap<String, TensorInit> {
        &self.init
    }

    /// Materializes a tensor's initial contents (`None` when the tensor is
    /// unknown or has no initializer).
    pub fn initial_data(&self, name: &str) -> Option<Vec<f64>> {
        let spec = self.tensors.get(name)?;
        Some(self.init.get(name)?.materialize(&spec.dims))
    }

    fn require(&self, name: &str) -> Result<(), CompileError> {
        if self.tensors.contains_key(name) {
            Ok(())
        } else {
            Err(CompileError::UnknownTensor(name.into()))
        }
    }

    /// The bindings this problem's own initializers describe — what
    /// [`Problem::compile`] attaches to the plan it builds.
    pub fn bindings(&self) -> Bindings {
        Bindings::from_problem(self)
    }

    /// Compiles this problem's data-independent part for a schedule onto
    /// a target backend, producing a reusable [`Plan`] (see
    /// [`Backend::plan`] and [`crate::cache::PlanCache`]).
    ///
    /// # Errors
    ///
    /// [`BackendError::Compile`] when no statement was set, plus whatever
    /// the target's lowering rejects.
    pub fn plan(
        &self,
        target: &dyn Backend,
        schedule: &Schedule,
    ) -> Result<Box<dyn Plan>, BackendError> {
        target.plan(self, schedule)
    }

    /// Compiles this problem for a schedule onto a target backend,
    /// producing an executable [`Instance`]. This is the single-shot
    /// front door — exactly [`Problem::plan`] followed by [`Plan::bind`]
    /// on [`Problem::bindings`]; serving paths that reuse shapes should
    /// hold the plan (or a [`crate::cache::PlanCache`]) and bind
    /// per-request data instead.
    ///
    /// # Errors
    ///
    /// [`BackendError::Compile`] when no statement was set, plus whatever
    /// the target's lowering rejects.
    pub fn compile(
        &self,
        target: &dyn Backend,
        schedule: &Schedule,
    ) -> Result<Box<dyn Instance>, BackendError> {
        target.compile(self, schedule)
    }
}

/// Validates a tensor's format notation against a machine (arity per
/// hierarchy level). Shared by [`Problem`] and `Session`.
pub(crate) fn validate_format(
    spec: &TensorSpec,
    machine: &DistalMachine,
) -> Result<(), CompileError> {
    let levels = machine.hierarchy.levels();
    if spec.format.is_distributed() {
        if spec.format.distributions.len() != levels.len() {
            return Err(CompileError::Format(format!(
                "tensor '{}' has {} distribution level(s) but the machine has {}",
                spec.name,
                spec.format.distributions.len(),
                levels.len()
            )));
        }
        for (d, g) in spec.format.distributions.iter().zip(levels.iter()) {
            d.check_arity(spec.dims.len(), g.dim())
                .map_err(|e| CompileError::Format(format!("tensor '{}': {e}", spec.name)))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use distal_format::Format;
    use distal_machine::grid::Grid;
    use distal_machine::spec::{MemKind, ProcKind};

    fn problem() -> Problem {
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        Problem::new(MachineSpec::small(2), machine)
    }

    #[test]
    fn registration_validates_formats() {
        let mut p = problem();
        let bad = Format::parse("x->x", MemKind::Sys).unwrap();
        assert!(matches!(
            p.tensor(TensorSpec::new("T", vec![4, 4], bad)),
            Err(CompileError::Format(_))
        ));
        let good = Format::parse("xy->xy", MemKind::Sys).unwrap();
        p.tensor(TensorSpec::new("T", vec![4, 4], good)).unwrap();
        assert_eq!(p.dims_map()["T"], vec![4, 4]);
    }

    #[test]
    fn initializers_materialize_deterministically() {
        let mut p = problem();
        let f = Format::parse("xy->xy", MemKind::Sys).unwrap();
        p.tensor(TensorSpec::new("B", vec![2, 2], f)).unwrap();
        p.fill_random("B", 7).unwrap();
        let a = p.initial_data("B").unwrap();
        let b = p.initial_data("B").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, random_data(4, 7));
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn unknown_tensors_rejected() {
        let mut p = problem();
        assert!(matches!(
            p.fill_random("nope", 1),
            Err(CompileError::UnknownTensor(_))
        ));
        assert!(matches!(
            p.set_data("nope", vec![]),
            Err(CompileError::UnknownTensor(_))
        ));
        assert!(p.initial_data("nope").is_none());
    }

    #[test]
    fn set_data_checks_size() {
        let mut p = problem();
        let f = Format::parse("xy->xy", MemKind::Sys).unwrap();
        p.tensor(TensorSpec::new("B", vec![2, 2], f)).unwrap();
        assert!(matches!(
            p.set_data("B", vec![1.0]),
            Err(CompileError::DataSize {
                tensor,
                expected: 4,
                got: 1,
            }) if tensor == "B"
        ));
        p.set_data("B", vec![1.0; 4]).unwrap();
        assert_eq!(p.initial_data("B").unwrap(), vec![1.0; 4]);
    }

    #[test]
    fn sparse_initializers_and_nnz() {
        let mut p = problem();
        let f = distal_format::Format::parse_levels("xy->xy", "ds", MemKind::Sys).unwrap();
        p.tensor(TensorSpec::new("B", vec![4, 4], f)).unwrap();
        // Full density coincides with the dense random stream.
        p.fill_random_sparse("B", 7, 1.0).unwrap();
        assert_eq!(p.initial_data("B").unwrap(), random_data(16, 7));
        assert_eq!(p.nnz_of("B"), Some(16));
        // Zero density is all explicit zeros.
        p.fill_random_sparse("B", 7, 0.0).unwrap();
        assert_eq!(p.nnz_of("B"), Some(0));
        assert_eq!(p.density_of("B"), Some(0.0));
        // Intermediate densities thin the same value stream.
        p.fill_random_sparse("B", 7, 0.5).unwrap();
        let data = p.initial_data("B").unwrap();
        let dense = random_data(16, 7);
        let nnz = p.nnz_of("B").unwrap();
        assert!(nnz < 16);
        for (s, d) in data.iter().zip(dense.iter()) {
            assert!(*s == 0.0 || s.to_bits() == d.to_bits());
        }
        // Bad densities are rejected.
        assert!(p.fill_random_sparse("B", 7, 1.5).is_err());
        assert!(matches!(
            p.fill_random_sparse("nope", 1, 0.5),
            Err(CompileError::UnknownTensor(_))
        ));
    }

    #[test]
    fn payload_scale_reflects_compression() {
        let mut p = problem();
        let sparse = distal_format::Format::parse_levels("xy->xy", "ds", MemKind::Sys).unwrap();
        let dense = Format::parse("xy->xy", MemKind::Sys).unwrap();
        p.tensor(TensorSpec::new("B", vec![8, 8], sparse)).unwrap();
        p.tensor(TensorSpec::new("C", vec![8, 8], dense)).unwrap();
        p.fill_random_sparse("B", 3, 0.0).unwrap();
        p.fill_random("C", 3).unwrap();
        // Dense formats always report flat accounting.
        assert_eq!(p.payload_scale("C"), 1.0);
        // Empty compressed tensor: just the pos array.
        let pos_only = (8 + 1) * 8;
        assert!((p.payload_scale("B") - pos_only as f64 / (64.0 * 8.0)).abs() < 1e-12);
        // Full compressed tensor costs more than dense (crd overhead).
        p.fill_random_sparse("B", 3, 1.0).unwrap();
        assert!(p.payload_scale("B") > 1.0);
        // Unknown / uninitialized tensors are conservatively flat.
        assert_eq!(p.payload_scale("nope"), 1.0);
    }

    #[test]
    fn statement_parses() {
        let mut p = problem();
        assert!(p.statement("A(i,j) = ").is_err());
        p.statement("A(i,j) = B(i,k) * C(k,j)").unwrap();
        assert_eq!(p.assignment().unwrap().lhs.tensor, "A");
    }
}
