//! The DISTAL compiler: from tensor index notation + formats + schedules to
//! distributed task programs.
//!
//! This crate ties the workspace together, mirroring the pipeline of paper
//! Figure 3:
//!
//! ```text
//! tensor index notation ──► concrete index notation ──► scheduling rewrites
//!        (distal-ir)               (distal-ir)             (distal-ir)
//!                                                                │
//! tensor distribution notation ──► placement map                 ▼
//!        (distal-format)                └──────────► task creation + comm.
//!                                                    analysis (this crate)
//!                                                                │
//!                                                                ▼
//!                                       Legion-like runtime program
//!                                             (distal-runtime)
//! ```
//!
//! The main entry points are:
//!
//! * [`Session`] — owns a runtime and tensors, compiles and runs kernels;
//! * [`Schedule`] — the chainable scheduling language of Figure 2
//!   (`divide`, `split`, `reorder`, `distribute`, `communicate`, `rotate`);
//! * [`compile`] — lowers a scheduled statement to placement + compute
//!   [`distal_runtime::Program`]s.
//!
//! # Example: Figure 2 (SUMMA on a 2×2 grid)
//!
//! ```
//! use distal_core::{DistalMachine, Schedule, Session, TensorSpec};
//! use distal_format::Format;
//! use distal_machine::{Grid, spec::{MachineSpec, MemKind, ProcKind}};
//! use distal_runtime::Mode;
//!
//! let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
//! let mut session = Session::new(MachineSpec::small(2), machine, Mode::Functional);
//! let tiled = Format::parse("xy->xy", MemKind::Sys).unwrap();
//! let n = 8;
//! for name in ["A", "B", "C"] {
//!     session.tensor(TensorSpec::new(name, vec![n, n], tiled.clone())).unwrap();
//! }
//! session.fill_random("B", 1);
//! session.fill_random("C", 2);
//!
//! let schedule = Schedule::summa(2, 2, 4);
//! let compiled = session.compile("A(i,j) = B(i,k) * C(k,j)", &schedule).unwrap();
//! session.place(&compiled).unwrap();
//! session.execute(&compiled).unwrap();
//! let a = session.read("A").unwrap();
//! assert_eq!(a.len(), 64);
//! ```

pub mod error;
pub mod kernels;
pub mod lower;
pub mod machine;
pub mod mapper;
pub mod oracle;
pub mod schedule;
pub mod session;

pub use error::CompileError;
pub use lower::{compile, CompileOptions, CompiledKernel};
pub use machine::DistalMachine;
pub use mapper::GridMapper;
pub use schedule::{LeafKind, SchedCmd, Schedule};
pub use session::{Session, TensorSpec};
