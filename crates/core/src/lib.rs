//! The DISTAL compiler: from tensor index notation + formats + schedules to
//! distributed task programs.
//!
//! Pipeline layers 1–3 and 5 (problem, schedule, plan/instance, kernel
//! specialization) — `ARCHITECTURE.md` at the workspace root maps all
//! six layers.
//!
//! This crate ties the workspace together, mirroring the pipeline of paper
//! Figure 3:
//!
//! ```text
//! tensor index notation ──► concrete index notation ──► scheduling rewrites
//!        (distal-ir)               (distal-ir)             (distal-ir)
//!                                                                │
//! tensor distribution notation ──► placement map                 ▼
//!        (distal-format)                └──────────► task creation + comm.
//!                                                    analysis (this crate)
//!                                                                │
//!                                                                ▼
//!                                       Legion-like runtime program
//!                                             (distal-runtime)
//! ```
//!
//! The main entry points are:
//!
//! * [`Problem`] — statement + registered tensors + abstract machine, the
//!   target-agnostic front door: one problem compiles onto any
//!   [`Backend`] (the dynamic [`RuntimeBackend`] here, the static SPMD
//!   and cost backends in `distal-spmd`) into an [`Artifact`] with a
//!   common `place`/`execute`/`read`/[`Report`] surface;
//! * [`Schedule`] — the chainable scheduling language of Figure 2
//!   (`divide`, `split`, `reorder`, `distribute`, `communicate`, `rotate`);
//! * [`Session`] — a mutable convenience over [`Problem`] +
//!   [`RuntimeBackend`] for incremental/multi-kernel pipelines;
//! * [`compile`] — lowers a scheduled statement to placement + compute
//!   [`distal_runtime::Program`]s.
//!
//! # Example: Figure 2 (SUMMA on a 2×2 grid), on the unified pipeline
//!
//! ```
//! use distal_core::{DistalMachine, Problem, RuntimeBackend, Schedule, TensorSpec};
//! use distal_format::Format;
//! use distal_machine::{Grid, spec::{MachineSpec, MemKind, ProcKind}};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
//! let mut problem = Problem::new(MachineSpec::small(2), machine);
//! problem.statement("A(i,j) = B(i,k) * C(k,j)")?;
//! let tiled = Format::parse("xy->xy", MemKind::Sys)?;
//! let n = 8;
//! for name in ["A", "B", "C"] {
//!     problem.tensor(TensorSpec::new(name, vec![n, n], tiled.clone()))?;
//! }
//! problem.fill_random("B", 1)?.fill_random("C", 2)?;
//!
//! let schedule = Schedule::summa(2, 2, 4);
//! let mut artifact = problem.compile(&RuntimeBackend::functional(), &schedule)?;
//! let report = artifact.run()?;
//! let a = artifact.read("A")?;
//! assert_eq!(a.len(), 64);
//! assert!(report.flops > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod cache;
pub mod diagnostic;
pub mod error;
pub mod kernelgen;
pub mod kernels;
pub mod lint;
pub mod lower;
pub mod machine;
pub mod mapper;
pub mod oracle;
pub mod plan;
pub mod problem;
pub mod report;
pub mod schedule;
pub mod session;

/// `Target` is the pipeline-vocabulary alias for [`Backend`]: a `Problem`
/// compiles against a target into a `Plan`, then binds into an `Instance`.
pub use backend::Backend as Target;
pub use backend::{
    Backend, BackendError, RuntimeArtifact, RuntimeBackend, RuntimeInstance, RuntimePlan,
};
pub use cache::{CacheStats, PlanCache, PlanKey, ShardedPlanCache};
pub use diagnostic::{verified_clean, Diagnostic, DiagnosticKind, Severity};
pub use error::CompileError;
pub use lint::{admit, lint_schedule, Lint, LintConfig, LintLevel};
pub use lower::{compile, CompileOptions, CompiledKernel};
pub use machine::DistalMachine;
pub use mapper::GridMapper;
/// `Artifact` is the pre-split name of [`Instance`] (a plan bound to
/// data); kept as an alias so existing callers read unchanged.
pub use plan::Instance as Artifact;
pub use plan::{init_nnz, Bindings, Instance, Plan};
pub use problem::{random_data, sparse_random_data, Problem, TensorInit};
pub use report::{Provenance, Report};
pub use schedule::{LeafKind, SchedCmd, Schedule};
pub use session::{Session, TensorSpec};
