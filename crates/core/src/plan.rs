//! Compile-once / execute-many: data-independent [`Plan`]s bound to
//! per-request [`Bindings`] yielding executable [`Instance`]s.
//!
//! DISTAL's pipeline (§3–§6) is data-independent by construction: a
//! (statement, formats, machine, schedule) bundle lowers to a distributed
//! program once, and that program runs over *any* operand values of the
//! right shapes. This module is that property as an API, the serving-side
//! counterpart of the compile-side [`Backend`](crate::backend::Backend)
//! abstraction:
//!
//! * [`Plan`] — what [`Backend::plan`](crate::backend::Backend::plan)
//!   produces: the lowered launch domain / programs / cost model, with
//!   **no operand values**. Plans are immutable, shareable (`Send + Sync`,
//!   cacheable behind `Arc` in a [`PlanCache`](crate::cache::PlanCache)),
//!   and reusable: binding a plan never re-runs scheduling or lowering.
//! * [`Bindings`] — the per-request payload: one
//!   [`TensorInit`] per tensor. Cheap to build, validated against the
//!   plan's registered shapes at bind time.
//! * [`Instance`] — a plan bound to data: the executable surface
//!   (`place`/`execute`/`read`/`run` plus [`Report`]).
//!   Instances are independent of each other; one plan can serve many
//!   concurrent requests.
//!
//! # Invariants under one plan
//!
//! Everything hashed into a [`PlanKey`](crate::cache::PlanKey) is fixed
//! for the plan's lifetime: the statement, every tensor's shape, level
//! formats and distribution, the machine spec and grid, and the schedule.
//! What *may* vary between bindings of one plan is only the operand
//! values — including their sparsity: nnz-derived byte accounting is
//! recomputed per [`Instance`], never inherited from an earlier binding.
//!
//! ```
//! use distal_core::{Backend, Bindings, DistalMachine, Problem, RuntimeBackend,
//!                   Schedule, TensorSpec};
//! use distal_format::Format;
//! use distal_machine::{Grid, spec::{MachineSpec, MemKind, ProcKind}};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
//! let mut problem = Problem::new(MachineSpec::small(2), machine);
//! problem.statement("A(i,j) = B(i,k) * C(k,j)")?;
//! let tiles = Format::parse("xy->xy", MemKind::Sys)?;
//! for t in ["A", "B", "C"] {
//!     problem.tensor(TensorSpec::new(t, vec![8, 8], tiles.clone()))?;
//! }
//!
//! // Compile once...
//! let plan = RuntimeBackend::functional().plan(&problem, &Schedule::summa(2, 2, 4))?;
//! // ...execute many: each request binds fresh data, no re-lowering.
//! for seed in 1..4u64 {
//!     let mut bindings = Bindings::new();
//!     bindings.fill_random("B", seed).fill_random("C", seed + 100);
//!     let mut instance = plan.bind(&bindings)?;
//!     instance.run()?;
//!     assert_eq!(instance.read("A")?.len(), 64);
//! }
//! # Ok(())
//! # }
//! ```

use crate::backend::BackendError;
use crate::error::CompileError;
use crate::problem::{Problem, TensorInit};
use crate::report::Report;
use crate::session::TensorSpec;
use std::collections::BTreeMap;

/// Per-request tensor data: one [`TensorInit`] per tensor name, attached
/// to a [`Plan`] via [`Plan::bind`]. Shapes/formats are *not* carried
/// here — they belong to the plan; bind-time validation checks that
/// explicit data matches the plan's registered shapes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Bindings {
    init: BTreeMap<String, TensorInit>,
}

impl Bindings {
    /// Empty bindings (every tensor unseeded).
    pub fn new() -> Self {
        Bindings::default()
    }

    /// The bindings a [`Problem`]'s own initializers describe — what
    /// [`Problem::compile`] binds, making `compile` exactly
    /// `plan(...)` + `bind(problem bindings)`.
    pub fn from_problem(problem: &Problem) -> Self {
        Bindings {
            init: problem.inits().clone(),
        }
    }

    /// Seeds a tensor with explicit row-major data (validated against the
    /// plan's shape at bind time).
    pub fn set_data(&mut self, name: impl Into<String>, data: Vec<f64>) -> &mut Self {
        self.init.insert(name.into(), TensorInit::Data(data));
        self
    }

    /// Fills a tensor with a constant.
    pub fn fill(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.init.insert(name.into(), TensorInit::Value(value));
        self
    }

    /// Seeds a tensor with deterministic pseudo-random values
    /// ([`crate::problem::random_data`]).
    pub fn fill_random(&mut self, name: impl Into<String>, seed: u64) -> &mut Self {
        self.init.insert(name.into(), TensorInit::Random(seed));
        self
    }

    /// Seeds a tensor with pseudo-random values thinned to `density`
    /// ([`crate::problem::sparse_random_data`]; validated to `[0, 1]` at
    /// bind time).
    pub fn fill_random_sparse(
        &mut self,
        name: impl Into<String>,
        seed: u64,
        density: f64,
    ) -> &mut Self {
        self.init
            .insert(name.into(), TensorInit::RandomSparse { seed, density });
        self
    }

    /// Sets an explicit initializer.
    pub fn set_init(&mut self, name: impl Into<String>, init: TensorInit) -> &mut Self {
        self.init.insert(name.into(), init);
        self
    }

    /// The initializer bound for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&TensorInit> {
        self.init.get(name)
    }

    /// All bound initializers, by name.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &TensorInit)> {
        self.init.iter()
    }

    /// True when no tensor is bound.
    pub fn is_empty(&self) -> bool {
        self.init.is_empty()
    }

    /// Validates every binding against a plan's registered tensors:
    /// unknown names, mis-sized explicit data, and out-of-range densities
    /// are typed errors. Backends call this at the top of
    /// [`Plan::bind`].
    ///
    /// # Errors
    ///
    /// [`BackendError::UnknownTensor`] for names the plan doesn't know;
    /// [`BackendError::Compile`] wrapping
    /// [`CompileError::DataSize`] / density errors otherwise.
    pub fn validate(&self, tensors: &BTreeMap<String, TensorSpec>) -> Result<(), BackendError> {
        for (name, init) in &self.init {
            let spec = tensors
                .get(name)
                .ok_or_else(|| BackendError::UnknownTensor(name.clone()))?;
            init.validate(name, &spec.dims)
                .map_err(BackendError::Compile)?;
        }
        Ok(())
    }
}

/// The number of stored (nonzero-bit-pattern) elements an initializer
/// materializes for a tensor of shape `dims` — the nnz that drives
/// compressed-format byte accounting on every backend.
///
/// `Value` and `Random` are answered analytically (`Random` values are
/// uniform in `[-1, 1)`; an exact `+0.0` has probability `2^-53` per
/// element, so they count as fully dense); `Data` is scanned in place;
/// only `RandomSparse` generates its stream to count survivors exactly.
pub fn init_nnz(init: &TensorInit, dims: &[i64]) -> u64 {
    let volume = dims.iter().product::<i64>().max(1) as u64;
    match init {
        TensorInit::Value(v) => {
            if v.to_bits() == 0 {
                0
            } else {
                volume
            }
        }
        TensorInit::Random(_) => volume,
        TensorInit::Data(d) => d.iter().filter(|v| v.to_bits() != 0).count() as u64,
        init @ TensorInit::RandomSparse { .. } => {
            let data = init.materialize(dims);
            data.iter().filter(|v| v.to_bits() != 0).count() as u64
        }
    }
}

/// A data-independent compiled object: the product of
/// [`Backend::plan`](crate::backend::Backend::plan).
///
/// A plan holds everything the lowering produced — launch domain, runtime
/// programs or SPMD rank programs, static cost model — and **no operand
/// values**. [`Plan::bind`] attaches per-request data cheaply: it never
/// re-applies the schedule or re-lowers (see
/// `distal_core::lower::compile_count` and the SPMD lowering counter for
/// the enforced invariant).
pub trait Plan: Send + Sync {
    /// The producing backend's name (`"runtime"`, `"spmd"`, `"cost"`).
    fn backend(&self) -> &str;

    /// The tensors the plan was compiled against (shapes + formats fixed
    /// for the plan's lifetime).
    fn tensors(&self) -> &BTreeMap<String, TensorSpec>;

    /// Findings from plan-time static verification, when the backend ran
    /// a verifier over the lowered program (warnings only — a plan with
    /// error-severity findings is rejected at
    /// [`Backend::plan`](crate::backend::Backend::plan) and never
    /// constructed). Backends without a verifier report none.
    fn diagnostics(&self) -> &[crate::diagnostic::Diagnostic] {
        &[]
    }

    /// Binds per-request data, producing an independent executable
    /// [`Instance`]. No lowering happens here: binding seeds data
    /// (regions or rank-VM inputs) and recomputes nnz-derived accounting
    /// for this instance only.
    ///
    /// # Errors
    ///
    /// [`BackendError::UnknownTensor`] / [`BackendError::Compile`] for
    /// invalid bindings; backend-specific errors otherwise.
    fn bind(&self, bindings: &Bindings) -> Result<Box<dyn Instance>, BackendError>;
}

/// A plan bound to data: the common executable surface every backend
/// exposes (previously named `Artifact`, which remains as an alias).
///
/// Instances are `Send` so a serving worker can bind on one thread and
/// hand the instance elsewhere; they are deliberately *not* required to
/// be `Sync` — each request owns its instance exclusively, and all
/// sharing happens one level up at the `Arc<dyn Plan>`.
pub trait Instance: Send {
    /// The producing backend's name.
    fn backend(&self) -> &str;

    /// Moves tensors into their formats' distributions (a no-op report on
    /// backends whose data starts at rest).
    ///
    /// # Errors
    ///
    /// Backend execution errors (OOM, missing data).
    fn place(&mut self) -> Result<Report, BackendError>;

    /// Runs the computation.
    ///
    /// # Errors
    ///
    /// Backend execution errors (OOM, missing data).
    fn execute(&mut self) -> Result<Report, BackendError>;

    /// Reads a tensor's current contents (row-major).
    ///
    /// # Errors
    ///
    /// [`BackendError::UnknownTensor`] for unregistered names;
    /// [`BackendError::NoData`] on backends that hold no numerics (model
    /// mode, cost estimation) or before the instance executed.
    fn read(&self, tensor: &str) -> Result<Vec<f64>, BackendError>;

    /// Places then executes, returning the merged report.
    ///
    /// # Errors
    ///
    /// Errors from either phase.
    fn run(&mut self) -> Result<Report, BackendError> {
        let mut r = self.place()?;
        r.merge(&self.execute()?);
        Ok(r)
    }
}

impl TensorInit {
    /// Validates this initializer for a tensor of shape `dims`: explicit
    /// data must match the shape's volume exactly, and sparse densities
    /// must lie in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`CompileError::DataSize`] for mis-sized [`TensorInit::Data`];
    /// [`CompileError::Session`] for out-of-range densities.
    pub fn validate(&self, name: &str, dims: &[i64]) -> Result<(), CompileError> {
        match self {
            TensorInit::Data(d) => {
                let expected = dims.iter().product::<i64>().max(1) as usize;
                if d.len() != expected {
                    return Err(CompileError::DataSize {
                        tensor: name.to_string(),
                        expected,
                        got: d.len(),
                    });
                }
                Ok(())
            }
            TensorInit::RandomSparse { density, .. } => {
                if !(0.0..=1.0).contains(density) {
                    return Err(CompileError::Session(format!(
                        "density must be in [0, 1], got {density}"
                    )));
                }
                Ok(())
            }
            TensorInit::Value(_) | TensorInit::Random(_) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use distal_format::Format;
    use distal_machine::spec::MemKind;

    fn specs() -> BTreeMap<String, TensorSpec> {
        let f = Format::parse("xy->xy", MemKind::Sys).unwrap();
        [("B", vec![2, 2]), ("C", vec![2, 3])]
            .into_iter()
            .map(|(n, dims)| (n.to_string(), TensorSpec::new(n, dims, f.clone())))
            .collect()
    }

    #[test]
    fn bindings_validate_names_sizes_densities() {
        let tensors = specs();
        let mut b = Bindings::new();
        b.fill_random("B", 1).set_data("C", vec![0.0; 6]);
        b.validate(&tensors).unwrap();

        let mut unknown = Bindings::new();
        unknown.fill("Z", 1.0);
        assert!(matches!(
            unknown.validate(&tensors),
            Err(BackendError::UnknownTensor(t)) if t == "Z"
        ));

        // The length-mismatch bugfix: Data bindings that don't match the
        // registered shape are a typed error, not a silent clone.
        let mut short = Bindings::new();
        short.set_data("C", vec![1.0; 4]);
        assert!(matches!(
            short.validate(&tensors),
            Err(BackendError::Compile(CompileError::DataSize {
                tensor,
                expected: 6,
                got: 4,
            })) if tensor == "C"
        ));

        let mut dense = Bindings::new();
        dense.fill_random_sparse("B", 1, 1.5);
        assert!(matches!(
            dense.validate(&tensors),
            Err(BackendError::Compile(CompileError::Session(_)))
        ));
    }

    #[test]
    fn init_nnz_counts() {
        assert_eq!(init_nnz(&TensorInit::Value(0.0), &[4, 4]), 0);
        assert_eq!(init_nnz(&TensorInit::Value(2.0), &[4, 4]), 16);
        assert_eq!(init_nnz(&TensorInit::Random(7), &[4, 4]), 16);
        assert_eq!(
            init_nnz(&TensorInit::Data(vec![0.0, 1.0, 0.0, 3.0]), &[4]),
            2
        );
        let sparse = TensorInit::RandomSparse {
            seed: 7,
            density: 0.5,
        };
        let nnz = init_nnz(&sparse, &[8, 8]);
        assert!(nnz > 0 && nnz < 64);
        // Matches what the materialized stream actually stores.
        let stored = sparse
            .materialize(&[8, 8])
            .iter()
            .filter(|v| v.to_bits() != 0)
            .count() as u64;
        assert_eq!(nnz, stored);
    }

    #[test]
    fn plans_share_across_threads_and_instances_move() {
        // The serving engine's whole contract, statically: one
        // `Arc<dyn Plan>` is shared by every worker, and each bound
        // `Instance` moves to (and is owned by) exactly one request.
        fn assert_send<T: Send + ?Sized>() {}
        fn assert_sync<T: Sync + ?Sized>() {}
        assert_send::<std::sync::Arc<dyn Plan>>();
        assert_sync::<std::sync::Arc<dyn Plan>>();
        assert_send::<Box<dyn Instance>>();
    }

    #[test]
    fn from_problem_mirrors_inits() {
        use crate::machine::DistalMachine;
        use distal_machine::grid::Grid;
        use distal_machine::spec::{MachineSpec, ProcKind};
        let machine = DistalMachine::flat(Grid::grid2(2, 2), ProcKind::Cpu);
        let mut p = Problem::new(MachineSpec::small(2), machine);
        let f = Format::parse("xy->xy", MemKind::Sys).unwrap();
        p.tensor(TensorSpec::new("B", vec![2, 2], f)).unwrap();
        p.fill_random("B", 9).unwrap();
        let b = Bindings::from_problem(&p);
        assert_eq!(b.get("B"), Some(&TensorInit::Random(9)));
        assert!(Bindings::new().is_empty());
    }
}
