//! Tensor distribution notation and formats (paper §3.2).
//!
//! Pipeline layer 1 (tensor registry) — `ARCHITECTURE.md` at the
//! workspace root maps all six layers.
//!
//! A tensor's *format* describes how it is stored — for DISTAL, how its
//! dimensions map onto the dimensions of a machine grid, and which memory
//! kind holds each piece. The mapping is written in *tensor distribution
//! notation*:
//!
//! ```text
//! T  x y  ↦  x y 0  M     (partition by both dims, fix to face 0)
//! T  x y  ↦  x y *  M     (partition by both dims, broadcast over z)
//! T  x y  ↦  x      M     (row-wise partition)
//! ```
//!
//! Dimension names shared between the tensor side and the machine side are
//! partitioned; machine dimensions named by a constant fix the partition to
//! that coordinate; `*` broadcasts it across the whole dimension.
//!
//! The semantics (paper §3.2) are the composition of an abstract
//! partitioning function `P : T → color` and a color-to-processors map
//! `F : color → M set`; both are implemented in [`semantics`]. `P` is
//! pluggable, as the paper notes: blocked (the default), element-cyclic
//! (`"xy->xy @cyclic"`), or ScaLAPACK-style block-cyclic (`"xy->xy @bc64"`)
//! — see [`notation::PartitionKind`].
//!
//! # Example
//!
//! ```
//! use distal_format::TensorDistribution;
//! use distal_machine::{Grid, Rect};
//!
//! // Figure 5e: a 2x2 matrix replicated across the 3rd machine dimension.
//! let d = TensorDistribution::parse("xy->xy*").unwrap();
//! let m = Grid::new(vec![2, 2, 2]);
//! let t = Rect::sized(&[2, 2]);
//! // Tile (0, 1) lives on processors (0,1,0) AND (0,1,1).
//! let owners = d.owners_of(&t, &m, &[0, 1].to_vec().into());
//! assert_eq!(owners.len(), 2);
//! ```

pub mod format;
pub mod lower;
pub mod notation;
pub mod semantics;

pub use format::{Format, LevelFormat};
pub use notation::{DimName, NotationError, PartitionKind, TensorDistribution};
