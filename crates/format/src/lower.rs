//! Lowering tensor distribution notation to concrete index notation
//! (paper §5.3).
//!
//! A distribution `T X ↦ Y M` is implemented by a CIN statement that
//! accesses the tensor in the described orientation:
//!
//! 1. take an index variable per name in `X ∪ Y`;
//! 2. build a ∀ nest accessing `T`, restricting fixed dimensions;
//! 3. reorder the machine-named variables outermost;
//! 4. `divide` each partitioned variable by its machine dimension and
//!    `distribute` the outer halves;
//! 5. `communicate` the tensor beneath the distributed variables.
//!
//! The paper's example: `T xy ↦ x M` lowers to
//! `∀xo ∀xi ∀y T(x, y) s.t. divide(x, xo, xi, gx), distribute(xo),
//! communicate(T, xo)`.

use crate::notation::{DimName, TensorDistribution};
use distal_ir::cin::ConcreteNotation;
use distal_ir::expr::{Access, Assignment, Expr, IndexVar};
use distal_machine::geom::Rect;
use distal_machine::grid::Grid;
use std::collections::BTreeMap;

/// Errors from lowering a distribution.
#[derive(Clone, Debug, PartialEq)]
pub enum LowerError {
    /// The notation doesn't match the tensor/machine shape.
    Notation(crate::notation::NotationError),
    /// An internal scheduling rewrite failed (should not happen for valid
    /// notation; surfaced for debuggability).
    Schedule(String),
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::Notation(e) => write!(f, "{e}"),
            LowerError::Schedule(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Lowers a distribution statement for tensor `name` over `rect` onto
/// `machine` into the concrete index notation statement that places it
/// (§5.3). The result is primarily useful for inspection and testing; the
/// compiler materializes placements directly from
/// [`TensorDistribution::placement`].
///
/// # Errors
///
/// Fails when the notation's arity doesn't match `rect`/`machine`.
pub fn lower_distribution(
    dist: &TensorDistribution,
    name: &str,
    rect: &Rect,
    machine: &Grid,
) -> Result<ConcreteNotation, LowerError> {
    dist.check_arity(rect.dim(), machine.dim())
        .map_err(LowerError::Notation)?;

    // Step 1-2: a placement statement T(x, y, ...) = T(x, y, ...) over the
    // tensor's variables.
    let vars: Vec<IndexVar> = dist.tensor_dims.iter().map(IndexVar::new).collect();
    let access = Access::new(name, vars.clone());
    let assignment = Assignment::new(access.clone(), Expr::Access(access), false)
        .map_err(|e| LowerError::Schedule(e.to_string()))?;
    let mut extents: BTreeMap<IndexVar, i64> = BTreeMap::new();
    for (d, v) in vars.iter().enumerate() {
        extents.insert(v.clone(), rect.extent(d));
    }
    let mut cin = ConcreteNotation::from_assignment(assignment, &extents)
        .map_err(|e| LowerError::Schedule(e.to_string()))?;

    // Step 3: machine-named variables outermost, in machine-dimension order.
    let mut outer: Vec<IndexVar> = Vec::new();
    for d in &dist.machine_dims {
        if let DimName::Var(v) = d {
            outer.push(IndexVar::new(v.clone()));
        }
    }
    let mut order = outer.clone();
    for v in &vars {
        if !order.contains(v) {
            order.push(v.clone());
        }
    }
    cin.reorder(&order)
        .map_err(|e| LowerError::Schedule(e.to_string()))?;

    // Step 4: divide partitioned variables by machine extents; distribute
    // the outer halves.
    let mut dist_vars = Vec::new();
    for (ti, mi) in dist.partitioned_pairs() {
        let v = IndexVar::new(dist.tensor_dims[ti].clone());
        let vo = IndexVar::new(format!("{}o", v.0));
        let vi = IndexVar::new(format!("{}i", v.0));
        cin.divide(&v, vo.clone(), vi.clone(), machine.extent(mi))
            .map_err(|e| LowerError::Schedule(e.to_string()))?;
        dist_vars.push(vo);
    }
    let mut order: Vec<IndexVar> = dist_vars.clone();
    for l in cin.loop_vars() {
        if !order.contains(&l) {
            order.push(l);
        }
    }
    cin.reorder(&order)
        .map_err(|e| LowerError::Schedule(e.to_string()))?;
    if !dist_vars.is_empty() {
        cin.distribute(&dist_vars)
            .map_err(|e| LowerError::Schedule(e.to_string()))?;
        // Step 5: communicate the tensor beneath the distributed variables.
        let innermost_dist = dist_vars.last().unwrap().clone();
        cin.communicate(&[name], &innermost_dist)
            .map_err(|e| LowerError::Schedule(e.to_string()))?;
    }
    Ok(cin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_row_partition() {
        // T xy ↦ x M lowers to ∀xo ∀xi ∀y T(x,y) s.t. divide, distribute,
        // communicate (paper §5.3).
        let d = TensorDistribution::parse("xy->x").unwrap();
        let cin = lower_distribution(&d, "T", &Rect::sized(&[8, 8]), &Grid::line(4)).unwrap();
        let vars: Vec<String> = cin.loop_vars().iter().map(|v| v.0.clone()).collect();
        assert_eq!(vars, vec!["xo", "xi", "y"]);
        let shown = format!("{cin}");
        assert!(shown.contains("divide(x, xo, xi, 4)"), "{shown}");
        assert!(shown.contains("distribute(xo)"), "{shown}");
        assert!(shown.contains("communicate({T}, xo)"), "{shown}");
    }

    #[test]
    fn tiled_lowering_distributes_two_vars() {
        let d = TensorDistribution::parse("xy->xy").unwrap();
        let cin = lower_distribution(&d, "T", &Rect::sized(&[8, 8]), &Grid::grid2(2, 2)).unwrap();
        let vars: Vec<String> = cin.loop_vars().iter().map(|v| v.0.clone()).collect();
        assert_eq!(vars, vec!["xo", "yo", "xi", "yi"]);
        assert_eq!(cin.distributed_prefix().unwrap().len(), 2);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let d = TensorDistribution::parse("xy->xy").unwrap();
        assert!(matches!(
            lower_distribution(&d, "T", &Rect::sized(&[8]), &Grid::grid2(2, 2)),
            Err(LowerError::Notation(_))
        ));
    }
}
