//! Tensor formats: distribution + target memory kind (paper Figure 2).
//!
//! In DISTAL a tensor's format carries both its (dense) dimension layout and
//! its distribution onto the machine, plus the memory kind each piece should
//! live in — e.g. `Memory::GPU_MEM` in Figure 2 line 11.

use crate::notation::{NotationError, TensorDistribution};
use distal_machine::spec::MemKind;

/// A dense tensor format: one distribution per machine-hierarchy level and
/// the memory kind holding each local tile.
#[derive(Clone, Debug, PartialEq)]
pub struct Format {
    /// Distributions, outermost machine level first. Empty means the tensor
    /// is not distributed (kept whole in staging memory).
    pub distributions: Vec<TensorDistribution>,
    /// Which memory kind tiles reside in.
    pub mem: MemKind,
}

impl Format {
    /// A format with a single-level distribution.
    pub fn new(distribution: TensorDistribution, mem: MemKind) -> Self {
        Format {
            distributions: vec![distribution],
            mem,
        }
    }

    /// A hierarchical format (one distribution per machine level).
    pub fn hierarchical(distributions: Vec<TensorDistribution>, mem: MemKind) -> Self {
        Format { distributions, mem }
    }

    /// Parses a single-level format from compact notation.
    ///
    /// # Errors
    ///
    /// Propagates [`NotationError`] from the notation parser.
    ///
    /// # Example
    ///
    /// ```
    /// use distal_format::Format;
    /// use distal_machine::spec::MemKind;
    /// let f = Format::parse("xy->xy", MemKind::Fb).unwrap();
    /// assert_eq!(f.mem, MemKind::Fb);
    /// ```
    pub fn parse(notation: &str, mem: MemKind) -> Result<Self, NotationError> {
        Ok(Format::new(TensorDistribution::parse(notation)?, mem))
    }

    /// An undistributed format (whole tensor in staging memory).
    pub fn undistributed() -> Self {
        Format {
            distributions: Vec::new(),
            mem: MemKind::Global,
        }
    }

    /// True when the tensor is distributed onto the machine.
    pub fn is_distributed(&self) -> bool {
        !self.distributions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let f = Format::parse("xy->xy", MemKind::Sys).unwrap();
        assert!(f.is_distributed());
        assert_eq!(f.distributions.len(), 1);
        let u = Format::undistributed();
        assert!(!u.is_distributed());
    }

    #[test]
    fn hierarchical_format() {
        let f = Format::hierarchical(
            vec![
                TensorDistribution::parse("xy->xy").unwrap(),
                TensorDistribution::parse("xy->x").unwrap(),
            ],
            MemKind::Fb,
        );
        assert_eq!(f.distributions.len(), 2);
    }

    #[test]
    fn parse_error_propagates() {
        assert!(Format::parse("xy->zz", MemKind::Sys).is_err());
    }
}
