//! Tensor formats: distribution + per-dimension level format + target
//! memory kind (paper Figure 2, extended with SpDISTAL-style sparsity).
//!
//! In DISTAL a tensor's format carries both its (dense) dimension layout and
//! its distribution onto the machine, plus the memory kind each piece should
//! live in — e.g. `Memory::GPU_MEM` in Figure 2 line 11. Following the
//! per-dimension level-format abstraction of Chou et al. (*Format
//! Abstraction for Sparse Tensor Algebra Compilers*) and its distributed
//! sequel SpDISTAL, each tensor dimension additionally carries a
//! [`LevelFormat`]: `Dense` dimensions store every coordinate, `Compressed`
//! dimensions store only the coordinates of nonzero entries (CSR-style
//! `pos`/`crd` arrays, realized by `distal-sparse`).

use crate::notation::{NotationError, TensorDistribution};
use distal_machine::spec::MemKind;

/// The storage format of one tensor dimension (the "level format" of the
/// TACO/SpDISTAL format abstraction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LevelFormat {
    /// Every coordinate is stored (flat dense layout).
    Dense,
    /// Only nonzero coordinates are stored (`pos`/`crd` compression).
    Compressed,
}

impl LevelFormat {
    /// Parses one level-format character: `d` = dense, `s` (sparse) or
    /// `c` = compressed.
    ///
    /// # Errors
    ///
    /// [`NotationError::Parse`] for any other character.
    pub fn parse_char(c: char) -> Result<Self, NotationError> {
        match c {
            'd' => Ok(LevelFormat::Dense),
            's' | 'c' => Ok(LevelFormat::Compressed),
            other => Err(NotationError::Parse(format!(
                "unknown level format '{other}' (expected 'd' for dense, 's'/'c' for compressed)"
            ))),
        }
    }
}

/// A tensor format: one distribution per machine-hierarchy level, the
/// per-dimension level formats, and the memory kind holding each local
/// tile.
#[derive(Clone, Debug, PartialEq)]
pub struct Format {
    /// Distributions, outermost machine level first. Empty means the tensor
    /// is not distributed (kept whole in staging memory).
    pub distributions: Vec<TensorDistribution>,
    /// Per-dimension level formats, outermost tensor dimension first. An
    /// empty vector means every dimension is [`LevelFormat::Dense`] — the
    /// default, preserving all pre-sparsity behavior.
    pub levels: Vec<LevelFormat>,
    /// Which memory kind tiles reside in.
    pub mem: MemKind,
}

impl Format {
    /// A format with a single-level distribution (all dimensions dense).
    pub fn new(distribution: TensorDistribution, mem: MemKind) -> Self {
        Format {
            distributions: vec![distribution],
            levels: Vec::new(),
            mem,
        }
    }

    /// A hierarchical format (one distribution per machine level, all
    /// dimensions dense).
    pub fn hierarchical(distributions: Vec<TensorDistribution>, mem: MemKind) -> Self {
        Format {
            distributions,
            levels: Vec::new(),
            mem,
        }
    }

    /// Parses a single-level format from compact notation (all dimensions
    /// dense).
    ///
    /// # Errors
    ///
    /// Propagates [`NotationError`] from the notation parser.
    ///
    /// # Example
    ///
    /// ```
    /// use distal_format::Format;
    /// use distal_machine::spec::MemKind;
    /// let f = Format::parse("xy->xy", MemKind::Fb).unwrap();
    /// assert_eq!(f.mem, MemKind::Fb);
    /// assert!(f.is_dense());
    /// ```
    pub fn parse(notation: &str, mem: MemKind) -> Result<Self, NotationError> {
        Ok(Format::new(TensorDistribution::parse(notation)?, mem))
    }

    /// Parses a single-level format plus per-dimension level formats: one
    /// character per tensor dimension, `d` = dense, `s`/`c` = compressed,
    /// outermost dimension first.
    ///
    /// Only the *innermost* dimension may be compressed (`d…ds`, i.e.
    /// CSR-style layouts): the storage layer (`distal-sparse`) compresses
    /// the innermost dimension under dense-linearized prefixes, and every
    /// consumer (payload accounting, sparse leaf kernels, the SPMD cost
    /// model) assumes that layout. Accepting an outer `s` here would be
    /// silently mis-accounted, so it is rejected instead.
    ///
    /// # Errors
    ///
    /// Propagates [`NotationError`] from the notation parser, rejects
    /// unknown level characters, compressed non-innermost dimensions, and
    /// level strings whose length doesn't match the notation's tensor
    /// arity.
    ///
    /// # Example
    ///
    /// CSR-style row-distributed sparse matrix (dense rows, compressed
    /// columns):
    ///
    /// ```
    /// use distal_format::{Format, LevelFormat};
    /// use distal_machine::spec::MemKind;
    /// let f = Format::parse_levels("xy->x", "ds", MemKind::Sys).unwrap();
    /// assert_eq!(f.levels, vec![LevelFormat::Dense, LevelFormat::Compressed]);
    /// assert!(!f.is_dense());
    /// ```
    pub fn parse_levels(notation: &str, levels: &str, mem: MemKind) -> Result<Self, NotationError> {
        let dist = TensorDistribution::parse(notation)?;
        let parsed: Vec<LevelFormat> = levels
            .chars()
            .map(LevelFormat::parse_char)
            .collect::<Result<_, _>>()?;
        if parsed.len() != dist.tensor_dim() {
            return Err(NotationError::ArityMismatch {
                side: "tensor",
                notation: parsed.len(),
                object: dist.tensor_dim(),
            });
        }
        if let Some(d) = parsed[..parsed.len().saturating_sub(1)]
            .iter()
            .position(|l| *l == LevelFormat::Compressed)
        {
            return Err(NotationError::Parse(format!(
                "dimension {d} is compressed but only the innermost dimension may be \
                 (CSR-style layouts; outer-level compression is not implemented)"
            )));
        }
        Ok(Format {
            distributions: vec![dist],
            levels: parsed,
            mem,
        })
    }

    /// Overrides the per-dimension level formats.
    #[must_use]
    pub fn with_levels(mut self, levels: Vec<LevelFormat>) -> Self {
        self.levels = levels;
        self
    }

    /// An undistributed format (whole tensor in staging memory).
    ///
    /// Note the memory-kind asymmetry with [`Format::parse`] call sites:
    /// undistributed tensors default to [`MemKind::Global`] — the unbounded
    /// *staging* memory where functional-mode input data waits before
    /// placement, whose copies are not charged to the interconnect —
    /// whereas distributed formats are parsed with an explicit placed
    /// memory (typically [`MemKind::Sys`] or [`MemKind::Fb`]). Use
    /// [`Format::undistributed_in`] when an undistributed tensor should
    /// nonetheless live in a *placed* memory kind (e.g. a workspace kept
    /// whole in one node's DRAM).
    pub fn undistributed() -> Self {
        Format::undistributed_in(MemKind::Global)
    }

    /// An undistributed format residing in an explicit memory kind, for
    /// callers that would otherwise hand-build the struct. See
    /// [`Format::undistributed`] for the `Global`-vs-placed distinction.
    pub fn undistributed_in(mem: MemKind) -> Self {
        Format {
            distributions: Vec::new(),
            levels: Vec::new(),
            mem,
        }
    }

    /// True when the tensor is distributed onto the machine.
    pub fn is_distributed(&self) -> bool {
        !self.distributions.is_empty()
    }

    /// True when every dimension is dense (no compressed levels) — the
    /// pre-sparsity default for which all dense code paths are preserved
    /// unchanged.
    pub fn is_dense(&self) -> bool {
        self.levels.iter().all(|l| *l == LevelFormat::Dense)
    }

    /// True when at least one dimension is [`LevelFormat::Compressed`].
    pub fn has_compressed(&self) -> bool {
        !self.is_dense()
    }

    /// The level format of dimension `d` (dense when unspecified).
    pub fn level(&self, d: usize) -> LevelFormat {
        self.levels.get(d).copied().unwrap_or(LevelFormat::Dense)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let f = Format::parse("xy->xy", MemKind::Sys).unwrap();
        assert!(f.is_distributed());
        assert!(f.is_dense());
        assert!(!f.has_compressed());
        assert_eq!(f.distributions.len(), 1);
        let u = Format::undistributed();
        assert!(!u.is_distributed());
        assert_eq!(u.mem, MemKind::Global);
        let w = Format::undistributed_in(MemKind::Sys);
        assert!(!w.is_distributed());
        assert_eq!(w.mem, MemKind::Sys);
    }

    #[test]
    fn hierarchical_format() {
        let f = Format::hierarchical(
            vec![
                TensorDistribution::parse("xy->xy").unwrap(),
                TensorDistribution::parse("xy->x").unwrap(),
            ],
            MemKind::Fb,
        );
        assert_eq!(f.distributions.len(), 2);
        assert!(f.is_dense());
    }

    #[test]
    fn parse_error_propagates() {
        assert!(Format::parse("xy->zz", MemKind::Sys).is_err());
    }

    #[test]
    fn level_formats_parse() {
        let f = Format::parse_levels("xy->xy", "ds", MemKind::Sys).unwrap();
        assert_eq!(f.levels, vec![LevelFormat::Dense, LevelFormat::Compressed]);
        assert!(f.has_compressed());
        assert!(!f.is_dense());
        assert_eq!(f.level(0), LevelFormat::Dense);
        assert_eq!(f.level(1), LevelFormat::Compressed);
        // Unspecified trailing dims are dense.
        assert_eq!(f.level(7), LevelFormat::Dense);
        // 'c' is accepted as a synonym for compressed.
        let c = Format::parse_levels("x->x", "c", MemKind::Sys).unwrap();
        assert_eq!(c.levels, vec![LevelFormat::Compressed]);
    }

    #[test]
    fn level_format_errors() {
        assert!(matches!(
            Format::parse_levels("xy->xy", "dz", MemKind::Sys),
            Err(NotationError::Parse(_))
        ));
        assert!(matches!(
            Format::parse_levels("xy->xy", "d", MemKind::Sys),
            Err(NotationError::ArityMismatch { .. })
        ));
        // Only the innermost dimension may be compressed: outer-level
        // compression would be silently mis-accounted as CSR.
        for bad in ["sd", "ss"] {
            assert!(
                matches!(
                    Format::parse_levels("xy->xy", bad, MemKind::Sys),
                    Err(NotationError::Parse(_))
                ),
                "{bad} must be rejected"
            );
        }
        // Innermost-only compression stays accepted.
        assert!(Format::parse_levels("xyz->xy", "dds", MemKind::Sys).is_ok());
    }

    #[test]
    fn with_levels_overrides() {
        let f = Format::parse("xy->xy", MemKind::Sys)
            .unwrap()
            .with_levels(vec![LevelFormat::Dense, LevelFormat::Compressed]);
        assert!(f.has_compressed());
    }
}
