//! Semantics of tensor distribution notation (paper §3.2).
//!
//! A statement `T X ↦ Y M` maps each coordinate of `T` to a non-empty set
//! of machine coordinates, as the composition of:
//!
//! * `P : T → color` — the abstract blocked partitioning function: a color
//!   is a point in the partitioned (`p = X ∩ Y`) dimensions of `M`, and
//!   contiguous, equal-sized ranges of tensor coordinates share a color;
//! * `F : color → M set` — expands a color to full machine coordinates by
//!   setting fixed dimensions to their constant and enumerating broadcast
//!   dimensions.

use crate::notation::{DimName, PartitionKind, TensorDistribution};
use distal_machine::geom::{Point, Rect};
use distal_machine::grid::{Grid, MachineHierarchy};

impl TensorDistribution {
    /// `P`: the color of a tensor coordinate — a point in the partitioned
    /// machine dimensions, in machine-dimension order.
    ///
    /// All partitioning kinds share one formula: with block width `b`
    /// ([`PartitionKind::block_width`]), coordinate `x` lies in block
    /// `⌊(x - lo) / b⌋` and colors to `block mod parts`. For the blocked
    /// kind the quotient is already below `parts`, so the modulus is the
    /// identity and this reduces to the paper's contiguous coloring.
    ///
    /// # Panics
    ///
    /// Panics when the point or machine dimensionality disagrees with the
    /// notation.
    pub fn color_of(&self, tensor_rect: &Rect, machine: &Grid, coord: &Point) -> Point {
        assert_eq!(coord.dim(), self.tensor_dim());
        assert_eq!(machine.dim(), self.machine_dim());
        let mut color = Vec::new();
        for (ti, mi) in self.partitioned_pairs() {
            let extent = tensor_rect.extent(ti);
            let parts = machine.extent(mi);
            let block = self.partition.block_width(extent, parts);
            color.push(((coord[ti] - tensor_rect.lo()[ti]) / block).rem_euclid(parts));
        }
        Point::new(color)
    }

    /// `F`: expands a color to the set of machine coordinates holding it.
    ///
    /// # Panics
    ///
    /// Panics when the color's dimensionality doesn't match the number of
    /// partitioned dimensions.
    pub fn expand_color(&self, machine: &Grid, color: &Point) -> Vec<Point> {
        let pairs = self.partitioned_pairs();
        assert_eq!(color.dim(), pairs.len());
        let mut dims: Vec<Vec<i64>> = Vec::with_capacity(machine.dim());
        for (mi, name) in self.machine_dims.iter().enumerate() {
            match name {
                DimName::Var(_) => {
                    let idx = pairs.iter().position(|(_, m)| *m == mi).unwrap();
                    dims.push(vec![color[idx]]);
                }
                DimName::Const(c) => dims.push(vec![*c]),
                DimName::Broadcast => dims.push((0..machine.extent(mi)).collect()),
            }
        }
        // Cartesian product.
        let mut out = vec![Vec::new()];
        for choices in dims {
            let mut next = Vec::with_capacity(out.len() * choices.len());
            for prefix in &out {
                for &c in &choices {
                    let mut p = prefix.clone();
                    p.push(c);
                    next.push(p);
                }
            }
            out = next;
        }
        out.into_iter().map(Point::new).collect()
    }

    /// The machine coordinates owning a tensor coordinate: `F(P(coord))`.
    pub fn owners_of(&self, tensor_rect: &Rect, machine: &Grid, coord: &Point) -> Vec<Point> {
        let color = self.color_of(tensor_rect, machine, coord);
        self.expand_color(machine, &color)
    }

    /// The sub-rectangle of the tensor held by machine coordinate `proc`;
    /// empty when the processor holds nothing (e.g. off the fixed face).
    ///
    /// Partitioned tensor dimensions take their block; unpartitioned tensor
    /// dimensions span their full extent (Figure 5b/5f).
    ///
    /// Only meaningful for [`PartitionKind::Blocked`] distributions, whose
    /// per-processor holdings are single rectangles; cyclic and block-cyclic
    /// holdings are unions of stripes — use [`TensorDistribution::pieces_of`].
    ///
    /// # Panics
    ///
    /// Panics when dimensionalities disagree with the notation, or when the
    /// distribution's partitioning function is not blocked.
    pub fn tile_of(&self, tensor_rect: &Rect, machine: &Grid, proc: &Point) -> Rect {
        assert_eq!(
            self.partition,
            PartitionKind::Blocked,
            "tile_of is only defined for blocked partitions; use pieces_of"
        );
        assert_eq!(proc.dim(), self.machine_dim());
        assert_eq!(tensor_rect.dim(), self.tensor_dim());
        // Off-face processors hold nothing.
        for (mi, name) in self.machine_dims.iter().enumerate() {
            if let DimName::Const(c) = name {
                if proc[mi] != *c {
                    return Rect::empty(tensor_rect.dim());
                }
            }
        }
        let mut tile = tensor_rect.clone();
        for (ti, mi) in self.partitioned_pairs() {
            tile = tile.block(ti, machine.extent(mi), proc[mi]);
        }
        tile
    }

    /// The per-dimension index segments `proc` owns in tensor dimension
    /// `ti`, partitioned `parts` ways: blocks `j ≡ q (mod parts)` of width
    /// `b`, clipped to the dimension's extent.
    fn segments(&self, tensor_rect: &Rect, ti: usize, parts: i64, q: i64) -> Vec<(i64, i64)> {
        let lo = tensor_rect.lo()[ti];
        let extent = tensor_rect.extent(ti);
        let b = self.partition.block_width(extent, parts);
        let blocks = distal_machine::geom::div_ceil(extent, b);
        let mut out = Vec::new();
        let mut j = q;
        while j < blocks {
            let s_lo = lo + j * b;
            let s_hi = (lo + (j + 1) * b - 1).min(lo + extent - 1);
            if s_lo <= s_hi {
                out.push((s_lo, s_hi));
            }
            j += parts;
        }
        out
    }

    /// The set of sub-rectangles of the tensor held by machine coordinate
    /// `proc` — the general form of [`TensorDistribution::tile_of`] that is
    /// defined for every [`PartitionKind`].
    ///
    /// For blocked partitions this is at most one rectangle (the tile); for
    /// cyclic and block-cyclic partitions it is the Cartesian product of the
    /// stripes owned in each partitioned dimension.
    ///
    /// # Panics
    ///
    /// Panics when dimensionalities disagree with the notation.
    pub fn pieces_of(&self, tensor_rect: &Rect, machine: &Grid, proc: &Point) -> Vec<Rect> {
        assert_eq!(proc.dim(), self.machine_dim());
        assert_eq!(tensor_rect.dim(), self.tensor_dim());
        if tensor_rect.is_empty() {
            return Vec::new();
        }
        for (mi, name) in self.machine_dims.iter().enumerate() {
            if let DimName::Const(c) = name {
                if proc[mi] != *c {
                    return Vec::new();
                }
            }
        }
        // Per tensor dimension: the list of owned segments (full extent for
        // unpartitioned dimensions).
        let mut per_dim: Vec<Vec<(i64, i64)>> = (0..self.tensor_dim())
            .map(|ti| vec![(tensor_rect.lo()[ti], tensor_rect.hi()[ti])])
            .collect();
        for (ti, mi) in self.partitioned_pairs() {
            per_dim[ti] = self.segments(tensor_rect, ti, machine.extent(mi), proc[mi]);
        }
        // Cartesian product of segments into rectangles.
        let mut out: Vec<(Vec<i64>, Vec<i64>)> = vec![(Vec::new(), Vec::new())];
        for segs in &per_dim {
            let mut next = Vec::with_capacity(out.len() * segs.len());
            for (lo, hi) in &out {
                for (s_lo, s_hi) in segs {
                    let mut l = lo.clone();
                    let mut h = hi.clone();
                    l.push(*s_lo);
                    h.push(*s_hi);
                    next.push((l, h));
                }
            }
            out = next;
        }
        out.into_iter()
            .map(|(lo, hi)| Rect::new(Point::new(lo), Point::new(hi)))
            .filter(|r| !r.is_empty())
            .collect()
    }

    /// All `(processor, piece)` pairs with non-empty pieces — the placement
    /// map a compiler materializes (broadcast dimensions replicate pieces;
    /// cyclic partitions yield several pieces per processor).
    pub fn placement(&self, tensor_rect: &Rect, machine: &Grid) -> Vec<(Point, Rect)> {
        let mut out = Vec::new();
        for proc in machine.points() {
            for piece in self.pieces_of(tensor_rect, machine, &proc) {
                out.push((proc.clone(), piece));
            }
        }
        out
    }
}

/// The tile of a *hierarchical* distribution (paper §3.2 "Hierarchy"): one
/// distribution per machine level; level `l+1` redistributes the tile that
/// level `l` assigned.
///
/// `proc` is the flattened machine coordinate (all levels concatenated).
///
/// # Panics
///
/// Panics when the number of distributions differs from the number of
/// machine levels, or dimensionalities disagree.
pub fn hierarchical_tile(
    distributions: &[TensorDistribution],
    tensor_rect: &Rect,
    machine: &MachineHierarchy,
    proc: &Point,
) -> Rect {
    assert_eq!(distributions.len(), machine.levels().len());
    let coords = machine.split_coord(proc);
    let mut tile = tensor_rect.clone();
    for (level, dist) in distributions.iter().enumerate() {
        if tile.is_empty() {
            return tile;
        }
        tile = dist.tile_of(&tile, &machine.levels()[level], &coords[level]);
    }
    tile
}

/// The pieces of a *hierarchical* distribution — the general form of
/// [`hierarchical_tile`] defined for every [`PartitionKind`]: level `l+1`
/// redistributes each piece that level `l` assigned, so cyclic levels fan
/// each piece out into stripes.
///
/// `proc` is the flattened machine coordinate (all levels concatenated).
///
/// # Panics
///
/// Panics when the number of distributions differs from the number of
/// machine levels, or dimensionalities disagree.
pub fn hierarchical_pieces(
    distributions: &[TensorDistribution],
    tensor_rect: &Rect,
    machine: &MachineHierarchy,
    proc: &Point,
) -> Vec<Rect> {
    assert_eq!(distributions.len(), machine.levels().len());
    let coords = machine.split_coord(proc);
    let mut pieces = vec![tensor_rect.clone()];
    for (level, dist) in distributions.iter().enumerate() {
        let mut next = Vec::with_capacity(pieces.len());
        for piece in &pieces {
            next.extend(dist.pieces_of(piece, &machine.levels()[level], &coords[level]));
        }
        if next.is_empty() {
            return next;
        }
        pieces = next;
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(coords: &[i64]) -> Point {
        Point::new(coords.to_vec())
    }

    #[test]
    fn blocked_vector_figure5a() {
        // 100 elements over 10 processors: 10 components each.
        let d = TensorDistribution::parse("x->x").unwrap();
        let t = Rect::sized(&[100]);
        let m = Grid::line(10);
        for p in 0..10 {
            let tile = d.tile_of(&t, &m, &pt(&[p]));
            assert_eq!(tile.volume(), 10);
            assert_eq!(tile.lo()[0], p * 10);
        }
        assert_eq!(d.owners_of(&t, &m, &pt(&[37])), vec![pt(&[3])]);
    }

    #[test]
    fn row_and_column_distributions_figure5b() {
        let t = Rect::sized(&[8, 6]);
        let m = Grid::line(4);
        let rows = TensorDistribution::parse("xy->x").unwrap();
        let tile = rows.tile_of(&t, &m, &pt(&[2]));
        // Rows 4-5, all columns.
        assert_eq!(tile.lo().coords(), &[4, 0]);
        assert_eq!(tile.hi().coords(), &[5, 5]);
        let cols = TensorDistribution::parse("xy->y").unwrap();
        let tile = cols.tile_of(&t, &m, &pt(&[2]));
        // All rows, columns 3-4 (ceil(6/4) = 2).
        assert_eq!(tile.lo().coords(), &[0, 4]);
        assert_eq!(tile.hi().coords(), &[7, 5]);
    }

    #[test]
    fn tiled_distribution_figure5c() {
        let t = Rect::sized(&[4, 4]);
        let m = Grid::grid2(2, 2);
        let d = TensorDistribution::parse("xy->xy").unwrap();
        let tile = d.tile_of(&t, &m, &pt(&[1, 0]));
        assert_eq!(tile.lo().coords(), &[2, 0]);
        assert_eq!(tile.hi().coords(), &[3, 1]);
        // Every coordinate has exactly one owner.
        for c in t.points() {
            assert_eq!(d.owners_of(&t, &m, &c).len(), 1);
        }
    }

    #[test]
    fn fixed_face_figure5d() {
        let t = Rect::sized(&[4, 4]);
        let m = Grid::grid3(2, 2, 2);
        let d = TensorDistribution::parse("xy->xy0").unwrap();
        // Processors on face z=0 hold tiles; z=1 hold nothing.
        assert!(!d.tile_of(&t, &m, &pt(&[0, 1, 0])).is_empty());
        assert!(d.tile_of(&t, &m, &pt(&[0, 1, 1])).is_empty());
        assert_eq!(d.placement(&t, &m).len(), 4);
    }

    #[test]
    fn broadcast_figure5e_matches_paper_running_example() {
        // T is 2x2, M is 2x2x2: the paper spells out P and F exactly.
        let t = Rect::sized(&[2, 2]);
        let m = Grid::grid3(2, 2, 2);
        let d = TensorDistribution::parse("xy->xy*").unwrap();
        // P maps each coordinate to its own color.
        for c in t.points() {
            let color = d.color_of(&t, &m, &c);
            assert_eq!(color, c);
        }
        // F expands each color across the third dimension.
        let owners = d.owners_of(&t, &m, &pt(&[1, 0]));
        assert_eq!(owners, vec![pt(&[1, 0, 0]), pt(&[1, 0, 1])]);
        // Every processor holds a tile (replication).
        assert_eq!(d.placement(&t, &m).len(), 8);
    }

    #[test]
    fn three_tensor_onto_2d_grid_figure5f() {
        let t = Rect::sized(&[4, 4, 4]);
        let m = Grid::grid2(2, 2);
        let d = TensorDistribution::parse("xyz->xy").unwrap();
        let tile = d.tile_of(&t, &m, &pt(&[1, 1]));
        // z spans its full extent.
        assert_eq!(tile.lo().coords(), &[2, 2, 0]);
        assert_eq!(tile.hi().coords(), &[3, 3, 3]);
    }

    #[test]
    fn hierarchical_two_level_tiling() {
        // Nodes in 2x2 grid, 4 GPUs per node: tile at node level, then
        // row-partition each node tile across GPUs (§3.2 "Hierarchy").
        let t = Rect::sized(&[8, 8]);
        let m = MachineHierarchy::new(vec![Grid::grid2(2, 2), Grid::line(4)]);
        let dists = vec![
            TensorDistribution::parse("xy->xy").unwrap(),
            TensorDistribution::parse("xy->x").unwrap(),
        ];
        // Node (1,0), GPU 2: node tile rows 4-7 cols 0-3; GPU 2 gets row 6.
        let tile = hierarchical_tile(&dists, &t, &m, &pt(&[1, 0, 2]));
        assert_eq!(tile.lo().coords(), &[6, 0]);
        assert_eq!(tile.hi().coords(), &[6, 3]);
        // Tiles across all leaf processors partition the tensor.
        let total: i64 = m
            .flat_grid()
            .points()
            .map(|p| hierarchical_tile(&dists, &t, &m, &p).volume())
            .sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn uneven_extents_cover_everything() {
        let t = Rect::sized(&[7, 5]);
        let m = Grid::grid2(2, 3);
        let d = TensorDistribution::parse("xy->xy").unwrap();
        let total: i64 = m.points().map(|p| d.tile_of(&t, &m, &p).volume()).sum();
        assert_eq!(total, 35);
        for c in t.points() {
            assert_eq!(d.owners_of(&t, &m, &c).len(), 1);
        }
    }

    #[test]
    fn cyclic_vector_round_robin() {
        // 10 elements dealt cyclically to 2 processors: proc 0 owns the
        // evens, proc 1 the odds.
        let d = TensorDistribution::parse("x->x @cyclic").unwrap();
        let t = Rect::sized(&[10]);
        let m = Grid::line(2);
        for x in 0..10 {
            let owners = d.owners_of(&t, &m, &pt(&[x]));
            assert_eq!(owners, vec![pt(&[x % 2])]);
        }
        let pieces = d.pieces_of(&t, &m, &pt(&[0]));
        assert_eq!(pieces.len(), 5);
        assert!(pieces.iter().all(|p| p.volume() == 1));
        assert_eq!(pieces[2].lo().coords(), &[4]);
    }

    #[test]
    fn block_cyclic_matches_scalapack_layout() {
        // ScaLAPACK's canonical example: N=9, NB=2, P=2 processes.
        // Blocks: [0,1] [2,3] [4,5] [6,7] [8] dealt 0,1,0,1,0.
        let d = TensorDistribution::parse("x->x @bc2").unwrap();
        let t = Rect::sized(&[9]);
        let m = Grid::line(2);
        let p0: Vec<(i64, i64)> = d
            .pieces_of(&t, &m, &pt(&[0]))
            .iter()
            .map(|r| (r.lo()[0], r.hi()[0]))
            .collect();
        assert_eq!(p0, vec![(0, 1), (4, 5), (8, 8)]);
        let p1: Vec<(i64, i64)> = d
            .pieces_of(&t, &m, &pt(&[1]))
            .iter()
            .map(|r| (r.lo()[0], r.hi()[0]))
            .collect();
        assert_eq!(p1, vec![(2, 3), (6, 7)]);
    }

    #[test]
    fn cyclic_pieces_partition_exactly() {
        // 2-D block-cyclic over a 2x3 grid: every coordinate owned exactly
        // once, pieces disjoint, total volume preserved.
        for kind in ["@cyclic", "@bc2", "@bc3"] {
            let d = TensorDistribution::parse(&format!("xy->xy {kind}")).unwrap();
            let t = Rect::sized(&[7, 8]);
            let m = Grid::grid2(2, 3);
            let mut total = 0;
            for p in m.points() {
                for piece in d.pieces_of(&t, &m, &p) {
                    total += piece.volume();
                    for c in piece.points() {
                        assert_eq!(d.owners_of(&t, &m, &c), vec![p.clone()], "{kind}");
                    }
                }
            }
            assert_eq!(total, 56, "{kind}");
        }
    }

    #[test]
    fn blocked_pieces_equal_tile() {
        let d = TensorDistribution::parse("xy->xy").unwrap();
        let t = Rect::sized(&[8, 8]);
        let m = Grid::grid2(2, 2);
        for p in m.points() {
            let pieces = d.pieces_of(&t, &m, &p);
            assert_eq!(pieces, vec![d.tile_of(&t, &m, &p)]);
        }
    }

    #[test]
    fn cyclic_balances_triangular_load() {
        // The motivating use: for a lower-triangular access pattern the
        // blocked row partition gives the last processor ~3x the work of
        // the first; the cyclic partition is near-balanced.
        let t = Rect::sized(&[64, 64]);
        let m = Grid::line(4);
        let tri_work = |pieces: &[Rect]| -> i64 {
            pieces
                .iter()
                .flat_map(|r| r.points())
                .filter(|c| c[1] <= c[0])
                .count() as i64
        };
        let blocked = TensorDistribution::parse("xy->x").unwrap();
        let cyclic = TensorDistribution::parse("xy->x @cyclic").unwrap();
        let b: Vec<i64> = m
            .points()
            .map(|p| tri_work(&blocked.pieces_of(&t, &m, &p)))
            .collect();
        let c: Vec<i64> = m
            .points()
            .map(|p| tri_work(&cyclic.pieces_of(&t, &m, &p)))
            .collect();
        let imbalance =
            |v: &[i64]| *v.iter().max().unwrap() as f64 / *v.iter().min().unwrap() as f64;
        assert!(imbalance(&b) > 5.0, "blocked {b:?}");
        assert!(imbalance(&c) < 1.1, "cyclic {c:?}");
    }

    #[test]
    fn cyclic_with_broadcast_and_fixed() {
        // Cyclic partitioning composes with fixing/broadcasting unchanged:
        // F is untouched; only P changes.
        let d = TensorDistribution::parse("xy->xy* @cyclic").unwrap();
        let t = Rect::sized(&[4, 4]);
        let m = Grid::grid3(2, 2, 2);
        let owners = d.owners_of(&t, &m, &pt(&[1, 2]));
        assert_eq!(owners, vec![pt(&[1, 0, 0]), pt(&[1, 0, 1])]);
        let fixed = TensorDistribution::parse("xy->xy0 @cyclic").unwrap();
        assert!(fixed.pieces_of(&t, &m, &pt(&[0, 0, 1])).is_empty());
        assert!(!fixed.pieces_of(&t, &m, &pt(&[0, 0, 0])).is_empty());
    }

    #[test]
    fn hierarchical_pieces_mixed_kinds() {
        // Blocked tiles at the node level; cyclic rows inside each node.
        let t = Rect::sized(&[8, 8]);
        let m = MachineHierarchy::new(vec![Grid::grid2(2, 2), Grid::line(2)]);
        let dists = vec![
            TensorDistribution::parse("xy->xy").unwrap(),
            TensorDistribution::parse("xy->x @cyclic").unwrap(),
        ];
        // Node (0,0) holds rows 0-3, cols 0-3; GPU 1 gets rows 1 and 3.
        let pieces = hierarchical_pieces(&dists, &t, &m, &pt(&[0, 0, 1]));
        let rows: Vec<i64> = pieces.iter().map(|r| r.lo()[0]).collect();
        assert_eq!(rows, vec![1, 3]);
        assert!(pieces.iter().all(|r| r.lo()[1] == 0 && r.hi()[1] == 3));
        // All leaf pieces tile the tensor exactly.
        let total: i64 = m
            .flat_grid()
            .points()
            .map(|p| {
                hierarchical_pieces(&dists, &t, &m, &p)
                    .iter()
                    .map(Rect::volume)
                    .sum::<i64>()
            })
            .sum();
        assert_eq!(total, 64);
        // Blocked-only hierarchies agree with hierarchical_tile.
        let blocked = vec![
            TensorDistribution::parse("xy->xy").unwrap(),
            TensorDistribution::parse("xy->x").unwrap(),
        ];
        for p in m.flat_grid().points() {
            let pieces = hierarchical_pieces(&blocked, &t, &m, &p);
            let tile = hierarchical_tile(&blocked, &t, &m, &p);
            if tile.is_empty() {
                assert!(pieces.is_empty());
            } else {
                assert_eq!(pieces, vec![tile]);
            }
        }
    }
}
