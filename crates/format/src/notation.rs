//! Syntax and validity of tensor distribution notation (Figure 4).
//!
//! A statement `T X ↦ Y M` names each dimension of the tensor `T` (the
//! sequence `X`) and each dimension of the machine `M` (the sequence `Y`).
//! Entries of `Y` are either a dimension *variable* (which must appear in
//! `X`), a *constant* (fixing the partition to that machine coordinate), or
//! `*` (broadcasting across the dimension).
//!
//! Validity (paper §3.2): `|X| = dim T`, `|Y| = dim M`, no duplicate names
//! in `X` or `Y`, and all names in `Y` appear in `X`.

use std::collections::BTreeSet;
use std::fmt;

/// The abstract partitioning function `P` applied to each partitioned
/// dimension (paper §3.2).
///
/// The paper's formalization deliberately leaves `P` pluggable: *"We choose
/// to use a blocked partitioning function ... However, other functions such
/// as a cyclic distribution that maps adjacent coordinates to different
/// colors could also be used."* This enum realizes that choice. All three
/// kinds are special cases of block-cyclic with block width `b`:
/// coordinate `x` is in block `⌊x / b⌋`, and block `j` colors to
/// `j mod parts`.
///
/// * [`Blocked`](PartitionKind::Blocked) — `b = ⌈extent / parts⌉`: one
///   contiguous block per machine coordinate (the paper's default).
/// * [`Cyclic`](PartitionKind::Cyclic) — `b = 1`: adjacent coordinates go
///   to different machine coordinates (classic round-robin dealing).
/// * [`BlockCyclic`](PartitionKind::BlockCyclic) — explicit `b`: the
///   ScaLAPACK family's layout, balancing load for triangular access
///   patterns while keeping per-message granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionKind {
    /// Contiguous equal blocks (the paper's default `P`).
    Blocked,
    /// Round-robin single elements.
    Cyclic,
    /// Round-robin blocks of the given width.
    BlockCyclic {
        /// Block width (≥ 1).
        block: i64,
    },
}

impl PartitionKind {
    /// The block width `b` for a dimension of `extent` split `parts` ways.
    pub fn block_width(self, extent: i64, parts: i64) -> i64 {
        match self {
            PartitionKind::Blocked => (extent + parts - 1) / parts.max(1),
            PartitionKind::Cyclic => 1,
            PartitionKind::BlockCyclic { block } => block,
        }
        .max(1)
    }
}

impl fmt::Display for PartitionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionKind::Blocked => Ok(()),
            PartitionKind::Cyclic => write!(f, " @cyclic"),
            PartitionKind::BlockCyclic { block } => write!(f, " @bc{block}"),
        }
    }
}

/// One machine-side dimension name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DimName {
    /// A named dimension, shared with the tensor side.
    Var(String),
    /// Fix the partition to this coordinate of the machine dimension.
    Const(i64),
    /// Broadcast the partition across the machine dimension (`*`).
    Broadcast,
}

impl fmt::Display for DimName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimName::Var(v) => write!(f, "{v}"),
            DimName::Const(c) => write!(f, "{c}"),
            DimName::Broadcast => write!(f, "*"),
        }
    }
}

/// Errors from constructing tensor distribution notation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NotationError {
    /// A name appears twice on one side.
    DuplicateName(String),
    /// A machine-side variable is missing from the tensor side.
    UnboundMachineName(String),
    /// Parse failure.
    Parse(String),
    /// A block-cyclic block width must be at least 1.
    BadBlockSize(i64),
    /// The statement's arity doesn't match the tensor or machine.
    ArityMismatch {
        /// What didn't match ("tensor" or "machine").
        side: &'static str,
        /// Dimensions the notation names.
        notation: usize,
        /// Dimensions the object has.
        object: usize,
    },
}

impl fmt::Display for NotationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NotationError::DuplicateName(n) => write!(f, "duplicate dimension name '{n}'"),
            NotationError::UnboundMachineName(n) => {
                write!(
                    f,
                    "machine dimension '{n}' does not name a tensor dimension"
                )
            }
            NotationError::Parse(m) => write!(f, "parse error: {m}"),
            NotationError::BadBlockSize(b) => {
                write!(f, "block-cyclic block width must be positive, got {b}")
            }
            NotationError::ArityMismatch {
                side,
                notation,
                object,
            } => write!(
                f,
                "notation names {notation} {side} dimensions but the {side} has {object}"
            ),
        }
    }
}

impl std::error::Error for NotationError {}

/// A tensor distribution notation statement `T X ↦ Y M`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TensorDistribution {
    /// Tensor-side dimension names (`X`), one per tensor dimension.
    pub tensor_dims: Vec<String>,
    /// Machine-side entries (`Y`), one per machine dimension.
    pub machine_dims: Vec<DimName>,
    /// The partitioning function `P` applied to partitioned dimensions.
    pub partition: PartitionKind,
}

impl fmt::Display for TensorDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.tensor_dims {
            write!(f, "{d}")?;
        }
        write!(f, " ↦ ")?;
        for d in &self.machine_dims {
            write!(f, "{d}")?;
        }
        write!(f, "{}", self.partition)
    }
}

impl TensorDistribution {
    /// Creates and validates a distribution.
    ///
    /// # Errors
    ///
    /// Enforces the validity rules of §3.2.
    pub fn new(
        tensor_dims: Vec<String>,
        machine_dims: Vec<DimName>,
    ) -> Result<Self, NotationError> {
        let mut seen = BTreeSet::new();
        for d in &tensor_dims {
            if !seen.insert(d.clone()) {
                return Err(NotationError::DuplicateName(d.clone()));
            }
        }
        let mut mseen = BTreeSet::new();
        for d in &machine_dims {
            if let DimName::Var(v) = d {
                if !mseen.insert(v.clone()) {
                    return Err(NotationError::DuplicateName(v.clone()));
                }
                if !tensor_dims.contains(v) {
                    return Err(NotationError::UnboundMachineName(v.clone()));
                }
            }
        }
        Ok(TensorDistribution {
            tensor_dims,
            machine_dims,
            partition: PartitionKind::Blocked,
        })
    }

    /// Replaces the partitioning function (builder style).
    ///
    /// # Errors
    ///
    /// Rejects non-positive block-cyclic block widths.
    ///
    /// # Example
    ///
    /// ```
    /// use distal_format::notation::{PartitionKind, TensorDistribution};
    /// let d = TensorDistribution::parse("xy->xy")
    ///     .unwrap()
    ///     .with_partition(PartitionKind::Cyclic)
    ///     .unwrap();
    /// assert_eq!(d.partition, PartitionKind::Cyclic);
    /// ```
    pub fn with_partition(mut self, kind: PartitionKind) -> Result<Self, NotationError> {
        if let PartitionKind::BlockCyclic { block } = kind {
            if block < 1 {
                return Err(NotationError::BadBlockSize(block));
            }
        }
        self.partition = kind;
        Ok(self)
    }

    /// Parses compact notation like `"xy->xy0*"`: single-letter dimension
    /// names, single digits for constants, `*` for broadcast. An optional
    /// suffix selects the partitioning function: `"xy->xy @cyclic"` for
    /// element-cyclic, `"xy->xy @bc4"` for block-cyclic with width 4.
    ///
    /// # Errors
    ///
    /// Propagates validity errors and malformed syntax.
    ///
    /// # Example
    ///
    /// ```
    /// use distal_format::notation::{DimName, TensorDistribution};
    /// let d = TensorDistribution::parse("xz->x0z").unwrap();
    /// assert_eq!(d.machine_dims[1], DimName::Const(0));
    /// ```
    pub fn parse(input: &str) -> Result<Self, NotationError> {
        let (lhs, rhs) = input
            .split_once("->")
            .ok_or_else(|| NotationError::Parse("expected '->'".into()))?;
        let (rhs, partition) = match rhs.split_once('@') {
            None => (rhs, PartitionKind::Blocked),
            Some((dims, suffix)) => {
                let suffix = suffix.trim();
                let kind = if suffix == "cyclic" {
                    PartitionKind::Cyclic
                } else if let Some(width) = suffix.strip_prefix("bc") {
                    let block: i64 = width.parse().map_err(|_| {
                        NotationError::Parse(format!("bad block-cyclic width '{width}'"))
                    })?;
                    PartitionKind::BlockCyclic { block }
                } else {
                    return Err(NotationError::Parse(format!(
                        "unknown partition kind '@{suffix}'"
                    )));
                };
                (dims, kind)
            }
        };
        let tensor_dims: Vec<String> = lhs
            .trim()
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| c.to_string())
            .collect();
        let mut machine_dims = Vec::new();
        for c in rhs.trim().chars().filter(|c| !c.is_whitespace()) {
            machine_dims.push(match c {
                '*' => DimName::Broadcast,
                d if d.is_ascii_digit() => DimName::Const(d.to_digit(10).unwrap() as i64),
                v if v.is_alphabetic() => DimName::Var(v.to_string()),
                other => {
                    return Err(NotationError::Parse(format!(
                        "unexpected character '{other}'"
                    )))
                }
            });
        }
        TensorDistribution::new(tensor_dims, machine_dims)?.with_partition(partition)
    }

    /// Tensor dimensionality the notation expects.
    pub fn tensor_dim(&self) -> usize {
        self.tensor_dims.len()
    }

    /// Machine dimensionality the notation expects.
    pub fn machine_dim(&self) -> usize {
        self.machine_dims.len()
    }

    /// The partitioned dimension pairs `(tensor_dim_index, machine_dim_index)`
    /// — the set `p = X ∩ Y` of the paper, with positions.
    pub fn partitioned_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (mi, d) in self.machine_dims.iter().enumerate() {
            if let DimName::Var(v) = d {
                if let Some(ti) = self.tensor_dims.iter().position(|t| t == v) {
                    out.push((ti, mi));
                }
            }
        }
        out
    }

    /// Checks the statement against concrete tensor/machine dimensionality.
    ///
    /// # Errors
    ///
    /// Returns [`NotationError::ArityMismatch`] on disagreement.
    pub fn check_arity(&self, tensor_dim: usize, machine_dim: usize) -> Result<(), NotationError> {
        if self.tensor_dim() != tensor_dim {
            return Err(NotationError::ArityMismatch {
                side: "tensor",
                notation: self.tensor_dim(),
                object: tensor_dim,
            });
        }
        if self.machine_dim() != machine_dim {
            return Err(NotationError::ArityMismatch {
                side: "machine",
                notation: self.machine_dim(),
                object: machine_dim,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_figure5_examples() {
        // 5a: vector blocked onto a 1-D machine.
        let d = TensorDistribution::parse("x->x").unwrap();
        assert_eq!(d.tensor_dim(), 1);
        assert_eq!(d.machine_dim(), 1);
        // 5b: row-wise.
        let d = TensorDistribution::parse("xy->x").unwrap();
        assert_eq!(d.partitioned_pairs(), vec![(0, 0)]);
        // 5c: tiles.
        let d = TensorDistribution::parse("xy->xy").unwrap();
        assert_eq!(d.partitioned_pairs(), vec![(0, 0), (1, 1)]);
        // 5d: fixed to a face.
        let d = TensorDistribution::parse("xy->xy0").unwrap();
        assert_eq!(d.machine_dims[2], DimName::Const(0));
        // 5e: broadcast.
        let d = TensorDistribution::parse("xy->xy*").unwrap();
        assert_eq!(d.machine_dims[2], DimName::Broadcast);
        // 5f: 3-tensor onto a 2-D grid.
        let d = TensorDistribution::parse("xyz->xy").unwrap();
        assert_eq!(d.tensor_dim(), 3);
        assert_eq!(d.partitioned_pairs(), vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn johnson_distributions_parse() {
        // Figure 9, Johnson's algorithm.
        assert!(TensorDistribution::parse("xy->xy0").is_ok());
        assert!(TensorDistribution::parse("xz->x0z").is_ok());
        assert!(TensorDistribution::parse("zy->0yz").is_ok());
    }

    #[test]
    fn validity_rules() {
        assert_eq!(
            TensorDistribution::parse("xx->x").unwrap_err(),
            NotationError::DuplicateName("x".into())
        );
        assert_eq!(
            TensorDistribution::parse("xy->xx").unwrap_err(),
            NotationError::DuplicateName("x".into())
        );
        assert_eq!(
            TensorDistribution::parse("xy->xz").unwrap_err(),
            NotationError::UnboundMachineName("z".into())
        );
        assert!(matches!(
            TensorDistribution::parse("xy"),
            Err(NotationError::Parse(_))
        ));
        assert!(matches!(
            TensorDistribution::parse("xy->x?"),
            Err(NotationError::Parse(_))
        ));
    }

    #[test]
    fn arity_check() {
        let d = TensorDistribution::parse("xy->xy").unwrap();
        assert!(d.check_arity(2, 2).is_ok());
        assert!(matches!(
            d.check_arity(3, 2),
            Err(NotationError::ArityMismatch { side: "tensor", .. })
        ));
        assert!(matches!(
            d.check_arity(2, 3),
            Err(NotationError::ArityMismatch {
                side: "machine",
                ..
            })
        ));
    }

    #[test]
    fn display_roundtrip() {
        let d = TensorDistribution::parse("xy->xy0").unwrap();
        assert_eq!(format!("{d}"), "xy ↦ xy0");
    }

    #[test]
    fn parse_partition_kinds() {
        let d = TensorDistribution::parse("xy->xy").unwrap();
        assert_eq!(d.partition, PartitionKind::Blocked);
        let d = TensorDistribution::parse("xy->xy @cyclic").unwrap();
        assert_eq!(d.partition, PartitionKind::Cyclic);
        assert_eq!(format!("{d}"), "xy ↦ xy @cyclic");
        let d = TensorDistribution::parse("xy->xy@bc16").unwrap();
        assert_eq!(d.partition, PartitionKind::BlockCyclic { block: 16 });
        assert_eq!(format!("{d}"), "xy ↦ xy @bc16");
    }

    #[test]
    fn partition_parse_errors() {
        assert!(matches!(
            TensorDistribution::parse("xy->xy @weird"),
            Err(NotationError::Parse(_))
        ));
        assert!(matches!(
            TensorDistribution::parse("xy->xy @bcx"),
            Err(NotationError::Parse(_))
        ));
        assert_eq!(
            TensorDistribution::parse("xy->xy @bc0").unwrap_err(),
            NotationError::BadBlockSize(0)
        );
        assert_eq!(
            TensorDistribution::parse("xy->xy")
                .unwrap()
                .with_partition(PartitionKind::BlockCyclic { block: -3 })
                .unwrap_err(),
            NotationError::BadBlockSize(-3)
        );
    }

    #[test]
    fn block_width_table() {
        // Blocked: ceil(extent/parts); cyclic: 1; block-cyclic: as given.
        assert_eq!(PartitionKind::Blocked.block_width(10, 3), 4);
        assert_eq!(PartitionKind::Cyclic.block_width(10, 3), 1);
        assert_eq!(
            PartitionKind::BlockCyclic { block: 2 }.block_width(10, 3),
            2
        );
        // Degenerate extents still give a positive width.
        assert_eq!(PartitionKind::Blocked.block_width(0, 4), 1);
    }
}
