//! Property tests for the partitioning functions of tensor distribution
//! notation (paper §3.2): for every [`PartitionKind`], a distribution's
//! pieces must tile the tensor exactly (modulo broadcast replication), and
//! ownership queries must agree with the pieces.

use distal_format::notation::{DimName, PartitionKind, TensorDistribution};
use distal_machine::geom::{Point, Rect};
use distal_machine::grid::Grid;
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = PartitionKind> {
    prop_oneof![
        Just(PartitionKind::Blocked),
        Just(PartitionKind::Cyclic),
        (1i64..5).prop_map(|block| PartitionKind::BlockCyclic { block }),
    ]
}

/// A random valid 2-D-tensor distribution onto a 2-D machine, including
/// partial partitions (`xy->x`) via the third case.
fn dist_strategy() -> impl Strategy<Value = (TensorDistribution, &'static str)> {
    (0usize..3, kind_strategy()).prop_map(|(shape, kind)| {
        let spec = ["xy->xy", "xy->yx", "xy->x*"][shape];
        let d = TensorDistribution::parse(spec)
            .unwrap()
            .with_partition(kind)
            .unwrap();
        (d, spec)
    })
}

proptest! {
    /// Every tensor coordinate is owned by exactly `replication` machine
    /// coordinates, where replication is the product of broadcast extents.
    #[test]
    fn owners_cover_exactly(
        (dist, _spec) in dist_strategy(),
        nx in 1i64..20,
        ny in 1i64..20,
        gx in 1i64..5,
        gy in 1i64..5,
    ) {
        let t = Rect::sized(&[nx, ny]);
        let m = Grid::grid2(gx, gy);
        let replication: i64 = dist
            .machine_dims
            .iter()
            .enumerate()
            .map(|(mi, d)| match d {
                DimName::Broadcast => m.extent(mi),
                _ => 1,
            })
            .product();
        for c in t.points() {
            let owners = dist.owners_of(&t, &m, &c);
            prop_assert_eq!(owners.len() as i64, replication);
        }
    }

    /// The pieces across all machine points partition the tensor: total
    /// volume = tensor volume × replication, and each piece's points are
    /// owned by the piece's processor.
    #[test]
    fn pieces_tile_the_tensor(
        (dist, spec) in dist_strategy(),
        nx in 1i64..16,
        ny in 1i64..16,
        gx in 1i64..4,
        gy in 1i64..4,
    ) {
        let t = Rect::sized(&[nx, ny]);
        let m = Grid::grid2(gx, gy);
        let replication: i64 = dist
            .machine_dims
            .iter()
            .enumerate()
            .map(|(mi, d)| match d {
                DimName::Broadcast => m.extent(mi),
                _ => 1,
            })
            .product();
        let mut total = 0i64;
        for p in m.points() {
            let pieces = dist.pieces_of(&t, &m, &p);
            // Pieces are pairwise disjoint.
            for (i, a) in pieces.iter().enumerate() {
                for b in pieces.iter().skip(i + 1) {
                    prop_assert!(!a.overlaps(b), "{spec}: {a} overlaps {b}");
                }
            }
            for piece in &pieces {
                total += piece.volume();
                for c in piece.points() {
                    prop_assert!(
                        dist.owners_of(&t, &m, &c).contains(&p),
                        "{spec}: {c} in piece of {p} but not owned"
                    );
                }
            }
        }
        prop_assert_eq!(total, nx * ny * replication);
    }

    /// `placement` agrees with `pieces_of`, and for blocked kinds each
    /// owning processor holds exactly one piece (the tile).
    #[test]
    fn placement_consistency(
        kind in kind_strategy(),
        n in 1i64..24,
        g in 1i64..6,
    ) {
        let dist = TensorDistribution::parse("x->x")
            .unwrap()
            .with_partition(kind)
            .unwrap();
        let t = Rect::sized(&[n]);
        let m = Grid::line(g);
        let placement = dist.placement(&t, &m);
        let by_pieces: usize = m
            .points()
            .map(|p| dist.pieces_of(&t, &m, &p).len())
            .sum();
        prop_assert_eq!(placement.len(), by_pieces);
        if kind == PartitionKind::Blocked {
            for p in m.points() {
                prop_assert!(dist.pieces_of(&t, &m, &p).len() <= 1);
            }
        }
        // Stripes are never wider than the block width.
        let width = kind.block_width(n, g);
        for (_, piece) in &placement {
            prop_assert!(piece.extent(0) <= width);
        }
    }

    /// Coloring is stable under rect translation: the color of a coordinate
    /// depends only on its offset within the tensor rect.
    #[test]
    fn color_translation_invariant(
        kind in kind_strategy(),
        n in 1i64..16,
        g in 1i64..4,
        shift in 0i64..10,
        x in 0i64..16,
    ) {
        prop_assume!(x < n);
        let dist = TensorDistribution::parse("x->x")
            .unwrap()
            .with_partition(kind)
            .unwrap();
        let m = Grid::line(g);
        let base = Rect::sized(&[n]);
        let moved = Rect::new(Point::new(vec![shift]), Point::new(vec![shift + n - 1]));
        let c0 = dist.color_of(&base, &m, &Point::new(vec![x]));
        let c1 = dist.color_of(&moved, &m, &Point::new(vec![shift + x]));
        prop_assert_eq!(c0, c1);
    }
}
