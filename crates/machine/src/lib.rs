//! Machine models for DISTAL.
//!
//! Pipeline layer 1 (problem definition) — `ARCHITECTURE.md` at the
//! workspace root maps all six layers.
//!
//! DISTAL models a distributed machine as a multidimensional grid of abstract
//! processors, each with an associated local memory (paper §3.1). Grids may be
//! hierarchical: each abstract processor can itself be a machine (e.g. a grid
//! of nodes where every node is a grid of GPUs).
//!
//! This crate provides:
//!
//! * [`geom`] — points, rectangles and blocked partitioning arithmetic shared
//!   by the whole workspace,
//! * [`grid`] — the abstract machine grids of the format/scheduling languages,
//! * [`spec`] — *physical* machine descriptions (processor kinds, memory
//!   capacities, interconnect bandwidths) used by the runtime's cost model,
//!   including a calibrated model of the Lassen supercomputer used in the
//!   paper's evaluation.
//!
//! # Example
//!
//! ```
//! use distal_machine::grid::{Grid, MachineHierarchy};
//! use distal_machine::spec::MachineSpec;
//!
//! // A 4x4 grid of abstract processors, one per GPU of a 4-node machine.
//! let grid = Grid::new(vec![4, 4]);
//! assert_eq!(grid.points().count(), 16);
//!
//! // Nodes in a 2x2 grid, each node a 1-D grid of 4 GPUs.
//! let hier = MachineHierarchy::new(vec![Grid::new(vec![2, 2]), Grid::new(vec![4])]);
//! assert_eq!(hier.total_processors(), 16);
//!
//! // The physical machine the paper evaluates on.
//! let lassen = MachineSpec::lassen(4);
//! assert_eq!(lassen.nodes, 4);
//! ```

pub mod geom;
pub mod grid;
pub mod spec;

/// Element size in bytes (all tensors are `f64`, as in the paper).
///
/// Every backend — the dynamic runtime's regions and the static SPMD
/// backend's messages — derives wire and memory sizes from this single
/// constant so the two can never disagree about volume accounting.
pub const ELEM_BYTES: u64 = 8;

pub use geom::{Point, Rect, RectSet};
pub use grid::{Grid, MachineHierarchy};
pub use spec::{MachineSpec, MemKind, NodeSpec, ProcKind};
