//! Abstract machine grids (paper §3.1).
//!
//! DISTAL models a machine as a multidimensional grid of abstract processors.
//! The grid exposes locality and matches the grid-like structure of tensor
//! algebra computations. Grids may be *hierarchical* to model heterogeneous
//! nodes: a grid of nodes where each node is itself a grid of GPUs.

use crate::geom::{Point, Rect};
use std::fmt;

/// A multidimensional grid of abstract processors.
///
/// # Example
///
/// ```
/// use distal_machine::grid::Grid;
/// let g = Grid::new(vec![2, 3]);
/// assert_eq!(g.size(), 6);
/// assert_eq!(g.dim(), 2);
/// assert_eq!(g.linearize(&[1, 2].to_vec().into()), 5);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Grid {
    dims: Vec<i64>,
}

impl fmt::Debug for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Grid(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Grid {
    /// Creates a grid with the given per-dimension sizes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is not positive or the grid is 0-dimensional.
    pub fn new(dims: Vec<i64>) -> Self {
        assert!(!dims.is_empty(), "grid must have at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "grid dimensions must be positive"
        );
        Grid { dims }
    }

    /// A 1-D grid.
    pub fn line(n: i64) -> Self {
        Grid::new(vec![n])
    }

    /// A 2-D grid.
    pub fn grid2(x: i64, y: i64) -> Self {
        Grid::new(vec![x, y])
    }

    /// A 3-D grid.
    pub fn grid3(x: i64, y: i64, z: i64) -> Self {
        Grid::new(vec![x, y, z])
    }

    /// Number of grid dimensions.
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// Size of dimension `d`.
    pub fn extent(&self, d: usize) -> i64 {
        self.dims[d]
    }

    /// All dimension sizes.
    pub fn dims(&self) -> &[i64] {
        &self.dims
    }

    /// Total number of abstract processors.
    pub fn size(&self) -> i64 {
        self.dims.iter().product()
    }

    /// The grid as a rectangle `[0, dims[d]-1]`.
    pub fn rect(&self) -> Rect {
        Rect::sized(&self.dims)
    }

    /// Iterates over all processor coordinates in lexicographic order.
    pub fn points(&self) -> impl Iterator<Item = Point> {
        self.rect().points()
    }

    /// Row-major rank of a processor coordinate.
    pub fn linearize(&self, p: &Point) -> i64 {
        self.rect().linearize(p) as i64
    }

    /// Inverse of [`Grid::linearize`].
    pub fn delinearize(&self, rank: i64) -> Point {
        self.rect().delinearize(rank)
    }

    /// Chooses a near-square 2-D factorization of `p` processors, mimicking
    /// how ScaLAPACK and the paper's experiments pick `gx × gy` grids: the
    /// factor pair closest to `sqrt(p)` with `gx ≤ gy`.
    pub fn near_square_2d(p: i64) -> Grid {
        assert!(p > 0);
        let mut best = (1, p);
        let mut f = 1;
        while f * f <= p {
            if p % f == 0 {
                best = (f, p / f);
            }
            f += 1;
        }
        Grid::grid2(best.0, best.1)
    }

    /// The exact cube root of `p` when `p` is a perfect cube.
    pub fn perfect_cube_3d(p: i64) -> Option<Grid> {
        let c = (p as f64).cbrt().round() as i64;
        for cand in [c - 1, c, c + 1] {
            if cand > 0 && cand * cand * cand == p {
                return Some(Grid::grid3(cand, cand, cand));
            }
        }
        None
    }
}

/// A hierarchical machine: a stack of grids where each processor of level
/// `l` is refined into a full copy of the grid at level `l + 1`.
///
/// The paper (§3.1) uses a two-level hierarchy to model Lassen: nodes in a
/// multidimensional grid, each node a grid of four GPUs.
///
/// # Example
///
/// ```
/// use distal_machine::grid::{Grid, MachineHierarchy};
/// let h = MachineHierarchy::new(vec![Grid::new(vec![2, 2]), Grid::new(vec![4])]);
/// assert_eq!(h.total_processors(), 16);
/// assert_eq!(h.levels().len(), 2);
/// // Flattened coordinate (node-x, node-y, gpu) -> global rank.
/// let rank = h.flat_linearize(&vec![1, 0, 3].into());
/// assert_eq!(rank, 1 * 2 * 4 + 0 * 4 + 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineHierarchy {
    levels: Vec<Grid>,
}

impl MachineHierarchy {
    /// Creates a hierarchy from outermost to innermost grid.
    ///
    /// # Panics
    ///
    /// Panics when `levels` is empty.
    pub fn new(levels: Vec<Grid>) -> Self {
        assert!(!levels.is_empty(), "hierarchy needs at least one level");
        MachineHierarchy { levels }
    }

    /// A single-level (flat) machine.
    pub fn flat(grid: Grid) -> Self {
        MachineHierarchy::new(vec![grid])
    }

    /// The grids, outermost first.
    pub fn levels(&self) -> &[Grid] {
        &self.levels
    }

    /// The outermost grid (node level).
    pub fn outer(&self) -> &Grid {
        &self.levels[0]
    }

    /// Total number of leaf processors.
    pub fn total_processors(&self) -> i64 {
        self.levels.iter().map(Grid::size).product()
    }

    /// Dimensionality of a fully-flattened coordinate (sum of level dims).
    pub fn flat_dim(&self) -> usize {
        self.levels.iter().map(Grid::dim).sum()
    }

    /// The flattened machine as one grid whose dims are the concatenation of
    /// all level dims.
    pub fn flat_grid(&self) -> Grid {
        let dims = self
            .levels
            .iter()
            .flat_map(|g| g.dims().iter().copied())
            .collect();
        Grid::new(dims)
    }

    /// Global rank of a flattened coordinate.
    pub fn flat_linearize(&self, p: &Point) -> i64 {
        self.flat_grid().linearize(p)
    }

    /// Splits a flattened coordinate into per-level coordinates.
    pub fn split_coord(&self, p: &Point) -> Vec<Point> {
        assert_eq!(p.dim(), self.flat_dim());
        let mut out = Vec::with_capacity(self.levels.len());
        let mut off = 0;
        for g in &self.levels {
            out.push(Point::new(p.coords()[off..off + g.dim()].to_vec()));
            off += g.dim();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_basics() {
        let g = Grid::grid2(2, 3);
        assert_eq!(g.size(), 6);
        assert_eq!(g.dim(), 2);
        assert_eq!(g.extent(1), 3);
        assert_eq!(g.points().count(), 6);
        assert_eq!(format!("{g}"), "Grid(2x3)");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn grid_rejects_zero_dim() {
        Grid::new(vec![2, 0]);
    }

    #[test]
    fn grid_linearize_roundtrip() {
        let g = Grid::grid3(2, 3, 4);
        for (rank, p) in g.points().enumerate() {
            assert_eq!(g.linearize(&p), rank as i64);
            assert_eq!(g.delinearize(rank as i64), p);
        }
    }

    #[test]
    fn near_square_grids() {
        assert_eq!(Grid::near_square_2d(16), Grid::grid2(4, 4));
        assert_eq!(Grid::near_square_2d(8), Grid::grid2(2, 4));
        assert_eq!(Grid::near_square_2d(7), Grid::grid2(1, 7));
        assert_eq!(Grid::near_square_2d(1), Grid::grid2(1, 1));
        assert_eq!(Grid::near_square_2d(12), Grid::grid2(3, 4));
    }

    #[test]
    fn perfect_cubes() {
        assert_eq!(Grid::perfect_cube_3d(27), Some(Grid::grid3(3, 3, 3)));
        assert_eq!(Grid::perfect_cube_3d(64), Some(Grid::grid3(4, 4, 4)));
        assert_eq!(Grid::perfect_cube_3d(12), None);
        assert_eq!(Grid::perfect_cube_3d(1), Some(Grid::grid3(1, 1, 1)));
    }

    #[test]
    fn hierarchy_flatten() {
        let h = MachineHierarchy::new(vec![Grid::grid2(2, 2), Grid::line(4)]);
        assert_eq!(h.total_processors(), 16);
        assert_eq!(h.flat_dim(), 3);
        let p = Point::new(vec![1, 1, 2]);
        assert_eq!(h.flat_linearize(&p), (2 + 1) * 4 + 2);
        let split = h.split_coord(&p);
        assert_eq!(split[0], Point::new(vec![1, 1]));
        assert_eq!(split[1], Point::new(vec![2]));
    }
}
