//! Points, rectangles, and blocked partitioning arithmetic.
//!
//! All index spaces in the workspace (tensor index spaces, machine grids,
//! launch domains) are hyper-rectangles of `i64` coordinates with *inclusive*
//! bounds. [`Rect`] supports intersection, containment, lexicographic point
//! iteration, difference (for coherence tracking in the runtime) and the
//! blocked partitioning function used by tensor distribution notation
//! (paper §3.2: "tensor dimensions partitioned across machine dimensions are
//! divided into equal-sized contiguous pieces").

use std::fmt;

/// A point in an n-dimensional integer space.
///
/// # Example
///
/// ```
/// use distal_machine::geom::Point;
/// let p = Point::new(vec![1, 2, 3]);
/// assert_eq!(p.dim(), 3);
/// assert_eq!(p[1], 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Point(pub Vec<i64>);

impl Point {
    /// Creates a point from its coordinates.
    pub fn new(coords: Vec<i64>) -> Self {
        Point(coords)
    }

    /// The origin of a `dim`-dimensional space.
    pub fn zeros(dim: usize) -> Self {
        Point(vec![0; dim])
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Coordinates as a slice.
    pub fn coords(&self) -> &[i64] {
        &self.0
    }

    /// Returns a new point with `value` appended as a trailing coordinate.
    pub fn extended(&self, value: i64) -> Point {
        let mut c = self.0.clone();
        c.push(value);
        Point(c)
    }

    /// Concatenates two points (used to flatten hierarchical machine
    /// coordinates).
    pub fn concat(&self, other: &Point) -> Point {
        let mut c = self.0.clone();
        c.extend_from_slice(&other.0);
        Point(c)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl std::ops::Index<usize> for Point {
    type Output = i64;
    fn index(&self, i: usize) -> &i64 {
        &self.0[i]
    }
}

impl std::ops::IndexMut<usize> for Point {
    fn index_mut(&mut self, i: usize) -> &mut i64 {
        &mut self.0[i]
    }
}

impl From<Vec<i64>> for Point {
    fn from(v: Vec<i64>) -> Self {
        Point(v)
    }
}

/// An n-dimensional hyper-rectangle with inclusive bounds.
///
/// A rectangle is *empty* when any `hi[d] < lo[d]`.
///
/// # Example
///
/// ```
/// use distal_machine::geom::Rect;
/// let r = Rect::sized(&[4, 4]);
/// assert_eq!(r.volume(), 16);
/// let tile = r.block(0, 2, 1); // second of two row blocks
/// assert_eq!(tile.lo().coords(), &[2, 0]);
/// assert_eq!(tile.hi().coords(), &[3, 3]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rect {
    lo: Point,
    hi: Point,
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}..{:?}]", self.lo, self.hi)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Rect {
    /// Creates a rectangle from inclusive bounds.
    ///
    /// # Panics
    ///
    /// Panics if `lo` and `hi` have different dimensionality.
    pub fn new(lo: Point, hi: Point) -> Self {
        assert_eq!(lo.dim(), hi.dim(), "rect bounds must share dimensionality");
        Rect { lo, hi }
    }

    /// The rectangle `[0, extents[d] - 1]` in every dimension.
    pub fn sized(extents: &[i64]) -> Self {
        let lo = Point::zeros(extents.len());
        let hi = Point::new(extents.iter().map(|e| e - 1).collect());
        Rect { lo, hi }
    }

    /// A canonical empty rectangle of the given dimensionality.
    pub fn empty(dim: usize) -> Self {
        Rect {
            lo: Point::new(vec![0; dim]),
            hi: Point::new(vec![-1; dim]),
        }
    }

    /// Lower bound (inclusive).
    pub fn lo(&self) -> &Point {
        &self.lo
    }

    /// Upper bound (inclusive).
    pub fn hi(&self) -> &Point {
        &self.hi
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.lo.dim()
    }

    /// True when the rectangle contains no points.
    pub fn is_empty(&self) -> bool {
        (0..self.dim()).any(|d| self.hi[d] < self.lo[d])
    }

    /// Extent (number of points) along dimension `d`; zero when empty.
    pub fn extent(&self, d: usize) -> i64 {
        (self.hi[d] - self.lo[d] + 1).max(0)
    }

    /// All extents.
    pub fn extents(&self) -> Vec<i64> {
        (0..self.dim()).map(|d| self.extent(d)).collect()
    }

    /// Total number of points.
    pub fn volume(&self) -> i64 {
        if self.is_empty() {
            return 0;
        }
        (0..self.dim()).map(|d| self.extent(d)).product()
    }

    /// True when `p` lies inside the rectangle.
    pub fn contains_point(&self, p: &Point) -> bool {
        p.dim() == self.dim() && (0..self.dim()).all(|d| self.lo[d] <= p[d] && p[d] <= self.hi[d])
    }

    /// True when `other` lies entirely inside `self` (empty rects are
    /// contained everywhere).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        if other.is_empty() {
            return true;
        }
        (0..self.dim()).all(|d| self.lo[d] <= other.lo[d] && other.hi[d] <= self.hi[d])
    }

    /// Intersection of two rectangles (possibly empty).
    pub fn intersection(&self, other: &Rect) -> Rect {
        assert_eq!(self.dim(), other.dim());
        let lo = Point::new(
            (0..self.dim())
                .map(|d| self.lo[d].max(other.lo[d]))
                .collect(),
        );
        let hi = Point::new(
            (0..self.dim())
                .map(|d| self.hi[d].min(other.hi[d]))
                .collect(),
        );
        Rect { lo, hi }
    }

    /// True when the rectangles share at least one point.
    pub fn overlaps(&self, other: &Rect) -> bool {
        !self.intersection(other).is_empty()
    }

    /// The smallest rectangle containing both inputs.
    pub fn union_bb(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let lo = Point::new(
            (0..self.dim())
                .map(|d| self.lo[d].min(other.lo[d]))
                .collect(),
        );
        let hi = Point::new(
            (0..self.dim())
                .map(|d| self.hi[d].max(other.hi[d]))
                .collect(),
        );
        Rect { lo, hi }
    }

    /// `self \ other` as a set of disjoint rectangles.
    ///
    /// Used by the runtime's coherence machinery to subtract invalidated
    /// sub-rectangles from an instance's valid set. Produces at most `2·dim`
    /// pieces via axis-by-axis guillotine cuts.
    pub fn difference(&self, other: &Rect) -> Vec<Rect> {
        if self.is_empty() {
            return vec![];
        }
        let inter = self.intersection(other);
        if inter.is_empty() {
            return vec![self.clone()];
        }
        if inter == *self {
            return vec![];
        }
        let mut pieces = Vec::new();
        let mut remaining = self.clone();
        for d in 0..self.dim() {
            // Piece below the intersection along dimension d.
            if remaining.lo[d] < inter.lo[d] {
                let mut hi = remaining.hi.clone();
                hi[d] = inter.lo[d] - 1;
                pieces.push(Rect::new(remaining.lo.clone(), hi));
                remaining.lo[d] = inter.lo[d];
            }
            // Piece above the intersection along dimension d.
            if remaining.hi[d] > inter.hi[d] {
                let mut lo = remaining.lo.clone();
                lo[d] = inter.hi[d] + 1;
                pieces.push(Rect::new(lo, remaining.hi.clone()));
                remaining.hi[d] = inter.hi[d];
            }
        }
        pieces
    }

    /// Lexicographic iteration over all points (last dimension fastest).
    pub fn points(&self) -> PointIter {
        PointIter {
            rect: self.clone(),
            next: if self.is_empty() {
                None
            } else {
                Some(self.lo.clone())
            },
        }
    }

    /// The `index`-th of `parts` equal-sized contiguous blocks along
    /// dimension `d` — the paper's blocked partitioning function.
    ///
    /// Block sizes are `ceil(extent / parts)`; trailing blocks may be smaller
    /// or empty.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0` or `index >= parts`.
    pub fn block(&self, d: usize, parts: i64, index: i64) -> Rect {
        assert!(parts > 0, "cannot split into zero parts");
        assert!(
            (0..parts).contains(&index),
            "block index {index} out of range for {parts} parts"
        );
        let extent = self.extent(d);
        let size = div_ceil(extent, parts);
        let mut lo = self.lo.clone();
        let mut hi = self.hi.clone();
        lo[d] = self.lo[d] + index * size;
        hi[d] = (self.lo[d] + (index + 1) * size - 1).min(self.hi[d]);
        Rect::new(lo, hi)
    }

    /// Restricts dimension `d` to the inclusive range `[lo, hi]`, clipping to
    /// the rectangle's own bounds.
    pub fn restrict(&self, d: usize, lo: i64, hi: i64) -> Rect {
        let mut r = self.clone();
        r.lo[d] = r.lo[d].max(lo);
        r.hi[d] = r.hi[d].min(hi);
        r
    }

    /// Linear (row-major) offset of a point inside the rectangle.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the point is outside the rectangle.
    pub fn linearize(&self, p: &Point) -> usize {
        debug_assert!(self.contains_point(p), "{p:?} outside {self:?}");
        let mut idx: i64 = 0;
        for d in 0..self.dim() {
            idx = idx * self.extent(d) + (p[d] - self.lo[d]);
        }
        idx as usize
    }

    /// Inverse of [`Rect::linearize`].
    pub fn delinearize(&self, mut idx: i64) -> Point {
        let mut coords = vec![0; self.dim()];
        for d in (0..self.dim()).rev() {
            let e = self.extent(d);
            coords[d] = self.lo[d] + idx % e;
            idx /= e;
        }
        Point::new(coords)
    }
}

/// Ceiling division for positive divisors.
pub fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    (a + b - 1) / b
}

/// Iterator over the points of a [`Rect`] in lexicographic order.
#[derive(Debug)]
pub struct PointIter {
    rect: Rect,
    next: Option<Point>,
}

impl Iterator for PointIter {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        let current = self.next.take()?;
        // Advance like an odometer, last dimension fastest.
        let mut succ = current.clone();
        let dim = self.rect.dim();
        let mut d = dim;
        loop {
            if d == 0 {
                self.next = None;
                break;
            }
            d -= 1;
            if succ[d] < self.rect.hi[d] {
                succ[d] += 1;
                for coord in d + 1..dim {
                    succ[coord] = self.rect.lo[coord];
                }
                self.next = Some(succ);
                break;
            }
        }
        Some(current)
    }
}

/// A set of disjoint rectangles, used to track which sub-rectangles of a
/// region are valid in a physical instance.
///
/// # Example
///
/// ```
/// use distal_machine::geom::{Rect, RectSet};
/// let mut s = RectSet::new();
/// s.add(Rect::sized(&[4, 4]));
/// s.subtract(&Rect::sized(&[2, 2]));
/// assert!(!s.covers(&Rect::sized(&[2, 2])));
/// assert!(s.covers(&Rect::sized(&[4, 4]).restrict(0, 2, 3)));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RectSet {
    rects: Vec<Rect>,
}

impl RectSet {
    /// An empty set.
    pub fn new() -> Self {
        RectSet { rects: Vec::new() }
    }

    /// A set containing a single rectangle.
    pub fn from_rect(r: Rect) -> Self {
        let mut s = RectSet::new();
        s.add(r);
        s
    }

    /// The rectangles of the set (disjoint, unordered).
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// True when the set covers no points.
    pub fn is_empty(&self) -> bool {
        self.rects.iter().all(Rect::is_empty)
    }

    /// Adds a rectangle, keeping members disjoint by subtracting existing
    /// coverage from the newcomer.
    pub fn add(&mut self, r: Rect) {
        if r.is_empty() {
            return;
        }
        let mut pending = vec![r];
        for existing in &self.rects {
            let mut next = Vec::new();
            for p in pending {
                next.extend(p.difference(existing));
            }
            pending = next;
            if pending.is_empty() {
                return;
            }
        }
        self.rects.extend(pending);
    }

    /// Removes a rectangle from the set.
    pub fn subtract(&mut self, r: &Rect) {
        if r.is_empty() {
            return;
        }
        let mut out = Vec::with_capacity(self.rects.len());
        for existing in self.rects.drain(..) {
            out.extend(existing.difference(r));
        }
        self.rects = out;
    }

    /// True when every point of `r` is covered by the set.
    pub fn covers(&self, r: &Rect) -> bool {
        if r.is_empty() {
            return true;
        }
        let mut missing = vec![r.clone()];
        for existing in &self.rects {
            let mut next = Vec::new();
            for m in missing {
                next.extend(m.difference(existing));
            }
            missing = next;
            if missing.is_empty() {
                return true;
            }
        }
        false
    }

    /// True when the set covers at least one point of `r`.
    pub fn overlaps(&self, r: &Rect) -> bool {
        self.rects.iter().any(|e| e.overlaps(r))
    }

    /// Total covered volume.
    pub fn volume(&self) -> i64 {
        self.rects.iter().map(Rect::volume).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_basics() {
        let p = Point::new(vec![3, 4]);
        assert_eq!(p.dim(), 2);
        assert_eq!(p[0], 3);
        assert_eq!(p.extended(5).coords(), &[3, 4, 5]);
        assert_eq!(p.concat(&Point::new(vec![7])).coords(), &[3, 4, 7]);
        assert_eq!(format!("{p}"), "(3, 4)");
    }

    #[test]
    fn rect_volume_and_extent() {
        let r = Rect::sized(&[3, 5]);
        assert_eq!(r.volume(), 15);
        assert_eq!(r.extent(0), 3);
        assert_eq!(r.extent(1), 5);
        assert!(!r.is_empty());
        assert!(Rect::empty(2).is_empty());
        assert_eq!(Rect::empty(2).volume(), 0);
    }

    #[test]
    fn rect_contains_and_intersection() {
        let a = Rect::sized(&[10, 10]);
        let b = Rect::new(Point::new(vec![5, 5]), Point::new(vec![14, 14]));
        let i = a.intersection(&b);
        assert_eq!(i, Rect::new(Point::new(vec![5, 5]), Point::new(vec![9, 9])));
        assert!(a.contains_rect(&i));
        assert!(b.contains_rect(&i));
        assert!(a.overlaps(&b));
        let far = Rect::new(Point::new(vec![20, 20]), Point::new(vec![25, 25]));
        assert!(!a.overlaps(&far));
        assert!(a.contains_rect(&Rect::empty(2)));
    }

    #[test]
    fn rect_union_bb() {
        let a = Rect::sized(&[2, 2]);
        let b = Rect::new(Point::new(vec![5, 5]), Point::new(vec![6, 6]));
        let u = a.union_bb(&b);
        assert_eq!(u, Rect::new(Point::zeros(2), Point::new(vec![6, 6])));
        assert_eq!(Rect::empty(2).union_bb(&a), a);
    }

    #[test]
    fn rect_difference_covers_complement() {
        let a = Rect::sized(&[6, 6]);
        let hole = Rect::new(Point::new(vec![2, 2]), Point::new(vec![3, 3]));
        let pieces = a.difference(&hole);
        let total: i64 = pieces.iter().map(Rect::volume).sum();
        assert_eq!(total, 36 - 4);
        // Pieces must be disjoint from the hole and from each other.
        for p in &pieces {
            assert!(!p.overlaps(&hole));
        }
        for (i, p) in pieces.iter().enumerate() {
            for q in &pieces[i + 1..] {
                assert!(!p.overlaps(q), "{p:?} overlaps {q:?}");
            }
        }
    }

    #[test]
    fn rect_difference_disjoint_and_total() {
        let a = Rect::sized(&[4]);
        assert_eq!(
            a.difference(&Rect::new(Point::new(vec![10]), Point::new(vec![12]))),
            vec![a.clone()]
        );
        assert!(a.difference(&a).is_empty());
    }

    #[test]
    fn rect_point_iteration_order() {
        let r = Rect::sized(&[2, 2]);
        let pts: Vec<_> = r.points().collect();
        assert_eq!(
            pts,
            vec![
                Point::new(vec![0, 0]),
                Point::new(vec![0, 1]),
                Point::new(vec![1, 0]),
                Point::new(vec![1, 1]),
            ]
        );
        assert_eq!(Rect::empty(2).points().count(), 0);
    }

    #[test]
    fn rect_blocking_matches_paper() {
        // 100 elements over 10 processors: 10 components each (paper §3.2).
        let r = Rect::sized(&[100]);
        for i in 0..10 {
            let b = r.block(0, 10, i);
            assert_eq!(b.volume(), 10);
            assert_eq!(b.lo()[0], i * 10);
        }
        // Uneven split: ceil sizes with a short tail.
        let r = Rect::sized(&[10]);
        assert_eq!(r.block(0, 3, 0).volume(), 4);
        assert_eq!(r.block(0, 3, 1).volume(), 4);
        assert_eq!(r.block(0, 3, 2).volume(), 2);
        // Over-decomposition yields empty trailing blocks.
        let r = Rect::sized(&[2]);
        assert!(r.block(0, 3, 2).is_empty());
    }

    #[test]
    fn rect_linearize_roundtrip() {
        let r = Rect::new(Point::new(vec![2, 3]), Point::new(vec![4, 7]));
        for (i, p) in r.points().enumerate() {
            assert_eq!(r.linearize(&p), i);
            assert_eq!(r.delinearize(i as i64), p);
        }
    }

    #[test]
    fn rectset_add_subtract_cover() {
        let mut s = RectSet::new();
        assert!(s.is_empty());
        s.add(Rect::sized(&[4, 4]));
        assert!(s.covers(&Rect::sized(&[4, 4])));
        assert_eq!(s.volume(), 16);
        // Adding an overlapping rect keeps the set disjoint.
        s.add(Rect::new(Point::new(vec![2, 2]), Point::new(vec![5, 5])));
        assert_eq!(s.volume(), 16 + 16 - 4);
        s.subtract(&Rect::sized(&[2, 2]));
        assert!(!s.covers(&Rect::sized(&[2, 2])));
        assert!(!s.covers(&Rect::sized(&[4, 4])));
        assert!(s.covers(&Rect::new(Point::new(vec![4, 4]), Point::new(vec![5, 5]))));
    }

    #[test]
    fn rectset_overlap() {
        let s = RectSet::from_rect(Rect::sized(&[3, 3]));
        assert!(s.overlaps(&Rect::new(Point::new(vec![2, 2]), Point::new(vec![8, 8]))));
        assert!(!s.overlaps(&Rect::new(Point::new(vec![5, 5]), Point::new(vec![8, 8]))));
    }
}
