//! Physical machine specifications and cost-model parameters.
//!
//! The paper evaluates on the Lassen supercomputer: each node has a dual
//! socket IBM Power9 CPU (40 available cores), four NVIDIA V100 GPUs
//! connected by NVLink 2.0, and an InfiniBand EDR interconnect (§7).
//!
//! [`MachineSpec`] captures the parameters the runtime's discrete-event
//! simulator needs: per-processor throughput, memory capacities, and
//! per-channel bandwidth/latency. [`MachineSpec::lassen`] is calibrated to
//! the single-node numbers reported in the paper:
//!
//! * CPU peak ≈ 750 GFLOP/s per node (Figure 15a's peak-utilization line);
//! * GPU peak ≈ 28 TFLOP/s per node (4 × ~7 TFLOP/s fp64, Figure 15b);
//! * NVLink 2.0 intra-node GPU links;
//! * inter-node peak 25 GB/s, with Legion's DMA reaching only 18 GB/s when
//!   data resides in GPU framebuffer memory (§7.1.2) — modelled by
//!   [`MachineSpec::gpu_fb_dma_efficiency`].

/// The kind of a physical processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProcKind {
    /// A CPU socket (the paper models each CPU socket as one abstract
    /// processor, §7.1.1).
    Cpu,
    /// A single GPU.
    Gpu,
}

impl std::fmt::Display for ProcKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcKind::Cpu => write!(f, "CPU"),
            ProcKind::Gpu => write!(f, "GPU"),
        }
    }
}

/// The kind of a physical memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// Host DRAM attached to a CPU socket.
    Sys,
    /// GPU framebuffer (HBM) memory.
    Fb,
    /// An unbounded staging memory used to hold functional-mode input data
    /// before placement; copies from it are not charged to the interconnect.
    Global,
}

impl std::fmt::Display for MemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemKind::Sys => write!(f, "SYS_MEM"),
            MemKind::Fb => write!(f, "GPU_FB_MEM"),
            MemKind::Global => write!(f, "GLOBAL_MEM"),
        }
    }
}

/// Per-node hardware description.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSpec {
    /// CPU sockets per node.
    pub cpu_sockets: usize,
    /// Worker cores per socket.
    pub cores_per_socket: usize,
    /// GPUs per node.
    pub gpus: usize,
    /// Peak double-precision GFLOP/s of one CPU socket (all its cores).
    pub cpu_socket_gflops: f64,
    /// Peak double-precision GFLOP/s of one GPU.
    pub gpu_gflops: f64,
    /// Host DRAM capacity per node, bytes.
    pub sysmem_bytes: u64,
    /// Framebuffer capacity per GPU, bytes.
    pub fb_bytes: u64,
    /// GPU↔GPU NVLink bandwidth within a node, GB/s.
    pub nvlink_gbs: f64,
    /// Host↔GPU transfer bandwidth, GB/s.
    pub host_dev_gbs: f64,
    /// CPU socket↔socket (and sysmem↔sysmem) intra-node bandwidth, GB/s.
    pub intra_cpu_gbs: f64,
}

/// A full machine: `nodes` copies of [`NodeSpec`] joined by an interconnect.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineSpec {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-node hardware.
    pub node: NodeSpec,
    /// Peak inter-node bandwidth per NIC direction, GB/s.
    pub internode_gbs: f64,
    /// Inter-node message latency, seconds.
    pub internode_latency_s: f64,
    /// Intra-node copy latency, seconds.
    pub intranode_latency_s: f64,
    /// Fraction of `internode_gbs` achievable when the source or destination
    /// is GPU framebuffer memory (§7.1.2 reports 18/25 GB/s for Legion).
    pub gpu_fb_dma_efficiency: f64,
    /// Fixed per-task runtime overhead, seconds (Legion dynamic dependence
    /// analysis; the paper allocates 4 of 40 cores per node to it).
    pub task_overhead_s: f64,
    /// Per reduction-instance folding overhead, seconds. Models the Legion
    /// cost "algorithms used within Legion to manage the situation where
    /// portions of regions are replicated onto many nodes" (§7.2.2, MTTKRP).
    pub reduction_fold_overhead_s: f64,
    /// Fraction of each socket's cores available for application work
    /// (DISTAL reserves cores for the runtime: 36/40 on Lassen, §7.1.1).
    pub cpu_worker_fraction: f64,
}

impl NodeSpec {
    /// A Lassen node: dual-socket Power9 (40 available cores), 4 × V100.
    pub fn lassen() -> Self {
        NodeSpec {
            cpu_sockets: 2,
            cores_per_socket: 20,
            gpus: 4,
            // Figure 15a peak-utilization ≈ 750 GFLOP/s per node.
            cpu_socket_gflops: 375.0,
            // Figure 15b peak-utilization ≈ 28 TFLOP/s per node (4 GPUs).
            gpu_gflops: 7_000.0,
            sysmem_bytes: 256 * (1 << 30),
            fb_bytes: 16 * (1 << 30),
            nvlink_gbs: 75.0,
            host_dev_gbs: 32.0,
            intra_cpu_gbs: 110.0,
        }
    }

    /// Total peak GFLOP/s of the node's CPU sockets.
    pub fn cpu_node_gflops(&self) -> f64 {
        self.cpu_socket_gflops * self.cpu_sockets as f64
    }

    /// Total peak GFLOP/s of the node's GPUs.
    pub fn gpu_node_gflops(&self) -> f64 {
        self.gpu_gflops * self.gpus as f64
    }
}

impl MachineSpec {
    /// The Lassen supercomputer model with `nodes` nodes.
    ///
    /// The GPU framebuffer DMA efficiency models the Legion shortcoming the
    /// paper reports (§7.1.2): a single stream reaches 18/25 GB/s, and with
    /// a node's four GPUs contending, sustained aggregate traffic calibrates
    /// to 10/25 GB/s — which reproduces Figure 15b's communication-bound
    /// regime and its COSMA crossover.
    ///
    /// # Example
    ///
    /// ```
    /// use distal_machine::spec::MachineSpec;
    /// let m = MachineSpec::lassen(256);
    /// assert_eq!(m.nodes, 256);
    /// assert_eq!(m.node.gpus, 4);
    /// ```
    pub fn lassen(nodes: usize) -> Self {
        MachineSpec {
            nodes,
            node: NodeSpec::lassen(),
            internode_gbs: 25.0,
            internode_latency_s: 5e-6,
            intranode_latency_s: 1e-6,
            gpu_fb_dma_efficiency: 10.0 / 25.0,
            task_overhead_s: 30e-6,
            reduction_fold_overhead_s: 120e-6,
            cpu_worker_fraction: 36.0 / 40.0,
        }
    }

    /// A small, fast, laptop-scale machine used by tests and examples.
    pub fn small(nodes: usize) -> Self {
        let mut m = MachineSpec::lassen(nodes);
        m.node.sysmem_bytes = 8 * (1 << 30);
        m.node.fb_bytes = 2 * (1 << 30);
        m
    }

    /// Replaces the hardcoded per-socket CPU rate with a measured one —
    /// the calibration hook the kernel benchmark feeds with the flop rate
    /// its generated leaves actually sustain on the host, so cost-model
    /// pricing (`proc_gflops`, task durations) reflects real per-core
    /// throughput instead of the Lassen constant.
    ///
    /// # Example
    ///
    /// ```
    /// use distal_machine::spec::{MachineSpec, ProcKind};
    /// let m = MachineSpec::small(2).with_cpu_socket_gflops(42.0);
    /// assert_eq!(m.node.cpu_socket_gflops, 42.0);
    /// assert!(m.proc_gflops(ProcKind::Cpu) < 42.0); // worker fraction
    /// ```
    #[must_use]
    pub fn with_cpu_socket_gflops(mut self, gflops: f64) -> Self {
        self.node.cpu_socket_gflops = gflops;
        self
    }

    /// Total CPU sockets across the machine.
    pub fn total_cpu_sockets(&self) -> usize {
        self.nodes * self.node.cpu_sockets
    }

    /// Total GPUs across the machine.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.node.gpus
    }

    /// Effective GFLOP/s of one processor of the given kind, after reserving
    /// runtime cores on CPUs.
    pub fn proc_gflops(&self, kind: ProcKind) -> f64 {
        match kind {
            ProcKind::Cpu => self.node.cpu_socket_gflops * self.cpu_worker_fraction,
            ProcKind::Gpu => self.node.gpu_gflops,
        }
    }

    /// Bandwidth in GB/s for a copy between two memories.
    ///
    /// `same_node` says whether source and destination live on one node.
    pub fn channel_gbs(&self, src: MemKind, dst: MemKind, same_node: bool) -> f64 {
        use MemKind::*;
        match (src, dst) {
            // Staging memory: modelled as free (placement phase only).
            (Global, _) | (_, Global) => f64::INFINITY,
            _ if !same_node => {
                let fb_involved = src == Fb || dst == Fb;
                if fb_involved {
                    self.internode_gbs * self.gpu_fb_dma_efficiency
                } else {
                    self.internode_gbs
                }
            }
            (Fb, Fb) => self.node.nvlink_gbs,
            (Sys, Fb) | (Fb, Sys) => self.node.host_dev_gbs,
            (Sys, Sys) => self.node.intra_cpu_gbs,
        }
    }

    /// Latency in seconds for a copy between two memories.
    pub fn channel_latency_s(&self, src: MemKind, dst: MemKind, same_node: bool) -> f64 {
        if src == MemKind::Global || dst == MemKind::Global {
            0.0
        } else if same_node {
            self.intranode_latency_s
        } else {
            self.internode_latency_s
        }
    }

    /// Capacity in bytes of a memory of the given kind.
    pub fn mem_capacity(&self, kind: MemKind) -> u64 {
        match kind {
            MemKind::Sys => self.node.sysmem_bytes / self.node.cpu_sockets as u64,
            MemKind::Fb => self.node.fb_bytes,
            MemKind::Global => u64::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lassen_calibration() {
        let m = MachineSpec::lassen(1);
        // Single-node CPU peak near the paper's ~750 GFLOP/s line.
        let cpu_peak = m.node.cpu_node_gflops();
        assert!((700.0..800.0).contains(&cpu_peak), "{cpu_peak}");
        // Single-node GPU peak near ~28 TFLOP/s.
        let gpu_peak = m.node.gpu_node_gflops();
        assert!((26_000.0..30_000.0).contains(&gpu_peak), "{gpu_peak}");
        // DISTAL's CPU workers are 36/40 of the node.
        let eff = m.proc_gflops(ProcKind::Cpu) * m.node.cpu_sockets as f64;
        assert!((eff / cpu_peak - 0.9).abs() < 1e-9);
    }

    #[test]
    fn channel_model_matches_paper() {
        let m = MachineSpec::lassen(2);
        // Framebuffer-resident inter-node copies are penalized (the paper's
        // Legion DMA shortcoming; calibrated to 10/25 GB/s sustained).
        let fb = m.channel_gbs(MemKind::Fb, MemKind::Fb, false);
        assert!((fb - 10.0).abs() < 1e-9, "{fb}");
        // CPU-resident inter-node copies reach the full 25 GB/s.
        assert_eq!(m.channel_gbs(MemKind::Sys, MemKind::Sys, false), 25.0);
        // NVLink within a node is much faster than the NIC.
        assert!(m.channel_gbs(MemKind::Fb, MemKind::Fb, true) > 2.0 * fb);
        // Global staging memory is free.
        assert!(m
            .channel_gbs(MemKind::Global, MemKind::Fb, false)
            .is_infinite());
        assert_eq!(
            m.channel_latency_s(MemKind::Global, MemKind::Fb, false),
            0.0
        );
    }

    #[test]
    fn capacities() {
        let m = MachineSpec::lassen(1);
        assert_eq!(m.mem_capacity(MemKind::Fb), 16 * (1 << 30));
        assert_eq!(m.mem_capacity(MemKind::Global), u64::MAX);
        assert_eq!(m.total_gpus(), 4);
        assert_eq!(m.total_cpu_sockets(), 2);
    }

    #[test]
    fn latency_scales_with_distance() {
        let m = MachineSpec::lassen(2);
        assert!(
            m.channel_latency_s(MemKind::Fb, MemKind::Fb, false)
                > m.channel_latency_s(MemKind::Fb, MemKind::Fb, true)
        );
    }
}
