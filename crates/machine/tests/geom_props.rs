//! Property tests for the geometry substrate: rectangle algebra must be
//! exact, since the runtime's coherence machinery depends on it.

use distal_machine::geom::{Point, Rect, RectSet};
use proptest::prelude::*;

fn rect_strategy(dim: usize, max: i64) -> impl Strategy<Value = Rect> {
    prop::collection::vec((0..max, 0..max), dim).prop_map(|bounds| {
        let lo: Vec<i64> = bounds.iter().map(|(a, b)| *a.min(b)).collect();
        let hi: Vec<i64> = bounds.iter().map(|(a, b)| *a.max(b)).collect();
        Rect::new(Point::new(lo), Point::new(hi))
    })
}

proptest! {
    /// difference() partitions: |a \ b| + |a ∩ b| = |a|, all disjoint.
    #[test]
    fn difference_partitions(a in rect_strategy(2, 12), b in rect_strategy(2, 12)) {
        let pieces = a.difference(&b);
        let inter = a.intersection(&b);
        let total: i64 = pieces.iter().map(Rect::volume).sum();
        prop_assert_eq!(total + inter.volume(), a.volume());
        for p in &pieces {
            prop_assert!(!p.overlaps(&b));
            prop_assert!(a.contains_rect(p));
        }
        for (i, p) in pieces.iter().enumerate() {
            for q in &pieces[i + 1..] {
                prop_assert!(!p.overlaps(q));
            }
        }
    }

    /// Blocked partitioning covers the rect exactly, in order, disjointly.
    #[test]
    fn blocks_tile_exactly(extent in 1i64..40, parts in 1i64..10) {
        let r = Rect::sized(&[extent]);
        let mut total = 0;
        let mut next_lo = 0;
        for i in 0..parts {
            let b = r.block(0, parts, i);
            total += b.volume();
            if !b.is_empty() {
                prop_assert_eq!(b.lo()[0], next_lo);
                next_lo = b.hi()[0] + 1;
            }
        }
        prop_assert_eq!(total, extent);
    }

    /// RectSet add/subtract maintains exact coverage volume.
    #[test]
    fn rectset_volume_is_exact(
        rects in prop::collection::vec(rect_strategy(2, 10), 1..6),
        sub in rect_strategy(2, 10),
    ) {
        let mut s = RectSet::new();
        for r in &rects {
            s.add(r.clone());
        }
        // Volume equals the number of covered lattice points.
        let bb = rects.iter().fold(Rect::empty(2), |acc, r| acc.union_bb(r));
        let mut count = 0;
        for p in bb.points() {
            if rects.iter().any(|r| r.contains_point(&p)) {
                count += 1;
            }
        }
        prop_assert_eq!(s.volume(), count);
        // Subtracting removes exactly the covered intersection.
        let mut count_after = 0;
        for p in bb.points() {
            if rects.iter().any(|r| r.contains_point(&p)) && !sub.contains_point(&p) {
                count_after += 1;
            }
        }
        s.subtract(&sub);
        prop_assert_eq!(s.volume(), count_after);
    }

    /// covers() agrees with pointwise membership.
    #[test]
    fn rectset_covers_agrees_with_points(
        rects in prop::collection::vec(rect_strategy(2, 8), 1..5),
        probe in rect_strategy(2, 8),
    ) {
        let mut s = RectSet::new();
        for r in &rects {
            s.add(r.clone());
        }
        let pointwise = probe
            .points()
            .all(|p| rects.iter().any(|r| r.contains_point(&p)));
        prop_assert_eq!(s.covers(&probe), pointwise);
    }

    /// linearize/delinearize round-trip on arbitrary rects.
    #[test]
    fn linearize_roundtrip(r in rect_strategy(3, 6)) {
        for (i, p) in r.points().enumerate() {
            prop_assert_eq!(r.linearize(&p), i);
            prop_assert_eq!(r.delinearize(i as i64), p);
        }
    }
}
