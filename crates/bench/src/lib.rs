//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§7).
//!
//! Measures the whole pipeline end to end — `ARCHITECTURE.md` at the
//! workspace root maps the six layers under test.
//!
//! Each module reproduces one artifact:
//!
//! * [`fig9`] — the Figure 9 algorithm table: per-algorithm communication
//!   pattern (broadcast-tree vs systolic neighbour traffic) + correctness;
//! * [`fig15`] — Figures 15a/15b: weak-scaling GEMM on CPUs and GPUs
//!   against ScaLAPACK, CTF, and COSMA;
//! * [`fig16`] — Figures 16a–d: weak-scaling TTV / Innerprod / TTM / MTTKRP
//!   against CTF;
//! * [`headline`] — the abstract's headline numbers (speedups vs CTF,
//!   ScaLAPACK, COSMA);
//! * [`ablations`] — design-choice studies: `rotate` on/off, `communicate`
//!   granularity, overlap vs bulk-synchronous execution;
//! * [`series`] — sweep infrastructure and table rendering.
//!
//! Binaries: `fig9`, `fig15a`, `fig15b`, `fig16`, `headline`, `all`,
//! `exec` (serial-vs-parallel executor wall-clock; writes
//! `BENCH_exec.json`), `spmd` (collective recognition/lowering gate:
//! naive vs tree vs ring schedules under the α-β model; writes
//! `BENCH_spmd.json`), `backends` (runtime-sim vs SPMD α-β cost
//! models over the unified `Problem` pipeline for SUMMA/Cannon at
//! p ∈ {4, 9, 16}; writes `BENCH_backends.json`), and `sparse`
//! (dense vs CSR-compressed bytes moved and α-β makespan for SpMV/SpMM
//! at density ∈ {0.01, 0.1, 0.5} on p ∈ {4, 16}, with the <10%
//! compression gate; writes `BENCH_sparse.json`), and `serving`
//! (compile-once/execute-many: N fresh-data requests over fixed shapes,
//! recompile-per-request vs the keyed plan-cache path on both executable
//! backends, with the `--assert-cache` gate — 100% hits after warm-up,
//! zero bind-path lowerings, amortized compile strictly below recompile;
//! writes `BENCH_serving.json`).
//! Criterion benches (`benches/paper_figures.rs`) run reduced-scale
//! versions of the same harnesses.

pub mod ablations;
pub mod backends;
pub mod exec;
pub mod fig15;
pub mod fig16;
pub mod fig9;
pub mod headline;
pub mod kernels;
pub mod series;
pub mod serving;
pub mod sparse;
pub mod spmd;
