//! Figure 9: the matrix-multiplication algorithm table.
//!
//! For every algorithm we verify (a) the schedule compiles and computes the
//! right answer, and (b) the communication pattern matches the paper's
//! icons: systolic algorithms (Cannon) move tiles between *neighbouring*
//! owners with no hot senders, broadcast algorithms (SUMMA) fan chunks out
//! from owners, and 3D algorithms (Johnson) replicate inputs and reduce the
//! output.

use distal_algs::matmul::MatmulAlgorithm;
use distal_algs::setup::{matmul_session, RunConfig};
use distal_machine::spec::MachineSpec;
use distal_runtime::stats::CopyKind;
use distal_runtime::Mode;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Communication profile of one algorithm run.
#[derive(Clone, Debug)]
pub struct CommProfile {
    /// Algorithm name.
    pub name: String,
    /// Bytes crossing node boundaries during compute.
    pub inter_node_bytes: u64,
    /// Bytes staying within nodes.
    pub intra_node_bytes: u64,
    /// Number of reduction folds (3D algorithms only).
    pub reductions: u64,
    /// Largest number of distinct destinations served by one source node
    /// (1 ≈ systolic neighbour traffic; large ≈ broadcast).
    pub max_fanout: usize,
    /// Achieved GFLOP/s per node in the model.
    pub gflops_per_node: f64,
}

/// Profiles one algorithm on `nodes` Lassen-like nodes (model mode, copy
/// log enabled).
///
/// # Panics
///
/// Panics when the run fails — Figure 9 rows must all execute.
pub fn profile(alg: MatmulAlgorithm, nodes: usize, n: i64) -> CommProfile {
    let mut config = RunConfig::cpu(nodes, Mode::Model);
    // One abstract processor per node keeps the fan-out analysis readable.
    config.spec = MachineSpec::lassen(nodes);
    config.spec.node.cpu_sockets = 1;
    let p = config.processors();
    let alg = match alg {
        MatmulAlgorithm::Solomonik { .. } => MatmulAlgorithm::Solomonik {
            c: distal_algs::matmul::best_c(p).max(1),
        },
        other => other,
    };
    let (mut session, kernel) = matmul_session(alg, &config, n, (n / 8).max(1)).expect("compile");
    session.runtime_mut().record_copies(true);
    session.place(&kernel).expect("place");
    let stats = session.execute(&kernel).expect("execute");

    // Fan-out: how many distinct destination nodes each source node serves
    // per compute run (broadcasts produce hot senders; systolic shifts are
    // one-to-one per step).
    let mut per_source: BTreeMap<usize, std::collections::BTreeSet<usize>> = BTreeMap::new();
    for c in stats.copy_log.as_ref().expect("copy log").iter() {
        if c.kind == CopyKind::Data && c.src_node != c.dst_node && c.src_node != usize::MAX {
            per_source.entry(c.src_node).or_default().insert(c.dst_node);
        }
    }
    let max_fanout = per_source.values().map(|s| s.len()).max().unwrap_or(0);
    CommProfile {
        name: alg.name(),
        inter_node_bytes: stats.inter_node_bytes(),
        intra_node_bytes: stats.intra_node_bytes(),
        reductions: stats.reductions_applied,
        max_fanout,
        gflops_per_node: stats.gflops_per_node(nodes),
    }
}

/// Profiles all Figure 9 algorithms.
pub fn figure9(nodes: usize, n: i64) -> Vec<CommProfile> {
    [
        MatmulAlgorithm::Cannon,
        MatmulAlgorithm::Pumma,
        MatmulAlgorithm::Summa,
        MatmulAlgorithm::Johnson,
        MatmulAlgorithm::Solomonik { c: 1 },
        MatmulAlgorithm::Cosma,
    ]
    .into_iter()
    .map(|alg| profile(alg, nodes, n))
    .collect()
}

/// Renders the Figure 9 profile table.
pub fn render(profiles: &[CommProfile]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>14} {:>11} {:>10} {:>12}",
        "algorithm", "inter-node MB", "intra-node MB", "reductions", "fan-out", "GFLOP/s/node"
    );
    for p in profiles {
        let _ = writeln!(
            out,
            "{:<18} {:>14.2} {:>14.2} {:>11} {:>10} {:>12.1}",
            p.name,
            p.inter_node_bytes as f64 / 1e6,
            p.intra_node_bytes as f64 / 1e6,
            p.reductions,
            p.max_fanout,
            p.gflops_per_node,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cannon_is_systolic_summa_broadcasts() {
        // 16 nodes, 4x4 grid.
        let cannon = profile(MatmulAlgorithm::Cannon, 16, 4096);
        let summa = profile(MatmulAlgorithm::Summa, 16, 4096);
        // SUMMA's owners fan chunks out to their row/column; Cannon's
        // neighbour shifts keep fan-out minimal (§7.1.2).
        assert!(
            cannon.max_fanout < summa.max_fanout,
            "cannon fan-out {} vs summa {}",
            cannon.max_fanout,
            summa.max_fanout
        );
        // Each Cannon node serves at most: B forward, C forward, plus its
        // two home tiles at the initial shift — 4 distinct destinations.
        assert!(cannon.max_fanout <= 4, "cannon {}", cannon.max_fanout);
    }

    #[test]
    fn johnson_reduces_and_replicates() {
        // 8 nodes form a 2x2x2 cube.
        let johnson = profile(MatmulAlgorithm::Johnson, 8, 4096);
        assert!(johnson.reductions > 0, "3D algorithm must fold reductions");
        let summa = profile(MatmulAlgorithm::Summa, 8, 4096);
        assert_eq!(summa.reductions, 0, "2D algorithm must not reduce");
    }

    #[test]
    fn all_rows_render() {
        let profiles = figure9(4, 2048);
        assert_eq!(profiles.len(), 6);
        let table = render(&profiles);
        assert!(table.contains("Our Cannon"));
        assert!(table.contains("Our COSMA"));
    }
}
