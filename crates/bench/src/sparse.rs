//! Sparse-vs-dense communication benchmark: the same SpMV/SpMM problem
//! registered with dense and CSR-compressed (`ds`) formats for the sparse
//! operand, lowered through the SPMD backend at density ∈ {0.01, 0.1,
//! 0.5} on p ∈ {4, 16}.
//!
//! For each cell the harness executes both programs on the rank VM,
//! verifies the outputs are bit-identical (the sparse parity guarantee),
//! and reports the *exact* executed bytes — compressed operand tiles are
//! charged their actual `pos`/`crd`/`vals` payloads — next to the α-β
//! makespans of both registrations. This is the CI gate for nnz-aware
//! accounting: at density 0.01 the compressed operand's bytes must be
//! below 10% of its dense bytes.

use distal_core::{DistalMachine, Problem, Schedule, TensorSpec};
use distal_format::Format;
use distal_machine::grid::Grid;
use distal_machine::spec::{MachineSpec, MemKind, ProcKind};
use distal_spmd::{lower_problem, AlphaBeta, CollectiveConfig, SpmdProgram};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One (kernel, ranks, density) measurement.
#[derive(Clone, Debug)]
pub struct SparseBenchRow {
    /// `spmv` or `spmm`.
    pub kernel: String,
    /// Rank count.
    pub p: i64,
    /// Problem side length.
    pub n: i64,
    /// Density of the sparse operand B.
    pub density: f64,
    /// Actual nnz of B's seeded data.
    pub nnz: u64,
    /// Total executed bytes with B registered dense.
    pub dense_bytes: u64,
    /// Total executed bytes with B registered compressed.
    pub sparse_bytes: u64,
    /// Executed bytes carrying B, dense registration.
    pub dense_b_bytes: u64,
    /// Executed bytes carrying B, compressed registration (exact
    /// pos/crd/vals payloads).
    pub sparse_b_bytes: u64,
    /// α-β makespan of the dense registration (seconds).
    pub dense_makespan_s: f64,
    /// α-β makespan of the compressed registration (seconds).
    pub sparse_makespan_s: f64,
    /// Whether both executions produced bit-identical outputs.
    pub verified: bool,
}

/// SpMV `a(i) = B(i,j) * c(j)` on a `p`-rank line: `a` row-distributed,
/// B whole on rank 0 (every rank pulls its row block — the message
/// stream nnz sizing must shrink), `c` staged on rank 0.
fn spmv_problem(p: i64, n: i64, density: f64, compressed: bool) -> (Problem, Schedule) {
    let machine = DistalMachine::flat(Grid::line(p), ProcKind::Cpu);
    let mut problem = Problem::new(MachineSpec::small(p.max(1) as usize), machine);
    problem.statement("a(i) = B(i,j) * c(j)").unwrap();
    let b_fmt = if compressed {
        Format::parse_levels("xy->x", "ds", MemKind::Sys).unwrap()
    } else {
        Format::parse("xy->x", MemKind::Sys).unwrap()
    };
    problem
        .tensor(TensorSpec::new(
            "a",
            vec![n],
            Format::parse("x->x", MemKind::Sys).unwrap(),
        ))
        .unwrap();
    // B's *distribution* stays undistributed so its tiles flow over the
    // wire; only the level formats differ between registrations.
    let mut b_home = Format::undistributed_in(MemKind::Global);
    b_home.levels = b_fmt.levels;
    problem
        .tensor(TensorSpec::new("B", vec![n, n], b_home))
        .unwrap();
    problem
        .tensor(TensorSpec::new(
            "c",
            vec![n],
            Format::undistributed_in(MemKind::Global),
        ))
        .unwrap();
    problem.fill_random_sparse("B", 0xB, density).unwrap();
    problem.fill_random("c", 0xC).unwrap();
    let schedule = Schedule::new()
        .divide("i", "io", "ii", p)
        .reorder(&["io", "ii"])
        .distribute(&["io"]);
    (problem, schedule)
}

/// SUMMA SpMM `A(i,j) = B(i,k) * C(k,j)` on a `g × g` grid: B and C are
/// both communicated per k-chunk; the compressed registration shrinks
/// the B half of the traffic.
fn spmm_problem(g: i64, n: i64, density: f64, compressed: bool) -> (Problem, Schedule) {
    let machine = DistalMachine::flat(Grid::grid2(g, g), ProcKind::Cpu);
    let mut problem = Problem::new(MachineSpec::small((g * g).max(1) as usize), machine);
    problem.statement("A(i,j) = B(i,k) * C(k,j)").unwrap();
    let tiles = Format::parse("xy->xy", MemKind::Sys).unwrap();
    let b_fmt = if compressed {
        Format::parse_levels("xy->xy", "ds", MemKind::Sys).unwrap()
    } else {
        tiles.clone()
    };
    problem
        .tensor(TensorSpec::new("A", vec![n, n], tiles.clone()))
        .unwrap();
    problem
        .tensor(TensorSpec::new("B", vec![n, n], b_fmt))
        .unwrap();
    problem
        .tensor(TensorSpec::new("C", vec![n, n], tiles))
        .unwrap();
    problem.fill_random_sparse("B", 0xB, density).unwrap();
    problem.fill_random("C", 0xC).unwrap();
    (problem, Schedule::summa(g, g, (n / g).max(1)))
}

/// Lowers + executes one registration, returning the program, its exact
/// executed stats' `(total, B)` bytes, the α-β makespan, and the output.
fn run_one(problem: &Problem, schedule: &Schedule) -> (SpmdProgram, u64, u64, f64, Vec<f64>) {
    let program = lower_problem(problem, schedule, &CollectiveConfig::default())
        .unwrap_or_else(|e| panic!("sparse bench lowering failed: {e}"));
    let mut inputs = BTreeMap::new();
    for t in &program.tensors {
        if t.name != program.assignment.lhs.tensor {
            inputs.insert(t.name.clone(), problem.initial_data(&t.name).unwrap());
        }
    }
    let result = program
        .execute(&inputs)
        .unwrap_or_else(|e| panic!("sparse bench execution failed: {e}"));
    let total = result.stats.bytes;
    let b_bytes = result.stats.bytes_by_tensor.get("B").copied().unwrap_or(0);
    let makespan = program.cost(&AlphaBeta::default()).makespan_s;
    (program, total, b_bytes, makespan, result.output)
}

/// The sweep: SpMV and SpMM at density ∈ `densities` on p ∈ `ps`
/// (SpMM requires square rank counts; non-squares are skipped).
pub fn sparse_bench(ps: &[i64], densities: &[f64]) -> Vec<SparseBenchRow> {
    let mut rows = Vec::new();
    for &p in ps {
        for &density in densities {
            // SpMV on a p-rank line.
            let n_v = 16 * p.max(1);
            let (dense_p, sched) = spmv_problem(p, n_v, density, false);
            let (sparse_p, _) = spmv_problem(p, n_v, density, true);
            rows.push(measure(
                "spmv", p, n_v, density, &dense_p, &sparse_p, &sched,
            ));

            // SpMM on a near-square grid (square p only).
            let g = (p as f64).sqrt().round() as i64;
            if g * g == p {
                let n_m = 24 * g;
                let (dense_p, sched) = spmm_problem(g, n_m, density, false);
                let (sparse_p, _) = spmm_problem(g, n_m, density, true);
                rows.push(measure(
                    "spmm", p, n_m, density, &dense_p, &sparse_p, &sched,
                ));
            }
        }
    }
    rows
}

fn measure(
    kernel: &str,
    p: i64,
    n: i64,
    density: f64,
    dense_p: &Problem,
    sparse_p: &Problem,
    schedule: &Schedule,
) -> SparseBenchRow {
    let (_, dense_bytes, dense_b, dense_mk, dense_out) = run_one(dense_p, schedule);
    let (_, sparse_bytes, sparse_b, sparse_mk, sparse_out) = run_one(sparse_p, schedule);
    let verified = dense_out.len() == sparse_out.len()
        && dense_out
            .iter()
            .zip(sparse_out.iter())
            .all(|(a, b)| a.to_bits() == b.to_bits());
    SparseBenchRow {
        kernel: kernel.into(),
        p,
        n,
        density,
        nnz: dense_p.nnz_of("B").unwrap_or(0),
        dense_bytes,
        sparse_bytes,
        dense_b_bytes: dense_b,
        sparse_b_bytes: sparse_b,
        dense_makespan_s: dense_mk,
        sparse_makespan_s: sparse_mk,
        verified,
    }
}

/// Renders the sweep as a table.
pub fn render(rows: &[SparseBenchRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:>4} {:>5} {:>8} {:>8} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9} {:>6}",
        "kernel",
        "p",
        "n",
        "density",
        "nnz",
        "dense B",
        "sparse B",
        "dense tot",
        "sparse tot",
        "dense αβ",
        "sparseαβ",
        "ok"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<6} {:>4} {:>5} {:>8.3} {:>8} {:>12} {:>12} {:>12} {:>12} {:>7.1}us {:>7.1}us {:>6}",
            r.kernel,
            r.p,
            r.n,
            r.density,
            r.nnz,
            r.dense_b_bytes,
            r.sparse_b_bytes,
            r.dense_bytes,
            r.sparse_bytes,
            r.dense_makespan_s * 1e6,
            r.sparse_makespan_s * 1e6,
            if r.verified { "yes" } else { "NO" }
        );
    }
    out
}

/// Serializes the rows as JSON (hand-rolled; no serde in the workspace).
pub fn to_json(rows: &[SparseBenchRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"kernel\": \"{}\", \"p\": {}, \"n\": {}, \"density\": {}, \"nnz\": {}, \
             \"dense_bytes\": {}, \"sparse_bytes\": {}, \
             \"dense_b_bytes\": {}, \"sparse_b_bytes\": {}, \
             \"dense_makespan_s\": {:.9}, \"sparse_makespan_s\": {:.9}, \
             \"verified\": {}}}{comma}",
            r.kernel,
            r.p,
            r.n,
            r.density,
            r.nnz,
            r.dense_bytes,
            r.sparse_bytes,
            r.dense_b_bytes,
            r.sparse_b_bytes,
            r.dense_makespan_s,
            r.sparse_makespan_s,
            r.verified
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_verifies_and_compresses() {
        let rows = sparse_bench(&[4], &[0.01, 0.5]);
        assert_eq!(rows.len(), 4); // (spmv + spmm) x 2 densities
        for r in &rows {
            assert!(r.verified, "{r:?}");
            assert!(r.dense_b_bytes > 0, "{r:?}");
            assert!(r.dense_makespan_s.is_finite() && r.dense_makespan_s > 0.0);
            assert!(r.sparse_makespan_s.is_finite() && r.sparse_makespan_s > 0.0);
            if r.density <= 0.01 {
                assert!(
                    r.sparse_b_bytes * 10 < r.dense_b_bytes,
                    "compression gate: {r:?}"
                );
            }
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rows = sparse_bench(&[4], &[0.1]);
        let j = to_json(&rows);
        assert!(j.contains("\"sparse_b_bytes\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
