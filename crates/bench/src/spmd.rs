//! SPMD collective-lowering benchmark: naive vs tree vs ring schedules
//! for the Figure 9 algorithms, priced under the α-β cost model *and*
//! measured on the threaded rank transport.
//!
//! For each (algorithm, lowering) pair the harness lowers the schedule,
//! verifies the execution against the sequential oracle, and reports the
//! exact static properties of the compiled program: message/byte counts,
//! neighbour fraction, the worst collective critical-path depth, and the
//! α-β makespan. This is the CI gate for the collective recognizer: on a
//! `g × g` grid a SUMMA owner fan must drop from `g - 1` serialized
//! sends to `⌈log₂ g⌉ ≤ ⌈log₂ g⌉ + 1` tree rounds at identical byte
//! volume, while Cannon must stay fully systolic (nothing recognized,
//! all steady-state traffic at torus distance 1).
//!
//! Each row additionally runs the program on real rank threads
//! ([`distal_spmd::Transport::Threaded`]) and records the measured
//! wall-clock makespan, the modeled-over-measured ratio, and whether the
//! threaded output was bit-identical to the sequential reference (the
//! `--assert-parity` CI gate).

use distal_algs::matmul::MatmulAlgorithm;
use distal_algs::setup::matmul_problem_on;
use distal_core::oracle;
use distal_ir::expr::Assignment;
use distal_machine::spec::{MachineSpec, MemKind, ProcKind};
use distal_spmd::{
    collective, lower_problem, AlphaBeta, CollectiveConfig, CommStats, Message, SpmdProgram,
    Transport,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One (algorithm, lowering) measurement.
#[derive(Clone, Debug)]
pub struct SpmdBenchRow {
    /// Algorithm name (Figure 9 naming).
    pub algorithm: String,
    /// Lowering mode: `naive`, `tree`, or `ring`.
    pub lowering: String,
    /// Matrix side length.
    pub n: i64,
    /// Rank count.
    pub ranks: usize,
    /// The machine grid the program was actually lowered for (the
    /// algorithm's own factorization of the rank count, which may differ
    /// from a requested shape — depth bounds must be computed from this).
    pub grid: Vec<i64>,
    /// Total messages in the static program.
    pub messages: u64,
    /// Total bytes on the wire.
    pub bytes: u64,
    /// Fraction of bytes travelling exactly one torus hop.
    pub neighbor_fraction: f64,
    /// Recognized collectives.
    pub collectives: usize,
    /// Worst collective critical-path message depth (for `naive`: the
    /// serialized fan depth the recognizer reports).
    pub depth: usize,
    /// α-β modeled makespan in seconds.
    pub makespan_s: f64,
    /// Wall-clock seconds spent lowering the schedule to this program.
    pub plan_s: f64,
    /// Wall-clock seconds the admission linter (`distal_core::lint`)
    /// spent on the schedule — the `--assert-lint-overhead` gate holds
    /// it under 2% of `plan_s`.
    pub lint_s: f64,
    /// Wall-clock seconds the static verifier spent on this program —
    /// the `--assert-verified` gate holds it under 5% of `plan_s`.
    pub verify_s: f64,
    /// Whether the static verifier proved the program clean (no error
    /// diagnostics) without executing it.
    pub statically_verified: bool,
    /// Whether execution matched the sequential oracle.
    pub verified: bool,
    /// Rank-pool worker threads the threaded run used.
    pub threads: usize,
    /// Measured wall-clock makespan of the threaded run, in seconds
    /// (0.0 when the threaded run failed).
    pub measured_s: f64,
    /// Modeled-over-measured makespan ratio (`makespan_s / measured_s`;
    /// 0.0 when unmeasured). A perfectly calibrated α-β model scores 1.
    pub model_ratio: f64,
    /// Whether the threaded output was bit-identical to the sequential
    /// transport's (the `--assert-parity` gate).
    pub parity: bool,
}

fn deterministic_data(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    (0..n)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

/// Lowers `alg` for `p` ranks at size `n` under `config`.
///
/// # Panics
///
/// Panics when the lowering itself fails (a bench-harness bug, not a
/// measurement).
pub fn lower_algorithm(
    alg: MatmulAlgorithm,
    p: i64,
    n: i64,
    config: &CollectiveConfig,
) -> SpmdProgram {
    lower_algorithm_timed(alg, p, n, config).0
}

/// [`lower_algorithm`], also timing the admission linter on the same
/// `(problem, schedule)` (the `lint_s` column of the sweep). The linter
/// must find no errors — these are the known-good Figure 9 schedules.
///
/// # Panics
///
/// Panics when the lowering fails or the linter rejects the schedule (a
/// bench-harness bug, not a measurement).
pub fn lower_algorithm_timed(
    alg: MatmulAlgorithm,
    p: i64,
    n: i64,
    config: &CollectiveConfig,
) -> (SpmdProgram, f64) {
    let (problem, schedule) = matmul_problem_on(
        alg,
        MachineSpec::small(8),
        ProcKind::Cpu,
        MemKind::Sys,
        p,
        n,
        (n / 4).max(1),
    )
    .unwrap_or_else(|e| panic!("{alg:?}: {e}"));
    let lint_start = std::time::Instant::now();
    let diagnostics =
        distal_core::lint_schedule(&problem, &schedule, &distal_core::LintConfig::default());
    let lint_s = lint_start.elapsed().as_secs_f64();
    assert!(
        !diagnostics.iter().any(|d| d.is_error()),
        "{alg:?}: {diagnostics:?}"
    );
    let program =
        lower_problem(&problem, &schedule, config).unwrap_or_else(|e| panic!("{alg:?}: {e}"));
    (program, lint_s)
}

/// The shared inputs and oracle answer of one problem size (computed
/// once per sweep; the sequential oracle is O(n³)).
#[derive(Debug)]
pub struct OracleCase {
    inputs: BTreeMap<String, Vec<f64>>,
    want: Vec<f64>,
}

impl OracleCase {
    /// Builds deterministic inputs for an `n × n` matmul and evaluates
    /// the sequential oracle on them.
    pub fn matmul(n: i64) -> Self {
        let mut inputs = BTreeMap::new();
        inputs.insert("B".to_string(), deterministic_data((n * n) as usize, 11));
        inputs.insert("C".to_string(), deterministic_data((n * n) as usize, 13));
        let mut dims = BTreeMap::new();
        for t in ["A", "B", "C"] {
            dims.insert(t.to_string(), vec![n, n]);
        }
        let assignment = Assignment::parse("A(i,j) = B(i,k) * C(k,j)").unwrap();
        let want = oracle::evaluate(&assignment, &dims, &inputs).unwrap();
        OracleCase { inputs, want }
    }
}

/// Measures one lowered program: runs the static verifier (timed, for
/// the `--assert-verified` overhead gate), verifies the sequential
/// execution against the oracle, then runs the same program on the
/// threaded transport (`threads` pool workers, `0` = auto) for the
/// measured wall-clock makespan and the sequential-vs-threaded parity
/// bit. `plan_s` is the wall-clock lowering time the caller observed,
/// `lint_s` the admission-lint time.
#[allow(clippy::too_many_arguments)]
pub fn measure(
    alg: MatmulAlgorithm,
    lowering: &str,
    n: i64,
    program: &SpmdProgram,
    case: &OracleCase,
    threads: usize,
    plan_s: f64,
    lint_s: f64,
) -> SpmdBenchRow {
    let stats = program.stats();
    let verify_start = std::time::Instant::now();
    let diagnostics = distal_spmd::verify_program(program);
    let verify_s = verify_start.elapsed().as_secs_f64();
    let statically_verified = !diagnostics.iter().any(|d| d.is_error());
    let depth = if program.collectives.is_empty() {
        collective::recognize(program)
            .iter()
            .map(|c| c.depth)
            .max()
            .unwrap_or(0)
    } else {
        program.collective_depth()
    };
    let (inputs, want) = (&case.inputs, &case.want);
    let sequential = program.execute(inputs).ok();
    let verified = sequential.as_ref().is_some_and(|result| {
        result
            .output
            .iter()
            .zip(want.iter())
            .all(|(g, w)| (g - w).abs() < 1e-9 * (1.0 + w.abs()))
    });
    let makespan_s = program.cost(&AlphaBeta::default()).makespan_s;
    let threaded = program
        .execute_with(inputs, &Transport::threaded_with(threads))
        .ok();
    let parity = match (&sequential, &threaded) {
        (Some(s), Some(t)) => {
            s.output.len() == t.output.len()
                && s.output
                    .iter()
                    .zip(t.output.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits())
        }
        _ => false,
    };
    let measured = threaded.as_ref().and_then(|t| t.measured.as_ref());
    let measured_s = measured.map_or(0.0, |m| m.wall_s);
    SpmdBenchRow {
        algorithm: alg.name(),
        lowering: lowering.to_string(),
        n,
        ranks: program.ranks(),
        grid: program.grid.dims().to_vec(),
        messages: stats.messages,
        bytes: stats.bytes,
        neighbor_fraction: stats.neighbor_fraction(),
        collectives: program.collectives.len(),
        depth,
        makespan_s,
        plan_s,
        lint_s,
        verify_s,
        statically_verified,
        verified,
        threads: measured.map_or(0, |m| m.threads),
        measured_s,
        model_ratio: if measured_s > 0.0 {
            makespan_s / measured_s
        } else {
            0.0
        },
        parity,
    }
}

/// The default sweep: SUMMA under all three lowerings plus Cannon, for
/// `gx × gy` ranks.
///
/// The 2-D algorithms pick their own near-square factorization of the
/// rank count, which may differ from the requested shape (e.g. `2 × 8`
/// ranks still run on a `4 × 4` grid); every row records the actual
/// grid, and depth gates must read it from there.
pub fn spmd_bench(gx: i64, gy: i64, n: i64) -> Vec<SpmdBenchRow> {
    spmd_bench_with_programs(gx, gy, n, 0).0
}

/// [`spmd_bench`], also returning the lowered programs (same order as
/// the rows) so gates can inspect them without re-lowering. `threads`
/// sizes the threaded transport's rank pool (`0` = auto).
pub fn spmd_bench_with_programs(
    gx: i64,
    gy: i64,
    n: i64,
    threads: usize,
) -> (Vec<SpmdBenchRow>, Vec<SpmdProgram>) {
    let p = gx * gy;
    let case = OracleCase::matmul(n);
    let mut rows = Vec::new();
    let mut programs = Vec::new();
    for (lowering, config) in [
        ("naive", CollectiveConfig::point_to_point()),
        ("tree", CollectiveConfig::trees()),
        ("ring", CollectiveConfig::rings()),
    ] {
        let plan_start = std::time::Instant::now();
        let (program, lint_s) = lower_algorithm_timed(MatmulAlgorithm::Summa, p, n, &config);
        let plan_s = plan_start.elapsed().as_secs_f64();
        rows.push(measure(
            MatmulAlgorithm::Summa,
            lowering,
            n,
            &program,
            &case,
            threads,
            plan_s,
            lint_s,
        ));
        programs.push(program);
    }
    let plan_start = std::time::Instant::now();
    let (cannon, lint_s) =
        lower_algorithm_timed(MatmulAlgorithm::Cannon, p, n, &CollectiveConfig::trees());
    let plan_s = plan_start.elapsed().as_secs_f64();
    rows.push(measure(
        MatmulAlgorithm::Cannon,
        "tree",
        n,
        &cannon,
        &case,
        threads,
        plan_s,
        lint_s,
    ));
    programs.push(cannon);
    (rows, programs)
}

/// Cannon's steady-state statistics (all steps after the initial
/// alignment shift), whose traffic must be entirely nearest-neighbour.
pub fn cannon_steady_stats(program: &SpmdProgram) -> CommStats {
    let steady: Vec<Message> = program
        .messages_by_step()
        .into_iter()
        .skip(1)
        .flatten()
        .collect();
    let refs: Vec<&Message> = steady.iter().collect();
    CommStats::from_messages(&program.grid, program.ranks(), &refs)
}

/// Renders the sweep as a table.
pub fn render(rows: &[SpmdBenchRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>6} {:>7} {:>9} {:>10} {:>7} {:>6} {:>12} {:>11} {:>7} {:>10} {:>10} {:>8} {:>9} {:>7}",
        "algorithm",
        "mode",
        "n",
        "grid",
        "messages",
        "bytes",
        "nbr%",
        "depth",
        "modeled",
        "measured",
        "ratio",
        "lint",
        "verify",
        "static",
        "oracle",
        "parity"
    );
    for r in rows {
        let grid = r
            .grid
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("x");
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>6} {:>7} {:>9} {:>10} {:>6.0}% {:>6} {:>10.1}us {:>9.1}us {:>7.2} {:>8.1}us {:>8.1}us {:>8} {:>9} {:>7}",
            r.algorithm,
            r.lowering,
            r.n,
            grid,
            r.messages,
            r.bytes,
            r.neighbor_fraction * 100.0,
            r.depth,
            r.makespan_s * 1e6,
            r.measured_s * 1e6,
            r.model_ratio,
            r.lint_s * 1e6,
            r.verify_s * 1e6,
            if r.statically_verified { "ok" } else { "REJECTED" },
            if r.verified { "ok" } else { "MISMATCH" },
            if r.parity { "ok" } else { "DIVERGED" }
        );
    }
    out
}

/// Serializes the rows as JSON (hand-rolled; no serde in the workspace).
pub fn to_json(rows: &[SpmdBenchRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"algorithm\": \"{}\", \"lowering\": \"{}\", \"n\": {}, \"ranks\": {}, \
             \"grid\": {:?}, \
             \"messages\": {}, \"bytes\": {}, \"neighbor_fraction\": {:.4}, \
             \"collectives\": {}, \"depth\": {}, \"makespan_s\": {:.9}, \
             \"plan_s\": {:.9}, \"lint_s\": {:.9}, \"verify_s\": {:.9}, \"statically_verified\": {}, \
             \"verified\": {}, \
             \"threads\": {}, \"measured_s\": {:.9}, \"model_ratio\": {:.4}, \
             \"parity\": {}}}{comma}",
            r.algorithm,
            r.lowering,
            r.n,
            r.ranks,
            r.grid,
            r.messages,
            r.bytes,
            r.neighbor_fraction,
            r.collectives,
            r.depth,
            r.makespan_s,
            r.plan_s,
            r.lint_s,
            r.verify_s,
            r.statically_verified,
            r.verified,
            r.threads,
            r.measured_s,
            r.model_ratio,
            r.parity
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_rows_verify_and_show_depth_drop() {
        let rows = spmd_bench(4, 4, 16);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.verified));
        assert!(rows.iter().all(|r| r.statically_verified));
        assert!(rows
            .iter()
            .all(|r| r.plan_s > 0.0 && r.lint_s > 0.0 && r.verify_s > 0.0));
        let naive = rows.iter().find(|r| r.lowering == "naive").unwrap();
        let tree = rows
            .iter()
            .find(|r| r.lowering == "tree" && r.algorithm.contains("SUMMA"))
            .unwrap();
        assert_eq!(naive.depth, 3);
        assert_eq!(tree.depth, 2);
        assert_eq!(naive.bytes, tree.bytes);
        assert!(tree.makespan_s < naive.makespan_s);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rows = spmd_bench(2, 2, 8);
        let j = to_json(&rows);
        assert!(j.contains("\"lowering\": \"tree\""));
        assert!(j.contains("\"lint_s\""));
        assert!(j.contains("\"verify_s\""));
        assert!(j.contains("\"statically_verified\": true"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
